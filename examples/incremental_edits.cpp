// Example: incremental re-enumeration under PAM edits.
//
// An IncrementalSession wraps a presence/absence matrix and keeps a
// component-level result cache keyed by canonical instance fingerprints.
// When the matrix is edited, only the components whose induced constraint
// sets actually changed are re-enumerated; every clean component is served
// from the cache (its stand set is stored in rank space, so it survives
// taxon relabeling). This example applies a structure-preserving edit
// stream and prints, per edit, how much work the session did versus a
// from-scratch decompose::run_sharded of the same matrix — the differential
// that also backs the BENCH_9 gate.
//
// Exit status is 0 only if the incremental counts and sorted stand sets
// match the from-scratch driver at every step.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "benchutil/edit_stream.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "incremental/session.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;

  benchutil::MultiComponentParams params;
  params.n_components = 2;
  params.min_taxa_per_component = 4;
  params.max_taxa_per_component = 5;
  params.loci_per_component = 3;
  params.min_taxa_per_locus = 3;
  params.missing_fraction = 0.3;
  params.seed = 7;
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  auto dataset = benchutil::make_multi_component(params);

  core::Options options;
  options.decompose = core::Decompose::kComponents;
  options.collect_trees = true;
  options.tree_names = &dataset.taxa;

  incremental::SessionOptions so;
  so.engine = options;
  so.min_taxa = 3;
  incremental::IncrementalSession session(dataset.species_tree, dataset.pam,
                                          so);

  const auto dec =
      decompose::analyze_pam(dataset.species_tree, dataset.pam, so.min_taxa);
  std::printf("dataset %s: %zu taxa, %zu loci, %zu components\n",
              dataset.name.c_str(), dataset.pam.taxon_count(),
              dataset.pam.locus_count(), dec.split.components.size());

  const core::Result init = session.enumerate();
  std::printf("initial enumeration: %llu stand trees, %llu states\n\n",
              static_cast<unsigned long long>(init.stand_trees),
              static_cast<unsigned long long>(init.intermediate_states));

  benchutil::EditStreamParams ep;
  ep.seed = params.seed;
  ep.n_edits = 8;
  ep.min_taxa = so.min_taxa;
  ep.noop_fraction = 0.25;
  const auto stream =
      benchutil::make_edit_stream(dataset.species_tree, dataset.pam, ep);

  const auto sorted_trees = [](const core::Result& r) {
    std::vector<std::string> t = r.trees;
    std::sort(t.begin(), t.end());
    return t;
  };

  std::printf("%4s %11s %6s %5s %7s %10s %10s %6s\n", "edit", "kind",
              "dirty", "hits", "misses", "inc", "scratch", "match");
  bool all_equal = true;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const core::Result inc = session.apply(stream[i]);
    const auto ref_dec = decompose::analyze_pam(dataset.species_tree,
                                                session.pam(), so.min_taxa);
    const core::Result ref =
        decompose::run_sharded(ref_dec.constraints, options, so.run);
    const bool ok = inc.stand_trees == ref.stand_trees &&
                    sorted_trees(inc) == sorted_trees(ref);
    all_equal = all_equal && ok;
    std::printf("%4zu %11s %6zu %5llu %7llu %10llu %10llu %6s\n", i + 1,
                to_string(stream[i].kind), inc.cache.recomputed_components,
                static_cast<unsigned long long>(inc.cache.hits),
                static_cast<unsigned long long>(inc.cache.misses),
                static_cast<unsigned long long>(inc.intermediate_states),
                static_cast<unsigned long long>(ref.intermediate_states),
                ok ? "yes" : "NO");
  }

  const auto& life = session.lifetime_cache_stats();
  std::printf("\nlifetime cache: %llu hits, %llu misses — incremental and "
              "from-scratch %s at every step\n",
              static_cast<unsigned long long>(life.hits),
              static_cast<unsigned long long>(life.misses),
              all_equal ? "agree" : "DISAGREE");
  return all_equal ? 0 : 1;
}
