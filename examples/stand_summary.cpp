// Stand post-analysis: what do millions of equally scoring trees agree on?
//
// The paper's discussion frames stand identification as input to downstream
// uncertainty analysis. This example enumerates a stand and then
// summarizes it: strict and majority-rule consensus (which clades are
// actually resolved by the data), split support, and the Robinson-Foulds
// spread of the stand.
#include <algorithm>
#include <cstdio>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "gentrius/verify.hpp"
#include "phylo/newick.hpp"
#include "phylo/splits.hpp"
#include "support/rng.hpp"

int main() {
  using namespace gentrius;

  datagen::EmpiricalLikeParams params;
  params.n_taxa = 24;
  params.n_loci = 6;
  params.seed = 17;
  const auto dataset = datagen::make_empirical_like(params);

  core::Options options;
  options.collect_trees = true;
  options.tree_names = &dataset.taxa;
  options.stop.max_stand_trees = 200'000;
  const auto result = core::run_serial(dataset.constraints, options);
  std::printf("stand: %llu trees (%s), %zu collected\n",
              static_cast<unsigned long long>(result.stand_trees),
              core::to_string(result.reason), result.trees.size());
  if (result.trees.empty()) return 0;

  // Independent verification of the enumerated stand against the definition.
  const auto check =
      core::verify_stand(dataset.constraints, result.trees, dataset.taxa);
  std::printf("stand verification: %s\n",
              check.ok ? "ok" : check.error.c_str());

  // Parse the collected Newick strings back into trees.
  std::vector<phylo::Tree> trees;
  phylo::TaxonSet names = dataset.taxa;
  for (const auto& nwk : result.trees)
    trees.push_back(
        phylo::parse_newick(nwk, names, {.register_new_taxa = false}));

  const std::size_t n = trees.front().leaf_count();
  const auto strict = phylo::strict_consensus(trees);
  const auto majority = phylo::majority_consensus(trees, 0.5);
  std::printf("\nresolution (internal edges; %zu = fully resolved):\n", n - 3);
  std::printf("  any single stand tree : %zu\n", n - 3);
  std::printf("  majority-rule (>50%%)  : %zu\n",
              majority.internal_edge_count());
  std::printf("  strict consensus      : %zu\n", strict.internal_edge_count());
  std::printf("\nstrict consensus tree:\n  %s\n",
              strict.to_newick(dataset.taxa).c_str());

  // RF spread: distances from the first tree and between random pairs.
  support::Rng rng(1);
  std::size_t max_rf = 0;
  double sum_rf = 0;
  const std::size_t samples = std::min<std::size_t>(trees.size() - 1, 500);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto& a = trees[rng.below(trees.size())];
    const auto& b = trees[rng.below(trees.size())];
    const std::size_t d = phylo::rf_distance(a, b);
    max_rf = std::max(max_rf, d);
    sum_rf += static_cast<double>(d);
  }
  std::printf("\nRF distance between random stand trees (max possible %zu):\n",
              2 * (n - 3));
  std::printf("  mean %.1f, sampled max %zu over %zu pairs\n",
              sum_rf / static_cast<double>(samples), max_rf, samples);
  std::printf("\n=> everything the strict consensus leaves unresolved is "
              "uncertainty *caused purely by missing data*.\n");
  return 0;
}
