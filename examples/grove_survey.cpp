// Missing-data survey (paper §I): "In the RAxML Grove v0.7 database, we
// counted 7,295 empirical, partitioned multi-gene datasets, 4,959 (68%) of
// which had a non-zero proportion of missing data and 1,390 (19%) a missing
// data proportion exceeding 30%."
//
// RAxML Grove is not available offline; this example surveys a synthetic
// grove built with the empirical-like generator and reports the same
// statistics, plus how many of the gappy datasets actually put the inferred
// species tree on a non-trivial stand — the practical punchline of the
// paper's motivation.
#include <cmath>
#include <cstdio>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "support/rng.hpp"

int main() {
  using namespace gentrius;
  const std::size_t grove_size = 300;

  support::Rng rng(20260706);
  std::size_t with_missing = 0, over_30 = 0;
  std::size_t stands_checked = 0, nontrivial_stands = 0;
  std::uint64_t largest_stand = 0;

  for (std::size_t i = 0; i < grove_size; ++i) {
    datagen::EmpiricalLikeParams p;
    p.n_taxa = 16 + rng.below(48);
    p.n_loci = 3 + rng.below(10);
    // Per-dataset missing-data severity: a fraction of datasets are
    // complete, most are mildly gappy, a tail is heavily gappy — the
    // distribution shape RAxML Grove exhibits.
    if (rng.bernoulli(0.32)) {
      p.base_missing = 0.0;
      p.tail_missing = 0.0;
      p.scatter_missing = 0.0;
      p.rogue_fraction = 0.0;
    } else {
      const double u = rng.uniform();
      const double severity = u * std::sqrt(u);  // u^1.5: long gappy tail
      p.base_missing = 0.02 + 0.3 * severity;
      p.tail_missing = 0.8 * severity;
      p.scatter_missing = 0.08 * severity;
      p.rogue_fraction = 0.2 * severity;
    }
    p.seed = 4'000'000 + i;
    const auto ds = datagen::make_empirical_like(p);

    const double missing = ds.pam.missing_fraction();
    if (missing > 0.0) ++with_missing;
    if (missing > 0.30) ++over_30;

    // For a subsample, ask Gentrius whether the species tree is unique.
    if (i % 5 == 0) {
      core::Options opts;
      opts.stop.max_stand_trees = 100'000;
      opts.stop.max_states = 500'000;
      const auto r = core::run_serial(ds.constraints, opts);
      ++stands_checked;
      if (r.stand_trees > 1) ++nontrivial_stands;
      largest_stand = std::max(largest_stand, r.stand_trees);
    }
  }

  std::printf("synthetic grove of %zu partitioned multi-gene datasets\n",
              grove_size);
  std::printf("  non-zero missing data : %zu (%.0f%%)   [paper, RAxML Grove: "
              "68%%]\n",
              with_missing,
              100.0 * static_cast<double>(with_missing) / grove_size);
  std::printf("  more than 30%% missing : %zu (%.0f%%)   [paper: 19%%]\n",
              over_30, 100.0 * static_cast<double>(over_30) / grove_size);
  std::printf("\nstand check on %zu sampled datasets:\n", stands_checked);
  std::printf("  inferred tree NOT unique (stand > 1): %zu (%.0f%%)\n",
              nontrivial_stands,
              100.0 * static_cast<double>(nontrivial_stands) /
                  static_cast<double>(stands_checked));
  std::printf("  largest stand encountered: %llu trees (>=)\n",
              static_cast<unsigned long long>(largest_stand));
  return 0;
}
