// Example: parallel scaling of Gentrius on a hard generated dataset.
//
// Runs the same instance serially, with real worker threads (correctness
// demonstration — on a single-core host wall-clock speedup is not
// expected), and under the virtual-time scheduler at 1..16 workers, then
// prints the speedup table the paper's Figures 6/7 are built from —
// side by side for both schedulers (the paper's central queue and the
// distributed per-worker deques), with the task-offer and steal
// observability counters from core::Result.
#include <cstdio>
#include <cstdlib>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "parallel/pool.hpp"
#include "vthread/virtual_pool.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;

  std::uint64_t seed = 20230501;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  datagen::SimulatedParams params;
  params.n_taxa = 40;
  params.n_loci = 8;
  params.missing_fraction = 0.5;
  params.seed = seed;
  const auto dataset = datagen::make_simulated(params);

  core::Options options;
  options.stop.max_stand_trees = 2'000'000;
  options.stop.max_states = 20'000'000;
  const auto problem = core::build_problem(dataset.constraints, options);

  std::printf("dataset %s: %zu taxa, %zu constraint trees, %.0f%% missing\n",
              dataset.name.c_str(), dataset.taxon_count(),
              dataset.constraints.size(), 100.0 * dataset.pam.missing_fraction());

  const auto serial = core::run_serial(problem, options);
  std::printf(
      "serial: %llu stand trees, %llu states, %llu dead ends, %.3fs (%s)\n",
      static_cast<unsigned long long>(serial.stand_trees),
      static_cast<unsigned long long>(serial.intermediate_states),
      static_cast<unsigned long long>(serial.dead_ends), serial.seconds,
      core::to_string(serial.reason));

  for (const core::Scheduler sched :
       {core::Scheduler::kCentralQueue, core::Scheduler::kDistributedDeques}) {
    core::Options opts = options;
    opts.scheduler = sched;
    const auto real4 = parallel::run_parallel(problem, opts, 4);
    std::printf(
        "real 4-thread pool [%s]: %llu trees, %llu states, "
        "%llu dead ends — identical to serial: %s\n",
        core::to_string(sched),
        static_cast<unsigned long long>(real4.stand_trees),
        static_cast<unsigned long long>(real4.intermediate_states),
        static_cast<unsigned long long>(real4.dead_ends),
        (real4.stand_trees == serial.stand_trees &&
         real4.intermediate_states == serial.intermediate_states)
            ? "yes"
            : "NO");
    std::printf(
        "  offered %llu tasks; stolen %llu of %llu attempts "
        "(%llu failed probes, %llu full-queue rejections, depth<=%llu)\n",
        static_cast<unsigned long long>(real4.tasks_offered),
        static_cast<unsigned long long>(real4.sched.tasks_stolen),
        static_cast<unsigned long long>(real4.sched.steal_attempts),
        static_cast<unsigned long long>(real4.sched.failed_steal_probes),
        static_cast<unsigned long long>(real4.sched.queue_full_rejections),
        static_cast<unsigned long long>(real4.sched.max_queue_depth));
  }

  const auto base = vthread::run_virtual(problem, options, 1);
  std::printf("\n%8s | %14s %8s %8s %8s | %14s %8s %8s %8s\n", "threads",
              "central", "speedup", "tasks", "stolen", "distributed",
              "speedup", "tasks", "stolen");
  std::printf("%8d | %14.0f %8.2f %8s %8s | %14.0f %8.2f %8s %8s\n", 1,
              base.virtual_makespan, 1.0, "-", "-", base.virtual_makespan,
              1.0, "-", "-");
  for (const std::size_t t : {2u, 4u, 8u, 12u, 16u}) {
    core::Options dopts = options;
    dopts.scheduler = core::Scheduler::kDistributedDeques;
    const auto c = vthread::run_virtual(problem, options, t);
    const auto d = vthread::run_virtual(problem, dopts, t);
    std::printf("%8zu | %14.0f %8.2f %8llu %8llu | %14.0f %8.2f %8llu %8llu\n",
                t, c.virtual_makespan,
                base.virtual_makespan / c.virtual_makespan,
                static_cast<unsigned long long>(c.tasks_executed),
                static_cast<unsigned long long>(c.sched.tasks_stolen),
                d.virtual_makespan,
                base.virtual_makespan / d.virtual_makespan,
                static_cast<unsigned long long>(d.tasks_executed),
                static_cast<unsigned long long>(d.sched.tasks_stolen));
  }
  return 0;
}
