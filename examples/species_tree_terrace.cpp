// Second input mode (paper §II-A): a complete species tree plus a
// presence/absence matrix. Gentrius extracts the induced per-locus subtrees
// and enumerates the stand — the set of species trees indistinguishable
// from the inferred one given the missing-data pattern (a terrace, under
// partitioned scoring criteria).
#include <cstdio>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"

int main() {
  using namespace gentrius;

  // An "inferred species tree" and a PAM with realistic per-locus gaps; in a
  // real pipeline both would come from files (see stand_explorer for that).
  datagen::EmpiricalLikeParams params;
  params.n_taxa = 30;
  params.n_loci = 6;
  params.seed = 8;
  const auto dataset = datagen::make_empirical_like(params);

  std::printf("species tree : %s\n",
              phylo::to_newick(dataset.species_tree, dataset.taxa).c_str());
  std::printf("\nPAM (%zu taxa x %zu loci, %.1f%% missing):\n%s\n",
              dataset.pam.taxon_count(), dataset.pam.locus_count(),
              100.0 * dataset.pam.missing_fraction(),
              dataset.pam.to_text(dataset.taxa).c_str());

  const auto comprehensive = dataset.pam.comprehensive_taxon();
  std::printf("comprehensive taxon: %s\n",
              comprehensive ? dataset.taxa.name(*comprehensive).c_str()
                            : "none (SUPERB-style tools cannot run here)");

  const auto constraints = pam::induced_subtrees(dataset.species_tree,
                                                 dataset.pam);
  std::printf("\ninduced per-locus subtrees (the constraint trees):\n");
  for (std::size_t i = 0; i < constraints.size(); ++i)
    std::printf("  locus %zu (%zu taxa): %s\n", i, constraints[i].leaf_count(),
                phylo::to_newick(constraints[i], dataset.taxa).c_str());

  core::Options options;
  options.stop.max_stand_trees = 1'000'000;
  const auto result = core::run_serial(constraints, options);

  std::printf("\nstand size: %llu (%s)\n",
              static_cast<unsigned long long>(result.stand_trees),
              core::to_string(result.reason));
  if (result.stand_trees > 1) {
    std::printf(
        "=> the inferred species tree is NOT unique: %llu trees explain the "
        "per-locus data equally well.\n",
        static_cast<unsigned long long>(result.stand_trees));
  } else {
    std::printf("=> the species tree is uniquely determined by the loci.\n");
  }
  return 0;
}
