// stand_explorer: a small command-line front end, the shape of the tool the
// paper ships inside IQ-TREE 2.
//
// Usage:
//   stand_explorer --trees FILE [options]             (one Newick per line)
//   stand_explorer --species FILE --pam FILE [options]
// Options:
//   --threads N        parallel run with N worker threads (default: serial)
//   --max-trees N      stopping rule 1 (default 10^6)
//   --max-states N     stopping rule 2 (default 10^7)
//   --max-seconds S    stopping rule 3 (default 168h)
//   --print-stand      print every stand tree (Newick)
//   --no-heuristics    disable both Gentrius heuristics
//   --demo             write demo input files and exit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "pam/pam.hpp"
#include "parallel/pool.hpp"
#include "phylo/newick.hpp"

namespace {

using namespace gentrius;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw support::InvalidInput("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<phylo::Tree> read_trees(const std::string& path,
                                    phylo::TaxonSet& taxa) {
  std::vector<phylo::Tree> trees;
  std::istringstream in(slurp(path));
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    trees.push_back(phylo::parse_newick(line, taxa));
  }
  return trees;
}

int write_demo() {
  {
    std::ofstream out("demo_trees.nwk");
    out << "((A,B),(C,D),E);\n((A,B),(E,F));\n((C,D),(F,G));\n";
  }
  datagen::EmpiricalLikeParams p;
  p.n_taxa = 20;
  p.n_loci = 5;
  p.seed = 3;
  const auto ds = datagen::make_empirical_like(p);
  {
    std::ofstream out("demo_species.nwk");
    out << phylo::to_newick(ds.species_tree, ds.taxa) << "\n";
  }
  {
    std::ofstream out("demo.pam");
    out << ds.pam.to_text(ds.taxa);
  }
  std::printf("wrote demo_trees.nwk, demo_species.nwk, demo.pam\n"
              "try:  stand_explorer --trees demo_trees.nwk --print-stand\n"
              "      stand_explorer --species demo_species.nwk --pam demo.pam "
              "--threads 4\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: stand_explorer --trees FILE | --species FILE --pam "
               "FILE [--threads N] [--max-trees N] [--max-states N] "
               "[--max-seconds S] [--print-stand] [--no-heuristics] [--demo]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trees_path, species_path, pam_path;
  std::size_t threads = 1;
  bool print_stand = false;
  core::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trees") trees_path = next();
    else if (arg == "--species") species_path = next();
    else if (arg == "--pam") pam_path = next();
    else if (arg == "--threads") threads = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-trees")
      options.stop.max_stand_trees = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-states")
      options.stop.max_states = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-seconds")
      options.stop.max_seconds = std::strtod(next(), nullptr);
    else if (arg == "--print-stand") print_stand = true;
    else if (arg == "--no-heuristics") {
      options.select_initial_tree = false;
      options.dynamic_taxon_order = false;
    } else if (arg == "--demo") return write_demo();
    else return usage();
  }

  try {
    phylo::TaxonSet taxa;
    std::vector<phylo::Tree> constraints;
    if (!trees_path.empty()) {
      constraints = read_trees(trees_path, taxa);
    } else if (!species_path.empty() && !pam_path.empty()) {
      const pam::Pam pam = pam::Pam::parse(slurp(pam_path), taxa);
      const auto species = read_trees(species_path, taxa);
      if (species.size() != 1)
        throw support::InvalidInput("--species file must hold exactly one tree");
      constraints = pam::induced_subtrees(species[0], pam);
      std::printf("PAM: %zu taxa, %zu loci, %.1f%% missing; %zu induced "
                  "subtrees used as constraints\n",
                  pam.taxon_count(), pam.locus_count(),
                  100.0 * pam.missing_fraction(), constraints.size());
    } else {
      return usage();
    }

    options.collect_trees = print_stand;
    options.tree_names = &taxa;

    const auto problem = core::build_problem(constraints, options);
    const core::Result result =
        threads <= 1 ? core::run_serial(problem, options)
                     : parallel::run_parallel(problem, options, threads);

    std::printf("stand trees          : %llu\n",
                static_cast<unsigned long long>(result.stand_trees));
    std::printf("intermediate states  : %llu\n",
                static_cast<unsigned long long>(result.intermediate_states));
    std::printf("dead ends            : %llu\n",
                static_cast<unsigned long long>(result.dead_ends));
    std::printf("termination          : %s\n", core::to_string(result.reason));
    std::printf("wall time            : %.3fs (%zu thread%s)\n", result.seconds,
                threads, threads == 1 ? "" : "s");
    if (print_stand) {
      for (const auto& t : result.trees) std::printf("%s\n", t.c_str());
    }
    return 0;
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
