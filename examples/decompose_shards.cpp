// Example: independent-subproblem decomposition and sharded enumeration.
//
// Builds a multi-component instance (block-diagonal PAM: each locus samples
// taxa from exactly one block, so the induced constraints never interact
// across blocks), splits it into interaction-graph components, runs every
// shard plus the canonical residual shard through the engine, and checks
// the product law from DESIGN.md "Decomposition":
//
//   count(whole) = prod_i count(C_i) * M,   M = (2n-5)!! / prod_i (2n_i-5)!!
//
// where M — measured here by the residual shard itself — counts the ways to
// interleave one fixed tree per component into a tree on the whole taxon
// universe. The virtual-time sweep at the end compares the monolithic
// schedule against the sharded one (sequential and concurrent shard
// placement) at several worker counts, all deterministic simulated time.
#include <cstdio>
#include <cstdlib>

#include "benchutil/corpus.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/serial.hpp"
#include "vthread/virtual_pool.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;

  benchutil::MultiComponentParams params;
  params.n_components = 2;
  params.min_taxa_per_component = 5;
  params.max_taxa_per_component = 6;
  params.loci_per_component = 3;
  params.missing_fraction = 0.35;
  params.seed = 4;
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  const auto dataset = benchutil::make_multi_component(params);

  const auto split = decompose::analyze_components(dataset.constraints);
  std::printf("dataset %s: %zu taxa, %zu constraints, %zu components "
              "(%zu enumerable)\n",
              dataset.name.c_str(), dataset.taxon_count(),
              dataset.constraints.size(), split.components.size(),
              split.enumerable_count);
  for (std::size_t i = 0; i < split.components.size(); ++i) {
    const auto& c = split.components[i];
    std::printf("  component %zu: %zu taxa, %zu constraints%s\n", i,
                c.taxa.size(), c.constraint_indices.size(),
                c.enumerable ? "" : " (vacuous, passed through)");
  }

  core::Options options;
  options.stop.max_stand_trees = 2'000'000;
  options.stop.max_states = 30'000'000;

  const auto problem = core::build_problem(dataset.constraints, options);
  const auto mono = core::run_serial(problem, options);
  std::printf("\nmonolithic serial: %llu stand trees, %llu states (%s)\n",
              static_cast<unsigned long long>(mono.stand_trees),
              static_cast<unsigned long long>(mono.intermediate_states),
              core::to_string(mono.reason));

  const auto sharded = decompose::run_sharded(dataset.constraints, options);
  std::printf("sharded serial:    %llu stand trees, %llu states (%s)\n",
              static_cast<unsigned long long>(sharded.stand_trees),
              static_cast<unsigned long long>(sharded.intermediate_states),
              core::to_string(sharded.reason));
  unsigned long long product = 1;
  for (const auto& s : sharded.shards) {
    std::printf("  %s\n", decompose::shard_trace_line(s).c_str());
    product *= static_cast<unsigned long long>(s.stand_trees);
  }
  std::printf("product law: prod(shard counts) = %llu, monolithic = %llu — "
              "%s\n", product,
              static_cast<unsigned long long>(mono.stand_trees),
              (product == mono.stand_trees &&
               sharded.stand_trees == mono.stand_trees)
                  ? "agree"
                  : "DISAGREE");

  std::printf("\n%8s | %14s | %14s %8s | %14s %8s\n", "threads", "monolithic",
              "shard seq", "speedup", "shard conc", "speedup");
  core::Options vopts = options;
  vopts.decompose = core::Decompose::kComponents;
  for (const std::size_t t : {1u, 2u, 4u, 8u}) {
    const auto m = vthread::run_virtual(problem, options, t);
    const auto seq = decompose::run_virtual(dataset.constraints, vopts, t, {},
                                            decompose::ShardSchedule::kSequential);
    const auto conc = decompose::run_virtual(dataset.constraints, vopts, t, {},
                                             decompose::ShardSchedule::kConcurrent);
    std::printf("%8zu | %14.1f | %14.1f %8.2f | %14.1f %8.2f\n", t,
                m.virtual_makespan, seq.virtual_makespan,
                m.virtual_makespan / seq.virtual_makespan,
                conc.virtual_makespan,
                m.virtual_makespan / conc.virtual_makespan);
  }
  return sharded.stand_trees == mono.stand_trees ? 0 : 1;
}
