// Example: adaptive task granularity from the online Galton–Watson model.
//
// Runs a skewed "hand-off flood" instance (datagen::make_flood_instance:
// every state carries an offer-eligible frame, so the paper's fixed
// splitting rule floods the bounded central queue with tiny tasks) under
// both offer policies in deterministic virtual time, and prints what the
// controller saw: offers evaluated vs suppressed, full-queue rejections,
// the GW model's subtree-size prediction error, and the resulting
// makespans. Expected shape: identical enumeration counts everywhere,
// near-parity at N_t <= 2, and a growing adaptive advantage as the worker
// count (and with it the cost of every serialized hand-off) rises.
#include <cstdio>
#include <cstdlib>

#include "datagen/dataset.hpp"
#include "gentrius/problem.hpp"
#include "vthread/virtual_pool.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;

  std::size_t depth = 10;
  if (argc > 1) depth = std::strtoul(argv[1], nullptr, 10);
  const auto ds = datagen::make_flood_instance(depth, /*seed=*/1);

  core::Options options;
  options.select_initial_tree = false;
  options.dynamic_taxon_order = false;
  options.initial_constraint = *ds.forced_initial_constraint;
  options.insertion_order = ds.forced_insertion_order;
  const auto problem = core::build_problem(ds.constraints, options);

  // Charge rejected pushes like the real TaskQueue does (the contended
  // mutex is acquired even when the ring is full); see bench_offer_policy.
  vthread::CostModel costs;
  costs.queue_reject_cost = costs.queue_cost;

  const auto serial = vthread::run_virtual(problem, options, 1, costs);
  std::printf("%s: %llu stand trees, %llu states, serial makespan %.0f\n\n",
              ds.name.c_str(),
              static_cast<unsigned long long>(serial.stand_trees),
              static_cast<unsigned long long>(serial.intermediate_states),
              serial.virtual_makespan);

  std::printf("%4s | %10s %10s %7s | %9s %9s %9s %8s\n", "nt", "fixed",
              "adaptive", "ratio", "evaluated", "suppressed", "rejected",
              "pred err");
  for (const std::size_t nt : {2UL, 4UL, 8UL, 16UL, 32UL, 48UL}) {
    core::Options fixed = options, adaptive = options;
    fixed.offer_policy = core::OfferPolicy::kPaperFixed;
    adaptive.offer_policy = core::OfferPolicy::kAdaptiveGW;
    const auto rf = vthread::run_virtual(problem, fixed, nt, costs);
    const auto ra = vthread::run_virtual(problem, adaptive, nt, costs);
    if (ra.stand_trees != rf.stand_trees ||
        ra.stand_trees != serial.stand_trees) {
      std::printf("count mismatch at nt=%zu!\n", nt);
      return 1;
    }
    std::printf("%4zu | %10.0f %10.0f %6.2fx | %9llu %9llu %9llu %7.2fx\n",
                nt, rf.virtual_makespan, ra.virtual_makespan,
                rf.virtual_makespan / ra.virtual_makespan,
                static_cast<unsigned long long>(ra.sched.offers_evaluated),
                static_cast<unsigned long long>(ra.sched.offers_suppressed),
                static_cast<unsigned long long>(
                    rf.sched.queue_full_rejections),
                ra.sched.offer_prediction_error());
  }
  std::printf(
      "\nratio > 1: the adaptive policy finished sooner. 'rejected' counts\n"
      "the fixed rule's futile full-queue pushes — serialized traffic the\n"
      "adaptive controller's cutoff avoids. 'pred err' is the GW model's\n"
      "adopted-task size error (actual/predicted states, 1.0 = exact).\n");
  return 0;
}
