// Quickstart: enumerate the stand of a small set of incomplete unrooted
// gene trees, exactly the first input mode of Gentrius (paper §II-A).
//
// Three loci sampled different taxon subsets of {A..G}; the stand is every
// species tree on all seven taxa compatible with all three gene trees.
#include <cstdio>

#include "gentrius/serial.hpp"
#include "phylo/newick.hpp"

int main() {
  using namespace gentrius;

  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> gene_trees;
  gene_trees.push_back(phylo::parse_newick("((A,B),(C,D),E);", taxa));
  gene_trees.push_back(phylo::parse_newick("((A,B),(E,F));", taxa));
  gene_trees.push_back(phylo::parse_newick("((C,D),(F,G));", taxa));

  core::Options options;
  options.collect_trees = true;
  options.tree_names = &taxa;  // emit Newick with the original labels

  const core::Result result = core::run_serial(gene_trees, options);

  std::printf("stand size            : %llu\n",
              static_cast<unsigned long long>(result.stand_trees));
  std::printf("intermediate states   : %llu\n",
              static_cast<unsigned long long>(result.intermediate_states));
  std::printf("dead ends             : %llu\n",
              static_cast<unsigned long long>(result.dead_ends));
  std::printf("termination           : %s\n\n", core::to_string(result.reason));

  std::printf("stand trees:\n");
  for (const auto& newick : result.trees) std::printf("  %s\n", newick.c_str());

  // Every tree in the stand scores identically under common criteria when
  // the loci are partitioned this way — that is what makes detecting stands
  // essential for interpreting a "best" tree.
  return 0;
}
