// Closed-form residual differential: run_sharded with
// ShardRunOptions::residual_closed_form must reproduce the enumerated
// driver byte for byte — same count, same sorted stand set, same residual
// shard count — across the random multi-component sweep, and the formula
// must stay exact (128-bit intermediates) right up to the uint64 boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "benchutil/corpus.hpp"
#include "decompose/components.hpp"
#include "decompose/shard_exec.hpp"
#include "decompose/sharded.hpp"
#include "support/rng.hpp"
#include "testutil.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::ShardStats;
using core::StopReason;
using decompose_test::kProductLawSeeds;
using decompose_test::sorted_trees;

benchutil::MultiComponentParams params_for_seed(std::uint64_t seed) {
  support::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  benchutil::MultiComponentParams p;
  p.n_components = 2;
  p.min_taxa_per_component = 4;
  p.max_taxa_per_component = 4 + rng.below(2);
  p.loci_per_component = 1 + rng.below(3);
  p.missing_fraction = 0.2 + 0.3 * rng.uniform();
  p.seed = seed;
  return p;
}

/// A synthetic split with the given enumerable component sizes.
decompose::ComponentSplit split_of(const std::vector<std::size_t>& sizes) {
  decompose::ComponentSplit split;
  phylo::TaxonId next = 0;
  for (const std::size_t s : sizes) {
    decompose::Component comp;
    comp.enumerable = true;
    for (std::size_t i = 0; i < s; ++i) comp.taxa.push_back(next++);
    split.components.push_back(comp);
    split.enumerable_count += 1;
  }
  return split;
}

TEST(ClosedFormResidual, MatchesEnumeratedDriverOverRandomSeeds) {
  for (std::uint64_t seed = 1; seed <= kProductLawSeeds; ++seed) {
    const auto ds = benchutil::make_multi_component(params_for_seed(seed));
    SCOPED_TRACE(ds.name);
    Options opts;
    opts.collect_trees = true;

    Result enumerated = decompose::run_sharded(ds.constraints, opts, {});
    decompose::ShardRunOptions closed_run;
    closed_run.residual_closed_form = true;
    Result closed = decompose::run_sharded(ds.constraints, opts, closed_run);

    ASSERT_EQ(enumerated.reason, StopReason::kCompleted);
    ASSERT_EQ(closed.reason, StopReason::kCompleted);
    EXPECT_EQ(closed.stand_trees, enumerated.stand_trees);
    EXPECT_EQ(closed.count_saturated, enumerated.count_saturated);
    EXPECT_EQ(sorted_trees(closed), sorted_trees(enumerated));

    // The residual rollup carries the same count with zero expansion cost.
    ASSERT_FALSE(closed.shards.empty());
    const ShardStats& res_closed = closed.shards.back();
    const ShardStats& res_enum = enumerated.shards.back();
    ASSERT_EQ(res_closed.kind, ShardStats::Kind::kResidual);
    EXPECT_EQ(res_closed.stand_trees, res_enum.stand_trees);
    EXPECT_EQ(res_closed.intermediate_states, 0u);
    EXPECT_LT(closed.intermediate_states, enumerated.intermediate_states);
  }
}

TEST(ClosedFormResidual, FormulaMatchesTestutilOnSyntheticSplits) {
  const std::vector<std::vector<std::size_t>> cases = {
      {4}, {4, 4}, {4, 5}, {5, 6}, {3, 3, 3}, {4, 4, 4}, {4, 4, 4, 4}};
  for (const auto& sizes : cases) {
    const auto split = split_of(sizes);
    const auto cf = decompose::detail::closed_form_residual(split);
    ASSERT_TRUE(cf.applicable);
    EXPECT_FALSE(cf.saturated);
    EXPECT_EQ(cf.count, decompose_test::closed_form_interleavings(split));
  }
}

TEST(ClosedFormResidual, ExactPastThe64BitNumeratorBoundary) {
  // Universe 20 (five 4-taxon components): the numerator 35!! overflows
  // uint64 but M = 35!!/3^5 does not — the 128-bit path must stay exact.
  const auto cf =
      decompose::detail::closed_form_residual(split_of({4, 4, 4, 4, 4}));
  ASSERT_TRUE(cf.applicable);
  EXPECT_FALSE(cf.saturated);
  // 35!! = 221643095476699771875 = 2^64 * 12.01...; /243 exactly:
  EXPECT_EQ(cf.count, 912111504019340625ULL);
}

TEST(ClosedFormResidual, SaturatesInsteadOfOverflowing) {
  const auto big =
      decompose::detail::closed_form_residual(split_of({4, 4, 4, 4, 4, 4}));
  ASSERT_TRUE(big.applicable);
  EXPECT_TRUE(big.saturated);
  EXPECT_EQ(big.count, std::numeric_limits<std::uint64_t>::max());

  // Universe past the 128-bit numerator range saturates too.
  std::vector<std::size_t> huge(10, 4);
  const auto wide = decompose::detail::closed_form_residual(split_of(huge));
  ASSERT_TRUE(wide.applicable);
  EXPECT_TRUE(wide.saturated);
}

TEST(ClosedFormResidual, NotApplicableWithPassthroughComponents) {
  auto split = split_of({4, 4});
  decompose::Component pair;
  pair.enumerable = false;
  pair.taxa = {8, 9};
  split.components.push_back(pair);
  EXPECT_FALSE(decompose::detail::closed_form_residual(split).applicable);
}

}  // namespace
}  // namespace gentrius
