// Backend-agreement tests for the sharded driver: the real thread pool and
// the virtual-time simulator must reproduce the serial sharded results
// exactly (counts, stand sets, per-shard rollups). Labeled "parallel" so
// the TSan preset exercises the pool-backed sharding path.
#include <gtest/gtest.h>

#include <cstdint>

#include "benchutil/corpus.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/problem.hpp"
#include "gentrius/serial.hpp"
#include "support/error.hpp"
#include "testutil.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::StopReason;
using decompose_test::sorted_trees;

#if defined(GENTRIUS_SANITIZED_BUILD)
constexpr std::uint64_t kBackendSeeds = 3;
#else
constexpr std::uint64_t kBackendSeeds = 8;
#endif

benchutil::MultiComponentParams small_instance(std::uint64_t seed) {
  benchutil::MultiComponentParams p;
  p.n_components = 2;
  p.min_taxa_per_component = 4;
  p.max_taxa_per_component = 5;
  p.loci_per_component = 2;
  p.seed = seed * 101 + 13;
  return p;
}

Options sharded_collecting() {
  Options o;
  o.collect_trees = true;
  o.decompose = core::Decompose::kComponents;
  return o;
}

TEST(ShardedBackends, PoolMatchesSerial) {
  for (std::uint64_t seed = 1; seed <= kBackendSeeds; ++seed) {
    const auto ds = benchutil::make_multi_component(small_instance(seed));
    SCOPED_TRACE(ds.name);
    Result serial =
        decompose::run_serial(ds.constraints, sharded_collecting());
    Result pooled =
        decompose::run_parallel(ds.constraints, sharded_collecting(), 2);
    ASSERT_EQ(pooled.reason, StopReason::kCompleted);
    EXPECT_EQ(pooled.stand_trees, serial.stand_trees);
    EXPECT_EQ(sorted_trees(pooled), sorted_trees(serial));
    ASSERT_EQ(pooled.shards.size(), serial.shards.size());
    for (std::size_t i = 0; i < serial.shards.size(); ++i)
      EXPECT_EQ(decompose::shard_trace_line(pooled.shards[i]),
                decompose::shard_trace_line(serial.shards[i]));
  }
}

TEST(ShardedBackends, VirtualMatchesSerialAndAccountsTime) {
  for (std::uint64_t seed = 1; seed <= kBackendSeeds; ++seed) {
    const auto ds = benchutil::make_multi_component(small_instance(seed));
    SCOPED_TRACE(ds.name);
    Result serial =
        decompose::run_serial(ds.constraints, sharded_collecting());
    Result virt =
        decompose::run_virtual(ds.constraints, sharded_collecting(), 4);
    EXPECT_EQ(virt.stand_trees, serial.stand_trees);
    EXPECT_EQ(sorted_trees(virt), sorted_trees(serial));
    EXPECT_GT(virt.virtual_makespan, 0.0);
    for (const auto& s : virt.shards) EXPECT_GT(s.virtual_makespan, 0.0);
  }
}

TEST(ShardedBackends, ConcurrentScheduleOverlapsShards) {
  const auto ds = benchutil::make_multi_component(small_instance(2));
  Options opts = sharded_collecting();
  const Result seq = decompose::run_virtual(
      ds.constraints, opts, 2, {}, decompose::ShardSchedule::kSequential);
  const Result conc = decompose::run_virtual(
      ds.constraints, opts, 2, {}, decompose::ShardSchedule::kConcurrent);
  EXPECT_EQ(seq.stand_trees, conc.stand_trees);
  // One machine per shard can only be faster than running them back to
  // back; with >= 2 shards of real work it is strictly faster.
  EXPECT_LT(conc.virtual_makespan, seq.virtual_makespan);
}

TEST(ShardedBackends, DecomposeRejectedByMonolithicDrivers) {
  const auto ds = benchutil::make_multi_component(small_instance(1));
  Options opts;
  opts.decompose = core::Decompose::kComponents;
  EXPECT_THROW(core::run_serial(ds.constraints, opts), support::InvalidInput);
  const auto problem = core::build_problem(ds.constraints, opts);
  EXPECT_THROW(parallel::run_parallel(problem, opts, 2),
               support::InvalidInput);
  EXPECT_THROW(vthread::run_virtual(problem, opts, 2),
               support::InvalidInput);
}

}  // namespace
}  // namespace gentrius
