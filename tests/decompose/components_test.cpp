// Unit tests for the constraint interaction-graph analyzer and shard plan.
#include <gtest/gtest.h>

#include "benchutil/corpus.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "support/error.hpp"

namespace gentrius {
namespace {

using decompose::analyze_components;
using decompose::analyze_pam;
using decompose::ComponentSplit;

std::vector<phylo::Tree> parse_all(const std::vector<std::string>& newicks,
                                   phylo::TaxonSet& taxa) {
  std::vector<phylo::Tree> out;
  for (const auto& n : newicks) out.push_back(phylo::parse_newick(n, taxa));
  return out;
}

TEST(Components, DisjointConstraintsSplit) {
  phylo::TaxonSet taxa;
  const auto constraints = parse_all(
      {"((a0,a1),(a2,a3));", "((b0,b1),(b2,b3));", "((a0,a2),(a1,a3));"},
      taxa);
  const ComponentSplit split = analyze_components(constraints);
  ASSERT_EQ(split.components.size(), 2u);
  EXPECT_EQ(split.enumerable_count, 2u);
  // Canonical order: ascending smallest taxon id — the a-component (taxa
  // 0..3) precedes the b-component even though constraint 1 interleaves.
  EXPECT_EQ(split.components[0].constraint_indices,
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(split.components[1].constraint_indices,
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(split.components[0].taxa.size(), 4u);
  EXPECT_EQ(split.components[1].taxa.size(), 4u);
  EXPECT_TRUE(split.components[0].enumerable);
  EXPECT_TRUE(split.components[1].enumerable);
}

TEST(Components, SharedTaxonMergesTransitively) {
  phylo::TaxonSet taxa;
  // c0-c1 share "b", c1-c2 share "e": one component despite c0 and c2 being
  // disjoint themselves.
  const auto constraints = parse_all(
      {"((a,b),(c,d));", "((b,e),(f,g));", "((e,h),(i,j));"}, taxa);
  const ComponentSplit split = analyze_components(constraints);
  ASSERT_EQ(split.components.size(), 1u);
  EXPECT_EQ(split.components[0].constraint_indices,
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(split.components[0].taxa.size(), 10u);
}

TEST(Components, AnalyzePamFindsAtLeastTheBlocks) {
  benchutil::MultiComponentParams params;
  params.n_components = 3;
  params.loci_per_component = 2;
  params.seed = 7;
  const auto ds = benchutil::make_multi_component(params);
  const auto pd = analyze_pam(ds.species_tree, ds.pam);
  EXPECT_EQ(pd.constraints.size(), ds.constraints.size());
  EXPECT_GE(pd.split.components.size(), params.n_components);
  // Components partition the constraint set and carry disjoint taxa.
  std::size_t covered = 0;
  std::vector<bool> seen_taxon(ds.taxa.size(), false);
  for (const auto& comp : pd.split.components) {
    covered += comp.constraint_indices.size();
    for (const auto t : comp.taxa) {
      EXPECT_FALSE(seen_taxon[t]) << "taxon " << t << " in two components";
      seen_taxon[t] = true;
    }
  }
  EXPECT_EQ(covered, pd.constraints.size());
}

TEST(Components, PlanShardsIsDeterministic) {
  benchutil::MultiComponentParams params;
  params.n_components = 2;
  params.seed = 11;
  const auto ds = benchutil::make_multi_component(params);
  const auto plan1 = decompose::plan_shards(ds.constraints);
  const auto plan2 = decompose::plan_shards(ds.constraints);
  ASSERT_EQ(plan1.representatives.size(), plan2.representatives.size());
  EXPECT_EQ(plan1.representatives.size(), plan1.split.enumerable_count);
  EXPECT_FALSE(plan1.empty_component);
  for (std::size_t i = 0; i < plan1.representatives.size(); ++i)
    EXPECT_EQ(phylo::to_newick(plan1.representatives[i], plan1.labels),
              phylo::to_newick(plan2.representatives[i], plan2.labels));
  EXPECT_EQ(plan1.residual_constraints.size(),
            plan1.representatives.size() + plan1.passthrough.size());
}

TEST(Components, NoEnumerableComponentThrows) {
  // Constraint lists the engine itself rejects: plan_shards must refuse
  // rather than fabricate an empty product.
  const std::vector<phylo::Tree> none;
  EXPECT_THROW(decompose::plan_shards(none), support::InvalidInput);
}

}  // namespace
}  // namespace gentrius
