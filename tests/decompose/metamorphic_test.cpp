// Metamorphic tests for the sharded driver.
//
// Relation under test: appending an *independent* component (taxon-disjoint
// from everything present) multiplies the component-count product by the new
// component's solo count, and leaves the shared components' shard rollups
// byte-identical (shard_trace_line). An engine-only corollary that needs no
// closed form: with M measured as the residual shard's own count,
//   count(extended) * M(base) == count(base) * solo * M(extended).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/serial.hpp"
#include "testutil.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::ShardStats;
using core::StopReason;

struct SplitInstance {
  std::vector<phylo::Tree> base;      // constraints of all but the last block
  std::vector<phylo::Tree> extra;     // constraints of the last block
  std::vector<phylo::Tree> extended;  // everything
};

// One generator call with k+1 blocks, then split off the block holding the
// highest taxon ids. Using a single dataset keeps the shared constraints
// bit-identical between the base and extended runs.
SplitInstance make_split_instance(std::uint64_t seed, std::size_t base_comps) {
  benchutil::MultiComponentParams p;
  p.n_components = base_comps + 1;
  p.min_taxa_per_component = 4;
  p.max_taxa_per_component = 5;
  p.loci_per_component = 2;
  p.seed = seed;
  const auto ds = benchutil::make_multi_component(p);
  const auto split = decompose::analyze_components(ds.constraints);

  SplitInstance out;
  out.extended = ds.constraints;
  // Components are in canonical (ascending first-taxon) order and the
  // generator assigns the last block the highest ids, so the last component
  // is the appended one; everything before it is the base.
  const auto& last = split.components.back();
  std::vector<bool> is_extra(ds.constraints.size(), false);
  for (const std::size_t c : last.constraint_indices) is_extra[c] = true;
  for (std::size_t c = 0; c < ds.constraints.size(); ++c)
    (is_extra[c] ? out.extra : out.base).push_back(ds.constraints[c]);
  return out;
}

Result run_sharded_collecting(const std::vector<phylo::Tree>& constraints) {
  Options opts;
  opts.collect_trees = true;
  opts.decompose = core::Decompose::kComponents;
  return decompose::run_serial(constraints, opts);
}

std::uint64_t component_product(const Result& r) {
  std::uint64_t product = 1;
  for (const ShardStats& s : r.shards)
    if (s.kind == ShardStats::Kind::kComponent) product *= s.stand_trees;
  return product;
}

TEST(Metamorphic, AppendingIndependentComponentMultipliesCount) {
  // Extending past two blocks is off the table for a unit test: the
  // interleaving factor M of a third 4-5-taxon block alone is in the tens
  // of millions, so the extended instance could no longer be enumerated to
  // completion. One block -> two blocks exercises the full relation.
  for (std::uint64_t seed : {2u, 13u, 29u, 47u, 61u, 83u}) {
    for (std::size_t base_comps : {1u}) {
      const auto inst = make_split_instance(seed, base_comps);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " base_comps=" + std::to_string(base_comps));
      ASSERT_FALSE(inst.extra.empty());

      const Result base = run_sharded_collecting(inst.base);
      const Result ext = run_sharded_collecting(inst.extended);
      const Result solo = core::run_serial(inst.extra, Options{});
      ASSERT_EQ(base.reason, StopReason::kCompleted);
      ASSERT_EQ(ext.reason, StopReason::kCompleted);

      // Component-product relation.
      EXPECT_EQ(component_product(ext),
                component_product(base) * solo.stand_trees);

      // Engine-only full-count relation (M measured, not closed-form).
      const std::uint64_t m_base = base.shards.back().stand_trees;
      const std::uint64_t m_ext = ext.shards.back().stand_trees;
      EXPECT_EQ(ext.stand_trees * m_base,
                base.stand_trees * solo.stand_trees * m_ext);

      // Shared shards: the base run's component rollups reappear verbatim
      // at the front of the extended run — byte-identical trace lines.
      ASSERT_EQ(ext.shards.size(), base.shards.size() + 1);
      for (std::size_t i = 0; i + 1 < base.shards.size(); ++i)
        EXPECT_EQ(decompose::shard_trace_line(ext.shards[i]),
                  decompose::shard_trace_line(base.shards[i]));
    }
  }
}

TEST(Metamorphic, ShardTraceLinesStableAcrossBackends) {
  // The integer rollup of a shard is a function of the instance, not of the
  // backend that enumerated it: serial and virtual sharded runs must emit
  // identical trace lines for every shard.
  benchutil::MultiComponentParams p;
  p.n_components = 2;
  p.seed = 17;
  const auto ds = benchutil::make_multi_component(p);

  Options opts;
  opts.decompose = core::Decompose::kComponents;
  const Result serial = decompose::run_serial(ds.constraints, opts);
  const Result virt = decompose::run_virtual(ds.constraints, opts, 4);
  ASSERT_EQ(serial.shards.size(), virt.shards.size());
  for (std::size_t i = 0; i < serial.shards.size(); ++i)
    EXPECT_EQ(decompose::shard_trace_line(serial.shards[i]),
              decompose::shard_trace_line(virt.shards[i]));
}

}  // namespace
}  // namespace gentrius
