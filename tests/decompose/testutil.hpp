// Shared helpers for the decomposition test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "decompose/components.hpp"
#include "gentrius/options.hpp"
#include "oracle/brute_force.hpp"

namespace gentrius::decompose_test {

// The differential harness sweeps hundreds of random instances; sanitizer
// builds (ASan/TSan presets define GENTRIUS_SANITIZED_BUILD) run a reduced
// seed set to keep the suite fast under instrumentation.
#if defined(GENTRIUS_SANITIZED_BUILD)
inline constexpr std::uint64_t kProductLawSeeds = 40;
#else
inline constexpr std::uint64_t kProductLawSeeds = 200;
#endif

inline std::vector<std::string> sorted_trees(core::Result& r) {
  std::sort(r.trees.begin(), r.trees.end());
  return std::move(r.trees);
}

/// Closed-form interleaving count: the number of unrooted binary trees on
/// the whole universe displaying one fixed tree per component,
///   M = (2n-5)!! / prod_i (2n_i-5)!!
/// (shape-independent; DESIGN.md "Decomposition"). Stepwise division is
/// exact: after dividing by any subset of the denominators the remainder of
/// the product is still an integer multiple.
inline std::uint64_t closed_form_interleavings(
    const decompose::ComponentSplit& split) {
  std::size_t total = 0;
  for (const auto& comp : split.components) total += comp.taxa.size();
  std::uint64_t m = oracle::tree_space_size(total);
  for (const auto& comp : split.components)
    m /= oracle::tree_space_size(comp.taxa.size());
  return m;
}

}  // namespace gentrius::decompose_test
