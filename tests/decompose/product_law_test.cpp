// Differential product-law harness.
//
// Sweeps hundreds of random block-structured multi-component instances and
// checks, per seed, that the sharded driver agrees with
//   (a) the monolithic engine: identical stand count AND identical stand
//       tree set (sorted canonical Newick),
//   (b) the closed form: count == prod_i count(C_i) * M with the residual
//       shard's count equal to M = (2n-5)!! / prod_i (2n_i-5)!!,
//   (c) on small universes, the brute-force oracle (the definition).
// Sanitizer builds run a reduced seed set (testutil.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "benchutil/corpus.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/serial.hpp"
#include "oracle/brute_force.hpp"
#include "phylo/newick.hpp"
#include "support/rng.hpp"
#include "testutil.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::ShardStats;
using core::StopReason;
using decompose_test::closed_form_interleavings;
using decompose_test::kProductLawSeeds;
using decompose_test::sorted_trees;

benchutil::MultiComponentParams params_for_seed(std::uint64_t seed) {
  support::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  benchutil::MultiComponentParams p;
  p.n_components = 2;
  p.min_taxa_per_component = 4;
  // Capped at 5 taxa per block so the monolithic reference enumeration
  // (count = prod c_i * M, M up to 9009 at 5+5) stays cheap per seed.
  p.max_taxa_per_component = 4 + rng.below(2);
  p.loci_per_component = 1 + rng.below(3);
  p.missing_fraction = 0.2 + 0.3 * rng.uniform();
  p.seed = seed;
  return p;
}

Options collecting() {
  Options o;
  o.collect_trees = true;
  return o;
}

TEST(ProductLaw, DifferentialOverRandomSeeds) {
  std::uint64_t multi_component_seeds = 0;
  for (std::uint64_t seed = 1; seed <= kProductLawSeeds; ++seed) {
    const auto ds = benchutil::make_multi_component(params_for_seed(seed));
    SCOPED_TRACE(ds.name);

    Options mono = collecting();
    Result reference = core::run_serial(ds.constraints, mono);
    ASSERT_EQ(reference.reason, StopReason::kCompleted);

    Options opts = collecting();
    opts.decompose = core::Decompose::kComponents;
    Result sharded = decompose::run_serial(ds.constraints, opts);
    ASSERT_EQ(sharded.reason, StopReason::kCompleted);

    // (a) differential against the monolithic engine.
    EXPECT_EQ(sharded.stand_trees, reference.stand_trees);
    EXPECT_EQ(sorted_trees(sharded), sorted_trees(reference));
    EXPECT_FALSE(sharded.count_saturated);

    // (b) closed form: residual == M, total == product of components * M.
    const auto split = decompose::analyze_components(ds.constraints);
    if (split.components.size() > 1) ++multi_component_seeds;
    ASSERT_EQ(sharded.shards.size(), split.enumerable_count + 1);
    const ShardStats& residual = sharded.shards.back();
    ASSERT_EQ(residual.kind, ShardStats::Kind::kResidual);
    EXPECT_EQ(residual.stand_trees, closed_form_interleavings(split));
    std::uint64_t product = 1;
    for (const ShardStats& s : sharded.shards) {
      if (s.kind == ShardStats::Kind::kComponent) {
        ASSERT_NE(&s, &sharded.shards.back());  // canonical order
      }
      product *= s.stand_trees;
    }
    EXPECT_EQ(product, sharded.stand_trees);
  }
  // The generator must actually exercise decomposition, not degenerate to
  // single-component instances.
  EXPECT_EQ(multi_component_seeds, kProductLawSeeds);
}

TEST(ProductLaw, OracleOnSmallUniverses) {
  // 4+4-taxon instances: the whole universe (8 taxa, 10395 trees) is small
  // enough for the brute-force definition of a stand.
  const std::uint64_t seeds = kProductLawSeeds / 5;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    benchutil::MultiComponentParams p;
    p.n_components = 2;
    p.min_taxa_per_component = 4;
    p.max_taxa_per_component = 4;
    p.loci_per_component = 1 + seed % 2;
    p.missing_fraction = 0.25;
    p.seed = seed * 31 + 5;
    const auto ds = benchutil::make_multi_component(p);
    SCOPED_TRACE(ds.name);

    Options opts = collecting();
    opts.decompose = core::Decompose::kComponents;
    opts.tree_names = nullptr;  // canonical encodings, like the oracle
    Result sharded = decompose::run_serial(ds.constraints, opts);
    const auto oracle = oracle::brute_force_stand(ds.constraints);
    EXPECT_EQ(sharded.stand_trees, oracle.size());
    EXPECT_EQ(sorted_trees(sharded), oracle);
  }
}

TEST(ProductLaw, OffMatchesMonolithicExactly) {
  const auto ds = benchutil::make_multi_component(params_for_seed(3));
  Options opts = collecting();
  opts.decompose = core::Decompose::kOff;
  Result via_decompose = decompose::run_serial(ds.constraints, opts);
  Result direct = core::run_serial(ds.constraints, collecting());
  EXPECT_EQ(via_decompose.stand_trees, direct.stand_trees);
  EXPECT_EQ(via_decompose.intermediate_states, direct.intermediate_states);
  EXPECT_EQ(via_decompose.dead_ends, direct.dead_ends);
  EXPECT_EQ(via_decompose.trees, direct.trees);
  EXPECT_TRUE(via_decompose.shards.empty());
}

TEST(ProductLaw, CraftedCaterpillarCounts) {
  // Hand-checkable closed forms: one fully-resolved constraint per block
  // pins each component count to 1, so the whole count is exactly M.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  constraints.push_back(
      phylo::parse_newick("((a0,a1),(a2,a3));", taxa));  // 4 taxa
  constraints.push_back(
      phylo::parse_newick("((b0,b1),b2,(b3,(b4,b5)));", taxa));  // 6 taxa
  Options opts;
  opts.decompose = core::Decompose::kComponents;
  const Result r = decompose::run_serial(constraints, opts);
  // M = 15!! / (3!! * 7!!) = 2027025 / (3 * 105) = 6435.
  EXPECT_EQ(r.stand_trees, 6435u);
  EXPECT_EQ(r.reason, StopReason::kCompleted);
}

TEST(ProductLaw, EmptyComponentYieldsEmptyStand) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  // Contradictory quartets on the a-block: its component stand is empty.
  constraints.push_back(phylo::parse_newick("((a0,a1),(a2,a3));", taxa));
  constraints.push_back(phylo::parse_newick("((a0,a2),(a1,a3));", taxa));
  constraints.push_back(phylo::parse_newick("((b0,b1),(b2,b3));", taxa));
  Options opts = collecting();
  opts.decompose = core::Decompose::kComponents;
  const Result sharded = decompose::run_serial(constraints, opts);
  EXPECT_EQ(sharded.stand_trees, 0u);
  EXPECT_TRUE(sharded.trees.empty());
  const Result mono = core::run_serial(constraints, collecting());
  EXPECT_EQ(mono.stand_trees, 0u);
}

TEST(ProductLaw, ShardStoppingRulePropagates) {
  const auto ds = benchutil::make_multi_component(params_for_seed(9));
  Options opts;
  opts.decompose = core::Decompose::kComponents;
  opts.stop.max_stand_trees = 1;  // fires inside the residual shard
  const Result r = decompose::run_serial(ds.constraints, opts);
  EXPECT_NE(r.reason, StopReason::kCompleted);
}

TEST(ProductLaw, CollectLimitTruncatesStream) {
  const auto ds = benchutil::make_multi_component(params_for_seed(4));
  Options opts = collecting();
  opts.decompose = core::Decompose::kComponents;
  opts.collect_limit = 7;
  Result sharded = decompose::run_serial(ds.constraints, opts);
  ASSERT_GT(sharded.stand_trees, 7u);  // count is exact regardless
  EXPECT_EQ(sharded.trees.size(), 7u);
  // The truncated prefix is a subset of the true stand.
  Result reference = core::run_serial(ds.constraints, collecting());
  const auto full = sorted_trees(reference);
  for (const auto& t : sharded.trees)
    EXPECT_TRUE(std::binary_search(full.begin(), full.end(), t));
}

}  // namespace
}  // namespace gentrius
