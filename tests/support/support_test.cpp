#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/bitset.hpp"
#include "support/key_map.hpp"
#include "support/rng.hpp"

namespace gentrius::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.range(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    lo |= (x == -3);
    hi |= (x == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Bitset, SetTestResetCount) {
  Bitset b(130);
  EXPECT_TRUE(b.empty());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(63));
  b.reset(64);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.first(), 0u);
}

TEST(Bitset, IntersectionAndSubtract) {
  Bitset a(100), b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.set(i);
  for (std::size_t i = 0; i < 100; i += 3) b.set(i);
  EXPECT_EQ(a.intersection_count(b), 17u);  // multiples of 6 in [0,100)
  EXPECT_EQ(a.first_common(b), 0u);
  Bitset c = a;
  c.subtract(b);
  EXPECT_EQ(c.count(), a.count() - 17u);
  c &= b;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.first_common(b), 100u);
}

TEST(Bitset, ForEachAscending) {
  Bitset b(200);
  const std::vector<std::uint32_t> expected{3, 77, 128, 199};
  for (const auto i : expected) b.set(i);
  EXPECT_EQ(b.to_indices(), expected);
}

TEST(KeyMap, InsertGetClear) {
  KeyMap m(4);
  m[10] = 3;
  ++m[10];
  m[99999] = 7;
  EXPECT_EQ(m.get(10), 4u);
  EXPECT_EQ(m.get(99999), 7u);
  EXPECT_EQ(m.get(5, 42), 42u);
  EXPECT_EQ(m.size(), 2u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(10));
  EXPECT_EQ(m.get(10), 0u);
}

TEST(KeyMap, GrowsBeyondInitialCapacity) {
  KeyMap m(2);
  for (std::uint64_t k = 1; k <= 1000; ++k) m[k * 0x9e3779b9ULL] = static_cast<std::uint32_t>(k);
  for (std::uint64_t k = 1; k <= 1000; ++k)
    EXPECT_EQ(m.get(k * 0x9e3779b9ULL), k);
}

TEST(KeyMap, EpochClearSurvivesManyCycles) {
  KeyMap m(8);
  for (int cycle = 0; cycle < 10000; ++cycle) {
    m.clear();
    m[static_cast<std::uint64_t>(cycle)] = 1;
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.contains(static_cast<std::uint64_t>(cycle)));
    EXPECT_FALSE(m.contains(static_cast<std::uint64_t>(cycle) + 1'000'000));
  }
}

}  // namespace
}  // namespace gentrius::support
