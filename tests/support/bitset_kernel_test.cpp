// Differential tests for the fused Bitset kernels (restrict_and_count,
// subtract_and_test, relation_to, for_each_and, for_each_diff).
//
// Each fused kernel replaces a multi-pass composition of the primitive
// operations it was derived from; here every kernel is pinned against that
// scalar composition on randomized inputs. Universe sizes deliberately
// straddle the word boundaries (0, 1, 63, 64, 65, 127, 128, 1000) so the
// tail-word masking path is exercised alongside whole-word blocks, and the
// empty universe (size 0: zero words) must be a well-defined no-op for
// every kernel.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "support/bitset.hpp"
#include "support/rng.hpp"

namespace gentrius::support {
namespace {

constexpr std::size_t kSizes[] = {0, 1, 63, 64, 65, 127, 128, 1000};
constexpr int kTrialsPerSize = 40;

/// Random bitset over [0, n) with the given fill probability (in 1/8ths,
/// so density sweeps from near-empty to near-full across trials).
Bitset random_set(Rng& rng, std::size_t n, int eighths) {
  Bitset b(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.below(8) < static_cast<std::uint64_t>(eighths)) b.set(i);
  return b;
}

/// Scalar reference for *this ∩ other built bit by bit.
Bitset scalar_intersection(const Bitset& a, const Bitset& b) {
  Bitset out(a.universe_size());
  for (std::size_t i = 0; i < a.universe_size(); ++i)
    if (a.test(i) && b.test(i)) out.set(i);
  return out;
}

TEST(BitsetKernels, RestrictAndCountMatchesCopyMaskCount) {
  Rng rng(20260808);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < kTrialsPerSize; ++trial) {
      const Bitset a = random_set(rng, n, trial % 9);
      const Bitset b = random_set(rng, n, (trial * 3 + 1) % 9);
      const Bitset want = scalar_intersection(a, b);

      Bitset out(n);
      const std::size_t c = a.restrict_and_count(b, out);
      EXPECT_EQ(out, want) << "n=" << n << " trial=" << trial;
      EXPECT_EQ(c, want.count()) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BitsetKernels, RestrictAndCountResizesOutput) {
  Rng rng(7);
  const Bitset a = random_set(rng, 130, 4);
  const Bitset b = random_set(rng, 130, 4);
  Bitset out(5);  // wrong universe: the kernel must adopt a's universe
  const std::size_t c = a.restrict_and_count(b, out);
  EXPECT_EQ(out.universe_size(), 130u);
  EXPECT_EQ(c, scalar_intersection(a, b).count());
}

TEST(BitsetKernels, RestrictAndCountAllowsAliasedOutput) {
  Rng rng(11);
  for (const std::size_t n : {65UL, 128UL}) {
    const Bitset a = random_set(rng, n, 5);
    const Bitset b = random_set(rng, n, 5);
    const Bitset want = scalar_intersection(a, b);
    Bitset self = a;
    EXPECT_EQ(self.restrict_and_count(b, self), want.count());
    EXPECT_EQ(self, want);
  }
}

TEST(BitsetKernels, SubtractAndTestMatchesSubtractThenEmpty) {
  Rng rng(31337);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < kTrialsPerSize; ++trial) {
      const Bitset a = random_set(rng, n, trial % 9);
      const Bitset b = random_set(rng, n, (trial * 5 + 2) % 9);

      Bitset ref = a;
      ref.subtract(b);

      Bitset fused = a;
      const bool any = fused.subtract_and_test(b);
      EXPECT_EQ(fused, ref) << "n=" << n << " trial=" << trial;
      EXPECT_EQ(any, !ref.empty()) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BitsetKernels, RelationToMatchesIntersectsAndSubsetPair) {
  Rng rng(4242);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < kTrialsPerSize; ++trial) {
      // Skewed densities so all three relations actually occur: sparse vs
      // dense inputs make subsets likely, disjoint pairs come from the
      // near-empty trials.
      const Bitset a = random_set(rng, n, trial % 4);
      Bitset b = random_set(rng, n, 4 + trial % 5);
      if (trial % 7 == 0) b |= a;  // force a genuine superset sometimes

      const auto got = a.relation_to(b);
      // Documented contract: empty a (no shared element) is kDisjoint even
      // though it is vacuously a subset.
      Bitset::Relation want;
      if (!a.intersects(b))
        want = Bitset::Relation::kDisjoint;
      else if (a.is_subset_of(b))
        want = Bitset::Relation::kSubset;
      else
        want = Bitset::Relation::kOverlap;
      EXPECT_EQ(got, want) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BitsetKernels, RelationToEmptyUniverseIsDisjoint) {
  const Bitset a(0), b(0);
  EXPECT_EQ(a.relation_to(b), Bitset::Relation::kDisjoint);
}

TEST(BitsetKernels, ForEachAndMatchesFilteredForEach) {
  Rng rng(999);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < kTrialsPerSize; ++trial) {
      const Bitset a = random_set(rng, n, 1 + trial % 7);
      const Bitset b = random_set(rng, n, 1 + (trial * 3) % 7);

      std::vector<std::size_t> want;
      a.for_each([&](std::size_t i) {
        if (b.test(i)) want.push_back(i);
      });
      std::vector<std::size_t> got;
      a.for_each_and(b, [&](std::size_t i) { got.push_back(i); });
      EXPECT_EQ(got, want) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BitsetKernels, ForEachDiffMatchesFilteredForEach) {
  Rng rng(606);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < kTrialsPerSize; ++trial) {
      const Bitset a = random_set(rng, n, 1 + trial % 7);
      const Bitset b = random_set(rng, n, 1 + (trial * 5) % 7);

      std::vector<std::size_t> want;
      a.for_each([&](std::size_t i) {
        if (!b.test(i)) want.push_back(i);
      });
      std::vector<std::size_t> got;
      a.for_each_diff(b, [&](std::size_t i) { got.push_back(i); });
      EXPECT_EQ(got, want) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(BitsetKernels, EmptyUniverseKernelsAreNoOps) {
  Bitset a(0), b(0), out(0);
  EXPECT_EQ(a.restrict_and_count(b, out), 0u);
  EXPECT_FALSE(a.subtract_and_test(b));
  int calls = 0;
  a.for_each_and(b, [&](std::size_t) { ++calls; });
  a.for_each_diff(b, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BitsetKernels, TailWordBitsStayMasked) {
  // A 65-bit universe leaves 63 dead bits in the second word. The fused
  // kernels must neither read garbage from nor write garbage into them:
  // after any kernel, count() must equal the number of live indices.
  Bitset a(65), b(65);
  a.set(0);
  a.set(64);
  b.set(64);
  Bitset out(65);
  EXPECT_EQ(a.restrict_and_count(b, out), 1u);
  EXPECT_EQ(out.count(), 1u);
  EXPECT_TRUE(out.test(64));

  Bitset d = a;
  EXPECT_TRUE(d.subtract_and_test(b));  // index 0 survives
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(0));
  EXPECT_FALSE(d.subtract_and_test(a));  // now empty
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace gentrius::support
