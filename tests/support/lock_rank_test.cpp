// Runtime lock-rank validator (support/sync.hpp).
//
// The static half of the hierarchy lives in gentrius-analyze's lock-rank
// rule; these tests cover the dynamic half: the thread-local held-rank
// stack that every Mutex::lock() checks in debug/sanitizer builds. A
// seeded rank inversion must throw InternalError *before* blocking on the
// mutex (the test would deadlock otherwise), and the validator itself
// must be race-free under concurrent lockers — the TSan preset runs this
// file via the `parallel` ctest label.
//
// In release builds (GENTRIUS_ENABLE_INVARIANTS == 0) the validator
// compiles to nothing, so the inversion tests skip themselves; the
// well-ordered tests still run everywhere as plain locking smoke tests.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/invariant.hpp"
#include "support/sync.hpp"

namespace gentrius::support {
namespace {

TEST(LockRank, IncreasingAcquisitionIsClean) {
  Mutex low(Rank::kTaskQueue);
  Mutex high(Rank::kSchedulerSignal);
  MutexLock outer(low);
  MutexLock inner(high);  // strictly increasing: fine in every build
}

TEST(LockRank, SequentialAcquisitionNeedsNoOrder) {
  Mutex low(Rank::kTaskQueue);
  Mutex high(Rank::kSchedulerSignal);
  { MutexLock a(high); }
  { MutexLock b(low); }  // nothing held in between: any order is fine
}

TEST(LockRank, InvertedAcquisitionThrowsBeforeBlocking) {
#if GENTRIUS_ENABLE_INVARIANTS
  Mutex low(Rank::kTaskQueue);
  Mutex high(Rank::kSchedulerSignal);
  MutexLock outer(high);
  // The DCHECK fires before low.m_.lock(), so the test cannot deadlock
  // even though `low` is free — the *order* is the defect.
  EXPECT_THROW({ MutexLock inner(low); }, InternalError);
#else
  GTEST_SKIP() << "rank validator is compiled out without invariants";
#endif
}

TEST(LockRank, EqualRankIsAnInversion) {
#if GENTRIUS_ENABLE_INVARIANTS
  Mutex a(Rank::kTest);
  Mutex b(Rank::kTest);
  MutexLock outer(a);
  EXPECT_THROW({ MutexLock inner(b); }, InternalError);
#else
  GTEST_SKIP() << "rank validator is compiled out without invariants";
#endif
}

TEST(LockRank, TryLockRecordsHeldRank) {
#if GENTRIUS_ENABLE_INVARIANTS
  Mutex low(Rank::kTaskQueue);
  Mutex high(Rank::kSchedulerSignal);
  ASSERT_TRUE(high.try_lock());
  EXPECT_THROW(low.lock(), InternalError);
  high.unlock();
  low.lock();  // nothing held anymore: clean
  low.unlock();
#else
  GTEST_SKIP() << "rank validator is compiled out without invariants";
#endif
}

TEST(LockRank, RecoversAfterDiagnosedInversion) {
#if GENTRIUS_ENABLE_INVARIANTS
  Mutex low(Rank::kTaskQueue);
  Mutex high(Rank::kSchedulerSignal);
  {
    MutexLock outer(high);
    EXPECT_THROW(low.lock(), InternalError);
  }
  // The failed acquisition must not have corrupted the held stack.
  MutexLock a(low);
  MutexLock b(high);
#else
  GTEST_SKIP() << "rank validator is compiled out without invariants";
#endif
}

// Validator race-freedom: many threads nest the same two ranked mutexes in
// the correct order. The held-rank stack is thread-local, so TSan must see
// no data race in the bookkeeping itself, and no thread may observe a
// spurious inversion from another thread's holdings.
TEST(LockRank, ValidatorIsRaceFreeUnderContention) {
  Mutex low(Rank::kTaskQueue);
  Mutex high(Rank::kSchedulerSignal);
  int shared = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        MutexLock outer(low);
        MutexLock inner(high);
        ++shared;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared, 4 * 2000);
}

}  // namespace
}  // namespace gentrius::support
