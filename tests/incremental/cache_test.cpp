// ResultCache unit tests: LRU eviction order, the byte-compare collision
// guard, replace-in-place, and the capacity-0 kill switch.
#include <gtest/gtest.h>

#include <string>

#include "incremental/cache.hpp"
#include "support/fingerprint.hpp"

namespace gentrius::incremental {
namespace {

CacheEntry entry_for(const std::string& encoding, std::uint64_t count) {
  CacheEntry e;
  e.encoding = encoding;
  e.stand_trees = count;
  return e;
}

support::Fingerprint fp(const std::string& encoding) {
  return support::fingerprint_bytes(encoding);
}

TEST(ResultCache, InsertAndFind) {
  ResultCache cache(4);
  EXPECT_EQ(cache.find(fp("a"), "a"), nullptr);
  cache.insert(fp("a"), entry_for("a", 3));
  const CacheEntry* hit = cache.find(fp("a"), "a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->stand_trees, 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, CollisionGuardComparesEncodings) {
  ResultCache cache(4);
  cache.insert(fp("a"), entry_for("a", 3));
  // Same fingerprint, different bytes: must miss — a collision costs a
  // recomputation, never a wrong answer.
  EXPECT_EQ(cache.find(fp("a"), "b"), nullptr);
  EXPECT_NE(cache.find(fp("a"), "a"), nullptr);
}

TEST(ResultCache, LruEvictionPrefersStalest) {
  ResultCache cache(2);
  cache.insert(fp("a"), entry_for("a", 1));
  cache.insert(fp("b"), entry_for("b", 2));
  ASSERT_NE(cache.find(fp("a"), "a"), nullptr);  // refresh a; b is stalest
  cache.insert(fp("c"), entry_for("c", 3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(fp("b"), "b"), nullptr);
  EXPECT_NE(cache.find(fp("a"), "a"), nullptr);
  EXPECT_NE(cache.find(fp("c"), "c"), nullptr);
}

TEST(ResultCache, ReplaceInPlaceDoesNotEvict) {
  ResultCache cache(2);
  cache.insert(fp("a"), entry_for("a", 1));
  cache.insert(fp("b"), entry_for("b", 2));
  cache.insert(fp("a"), entry_for("a", 7));  // refresh, not a new slot
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  const CacheEntry* hit = cache.find(fp("a"), "a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->stand_trees, 7u);
  EXPECT_NE(cache.find(fp("b"), "b"), nullptr);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.insert(fp("a"), entry_for("a", 1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(fp("a"), "a"), nullptr);
}

TEST(ResultCache, EvictionChurnKeepsBound) {
  ResultCache cache(3);
  for (int i = 0; i < 50; ++i) {
    const std::string enc = "e" + std::to_string(i);
    cache.insert(fp(enc), entry_for(enc, i));
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.evictions(), 47u);
  // The three most recent survive.
  EXPECT_NE(cache.find(fp("e49"), "e49"), nullptr);
  EXPECT_NE(cache.find(fp("e47"), "e47"), nullptr);
  EXPECT_EQ(cache.find(fp("e0"), "e0"), nullptr);
}

}  // namespace
}  // namespace gentrius::incremental
