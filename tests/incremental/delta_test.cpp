// PAM edit model: apply_edit validation and the delta classifier's
// merge/split detection against hand-crafted interaction structures.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/dataset.hpp"
#include "datagen/tree_gen.hpp"
#include "decompose/components.hpp"
#include "incremental/delta.hpp"
#include "pam/pam.hpp"
#include "phylo/taxon_set.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gentrius::incremental {
namespace {

phylo::Tree species_over(std::size_t n, std::uint64_t seed = 17) {
  phylo::TaxonSet taxa;
  support::Rng rng(seed);
  return datagen::random_tree(datagen::default_taxa(taxa, n), rng);
}

/// Two disjoint 5-taxon blocks: locus 0 over {0..4}, locus 1 over {5..9}.
pam::Pam two_blocks() {
  pam::Pam pam(10, 2);
  for (phylo::TaxonId t = 0; t < 5; ++t) pam.set_present(t, 0);
  for (phylo::TaxonId t = 5; t < 10; ++t) pam.set_present(t, 1);
  return pam;
}

decompose::ComponentSplit split_of(const phylo::Tree& species,
                                   const pam::Pam& pam) {
  return decompose::analyze_pam(species, pam).split;
}

TEST(ApplyEdit, FillAndClear) {
  pam::Pam pam = two_blocks();
  apply_edit(pam, PamDelta::fill_cell(0, 1));
  EXPECT_TRUE(pam.present(0, 1));
  apply_edit(pam, PamDelta::clear_cell(0, 1));
  EXPECT_FALSE(pam.present(0, 1));

  EXPECT_THROW(apply_edit(pam, PamDelta::fill_cell(0, 0)),
               support::InvalidInput);  // already present
  EXPECT_THROW(apply_edit(pam, PamDelta::clear_cell(0, 1)),
               support::InvalidInput);  // already absent
  EXPECT_THROW(apply_edit(pam, PamDelta::fill_cell(10, 0)),
               support::InvalidInput);  // taxon out of range
  EXPECT_THROW(apply_edit(pam, PamDelta::fill_cell(0, 2)),
               support::InvalidInput);  // locus out of range
}

TEST(ApplyEdit, AddLocusAndTaxon) {
  pam::Pam pam = two_blocks();
  apply_edit(pam, PamDelta::add_locus({1, 2, 3, 6}));
  ASSERT_EQ(pam.locus_count(), 3u);
  EXPECT_TRUE(pam.present(6, 2));
  EXPECT_FALSE(pam.present(0, 2));

  apply_edit(pam, PamDelta::add_taxon({0, 2}), /*max_taxa=*/11);
  ASSERT_EQ(pam.taxon_count(), 11u);
  EXPECT_TRUE(pam.present(10, 0));
  EXPECT_TRUE(pam.present(10, 2));
  EXPECT_FALSE(pam.present(10, 1));

  // The species tree has no leaf for a 12th taxon.
  EXPECT_THROW(apply_edit(pam, PamDelta::add_taxon({}), /*max_taxa=*/11),
               support::InvalidInput);
  EXPECT_THROW(apply_edit(pam, PamDelta::add_locus({0, 99})),
               support::InvalidInput);
}

TEST(ApplyEdit, ToStringNamesTheEdit) {
  EXPECT_NE(to_string(PamDelta::fill_cell(7, 2)).find("fill"),
            std::string::npos);
  EXPECT_NE(to_string(PamDelta::add_locus({1, 2})).find("add_locus"),
            std::string::npos);
}

TEST(ClassifyDelta, FillInsideOneComponentTouchesOnlyIt) {
  const auto species = species_over(10);
  pam::Pam before = two_blocks();
  before.set_present(0, 0, false);  // give the fill something to fill
  const auto before_split = split_of(species, before);
  ASSERT_EQ(before_split.components.size(), 2u);

  pam::Pam after = before;
  const auto edit = PamDelta::fill_cell(0, 0);
  apply_edit(after, edit);
  const auto after_split = split_of(species, after);

  const DeltaClass c =
      classify_delta(edit, before, before_split, after, after_split);
  EXPECT_EQ(c.touched_before, std::vector<std::size_t>{0});
  EXPECT_EQ(c.touched_after, std::vector<std::size_t>{0});
  EXPECT_FALSE(c.merged);
  EXPECT_FALSE(c.split);
}

TEST(ClassifyDelta, BridgingFillMergesComponents) {
  const auto species = species_over(10);
  const pam::Pam before = two_blocks();
  const auto before_split = split_of(species, before);
  ASSERT_EQ(before_split.components.size(), 2u);

  pam::Pam after = before;
  const auto edit = PamDelta::fill_cell(0, 1);  // block-A taxon joins locus B
  apply_edit(after, edit);
  const auto after_split = split_of(species, after);
  ASSERT_EQ(after_split.components.size(), 1u);

  const DeltaClass c =
      classify_delta(edit, before, before_split, after, after_split);
  EXPECT_TRUE(c.merged);
  EXPECT_FALSE(c.split);
  EXPECT_EQ(c.touched_before, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(c.touched_after, std::vector<std::size_t>{0});
}

TEST(ClassifyDelta, ClearingTheBridgeSplits) {
  const auto species = species_over(9);
  // One component held together by taxon 4: locus 0 over {0..4}, locus 1
  // over {4..8}.
  pam::Pam before(9, 2);
  for (phylo::TaxonId t = 0; t < 5; ++t) before.set_present(t, 0);
  for (phylo::TaxonId t = 4; t < 9; ++t) before.set_present(t, 1);
  const auto before_split = split_of(species, before);
  ASSERT_EQ(before_split.components.size(), 1u);

  pam::Pam after = before;
  const auto edit = PamDelta::clear_cell(4, 1);
  apply_edit(after, edit);
  const auto after_split = split_of(species, after);
  ASSERT_EQ(after_split.components.size(), 2u);

  const DeltaClass c =
      classify_delta(edit, before, before_split, after, after_split);
  EXPECT_TRUE(c.split);
  EXPECT_FALSE(c.merged);
  EXPECT_EQ(c.touched_before, std::vector<std::size_t>{0});
  EXPECT_EQ(c.touched_after, (std::vector<std::size_t>{0, 1}));
}

TEST(ClassifyDelta, BridgingLocusMergesBoth) {
  const auto species = species_over(10);
  const pam::Pam before = two_blocks();
  const auto before_split = split_of(species, before);

  pam::Pam after = before;
  const auto edit = PamDelta::add_locus({1, 2, 6, 7});
  apply_edit(after, edit);
  const auto after_split = split_of(species, after);
  ASSERT_EQ(after_split.components.size(), 1u);

  const DeltaClass c =
      classify_delta(edit, before, before_split, after, after_split);
  EXPECT_TRUE(c.merged);
  EXPECT_EQ(c.touched_before, (std::vector<std::size_t>{0, 1}));
}

TEST(ClassifyDelta, NewTaxonJoinsAComponent) {
  const auto species = species_over(11);
  const pam::Pam before = two_blocks();
  const auto before_split = split_of(species, before);

  pam::Pam after = before;
  const auto edit = PamDelta::add_taxon({1});  // joins the {5..9} block
  apply_edit(after, edit, /*max_taxa=*/11);
  const auto after_split = split_of(species, after);
  ASSERT_EQ(after_split.components.size(), 2u);

  const DeltaClass c =
      classify_delta(edit, before, before_split, after, after_split);
  EXPECT_FALSE(c.merged);
  EXPECT_FALSE(c.split);
  // The new taxon lands in the post-edit component of the {5..9} block.
  ASSERT_EQ(c.touched_after.size(), 1u);
  EXPECT_TRUE(c.touched_before.empty());
}

}  // namespace
}  // namespace gentrius::incremental
