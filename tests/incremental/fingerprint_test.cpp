// Canonical-encoding invariance: the fingerprints that key the incremental
// result cache must not change when a dataset is relabeled (taxon ids
// permuted) or its loci/constraints reordered — those are presentations of
// the same instance, and a presentation change must stay a cache hit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "gentrius/problem.hpp"
#include "pam/canonical.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"
#include "support/fingerprint.hpp"
#include "support/rng.hpp"

namespace gentrius {
namespace {

#if defined(GENTRIUS_SANITIZED_BUILD)
constexpr std::uint64_t kSeeds = 40;
#else
constexpr std::uint64_t kSeeds = 200;
#endif

std::vector<std::size_t> random_perm(std::size_t n, support::Rng& rng) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) std::swap(p[i - 1], p[rng.below(i)]);
  return p;
}

pam::Pam random_pam(std::size_t n_taxa, std::size_t n_loci,
                    support::Rng& rng) {
  pam::Pam pam(n_taxa, n_loci);
  for (std::size_t l = 0; l < n_loci; ++l)
    for (phylo::TaxonId t = 0; t < n_taxa; ++t)
      if (rng.uniform() < 0.6) pam.set_present(t, l);
  return pam;
}

/// The same matrix with taxon t renamed to perm[t].
pam::Pam relabel_taxa(const pam::Pam& pam,
                      const std::vector<std::size_t>& perm) {
  pam::Pam out(pam.taxon_count(), pam.locus_count());
  for (std::size_t l = 0; l < pam.locus_count(); ++l)
    for (phylo::TaxonId t = 0; t < pam.taxon_count(); ++t)
      if (pam.present(t, l))
        out.set_present(static_cast<phylo::TaxonId>(perm[t]), l);
  return out;
}

/// The same matrix with locus l moved to position perm[l].
pam::Pam permute_loci(const pam::Pam& pam,
                      const std::vector<std::size_t>& perm) {
  pam::Pam out(pam.taxon_count(), pam.locus_count());
  for (std::size_t l = 0; l < pam.locus_count(); ++l)
    for (phylo::TaxonId t = 0; t < pam.taxon_count(); ++t)
      if (pam.present(t, l)) out.set_present(t, perm[l]);
  return out;
}

TEST(PamCanonical, TaxonRelabelInvariance) {
  std::uint64_t invariant = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed);
    const std::size_t n = 4 + rng.below(8);
    const std::size_t k = 1 + rng.below(4);
    const pam::Pam pam = random_pam(n, k, rng);
    const pam::Pam shuffled = relabel_taxa(pam, random_perm(n, rng));

    const auto a = pam::canonical_encode(pam);
    const auto b = pam::canonical_encode(shuffled);
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Budget exhaustion may only weaken invariance, never determinism.
    if (a.relabel_invariant && b.relabel_invariant) {
      EXPECT_EQ(a.encoding, b.encoding);
      EXPECT_EQ(a.fp, b.fp);
      ++invariant;
    }
    EXPECT_EQ(a.fp, pam::fingerprint(pam));
  }
  // The WL + twin-class canonicalizer should resolve these tiny matrices
  // within budget essentially always.
  EXPECT_GE(invariant, kSeeds * 9 / 10);
}

TEST(PamCanonical, LocusPermutationInvariance) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed ^ 0xabcdef);
    const std::size_t n = 4 + rng.below(8);
    const std::size_t k = 2 + rng.below(4);
    const pam::Pam pam = random_pam(n, k, rng);
    const pam::Pam shuffled = permute_loci(pam, random_perm(k, rng));
    // Locus order never enters the encoding (rows are emitted sorted), so
    // this holds unconditionally — even without relabel invariance.
    EXPECT_EQ(pam::canonical_encode(pam).encoding,
              pam::canonical_encode(shuffled).encoding);
  }
}

TEST(PamCanonical, CellFlipChangesEncoding) {
  support::Rng rng(7);
  const pam::Pam pam = random_pam(8, 3, rng);
  pam::Pam flipped = pam;
  flipped.set_present(3, 1, !pam.present(3, 1));
  // Different number of 1-cells: the encodings cannot coincide.
  EXPECT_NE(pam::canonical_encode(pam).encoding,
            pam::canonical_encode(flipped).encoding);
  EXPECT_NE(pam::fingerprint(pam), pam::fingerprint(flipped));
}

TEST(PamCanonical, DegenerateShapes) {
  const pam::Pam empty(5, 2);  // all-absent
  const auto a = pam::canonical_encode(empty);
  EXPECT_FALSE(a.encoding.empty());
  EXPECT_EQ(a.order.size(), 5u);

  pam::Pam full(3, 1);
  for (phylo::TaxonId t = 0; t < 3; ++t) full.set_present(t, 0);
  EXPECT_NE(pam::canonical_encode(full).fp, a.fp);
}

// ---- constraint-instance canonicalization ---------------------------------

/// Structurally identical constraint trees with taxon i renamed to perm[i]:
/// serialize under labels that carry the permutation, re-parse under a
/// densely pre-registered TaxonSet.
std::vector<phylo::Tree> relabel_instance(
    const std::vector<phylo::Tree>& constraints, std::size_t n_taxa,
    const std::vector<std::size_t>& perm) {
  phylo::TaxonSet as_perm;   // id i prints as "t<perm[i]>"
  phylo::TaxonSet as_dense;  // "t<j>" parses back to id j
  for (std::size_t i = 0; i < n_taxa; ++i)
    as_perm.add("t" + std::to_string(perm[i]));
  for (std::size_t j = 0; j < n_taxa; ++j)
    as_dense.add("t" + std::to_string(j));
  std::vector<phylo::Tree> out;
  out.reserve(constraints.size());
  for (const auto& tree : constraints)
    out.push_back(
        phylo::parse_newick(phylo::to_newick(tree, as_perm), as_dense));
  return out;
}

TEST(InstanceCanonical, TaxonRelabelInvariance) {
  std::uint64_t invariant = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    benchutil::MultiComponentParams p;
    p.n_components = 2;
    p.min_taxa_per_component = 4;
    p.max_taxa_per_component = 5;
    p.loci_per_component = 2;
    p.seed = seed;
    const auto ds = benchutil::make_multi_component(p);
    SCOPED_TRACE(ds.name);

    support::Rng rng(seed * 31 + 5);
    const auto relabeled = relabel_instance(
        ds.constraints, ds.taxon_count(), random_perm(ds.taxon_count(), rng));

    const auto a = core::canonicalize_instance(ds.constraints);
    const auto b = core::canonicalize_instance(relabeled);
    if (a.relabel_invariant && b.relabel_invariant) {
      EXPECT_EQ(a.encoding, b.encoding);
      EXPECT_EQ(a.fp, b.fp);
      ++invariant;
    }
    EXPECT_EQ(a.fp, core::instance_fingerprint(ds.constraints));
  }
  EXPECT_GE(invariant, kSeeds * 9 / 10);
}

TEST(InstanceCanonical, ConstraintOrderInvariance) {
  benchutil::MultiComponentParams p;
  p.n_components = 2;
  p.loci_per_component = 3;
  p.seed = 11;
  const auto ds = benchutil::make_multi_component(p);
  std::vector<phylo::Tree> reversed(ds.constraints.rbegin(),
                                    ds.constraints.rend());
  EXPECT_EQ(core::canonicalize_instance(ds.constraints).encoding,
            core::canonicalize_instance(reversed).encoding);
}

TEST(InstanceCanonical, OrderTranslatesRanksConsistently) {
  benchutil::MultiComponentParams p;
  p.seed = 3;
  const auto ds = benchutil::make_multi_component(p);
  const auto canon = core::canonicalize_instance(ds.constraints);
  // order is a permutation of the instance's taxa, and re-serializing any
  // constraint under it reproduces a line of the encoding.
  std::vector<std::size_t> rank(ds.taxon_count(),
                                static_cast<std::size_t>(-1));
  for (std::size_t r = 0; r < canon.order.size(); ++r)
    rank[canon.order[r]] = r;
  const std::string line = core::rank_newick(ds.constraints.front(), rank);
  EXPECT_NE(canon.encoding.find(line), std::string::npos);
}

TEST(InstanceCanonical, RankLabelFormat) {
  EXPECT_EQ(core::canonical_rank_label(0), "c000000");
  EXPECT_EQ(core::canonical_rank_label(42), "c000042");
  // Lexicographic label order == rank order is what keeps rank_newick's
  // sorted-subtree form deterministic.
  EXPECT_LT(core::canonical_rank_label(9), core::canonical_rank_label(10));
}

TEST(Fingerprint, BytesAndMix) {
  const auto a = support::fingerprint_bytes("gentrius");
  const auto b = support::fingerprint_bytes("gentrius");
  const auto c = support::fingerprint_bytes("gentriu");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(support::to_string(a).size(), 32u);
  EXPECT_NE(support::mix_hash(1, 2), support::mix_hash(2, 1));
}

}  // namespace
}  // namespace gentrius
