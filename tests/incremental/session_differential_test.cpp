// Differential harness for the incremental session.
//
// The contract under test: after ANY edit sequence, IncrementalSession's
// Result has the identical stand count and identical stand tree set as a
// from-scratch decompose run of the edited matrix — cache hits, evictions,
// split/merge rewiring, and rank-space translation included. Sweeps
// hundreds of random block-structured instances with random edit streams
// (fills, clears, new loci, new taxa) and checks every prefix.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "datagen/dataset.hpp"
#include "datagen/tree_gen.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "decompose/testutil.hpp"
#include "incremental/session.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::StopReason;
using decompose_test::kProductLawSeeds;
using decompose_test::sorted_trees;
using incremental::EditScript;
using incremental::IncrementalSession;
using incremental::PamDelta;
using incremental::SessionOptions;

Options engine_options(const phylo::TaxonSet& taxa) {
  Options o;
  o.decompose = core::Decompose::kComponents;
  o.collect_trees = true;
  o.tree_names = &taxa;
  return o;
}

Result from_scratch(const phylo::Tree& species, const pam::Pam& pam,
                    const Options& options, std::size_t min_taxa = 4) {
  const auto decomp = decompose::analyze_pam(species, pam, min_taxa);
  return decompose::run_serial(decomp.constraints, options);
}

/// A random applicable edit that keeps every locus enumerable (clears only
/// touch loci with >= 5 present taxa, so no locus drops below the
/// min_taxa = 4 floor and the instance always has work).
std::optional<PamDelta> random_edit(const pam::Pam& pam, support::Rng& rng) {
  if (rng.bernoulli(0.2)) {
    std::vector<phylo::TaxonId> members;
    for (phylo::TaxonId t = 0; t < pam.taxon_count(); ++t) members.push_back(t);
    rng.shuffle(members);
    members.resize(4);
    return PamDelta::add_locus(members);
  }
  std::vector<PamDelta> cands;
  for (std::size_t l = 0; l < pam.locus_count(); ++l) {
    const std::size_t count = pam.locus_taxa_list(l).size();
    for (phylo::TaxonId t = 0; t < pam.taxon_count(); ++t) {
      if (!pam.present(t, l))
        cands.push_back(PamDelta::fill_cell(t, l));
      else if (count >= 5)
        cands.push_back(PamDelta::clear_cell(t, l));
    }
  }
  if (cands.empty()) return std::nullopt;
  return cands[rng.below(cands.size())];
}

benchutil::MultiComponentParams params_for_seed(std::uint64_t seed,
                                                std::size_t n_components) {
  benchutil::MultiComponentParams p;
  p.n_components = n_components;
  p.min_taxa_per_component = 4;
  p.max_taxa_per_component = 4;  // keeps every from-scratch reference cheap
  p.loci_per_component = 2;
  p.seed = seed;
  return p;
}

void expect_same(Result inc, Result ref, const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(ref.reason, StopReason::kCompleted);
  EXPECT_EQ(inc.reason, StopReason::kCompleted);
  EXPECT_EQ(inc.stand_trees, ref.stand_trees);
  EXPECT_EQ(inc.count_saturated, ref.count_saturated);
  EXPECT_EQ(sorted_trees(inc), sorted_trees(ref));
}

TEST(SessionDifferential, RandomEditStreamsMatchFromScratch) {
  std::uint64_t total_hits = 0;
  for (std::uint64_t seed = 1; seed <= kProductLawSeeds; ++seed) {
    const auto ds =
        benchutil::make_multi_component(params_for_seed(seed, 2));
    SCOPED_TRACE(ds.name);
    const Options opts = engine_options(ds.taxa);

    SessionOptions so;
    so.engine = opts;
    IncrementalSession session(ds.species_tree, ds.pam, so);
    pam::Pam shadow = ds.pam;

    expect_same(session.enumerate(),
                from_scratch(ds.species_tree, shadow, opts), "initial");

    support::Rng rng(seed ^ 0x5e5510u);
    for (int step = 0; step < 4; ++step) {
      const auto edit = random_edit(shadow, rng);
      if (!edit) break;
      Result inc = session.apply(*edit);
      incremental::apply_edit(shadow, *edit);
      expect_same(std::move(inc),
                  from_scratch(ds.species_tree, shadow, opts),
                  "step " + std::to_string(step) + ": " +
                      incremental::to_string(*edit));
    }
    total_hits += session.lifetime_cache_stats().hits;
  }
  // Localized edits must actually reuse work: across the sweep the
  // untouched components (and often the residual) hit the cache.
  EXPECT_GT(total_hits, kProductLawSeeds);
}

TEST(SessionDifferential, ForcedEvictionStaysExact) {
  // capacity 1: every second component lookup misses, entries churn
  // constantly — correctness must not depend on hitting.
  for (std::uint64_t seed = 1; seed <= kProductLawSeeds / 4; ++seed) {
    const auto ds =
        benchutil::make_multi_component(params_for_seed(seed, 2));
    SCOPED_TRACE(ds.name);
    const Options opts = engine_options(ds.taxa);

    SessionOptions so;
    so.engine = opts;
    so.cache_capacity = 1;
    IncrementalSession session(ds.species_tree, ds.pam, so);
    pam::Pam shadow = ds.pam;

    support::Rng rng(seed * 977 + 3);
    for (int step = 0; step < 3; ++step) {
      const auto edit = random_edit(shadow, rng);
      if (!edit) break;
      Result inc = session.apply(*edit);
      incremental::apply_edit(shadow, *edit);
      expect_same(std::move(inc),
                  from_scratch(ds.species_tree, shadow, opts),
                  "step " + std::to_string(step));
    }
    EXPECT_GT(session.lifetime_cache_stats().evictions, 0u);
  }
}

TEST(SessionDifferential, RevertedEditIsServedEntirelyFromCache) {
  const auto ds = benchutil::make_multi_component(params_for_seed(13, 2));
  const Options opts = engine_options(ds.taxa);
  SessionOptions so;
  so.engine = opts;
  IncrementalSession session(ds.species_tree, ds.pam, so);

  Result first = session.enumerate();
  const auto fp_before = session.instance_fingerprint();

  // Find a fillable cell, fill it, then clear it back.
  PamDelta fill = PamDelta::fill_cell(0, 0);
  bool found = false;
  for (std::size_t l = 0; l < ds.pam.locus_count() && !found; ++l)
    for (phylo::TaxonId t = 0; t < ds.pam.taxon_count() && !found; ++t)
      if (!ds.pam.present(t, l)) {
        fill = PamDelta::fill_cell(t, l);
        found = true;
      }
  ASSERT_TRUE(found);
  session.apply(fill);
  Result reverted =
      session.apply(PamDelta::clear_cell(fill.taxon, fill.locus));

  // The reverted matrix is the original instance: every component and the
  // residual are still cached, so nothing recomputes, and the stand set is
  // identical — served through the rank-space round trip.
  EXPECT_EQ(reverted.cache.misses, 0u);
  EXPECT_EQ(reverted.cache.recomputed_components, 0u);
  EXPECT_GT(reverted.cache.hits, 0u);
  EXPECT_EQ(reverted.stand_trees, first.stand_trees);
  EXPECT_EQ(sorted_trees(reverted), sorted_trees(first));
  EXPECT_EQ(session.instance_fingerprint(), fp_before);
  for (const auto& shard : reverted.shards) EXPECT_TRUE(shard.reused);
}

TEST(SessionDifferential, SplitAndMergeEditsStayExact) {
  // Hand-crafted bridge instance: locus 0 over {0..4}, locus 1 over
  // {4..8}, one component via bridge taxon 4. Clearing (4,1) splits it;
  // re-filling merges it back.
  phylo::TaxonSet taxa;
  support::Rng rng(29);
  const auto species =
      datagen::random_tree(datagen::default_taxa(taxa, 9), rng);
  pam::Pam pam(9, 2);
  for (phylo::TaxonId t = 0; t < 5; ++t) pam.set_present(t, 0);
  for (phylo::TaxonId t = 4; t < 9; ++t) pam.set_present(t, 1);

  const Options opts = engine_options(taxa);
  SessionOptions so;
  so.engine = opts;
  IncrementalSession session(species, pam, so);
  pam::Pam shadow = pam;

  expect_same(session.enumerate(), from_scratch(species, shadow, opts),
              "bridged");

  Result split = session.apply(PamDelta::clear_cell(4, 1));
  incremental::apply_edit(shadow, PamDelta::clear_cell(4, 1));
  EXPECT_TRUE(session.last_classification().split);
  expect_same(std::move(split), from_scratch(species, shadow, opts),
              "after split");

  Result merged = session.apply(PamDelta::fill_cell(4, 1));
  incremental::apply_edit(shadow, PamDelta::fill_cell(4, 1));
  EXPECT_TRUE(session.last_classification().merged);
  expect_same(std::move(merged), from_scratch(species, shadow, opts),
              "after merge");
}

TEST(SessionDifferential, AddTaxonActivatesASpeciesTreeLeaf) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto ds =
        benchutil::make_multi_component(params_for_seed(seed * 7 + 1, 2));
    const std::size_t n = ds.taxon_count();
    // Start the session one taxon short; the species tree already spans it.
    pam::Pam initial(n - 1, ds.pam.locus_count());
    for (std::size_t l = 0; l < ds.pam.locus_count(); ++l)
      for (phylo::TaxonId t = 0; t + 1 < n; ++t)
        if (ds.pam.present(t, l)) initial.set_present(t, l);
    const auto split = decompose::analyze_pam(ds.species_tree, initial).split;
    if (split.enumerable_count == 0) continue;  // degenerate after dropping
    SCOPED_TRACE(ds.name);

    const Options opts = engine_options(ds.taxa);
    SessionOptions so;
    so.engine = opts;
    IncrementalSession session(ds.species_tree, initial, so);
    expect_same(session.enumerate(),
                from_scratch(ds.species_tree, initial, opts), "short");

    std::vector<std::size_t> loci;
    for (std::size_t l = 0; l < ds.pam.locus_count(); ++l)
      if (ds.pam.present(static_cast<phylo::TaxonId>(n - 1), l))
        loci.push_back(l);
    Result grown = session.apply(PamDelta::add_taxon(loci));
    EXPECT_EQ(session.pam().taxon_count(), n);
    // The grown matrix is exactly ds.pam.
    expect_same(std::move(grown),
                from_scratch(ds.species_tree, ds.pam, opts), "grown");
  }
}

TEST(SessionDifferential, VirtualBackendMatchesSerialReference) {
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const auto ds =
        benchutil::make_multi_component(params_for_seed(seed, 2));
    SCOPED_TRACE(ds.name);
    const Options opts = engine_options(ds.taxa);
    SessionOptions so;
    so.engine = opts;
    so.run.backend = decompose::ShardBackend::kVirtual;
    so.run.n_threads = 4;
    IncrementalSession session(ds.species_tree, ds.pam, so);
    pam::Pam shadow = ds.pam;

    support::Rng rng(seed);
    for (int step = 0; step < 2; ++step) {
      const auto edit = random_edit(shadow, rng);
      if (!edit) break;
      Result inc = session.apply(*edit);
      incremental::apply_edit(shadow, *edit);
      expect_same(std::move(inc),
                  from_scratch(ds.species_tree, shadow, opts),
                  "step " + std::to_string(step));
    }
  }
}

TEST(SessionDifferential, FailingScriptLeavesSessionUnchanged) {
  // apply(EditScript) is atomic: a script that fails mid-way (the second
  // fill hits the cell the first just filled) must rethrow with the
  // session matrix byte-identical to before the call.
  const auto ds = benchutil::make_multi_component(params_for_seed(3, 2));
  const Options opts = engine_options(ds.taxa);
  SessionOptions so;
  so.engine = opts;
  IncrementalSession session(ds.species_tree, ds.pam, so);

  PamDelta fill = PamDelta::fill_cell(0, 0);
  bool found = false;
  for (std::size_t l = 0; l < ds.pam.locus_count() && !found; ++l)
    for (phylo::TaxonId t = 0; t < ds.pam.taxon_count() && !found; ++t)
      if (!ds.pam.present(t, l)) {
        fill = PamDelta::fill_cell(t, l);
        found = true;
      }
  ASSERT_TRUE(found);

  const std::string before_text = session.pam().to_text(ds.taxa);
  EXPECT_THROW(session.apply(EditScript{fill, fill}), support::InvalidInput);
  EXPECT_EQ(session.pam().to_text(ds.taxa), before_text);
  expect_same(session.enumerate(),
              from_scratch(ds.species_tree, ds.pam, opts), "after rollback");
}

TEST(SessionDifferential, EvictionDuringPendingHitStaysExact) {
  // Regression: the plan phase records cache hits before the run phase
  // inserts recomputed misses, and an insert at capacity evicts. With the
  // closed-form residual (never inserted), warm-up leaves only component 1
  // cached (capacity 1 evicted component 0). The add_locus dirties
  // component 0 only, so the edit run hits component 1 at plan time, then
  // recomputing component 0 evicts that still-pending entry before it is
  // served — served data must not dangle.
  phylo::TaxonSet taxa;
  support::Rng rng(41);
  const auto species =
      datagen::random_tree(datagen::default_taxa(taxa, 8), rng);
  pam::Pam pam(8, 2);
  for (phylo::TaxonId t = 0; t < 4; ++t) pam.set_present(t, 0);
  for (phylo::TaxonId t = 4; t < 8; ++t) pam.set_present(t, 1);

  const Options opts = engine_options(taxa);
  SessionOptions so;
  so.engine = opts;
  so.cache_capacity = 1;
  so.run.residual_closed_form = true;
  IncrementalSession session(species, pam, so);
  session.enumerate();

  const PamDelta edit = PamDelta::add_locus({0, 1, 2, 3});
  Result inc = session.apply(edit);
  pam::Pam shadow = pam;
  incremental::apply_edit(shadow, edit);
  EXPECT_EQ(inc.cache.hits, 1u);
  EXPECT_EQ(inc.cache.misses, 1u);
  EXPECT_EQ(inc.cache.evictions, 1u);
  expect_same(std::move(inc), from_scratch(species, shadow, opts),
              "after eviction of pending hit");
}

TEST(SessionDifferential, ResidualKeyTracksPassThroughStructure) {
  // Two session states with identical universe size and enumerable
  // component sizes but different pass-through constraints must not share
  // a residual cache entry: the closed form refuses the pass-through case,
  // so the cache may not assume shape independence across it either.
  phylo::TaxonSet taxa;
  support::Rng rng(53);
  const auto species =
      datagen::random_tree(datagen::default_taxa(taxa, 10), rng);
  pam::Pam pam(10, 4);
  for (phylo::TaxonId t = 0; t < 4; ++t) pam.set_present(t, 0);
  for (phylo::TaxonId t = 4; t < 8; ++t) pam.set_present(t, 1);
  pam.set_present(8, 2);
  pam.set_present(9, 2);
  pam.set_present(8, 3);
  pam.set_present(9, 3);

  const Options opts = engine_options(taxa);
  SessionOptions so;
  so.engine = opts;
  so.min_taxa = 2;  // 2-taxon loci induce (vacuous) pass-through constraints
  IncrementalSession session(species, pam, so);
  expect_same(session.enumerate(), from_scratch(species, pam, opts, 2),
              "two pass-through constraints");

  // Dropping taxon 9 from locus 3 erases that constraint (below the
  // min_taxa floor) but keeps the universe and the enumerable sizes: only
  // the pass-through structure changes, so the residual must miss and
  // recompute rather than serve the previous signature's entry.
  const PamDelta edit = PamDelta::clear_cell(9, 3);
  Result inc = session.apply(edit);
  pam::Pam shadow = pam;
  incremental::apply_edit(shadow, edit);
  EXPECT_EQ(inc.cache.misses, 1u);
  EXPECT_EQ(inc.cache.recomputed_components, 0u);
  expect_same(std::move(inc), from_scratch(species, shadow, opts, 2),
              "one pass-through constraint");
}

TEST(SessionDifferential, ScriptWithMultipleAddTaxaClassifiesEach) {
  // Each kAddTaxon edit in a script must be classified by the taxon id it
  // actually added, not by the post-script matrix's last taxon: taxon 8
  // joins component 0 and taxon 9 joins component 1, so both components
  // are touched_after.
  phylo::TaxonSet taxa;
  support::Rng rng(67);
  const auto species =
      datagen::random_tree(datagen::default_taxa(taxa, 10), rng);
  pam::Pam pam(8, 2);
  for (phylo::TaxonId t = 0; t < 4; ++t) pam.set_present(t, 0);
  for (phylo::TaxonId t = 4; t < 8; ++t) pam.set_present(t, 1);

  const Options opts = engine_options(taxa);
  SessionOptions so;
  so.engine = opts;
  IncrementalSession session(species, pam, so);
  session.enumerate();

  const EditScript script{PamDelta::add_taxon({0}), PamDelta::add_taxon({1})};
  Result inc = session.apply(script);
  pam::Pam shadow = pam;
  for (const PamDelta& edit : script) incremental::apply_edit(shadow, edit);
  EXPECT_EQ(session.last_classification().touched_after,
            (std::vector<std::size_t>{0, 1}));
  expect_same(std::move(inc), from_scratch(species, shadow, opts),
              "after two add_taxon edits");
}

TEST(SessionDifferential, RejectsUnusableConfigurations) {
  const auto ds = benchutil::make_multi_component(params_for_seed(1, 2));
  SessionOptions so;
  so.engine = engine_options(ds.taxa);

  {
    SessionOptions bad = so;
    bad.engine.decompose = core::Decompose::kOff;
    EXPECT_THROW(IncrementalSession(ds.species_tree, ds.pam, bad),
                 support::InvalidInput);
  }
  {
    SessionOptions bad = so;
    bad.engine.tree_names = nullptr;  // collect_trees without labels
    EXPECT_THROW(IncrementalSession(ds.species_tree, ds.pam, bad),
                 support::InvalidInput);
  }
  {
    // Species tree smaller than the matrix's taxon universe.
    phylo::TaxonSet small;
    support::Rng rng(5);
    const auto tiny =
        datagen::random_tree(datagen::default_taxa(small, 4), rng);
    EXPECT_THROW(IncrementalSession(tiny, ds.pam, so),
                 support::InvalidInput);
  }
  {
    // Nothing enumerable: a matrix whose only locus is below the floor.
    phylo::TaxonSet taxa;
    support::Rng rng(6);
    const auto species =
        datagen::random_tree(datagen::default_taxa(taxa, 6), rng);
    pam::Pam sparse(6, 1);
    sparse.set_present(0, 0);
    sparse.set_present(1, 0);
    sparse.set_present(2, 0);
    SessionOptions s2 = so;
    s2.engine.tree_names = &taxa;
    IncrementalSession session(species, sparse, s2);
    EXPECT_THROW(session.enumerate(), support::InvalidInput);
  }
}

}  // namespace
}  // namespace gentrius
