// SUPERB baseline: validated against the brute-force oracle and against
// Gentrius on comprehensive-taxon datasets (the only datasets SUPERB can
// handle, which is exactly the limitation the paper's introduction makes).
#include <gtest/gtest.h>

#include "baseline/superb.hpp"
#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "oracle/brute_force.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"

namespace gentrius {
namespace {

TEST(Superb, SingleTreeCountsOne) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),(c,d),(e,f));", taxa));
  const auto comp = baseline::find_comprehensive_taxon(cs);
  ASSERT_TRUE(comp.has_value());
  const auto r = baseline::count_stand_superb(cs, *comp);
  EXPECT_EQ(r.count, 1u);
  EXPECT_FALSE(r.saturated);
}

TEST(Superb, RequiresComprehensiveTaxon) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),(c,d));", taxa));
  cs.push_back(phylo::parse_newick("((a,b),(c,e));", taxa));
  // d is absent from the second tree, e from the first; a is comprehensive.
  EXPECT_FALSE(baseline::find_comprehensive_taxon(cs).has_value() &&
               *baseline::find_comprehensive_taxon(cs) == taxa.id_of("d"));
  EXPECT_THROW(baseline::count_stand_superb(cs, taxa.id_of("d")),
               support::InvalidInput);
}

TEST(Superb, FreeTaxonStandMatchesOracle) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),c,(d,e));", taxa));
  cs.push_back(phylo::parse_newick("(w,a,b);", taxa));
  // 'a' and 'b' are comprehensive. Stand = 7 (w on any edge).
  const auto comp = baseline::find_comprehensive_taxon(cs);
  ASSERT_TRUE(comp.has_value());
  const auto r = baseline::count_stand_superb(cs, *comp);
  EXPECT_EQ(r.count, oracle::brute_force_stand_count(cs));
  EXPECT_EQ(r.count, 7u);
}

class SuperbSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuperbSweep, MatchesOracleAndGentriusWithComprehensiveTaxon) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 8;
  sp.n_loci = 3;
  sp.missing_fraction = 0.4;
  sp.seed = GetParam();
  auto ds = datagen::make_simulated(sp);
  // Force taxon 0 comprehensive and regenerate the induced constraints.
  for (std::size_t locus = 0; locus < ds.pam.locus_count(); ++locus)
    ds.pam.set_present(0, locus, true);
  ds.constraints = pam::induced_subtrees(ds.species_tree, ds.pam);
  ASSERT_FALSE(ds.constraints.empty());

  const auto comp = baseline::find_comprehensive_taxon(ds.constraints);
  ASSERT_TRUE(comp.has_value());

  const auto superb = baseline::count_stand_superb(ds.constraints, *comp);
  const auto oracle_count = oracle::brute_force_stand_count(ds.constraints);
  EXPECT_EQ(superb.count, oracle_count) << "seed=" << GetParam();

  const auto gentrius = core::run_serial(ds.constraints, core::Options{});
  EXPECT_EQ(gentrius.stand_trees, oracle_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperbSweep,
                         ::testing::Range<std::uint64_t>(3000, 3040));

TEST(Superb, AgreesWithGentriusOnLargerInstances) {
  // Beyond oracle reach: SUPERB and Gentrius validate each other.
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    datagen::SimulatedParams sp;
    sp.n_taxa = 18;
    sp.n_loci = 4;
    sp.missing_fraction = 0.35;
    sp.seed = seed;
    auto ds = datagen::make_simulated(sp);
    for (std::size_t locus = 0; locus < ds.pam.locus_count(); ++locus)
      ds.pam.set_present(0, locus, true);
    ds.constraints = pam::induced_subtrees(ds.species_tree, ds.pam);

    const auto superb = baseline::count_stand_superb(ds.constraints, 0);
    if (superb.saturated || superb.budget_exceeded) continue;

    core::Options opts;
    opts.stop.max_stand_trees = 50'000'000;
    opts.stop.max_states = 500'000'000;
    const auto gentrius = core::run_serial(ds.constraints, opts);
    if (gentrius.reason != core::StopReason::kCompleted) continue;
    EXPECT_EQ(superb.count, gentrius.stand_trees) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gentrius
