// SUPERB resource-limit behaviour and saturation arithmetic.
#include <gtest/gtest.h>

#include "baseline/superb.hpp"
#include "datagen/dataset.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"

namespace gentrius::baseline {
namespace {

std::vector<phylo::Tree> comprehensive_instance(std::uint64_t seed,
                                                std::size_t n_taxa) {
  datagen::SimulatedParams p;
  p.n_taxa = n_taxa;
  p.n_loci = 4;
  p.missing_fraction = 0.45;
  p.seed = seed;
  auto ds = datagen::make_simulated(p);
  for (std::size_t l = 0; l < ds.pam.locus_count(); ++l)
    ds.pam.set_present(0, l, true);
  return pam::induced_subtrees(ds.species_tree, ds.pam);
}

TEST(SuperbLimits, BudgetExceededIsReported) {
  const auto cs = comprehensive_instance(8080, 30);
  SuperbOptions tiny;
  tiny.max_recursion_nodes = 2;
  const auto r = count_stand_superb(cs, 0, tiny);
  EXPECT_TRUE(r.budget_exceeded);
  EXPECT_LE(r.recursion_nodes, 3u);
}

TEST(SuperbLimits, ComponentCapIsReported) {
  // Many free taxa => many singleton components at the root level.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((c,a),(b,d));", taxa));
  for (int i = 0; i < 40; ++i) {
    const std::string w = "w" + std::to_string(i);
    cs.push_back(phylo::parse_newick("(" + w + ",c,a);", taxa));
  }
  SuperbOptions opts;
  opts.max_components = 10;
  const auto r = count_stand_superb(cs, taxa.id_of("c"), opts);
  EXPECT_TRUE(r.budget_exceeded);
}

TEST(SuperbLimits, DeterministicAcrossRuns) {
  const auto cs = comprehensive_instance(8181, 16);
  const auto a = count_stand_superb(cs, 0);
  const auto b = count_stand_superb(cs, 0);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.recursion_nodes, b.recursion_nodes);
}

}  // namespace
}  // namespace gentrius::baseline
