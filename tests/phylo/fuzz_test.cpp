// Robustness: malformed and mutated inputs must raise library exceptions,
// never crash or corrupt state.
#include <gtest/gtest.h>

#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "pam/pam.hpp"
#include "support/rng.hpp"

namespace gentrius::phylo {
namespace {

TEST(NewickFuzz, RandomBytesNeverCrash) {
  support::Rng rng(0xf22);
  const char alphabet[] = "(),;:'ab01. \t[]";
  for (int round = 0; round < 3000; ++round) {
    std::string input;
    const std::size_t len = rng.below(40);
    for (std::size_t i = 0; i < len; ++i)
      input.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    TaxonSet taxa;
    try {
      const Tree t = parse_newick(input, taxa);
      t.validate();  // anything accepted must be structurally sound
    } catch (const support::Error&) {
      // expected for almost all inputs
    }
  }
}

TEST(NewickFuzz, MutatedValidTreesNeverCrash) {
  support::Rng rng(0xabcd);
  const std::string base = "((alpha,beta),(gamma,'de lta'),(eps,zeta));";
  for (int round = 0; round < 3000; ++round) {
    std::string input = base;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(input.size());
      switch (rng.below(3)) {
        case 0:
          input.erase(pos, 1);
          break;
        case 1:
          input.insert(pos, 1, "(),;:'x"[rng.below(7)]);
          break;
        default:
          input[pos] = "(),;:'x"[rng.below(7)];
          break;
      }
      if (input.empty()) break;
    }
    TaxonSet taxa;
    try {
      const Tree t = parse_newick(input, taxa);
      t.validate();
    } catch (const support::Error&) {
    }
  }
}

TEST(PamFuzz, RandomTextNeverCrashes) {
  support::Rng rng(0x9a9a);
  const char alphabet[] = "0123456789 ab\n-";
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const std::size_t len = rng.below(60);
    for (std::size_t i = 0; i < len; ++i)
      input.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    TaxonSet taxa;
    try {
      (void)pam::Pam::parse(input, taxa);
    } catch (const support::Error&) {
    }
  }
}

TEST(TortureTest, LongRandomInsertRemoveSequences) {
  support::Rng rng(31337);
  Tree t = Tree::star({0, 1, 2});
  t.reserve_for_leaves(40);
  std::vector<InsertRecord> stack;
  TaxonId next_taxon = 3;
  std::vector<TaxonId> free_taxa;
  for (int step = 0; step < 20'000; ++step) {
    const bool can_insert = t.leaf_count() < 40;
    const bool can_remove = !stack.empty();
    const bool do_insert =
        can_insert && (!can_remove || rng.bernoulli(0.55));
    if (do_insert) {
      TaxonId taxon;
      if (!free_taxa.empty() && rng.bernoulli(0.5)) {
        taxon = free_taxa.back();
        free_taxa.pop_back();
      } else if (next_taxon < 40) {
        taxon = next_taxon++;
      } else {
        taxon = free_taxa.back();
        free_taxa.pop_back();
      }
      const auto edges = t.live_edges();
      stack.push_back(t.insert_leaf(taxon, edges[rng.below(edges.size())]));
    } else if (can_remove) {
      // LIFO discipline, like the enumerator.
      free_taxa.push_back(stack.back().taxon);
      t.remove_leaf(stack.back());
      stack.pop_back();
    }
    if (step % 500 == 0) t.validate();
  }
  while (!stack.empty()) {
    t.remove_leaf(stack.back());
    stack.pop_back();
  }
  t.validate();
  EXPECT_EQ(t.leaf_count(), 3u);
}

}  // namespace
}  // namespace gentrius::phylo
