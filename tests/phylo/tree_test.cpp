#include <gtest/gtest.h>

#include "datagen/tree_gen.hpp"
#include "phylo/topology.hpp"
#include "phylo/tree.hpp"
#include "support/rng.hpp"

namespace gentrius::phylo {
namespace {

TEST(Tree, StarConstruction) {
  const Tree t1 = Tree::star({5});
  EXPECT_EQ(t1.leaf_count(), 1u);
  EXPECT_EQ(t1.edge_count(), 0u);
  t1.validate();

  const Tree t2 = Tree::star({1, 2});
  EXPECT_EQ(t2.leaf_count(), 2u);
  EXPECT_EQ(t2.edge_count(), 1u);
  t2.validate();

  const Tree t3 = Tree::star({1, 2, 3});
  EXPECT_EQ(t3.leaf_count(), 3u);
  EXPECT_EQ(t3.edge_count(), 3u);
  t3.validate();
  EXPECT_TRUE(t3.has_taxon(2));
  EXPECT_FALSE(t3.has_taxon(4));
}

TEST(Tree, InsertRemoveRestoresExactState) {
  Tree t = Tree::star({0, 1, 2});
  const auto before_edges = t.live_edges();
  const auto before_enc = canonical_encoding(t);

  const auto rec = t.insert_leaf(3, before_edges[1]);
  t.validate();
  EXPECT_EQ(t.leaf_count(), 4u);
  EXPECT_EQ(t.edge_count(), 5u);

  t.remove_leaf(rec);
  t.validate();
  EXPECT_EQ(t.live_edges(), before_edges);
  EXPECT_EQ(canonical_encoding(t), before_enc);
}

TEST(Tree, LifoReuseYieldsIdenticalIds) {
  // The replay protocol depends on this: after insert+remove, repeating the
  // same insert must allocate the same ids.
  Tree t = Tree::star({0, 1, 2});
  const auto rec1 = t.insert_leaf(3, 0);
  const auto ids1 = std::tuple{rec1.moved_edge, rec1.leaf_edge, rec1.junction,
                               rec1.leaf};
  t.remove_leaf(rec1);
  const auto rec2 = t.insert_leaf(3, 0);
  const auto ids2 = std::tuple{rec2.moved_edge, rec2.leaf_edge, rec2.junction,
                               rec2.leaf};
  EXPECT_EQ(ids1, ids2);
}

TEST(Tree, DeepInsertRemoveStack) {
  support::Rng rng(17);
  Tree t = Tree::star({0, 1, 2});
  t.reserve_for_leaves(64);
  std::vector<InsertRecord> recs;
  for (TaxonId x = 3; x < 64; ++x) {
    const auto edges = t.live_edges();
    recs.push_back(
        t.insert_leaf(x, edges[rng.below(edges.size())]));
  }
  t.validate();
  EXPECT_EQ(t.leaf_count(), 64u);
  EXPECT_EQ(t.edge_count(), 2 * 64u - 3);
  const std::string grown = canonical_encoding(t);
  // Unwind half, re-apply, full state must match.
  std::vector<InsertRecord> undone;
  for (int i = 0; i < 30; ++i) {
    undone.push_back(recs.back());
    recs.pop_back();
    t.remove_leaf(undone.back());
  }
  t.validate();
  for (auto it = undone.rbegin(); it != undone.rend(); ++it)
    recs.push_back(t.insert_leaf(it->taxon, it->split_edge));
  EXPECT_EQ(canonical_encoding(t), grown);
  // And unwind everything.
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) t.remove_leaf(*it);
  t.validate();
  EXPECT_EQ(t.leaf_count(), 3u);
}

TEST(Tree, SmallInsertPath) {
  Tree t;
  const auto r1 = t.insert_leaf_small(7);
  EXPECT_EQ(t.leaf_count(), 1u);
  const auto r2 = t.insert_leaf_small(8);
  EXPECT_EQ(t.leaf_count(), 2u);
  EXPECT_EQ(t.edge_count(), 1u);
  t.validate();
  t.remove_leaf(r2);
  t.remove_leaf(r1);
  EXPECT_EQ(t.leaf_count(), 0u);
}

TEST(Tree, OtherEndAndAdjacency) {
  const Tree t = Tree::star({0, 1, 2});
  t.for_each_edge([&](EdgeId e) {
    const auto& ed = t.edge(e);
    EXPECT_EQ(t.other_end(e, ed.u), ed.v);
    EXPECT_EQ(t.other_end(e, ed.v), ed.u);
  });
}

TEST(Tree, EdgeSideTaxaPartitionsLeaves) {
  support::Rng rng(5);
  phylo::TaxonSet names;
  std::vector<TaxonId> taxa;
  for (TaxonId i = 0; i < 20; ++i) taxa.push_back(i);
  const Tree t = datagen::random_tree(taxa, rng);
  t.for_each_edge([&](EdgeId e) {
    auto a = datagen::edge_side_taxa(t, e, t.edge(e).u);
    auto b = datagen::edge_side_taxa(t, e, t.edge(e).v);
    EXPECT_EQ(a.size() + b.size(), 20u);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<TaxonId> merged;
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged));
    EXPECT_EQ(merged, taxa);
  });
}

TEST(Tree, ValidateCatchesCorruption) {
  Tree t = Tree::star({0, 1, 2});
  t.insert_leaf(3, 0);
  // Severing one adjacency half must be caught.
  Tree broken = t;
  broken.unlink_edge(broken.live_edges()[0]);
  EXPECT_THROW(broken.validate(), support::InternalError);
}

}  // namespace
}  // namespace gentrius::phylo
