#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/tree_gen.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "support/rng.hpp"

namespace gentrius::phylo {
namespace {

Tree parse(const char* s, TaxonSet& taxa) { return parse_newick(s, taxa); }

TEST(Topology, RestrictionBasics) {
  TaxonSet taxa;
  const Tree t = parse("((a,b),(c,d),(e,f));", taxa);
  const auto id = [&](const char* n) { return taxa.id_of(n); };

  const Tree r = restrict_to(t, {id("a"), id("c"), id("e"), id("f")});
  const Tree expected = parse("(a,c,(e,f));", taxa);
  EXPECT_TRUE(same_topology(r, expected));

  const Tree r2 = restrict_to(t, {id("a"), id("b")});
  EXPECT_EQ(r2.leaf_count(), 2u);
  const Tree r1 = restrict_to(t, {id("d")});
  EXPECT_EQ(r1.leaf_count(), 1u);
  const Tree r0 = restrict_to(t, {});
  EXPECT_EQ(r0.leaf_count(), 0u);
}

TEST(Topology, RestrictionIgnoresAbsentTaxa) {
  TaxonSet taxa;
  const Tree t = parse("((a,b),c,(d,e));", taxa);
  const TaxonId ghost = taxa.add("ghost");
  const Tree r = restrict_to(t, {taxa.id_of("a"), taxa.id_of("b"), ghost});
  EXPECT_EQ(r.leaf_count(), 2u);
}

TEST(Topology, DisplaysAndCompatible) {
  TaxonSet taxa;
  const Tree big = parse("((a,b),(c,d),(e,f));", taxa);
  const Tree sub_good = parse("((a,b),(c,e));", taxa);
  const Tree sub_bad = parse("((a,c),(b,e));", taxa);
  EXPECT_TRUE(displays(big, sub_good));
  EXPECT_FALSE(displays(big, sub_bad));
  EXPECT_TRUE(compatible(big, sub_good));
  EXPECT_FALSE(compatible(big, sub_bad));
  // Trees with <= 3 common taxa are always compatible.
  const Tree other = parse("((a,x),(y,z));", taxa);
  EXPECT_TRUE(compatible(big, other));
  // A tree with a taxon outside `big` is never displayed by it.
  EXPECT_FALSE(displays(big, other));
}

TEST(Topology, CompatibilityIsSymmetric) {
  support::Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    std::vector<TaxonId> ta, tb;
    for (TaxonId i = 0; i < 12; ++i) {
      if (rng.bernoulli(0.7)) ta.push_back(i);
      if (rng.bernoulli(0.7)) tb.push_back(i);
    }
    if (ta.size() < 4 || tb.size() < 4) continue;
    const Tree a = datagen::random_tree(ta, rng);
    const Tree b = datagen::random_tree(tb, rng);
    EXPECT_EQ(compatible(a, b), compatible(b, a));
  }
}

TEST(Topology, InducedSubtreesAreDisplayedAndCompatible) {
  support::Rng rng(123);
  std::vector<TaxonId> all;
  for (TaxonId i = 0; i < 30; ++i) all.push_back(i);
  const Tree species = datagen::random_tree(all, rng);

  for (int round = 0; round < 20; ++round) {
    std::vector<TaxonId> ya, yb;
    for (const TaxonId t : all) {
      if (rng.bernoulli(0.6)) ya.push_back(t);
      if (rng.bernoulli(0.6)) yb.push_back(t);
    }
    const Tree a = restrict_to(species, ya);
    const Tree b = restrict_to(species, yb);
    EXPECT_TRUE(displays(species, a));
    EXPECT_TRUE(displays(species, b));
    EXPECT_TRUE(compatible(a, b));  // both derive from one species tree
  }
}

TEST(Topology, RestrictionComposes) {
  // (T|Y1)|Y2 == T|(Y1 ∩ Y2)
  support::Rng rng(321);
  std::vector<TaxonId> all;
  for (TaxonId i = 0; i < 24; ++i) all.push_back(i);
  for (int round = 0; round < 20; ++round) {
    const Tree t = datagen::random_tree(all, rng);
    std::vector<TaxonId> y1, y2, inter;
    for (const TaxonId x : all) {
      const bool in1 = rng.bernoulli(0.7);
      const bool in2 = rng.bernoulli(0.7);
      if (in1) y1.push_back(x);
      if (in2) y2.push_back(x);
      if (in1 && in2) inter.push_back(x);
    }
    const Tree lhs = restrict_to(restrict_to(t, y1), y2);
    const Tree rhs = restrict_to(t, inter);
    EXPECT_TRUE(same_topology(lhs, rhs));
  }
}

TEST(Topology, HashMatchesEncodingEquality) {
  support::Rng rng(777);
  std::vector<TaxonId> all;
  for (TaxonId i = 0; i < 10; ++i) all.push_back(i);
  std::vector<Tree> trees;
  for (int i = 0; i < 30; ++i) trees.push_back(datagen::random_tree(all, rng));
  for (const auto& a : trees) {
    for (const auto& b : trees) {
      const bool same = canonical_encoding(a) == canonical_encoding(b);
      EXPECT_EQ(same, same_topology(a, b));
      if (same) EXPECT_EQ(topology_hash(a), topology_hash(b));
    }
  }
}

TEST(Topology, CommonTaxaSorted) {
  TaxonSet taxa;
  const Tree a = parse("((a,b),(c,d));", taxa);
  const Tree b = parse("((d,b),(x,y));", taxa);
  const auto common = common_taxa(a, b);
  EXPECT_EQ(common.size(), 2u);
  EXPECT_TRUE(std::is_sorted(common.begin(), common.end()));
}

}  // namespace
}  // namespace gentrius::phylo
