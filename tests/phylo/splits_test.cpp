#include <gtest/gtest.h>

#include "datagen/tree_gen.hpp"
#include "phylo/newick.hpp"
#include "phylo/splits.hpp"
#include "phylo/topology.hpp"
#include "support/rng.hpp"

namespace gentrius::phylo {
namespace {

Tree parse(const char* s, TaxonSet& taxa) { return parse_newick(s, taxa); }

TEST(Splits, BinaryTreeHasNMinus3Splits) {
  support::Rng rng(1);
  for (const std::size_t n : {4u, 5u, 8u, 20u, 60u}) {
    std::vector<TaxonId> taxa;
    for (TaxonId i = 0; i < n; ++i) taxa.push_back(i);
    const Tree t = datagen::random_tree(taxa, rng);
    EXPECT_EQ(tree_splits(t, n).size(), n - 3);
  }
  TaxonSet names;
  EXPECT_TRUE(tree_splits(parse("(a,b,c);", names), 3).empty());
}

TEST(Splits, CanonicalSideExcludesLowestTaxon) {
  TaxonSet taxa;
  const Tree t = parse("((a,b),(c,d),(e,f));", taxa);
  for (const auto& s : tree_splits(t, taxa.size()))
    EXPECT_FALSE(s.test(taxa.id_of("a")));
}

TEST(Rf, IdenticalTreesAtZero) {
  support::Rng rng(2);
  std::vector<TaxonId> taxa;
  for (TaxonId i = 0; i < 15; ++i) taxa.push_back(i);
  const Tree t = datagen::random_tree(taxa, rng);
  EXPECT_EQ(rf_distance(t, t), 0u);
}

TEST(Rf, KnownSmallDistances) {
  TaxonSet taxa;
  const Tree t1 = parse("((a,b),(c,d),e);", taxa);
  const Tree t2 = parse("((a,c),(b,d),e);", taxa);
  // 5 taxa: 2 splits each, none shared.
  EXPECT_EQ(rf_distance(t1, t2), 4u);
  const Tree t3 = parse("((a,b),(c,e),d);", taxa);
  // t1 and t3 share the ab|cde split only.
  EXPECT_EQ(rf_distance(t1, t3), 2u);
}

TEST(Rf, SymmetricAndBounded) {
  support::Rng rng(3);
  std::vector<TaxonId> taxa;
  for (TaxonId i = 0; i < 12; ++i) taxa.push_back(i);
  for (int round = 0; round < 20; ++round) {
    const Tree a = datagen::random_tree(taxa, rng);
    const Tree b = datagen::random_tree(taxa, rng);
    const auto d = rf_distance(a, b);
    EXPECT_EQ(d, rf_distance(b, a));
    EXPECT_LE(d, 2 * (12 - 3));
    EXPECT_EQ(d % 2, 0u);  // both trees binary: symmetric difference is even
    EXPECT_EQ(d == 0, same_topology(a, b));
  }
}

TEST(Rf, DifferentLeafSetsRejected) {
  TaxonSet taxa;
  const Tree a = parse("((a,b),(c,d));", taxa);
  const Tree b = parse("((a,b),(c,e));", taxa);
  EXPECT_THROW(rf_distance(a, b), support::InvalidInput);
}

TEST(Consensus, SingleTreeIsFullyResolved) {
  TaxonSet taxa;
  const Tree t = parse("((a,b),(c,d),(e,f));", taxa);
  const auto c = strict_consensus({t});
  EXPECT_EQ(c.internal_edge_count(), 3u);
  EXPECT_EQ(c.leaf_count(), 6u);
  // Consensus newick re-parses to the same topology (it is binary here...
  // modulo the root polytomy of the unrooted representation).
  TaxonSet taxa2 = taxa;
  const Tree back = parse_newick(c.to_newick(taxa), taxa2,
                                 {.register_new_taxa = false,
                                  .require_binary = false});
  EXPECT_TRUE(same_topology(restrict_to(back, back.taxa()), t));
}

TEST(Consensus, AllTopologiesGiveAStar) {
  // Strict consensus over every tree on 5 taxa has no internal edges.
  TaxonSet taxa;
  std::vector<Tree> all;
  support::Rng rng(4);
  std::vector<TaxonId> ids{0, 1, 2, 3, 4};
  for (int i = 0; i < 200; ++i) all.push_back(datagen::random_tree(ids, rng));
  const auto c = strict_consensus(all);
  EXPECT_EQ(c.internal_edge_count(), 0u);
}

TEST(Consensus, SharedSplitSurvives) {
  TaxonSet taxa;
  std::vector<Tree> trees;
  trees.push_back(parse("((a,b),((c,d),(e,f)));", taxa));
  trees.push_back(parse("((a,b),((c,e),(d,f)));", taxa));
  trees.push_back(parse("((a,b),((c,f),(d,e)));", taxa));
  const auto c = strict_consensus(trees);
  // ab|cdef and cdef-side... ab|rest is shared; the inner resolution is not.
  EXPECT_EQ(c.internal_edge_count(), 1u);
}

TEST(Consensus, MajorityKeepsFrequentSplits) {
  TaxonSet taxa;
  std::vector<Tree> trees;
  trees.push_back(parse("((a,b),(c,d),e);", taxa));
  trees.push_back(parse("((a,b),(c,d),e);", taxa));
  trees.push_back(parse("((a,c),(b,d),e);", taxa));
  const auto maj = majority_consensus(trees, 0.5);
  EXPECT_EQ(maj.internal_edge_count(), 2u);  // both splits in 2/3 of trees
  const auto strict = strict_consensus(trees);
  EXPECT_EQ(strict.internal_edge_count(), 0u);
}

TEST(Consensus, FromSplitsRejectsNonLaminar) {
  support::Bitset s1(6), s2(6);
  s1.set(1);
  s1.set(2);
  s2.set(2);
  s2.set(3);
  EXPECT_THROW(
      MultiTree::from_splits({0, 1, 2, 3, 4, 5}, {s1, s2}, 6),
      support::InvalidInput);
}

}  // namespace
}  // namespace gentrius::phylo
