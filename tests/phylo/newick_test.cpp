#include <gtest/gtest.h>

#include "datagen/tree_gen.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "support/rng.hpp"

namespace gentrius::phylo {
namespace {

TEST(Newick, ParseTrifurcatingRoot) {
  TaxonSet taxa;
  const Tree t = parse_newick("(a,b,(c,d));", taxa);
  EXPECT_EQ(t.leaf_count(), 4u);
  EXPECT_EQ(t.edge_count(), 5u);
  t.validate();
}

TEST(Newick, ParseRootedRepresentationUnroots) {
  TaxonSet taxa;
  const Tree rooted = parse_newick("((a,b),(c,d));", taxa);
  const Tree unrooted = parse_newick("(a,b,(c,d));", taxa);
  EXPECT_TRUE(same_topology(rooted, unrooted));
}

TEST(Newick, BranchLengthsAndCommentsIgnored) {
  TaxonSet taxa;
  const Tree a =
      parse_newick("((a:0.1,b:0.2):0.05,[comment](c:1e-3,d):2,e);", taxa);
  const Tree b = parse_newick("((a,b),(c,d),e);", taxa);
  EXPECT_TRUE(same_topology(a, b));
}

TEST(Newick, QuotedLabelsRoundTrip) {
  TaxonSet taxa;
  const Tree t = parse_newick("('sp. one','it''s',(plain,'(x)'));", taxa);
  EXPECT_TRUE(taxa.contains("sp. one"));
  EXPECT_TRUE(taxa.contains("it's"));
  EXPECT_TRUE(taxa.contains("(x)"));
  const std::string out = to_newick(t, taxa);
  TaxonSet taxa2 = taxa;
  const Tree back = parse_newick(out, taxa2, {.register_new_taxa = false});
  EXPECT_TRUE(same_topology(t, back));
}

TEST(Newick, SingleLeafAndPair) {
  TaxonSet taxa;
  const Tree one = parse_newick("alpha;", taxa);
  EXPECT_EQ(one.leaf_count(), 1u);
  EXPECT_EQ(to_newick(one, taxa), "alpha;");
  const Tree two = parse_newick("(alpha,beta);", taxa);
  EXPECT_EQ(two.leaf_count(), 2u);
  EXPECT_EQ(two.edge_count(), 1u);
}

TEST(Newick, DuplicateTaxonRejected) {
  TaxonSet taxa;
  EXPECT_THROW(parse_newick("(a,b,(a,c));", taxa), support::InvalidInput);
}

TEST(Newick, PolytomyRejectedByDefault) {
  TaxonSet taxa;
  EXPECT_THROW(parse_newick("(a,b,c,d);", taxa), support::InvalidInput);
}

TEST(Newick, UnknownTaxonRejectedInStrictMode) {
  TaxonSet taxa;
  taxa.add("a");
  taxa.add("b");
  taxa.add("c");
  taxa.add("d");
  EXPECT_NO_THROW(parse_newick("(a,b,(c,d));", taxa, {.register_new_taxa = false}));
  EXPECT_THROW(parse_newick("(a,b,(c,zz));", taxa, {.register_new_taxa = false}),
               support::InvalidInput);
}

class BadNewick : public ::testing::TestWithParam<const char*> {};

TEST_P(BadNewick, RaisesParseError) {
  TaxonSet taxa;
  EXPECT_THROW(parse_newick(GetParam(), taxa), support::Error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadNewick,
    ::testing::Values("", "(", "(a", "(a,", "(a,b", "(a,b;", "(a,b))",
                      "(a,b),c;", "(a,,b);", "(a,b,(c,d)); trailing",
                      "(a,b,'unterminated);", "(a,b[unclosed;", "((a),b,c);",
                      "(a,b,(c,d)):;", "(:0.1,b,c);"));

TEST(Newick, CanonicalFormIsRepresentationInvariant) {
  TaxonSet taxa;
  const Tree a = parse_newick("((a,b),(c,d),e);", taxa);
  const Tree b = parse_newick("(e,(d,c),(b,a));", taxa);
  const Tree c = parse_newick("(((a,b),e),c,d);", taxa);
  EXPECT_EQ(canonical_newick(a, taxa), canonical_newick(b, taxa));
  EXPECT_EQ(canonical_newick(a, taxa), canonical_newick(c, taxa));
  const Tree different = parse_newick("((a,c),(b,d),e);", taxa);
  EXPECT_NE(canonical_newick(a, taxa), canonical_newick(different, taxa));
}

TEST(Newick, RandomTreeRoundTrips) {
  support::Rng rng(2024);
  for (int round = 0; round < 25; ++round) {
    TaxonSet taxa;
    std::vector<TaxonId> ids;
    const std::size_t n = 4 + rng.below(40);
    for (std::size_t i = 0; i < n; ++i)
      ids.push_back(taxa.add("t" + std::to_string(i)));
    const Tree t = datagen::random_tree(ids, rng);
    TaxonSet taxa2 = taxa;
    const Tree back = parse_newick(to_newick(t, taxa), taxa2,
                                   {.register_new_taxa = false});
    EXPECT_TRUE(same_topology(t, back)) << to_newick(t, taxa);
    const Tree back2 = parse_newick(canonical_newick(t, taxa), taxa2,
                                    {.register_new_taxa = false});
    EXPECT_TRUE(same_topology(t, back2));
  }
}

}  // namespace
}  // namespace gentrius::phylo
