#include <gtest/gtest.h>

#include "gentrius/problem.hpp"
#include "phylo/newick.hpp"

namespace gentrius::core {
namespace {

TEST(Problem, InitialTreeHeuristicPicksMaxOverlap) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  // Tree 0 shares 2+2 taxa, tree 1 shares 2+4, tree 2 shares 2+4.
  cs.push_back(phylo::parse_newick("((a,b),(x1,x2));", taxa));
  cs.push_back(phylo::parse_newick("((a,b),(c,d),(e,f));", taxa));
  cs.push_back(phylo::parse_newick("((c,d),(e,f),(y1,y2));", taxa));
  Options opts;
  const auto p = build_problem(cs, opts);
  // Overlaps: t0: |t0∩t1|+|t0∩t2| = 2+0 = 2; t1: 2+4 = 6; t2: 0+4 = 4.
  EXPECT_EQ(p.initial_constraint, 1u);

  Options no_heur;
  no_heur.select_initial_tree = false;
  EXPECT_EQ(build_problem(cs, no_heur).initial_constraint, 0u);

  Options forced;
  forced.initial_constraint = 2;
  EXPECT_EQ(build_problem(cs, forced).initial_constraint, 2u);
}

TEST(Problem, MissingTaxaAndMembership) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),(c,d));", taxa));
  cs.push_back(phylo::parse_newick("((a,e),(b,f));", taxa));
  Options opts;
  opts.initial_constraint = 0;
  const auto p = build_problem(cs, opts);
  EXPECT_EQ(p.n_taxa, 6u);
  EXPECT_EQ(p.all_taxa.count(), 6u);
  // Missing from ((a,b),(c,d)): e and f.
  ASSERT_EQ(p.missing_taxa.size(), 2u);
  EXPECT_EQ(p.missing_taxa[0], taxa.id_of("e"));
  EXPECT_EQ(p.missing_taxa[1], taxa.id_of("f"));
  // trees_of_taxon: a in both, c only in tree 0.
  EXPECT_EQ(p.trees_of_taxon[taxa.id_of("a")].size(), 2u);
  EXPECT_EQ(p.trees_of_taxon[taxa.id_of("c")],
            (std::vector<std::uint32_t>{0}));
}

TEST(Problem, HeuristicSkipsTinyTrees) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("(a,b);", taxa));  // too small to start from
  cs.push_back(phylo::parse_newick("((a,b),(c,d));", taxa));
  Options opts;
  const auto p = build_problem(cs, opts);
  EXPECT_EQ(p.initial_constraint, 1u);
  // And explicitly forcing the tiny tree is rejected.
  Options forced;
  forced.initial_constraint = 0;
  EXPECT_THROW(build_problem(cs, forced), support::InvalidInput);
}

TEST(Problem, TaxonKeysAreStableAndNonZero) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),(c,d));", taxa));
  Options opts;
  const auto p1 = build_problem(cs, opts);
  const auto p2 = build_problem(cs, opts);
  EXPECT_EQ(p1.taxon_keys, p2.taxon_keys);
  for (const auto k : p1.taxon_keys) EXPECT_NE(k, 0u);
}

}  // namespace
}  // namespace gentrius::core
