// Golden determinism test: the optimized engine must make bit-identical
// decisions to the seed implementation.
//
// A reference trace was recorded from the seed engine (the implementation
// predating the hot-path overhaul of PR 4) over a fixed corpus of instances:
// for every state of a depth-first enumeration driven directly through the
// Terrace API, the chosen taxon, its admissible-branch list (content and
// order), dead-end attribution, and the canonical stand set are folded into
// an FNV-1a hash; the first events are also kept verbatim so a mismatch
// names the first diverging decision. Serial, virtual N_t in {2,4,8} and
// real-pool N_t in {2,4} runs are pinned by their counts plus a stand-set
// hash. Any change to remaining_-iteration order, early-exit tie-breaking,
// branch collection order or task splitting shows up here.
//
// Regenerate (only when intentionally changing engine semantics):
//   GENTRIUS_GOLDEN_REGEN=1 ./golden_determinism_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "datagen/dataset.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/enumerator.hpp"
#include "gentrius/serial.hpp"
#include "gentrius/terrace.hpp"
#include "parallel/pool.hpp"
#include "phylo/topology.hpp"
#include "vthread/virtual_pool.hpp"

#ifndef GENTRIUS_GOLDEN_DIR
#error "GENTRIUS_GOLDEN_DIR must point at tests/data"
#endif

namespace gentrius::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct Hasher {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
  }
  void mix_string(const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
  }
};

struct Instance {
  std::string name;
  bool empirical = false;
  datagen::SimulatedParams sim;
  datagen::EmpiricalLikeParams emp;
  Options::DynamicVariant variant = Options::DynamicVariant::kMinBranches;
  bool incremental = true;
  std::uint64_t event_cap = 200'000;  ///< hard stop for the mini-DFS
};

std::vector<Instance> corpus() {
  std::vector<Instance> out;
  const auto sim = [&](const char* name, std::size_t taxa, std::size_t loci,
                       double miss, std::uint64_t seed) {
    Instance in;
    in.name = name;
    in.sim.n_taxa = taxa;
    in.sim.n_loci = loci;
    in.sim.missing_fraction = miss;
    in.sim.seed = seed;
    out.push_back(in);
    return out.size() - 1;
  };
  sim("bench_default_48x8", 48, 8, 0.5, 4242);
  sim("multi_constraint_56x12", 56, 12, 0.55, 7014);
  sim("dead_end_heavy_56x12", 56, 12, 0.55, 7025);
  sim("dense_loci_56x20", 56, 20, 0.5, 9031);
  const std::size_t mc = sim("most_constrained_48x8", 48, 8, 0.5, 4242);
  out[mc].variant = Options::DynamicVariant::kMostConstrained;
  const std::size_t rc = sim("recompute_mode_56x12", 56, 12, 0.55, 7014);
  out[rc].incremental = false;
  {
    Instance in;
    in.name = "empirical_rogue_72x16";
    in.empirical = true;
    in.emp.n_taxa = 72;
    in.emp.n_loci = 16;
    in.emp.seed = 509;
    out.push_back(in);
  }
  return out;
}

Problem make_problem(const Instance& in, const Options& opts) {
  if (in.empirical)
    return build_problem(datagen::make_empirical_like(in.emp).constraints,
                         opts);
  return build_problem(datagen::make_simulated(in.sim).constraints, opts);
}

/// Depth-first enumeration driven directly through the Terrace API,
/// recording every decision the selection heuristic makes. Returns the
/// number of events; fills the hash and the verbatim head of the stream.
std::uint64_t trace_dfs(Terrace& terrace, Options::DynamicVariant variant,
                        std::uint64_t event_cap, Hasher& hash,
                        std::vector<std::string>& head) {
  constexpr std::size_t kHeadEvents = 64;
  std::uint64_t events = 0;
  std::vector<EdgeId> branches;
  struct Frame {
    TaxonId taxon;
    std::vector<EdgeId> branches;
    std::size_t next = 0;
    InsertRecord rec;
    bool applied = false;
  };
  std::vector<Frame> stack;
  bool choosing = true;
  for (;;) {
    if (events >= event_cap) break;
    if (choosing) {
      const auto choice = terrace.choose_dynamic(branches, variant);
      ++events;
      std::ostringstream line;
      if (choice.complete) {
        const std::string enc = phylo::canonical_encoding(terrace.agile());
        hash.mix_string("T");
        hash.mix_string(enc);
        line << "tree " << enc;
        choosing = false;
      } else if (choice.dead_end) {
        hash.mix_string("D");
        hash.mix(choice.taxon);
        line << "dead " << choice.taxon;
        choosing = false;
      } else {
        hash.mix_string("C");
        hash.mix(choice.taxon);
        hash.mix(branches.size());
        for (const EdgeId e : branches) hash.mix(e);
        line << "choose " << choice.taxon << " [";
        for (std::size_t i = 0; i < branches.size(); ++i)
          line << (i ? "," : "") << branches[i];
        line << "]";
        Frame f;
        f.taxon = choice.taxon;
        f.branches = branches;
        stack.push_back(std::move(f));
      }
      if (head.size() < kHeadEvents) head.push_back(line.str());
      if (choosing) {
        Frame& f = stack.back();
        f.rec = terrace.insert(f.taxon, f.branches[f.next++]);
        f.applied = true;
      }
      continue;
    }
    // Backtrack.
    bool advanced = false;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.applied) {
        terrace.remove(f.rec);
        f.applied = false;
      }
      if (f.next < f.branches.size()) {
        f.rec = terrace.insert(f.taxon, f.branches[f.next++]);
        f.applied = true;
        choosing = true;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) break;
  }
  // Unwind anything left (event cap hit mid-tree).
  while (!stack.empty()) {
    if (stack.back().applied) terrace.remove(stack.back().rec);
    stack.pop_back();
  }
  return events;
}

std::uint64_t stand_set_hash(std::vector<std::string> trees) {
  std::sort(trees.begin(), trees.end());
  Hasher h;
  for (const auto& t : trees) {
    h.mix_string(t);
    h.mix_string("|");
  }
  return h.h;
}

/// One line per fact; the whole report is compared verbatim.
std::string build_report() {
  std::ostringstream out;
  for (const Instance& in : corpus()) {
    Options opts;
    opts.dynamic_variant = in.variant;
    opts.incremental_mappings = in.incremental;
    opts.stop.max_states = 400'000;
    opts.stop.max_stand_trees = 1'000'000'000;
    opts.collect_trees = true;
    const auto problem = make_problem(in, opts);

    out << "instance " << in.name << "\n";

    // 1. Terrace-level decision trace.
    {
      Terrace terrace(problem, in.incremental);
      Hasher hash;
      std::vector<std::string> head;
      const std::uint64_t events =
          trace_dfs(terrace, in.variant, in.event_cap, hash, head);
      out << "  dfs_events " << events << "\n";
      out << "  dfs_hash " << hash.h << "\n";
      for (const auto& line : head) out << "  ev " << line << "\n";
    }

    // 2. Serial engine counts and stand set.
    const auto serial = run_serial(problem, opts);
    out << "  serial states " << serial.intermediate_states << " trees "
        << serial.stand_trees << " dead_ends " << serial.dead_ends
        << " reason " << to_string(serial.reason) << "\n";
    out << "  serial stand_hash " << stand_set_hash(serial.trees) << "\n";

    // 3. Virtual pools: counts and stand sets must match serial exactly.
    for (const std::size_t nt : {2UL, 4UL, 8UL}) {
      const auto r = vthread::run_virtual(problem, opts, nt);
      out << "  virtual nt=" << nt << " states " << r.intermediate_states
          << " trees " << r.stand_trees << " dead_ends " << r.dead_ends
          << " stand_hash " << stand_set_hash(r.trees) << "\n";
    }

    // 4. Real pools (scheduling is nondeterministic, totals are not).
    for (const std::size_t nt : {2UL, 4UL}) {
      const auto r = parallel::run_parallel(problem, opts, nt);
      out << "  pool nt=" << nt << " trees " << r.stand_trees
          << " stand_hash " << stand_set_hash(r.trees) << "\n";
    }

    // 5/6. The distributed scheduler implements the same decomposition, so
    // its counts and stand sets are pinned to the same values — virtual
    // runs deterministically, real pools by totals.
    {
      Options dopts = opts;
      dopts.scheduler = Scheduler::kDistributedDeques;
      for (const std::size_t nt : {2UL, 4UL, 8UL}) {
        const auto r = vthread::run_virtual(problem, dopts, nt);
        out << "  virtual-deques nt=" << nt << " states "
            << r.intermediate_states << " trees " << r.stand_trees
            << " dead_ends " << r.dead_ends << " stand_hash "
            << stand_set_hash(r.trees) << "\n";
        // The deque *schedule* itself (not just its totals) is a pure
        // function of the seed under the simulator: pin the virtual
        // makespan and steal count so cost-model or deque-protocol edits
        // that shift the schedule are visible here. Makespan is printed in
        // centi-units to stay stable under float formatting.
        out << "  deques-schedule nt=" << nt << " makespan_cu "
            << static_cast<std::uint64_t>(r.virtual_makespan * 100.0 + 0.5)
            << " stolen " << r.sched.tasks_stolen << " steal_attempts "
            << r.sched.steal_attempts << "\n";
      }
      for (const std::size_t nt : {2UL, 4UL}) {
        const auto r = parallel::run_parallel(problem, dopts, nt);
        out << "  pool-deques nt=" << nt << " trees " << r.stand_trees
            << " stand_hash " << stand_set_hash(r.trees) << "\n";
      }
    }
  }

  // 7. Sharded decomposition (PR 8; appended so every earlier block stays
  // byte-frozen). Multi-component instances through the sharded drivers:
  // the canonical shard order and per-shard rollups are pinned verbatim,
  // counts and stand sets across serial / virtual / pool backends must
  // agree with each other, and the virtual sharded schedule (makespan in
  // centi-units) pins the CostModel shard_dispatch/merge charges.
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    benchutil::MultiComponentParams params;
    params.n_components = 2;
    params.min_taxa_per_component = 4;
    params.max_taxa_per_component = 5;
    params.loci_per_component = 2;
    params.seed = seed;
    const auto ds = benchutil::make_multi_component(params);
    out << "instance decompose_" << ds.name << "\n";

    Options opts;
    opts.collect_trees = true;
    opts.decompose = Decompose::kComponents;

    const auto serial = decompose::run_serial(ds.constraints, opts);
    out << "  sharded serial trees " << serial.stand_trees << " states "
        << serial.intermediate_states << " dead_ends " << serial.dead_ends
        << " reason " << to_string(serial.reason) << "\n";
    for (const auto& s : serial.shards)
      out << "  " << decompose::shard_trace_line(s) << "\n";
    out << "  sharded serial stand_hash " << stand_set_hash(serial.trees)
        << "\n";

    for (const std::size_t nt : {2UL, 4UL, 8UL}) {
      const auto r = decompose::run_virtual(ds.constraints, opts, nt);
      out << "  sharded virtual nt=" << nt << " trees " << r.stand_trees
          << " states " << r.intermediate_states << " stand_hash "
          << stand_set_hash(r.trees) << " makespan_cu "
          << static_cast<std::uint64_t>(r.virtual_makespan * 100.0 + 0.5)
          << "\n";
    }

    for (const std::size_t nt : {2UL}) {
      const auto r = decompose::run_parallel(ds.constraints, opts, nt);
      out << "  sharded pool nt=" << nt << " trees " << r.stand_trees
          << " stand_hash " << stand_set_hash(r.trees) << "\n";
      for (const auto& s : r.shards)
        out << "  " << decompose::shard_trace_line(s) << "\n";
    }
  }
  return out.str();
}

TEST(GoldenDeterminism, MatchesSeedEngineTrace) {
  const std::string path =
      std::string(GENTRIUS_GOLDEN_DIR) + "/golden_trace.txt";
  const std::string report = build_report();
  if (std::getenv("GENTRIUS_GOLDEN_REGEN") != nullptr) {
    std::ofstream f(path);
    ASSERT_TRUE(f.good()) << "cannot write " << path;
    f << report;
    GTEST_SKIP() << "golden trace regenerated at " << path;
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " (regenerate with GENTRIUS_GOLDEN_REGEN=1)";
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string golden = buf.str();

  if (report == golden) return;
  // Diff line by line so the first diverging decision is named.
  std::istringstream ra(report), rb(golden);
  std::string la, lb;
  std::size_t line = 0;
  for (;;) {
    const bool ga = static_cast<bool>(std::getline(ra, la));
    const bool gb = static_cast<bool>(std::getline(rb, lb));
    ++line;
    if (!ga && !gb) break;
    ASSERT_EQ(ga, gb) << "report length diverges at line " << line;
    ASSERT_EQ(la, lb) << "first divergence at line " << line;
  }
  FAIL() << "reports differ but no line mismatch found";
}

}  // namespace
}  // namespace gentrius::core
