// Direct tests of the Enumerator state machine: prefix semantics, the
// task-offer rules, adopt/rewind round trips, and counting discipline.
#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "gentrius/enumerator.hpp"
#include "gentrius/serial.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"

namespace gentrius::core {
namespace {

/// Test sink that records every offered task and accepts the first `cap`.
class RecordingSink final : public TaskSink {
 public:
  explicit RecordingSink(std::size_t cap) : cap_(cap) {}
  bool try_push(Task& task) override {
    if (tasks.size() >= cap_) return false;
    tasks.push_back(task);  // copy: the recording must outlive the pool
    return true;
  }
  std::vector<Task> tasks;

 private:
  std::size_t cap_;
};

datagen::Dataset hard_dataset(std::uint64_t seed = 2023) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 28;
  sp.n_loci = 5;
  sp.missing_fraction = 0.5;
  sp.seed = seed;
  return datagen::make_simulated(sp);
}

TEST(Enumerator, PrefixIsDeterministicAcrossInstances) {
  const auto ds = hard_dataset();
  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  CounterSink sink(opts.stop);
  Enumerator a(problem, opts, sink), b(problem, opts, sink);
  const auto& pa = a.run_prefix(true);
  const auto& pb = b.run_prefix(false);
  EXPECT_EQ(pa.outcome, pb.outcome);
  EXPECT_EQ(pa.split_taxon, pb.split_taxon);
  EXPECT_EQ(pa.branches, pb.branches);
  EXPECT_EQ(pa.length, pb.length);
  // Only the counting enumerator advanced the shared states counter.
  a.counters().flush_all();
  b.counters().flush_all();
  EXPECT_EQ(sink.states(), pa.length);
}

TEST(Enumerator, UncountedPrefixKeepsTotalsSerial) {
  const auto ds = hard_dataset();
  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  const auto serial = run_serial(problem, opts);

  // Simulate two "threads" sharing the initial branches; neither prefix is
  // double counted, replays are free: totals must equal the serial run.
  CounterSink sink(opts.stop);
  Enumerator a(problem, opts, sink), b(problem, opts, sink);
  const auto& prefix = a.run_prefix(true);
  b.run_prefix(false);
  ASSERT_EQ(prefix.outcome, Enumerator::Prefix::Outcome::kSplit);
  const std::size_t half = prefix.branches.size() / 2;
  std::vector<EdgeId> first(prefix.branches.begin(),
                            prefix.branches.begin() + half);
  std::vector<EdgeId> second(prefix.branches.begin() + half,
                             prefix.branches.end());
  a.begin_branches(prefix.split_taxon, first);
  b.begin_branches(prefix.split_taxon, second);
  while (a.step() == Enumerator::Step::kWorked) {}
  while (b.step() == Enumerator::Step::kWorked) {}
  a.counters().flush_all();
  b.counters().flush_all();
  EXPECT_EQ(sink.stand_trees(), serial.stand_trees);
  EXPECT_EQ(sink.states(), serial.intermediate_states);
  EXPECT_EQ(sink.dead_ends(), serial.dead_ends);
}

TEST(Enumerator, AdoptRewindRoundTripsExactly) {
  const auto ds = hard_dataset(77);
  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  CounterSink sink(opts.stop);

  // A producer generates tasks; a thief replays one and hands its agile
  // tree back to I0 unchanged.
  Enumerator producer(problem, opts, sink);
  RecordingSink tasks(4);
  producer.set_task_sink(&tasks);
  const auto& prefix = producer.run_prefix(true);
  ASSERT_EQ(prefix.outcome, Enumerator::Prefix::Outcome::kSplit);
  producer.begin_branches(prefix.split_taxon, prefix.branches);
  while (tasks.tasks.empty() &&
         producer.step() == Enumerator::Step::kWorked) {}
  ASSERT_FALSE(tasks.tasks.empty()) << "instance never offered a task";

  Enumerator thief(problem, opts, sink);
  thief.run_prefix(false);
  const std::string at_i0 = phylo::canonical_encoding(thief.terrace().agile());
  const auto& task = tasks.tasks.front();
  const std::size_t replayed = thief.adopt_task(task);
  EXPECT_EQ(replayed, task.path.size());
  EXPECT_NE(phylo::canonical_encoding(thief.terrace().agile()), at_i0);
  const std::size_t removed = thief.rewind_to_split();
  EXPECT_EQ(removed, task.path.size());
  EXPECT_EQ(phylo::canonical_encoding(thief.terrace().agile()), at_i0);

  // And the thief can actually *work* a task to completion.
  thief.adopt_task(task);
  while (thief.step() == Enumerator::Step::kWorked) {}
  thief.rewind_to_split();
  EXPECT_EQ(phylo::canonical_encoding(thief.terrace().agile()), at_i0);
}

TEST(Enumerator, NoTaskOfferedBelowThreeRemainingTaxa) {
  // An instance whose exploration runs with <= 2 remaining taxa after the
  // split: the enumerator must never offer tasks.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),c,(d,e));", taxa));
  cs.push_back(phylo::parse_newick("(w,a,b);", taxa));  // 1 free taxon
  Options opts;
  const auto problem = build_problem(cs, opts);
  CounterSink sink(opts.stop);
  Enumerator e(problem, opts, sink);
  RecordingSink tasks(100);
  e.set_task_sink(&tasks);
  const auto& prefix = e.run_prefix(true);
  ASSERT_EQ(prefix.outcome, Enumerator::Prefix::Outcome::kSplit);
  e.begin_branches(prefix.split_taxon, prefix.branches);
  while (e.step() == Enumerator::Step::kWorked) {}
  EXPECT_TRUE(tasks.tasks.empty());
  e.counters().flush_all();
  EXPECT_EQ(sink.stand_trees(), 7u);
}

TEST(Enumerator, OfferedTaskHalvesTheBranchSet) {
  const auto ds = hard_dataset(11);
  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  CounterSink sink(opts.stop);
  Enumerator e(problem, opts, sink);
  RecordingSink tasks(1);
  e.set_task_sink(&tasks);
  const auto& prefix = e.run_prefix(true);
  ASSERT_EQ(prefix.outcome, Enumerator::Prefix::Outcome::kSplit);
  e.begin_branches(prefix.split_taxon, prefix.branches);
  while (tasks.tasks.empty() && e.step() == Enumerator::Step::kWorked) {}
  ASSERT_EQ(tasks.tasks.size(), 1u);
  EXPECT_GE(tasks.tasks[0].branches.size(), 1u);
  EXPECT_EQ(e.tasks_offered(), 1u);
}

TEST(Enumerator, StopFlagHaltsStepping) {
  const auto ds = hard_dataset(5);
  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  CounterSink sink(opts.stop);
  Enumerator e(problem, opts, sink);
  const auto& prefix = e.run_prefix(true);
  ASSERT_EQ(prefix.outcome, Enumerator::Prefix::Outcome::kSplit);
  e.begin_branches(prefix.split_taxon, prefix.branches);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(e.step(), Enumerator::Step::kWorked);
  sink.request_stop(StopReason::kTreeLimit);
  EXPECT_EQ(e.step(), Enumerator::Step::kStopped);
}

}  // namespace
}  // namespace gentrius::core
