// Direct validation of the double-edge-mapping machinery: at random
// intermediate states, the Terrace's admissible-branch sets must equal the
// definitional set {e : agile+x@e restricted to common taxa equals the
// constraint's restriction} for every remaining taxon.
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/dataset.hpp"
#include "gentrius/terrace.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "support/rng.hpp"

namespace gentrius::core {
namespace {

/// Definitional admissibility: try the insertion and test the invariant.
std::vector<EdgeId> definitional_branches(Terrace& terrace,
                                          const Problem& problem, TaxonId x) {
  std::vector<EdgeId> out;
  for (const EdgeId e : terrace.agile().live_edges()) {
    const auto rec = terrace.insert(x, e);
    bool ok = true;
    for (const std::uint32_t i : problem.trees_of_taxon[x]) {
      // common taxa of the extended agile tree and T_i
      std::vector<TaxonId> common;
      problem.constraint_taxa[i].for_each([&](std::size_t t) {
        if (terrace.agile().has_taxon(static_cast<TaxonId>(t)))
          common.push_back(static_cast<TaxonId>(t));
      });
      const auto a = phylo::restrict_to(terrace.agile(), common);
      const auto b = phylo::restrict_to(problem.constraints[i], common);
      if (!phylo::same_topology(a, b)) {
        ok = false;
        break;
      }
    }
    terrace.remove(rec);
    if (ok) out.push_back(e);
  }
  return out;
}

class TerraceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TerraceProperty, MappingEqualsDefinitionAtRandomStates) {
  support::Rng rng(GetParam());
  datagen::SimulatedParams sp;
  sp.n_taxa = 6 + rng.below(10);
  sp.n_loci = 2 + rng.below(4);
  sp.missing_fraction = 0.25 + 0.4 * rng.uniform();
  sp.seed = GetParam() * 31 + 7;
  const auto ds = datagen::make_simulated(sp);

  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  Terrace terrace(problem);
  ASSERT_TRUE(terrace.initial_state_consistent());

  std::vector<EdgeId> branches;
  std::vector<InsertRecord> applied;
  // Walk a random valid path, checking every remaining taxon at each state.
  for (int depth = 0; depth < 64 && terrace.remaining_count() > 0; ++depth) {
    const auto remaining = terrace.remaining();
    for (const TaxonId x : remaining) {
      const auto choice = terrace.choose_static(x, branches);
      ASSERT_EQ(choice.taxon, x);
      auto expected = definitional_branches(terrace, problem, x);
      auto got = branches;
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected)
          << "taxon " << x << " at depth " << depth << " seed " << GetParam();
    }
    // Advance along a random admissible insertion (if any taxon fits).
    const TaxonId pick =
        remaining[rng.below(remaining.size())];
    terrace.choose_static(pick, branches);
    if (branches.empty()) break;  // dead end: stop this walk
    applied.push_back(
        terrace.insert(pick, branches[rng.below(branches.size())]));
  }
  // Unwind and verify the terrace returns to a consistent initial state.
  for (auto it = applied.rbegin(); it != applied.rend(); ++it)
    terrace.remove(*it);
  EXPECT_EQ(terrace.remaining_count(), problem.missing_count());
  EXPECT_TRUE(terrace.initial_state_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TerraceProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(Terrace, DynamicChoiceIsTheMinimum) {
  support::Rng rng(404);
  datagen::SimulatedParams sp;
  sp.n_taxa = 12;
  sp.n_loci = 3;
  sp.missing_fraction = 0.45;
  sp.seed = 404;
  const auto ds = datagen::make_simulated(sp);
  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  Terrace terrace(problem);

  std::vector<EdgeId> branches, other;
  while (terrace.remaining_count() > 0) {
    const auto choice = terrace.choose_dynamic(branches);
    if (choice.complete || choice.dead_end) break;
    for (const TaxonId x : terrace.remaining()) {
      terrace.choose_static(x, other);
      EXPECT_GE(other.size(), branches.size());
    }
    terrace.choose_static(choice.taxon, branches);
    terrace.insert(choice.taxon, branches[0]);
  }
}

TEST(Terrace, NeverActivatedConstraintStaysUnallocated) {
  // Constraint 1's taxa all sit inside the initial tree (constraint 0), so
  // it never has an open taxon, never activates, and its mapping storage
  // must never be allocated — the peak-memory half of the lazy-allocation
  // contract. Constraint 2 carries the free taxa w and v and therefore must
  // allocate.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),c,(d,e));", taxa));
  cs.push_back(phylo::parse_newick("(a,c,d);", taxa));
  cs.push_back(phylo::parse_newick("((a,w),b,(c,v));", taxa));
  Options opts;
  opts.initial_constraint = 0;
  const auto problem = build_problem(cs, opts);
  Terrace terrace(problem);
  EXPECT_FALSE(terrace.constraint_storage_allocated(1));

  std::vector<EdgeId> branches;
  std::vector<InsertRecord> path;
  while (terrace.remaining_count() > 0) {
    const auto choice = terrace.choose_dynamic(branches);
    if (choice.complete || choice.dead_end) break;
    path.push_back(terrace.insert(choice.taxon, branches[0]));
  }
  EXPECT_TRUE(path.size() >= 1);
  EXPECT_FALSE(terrace.constraint_storage_allocated(0));
  EXPECT_FALSE(terrace.constraint_storage_allocated(1));
  EXPECT_TRUE(terrace.constraint_storage_allocated(2));
  EXPECT_GT(terrace.mapping_storage_bytes(), 0u);

  // Rewinding to the initial state keeps the pooled storage (capacities are
  // reused, not freed) and still never touches the inactive constraints.
  for (auto it = path.rbegin(); it != path.rend(); ++it) terrace.remove(*it);
  EXPECT_FALSE(terrace.constraint_storage_allocated(1));
  EXPECT_TRUE(terrace.constraint_storage_allocated(2));
}

}  // namespace
}  // namespace gentrius::core
