// Regression coverage for the incremental admissible-count cache under
// edge-id recycling (phylo::Tree hands out edge ids from LIFO free lists).
//
// A randomized DFS with heavy backtracking makes journal events reference
// edge ids that died — their creating insert was backtracked — and were
// re-allocated by later inserts between two evaluations of the same taxon.
// Replaying such an event against the *current* slot of the recycled id
// would corrupt the cached count by +/-2; the per-edge generation stamps in
// the journal must detect this and force a fresh recount instead.
//
// The walk advances via choose_static (which journals mutations but never
// refreshes the count cache) and only periodically calls choose_dynamic, so
// cache windows span long stretches of free-list churn. Loci are kept
// sparse so many taxon pairs share no constraint and caches stay formally
// valid across the churn. The cache is authoritative here: the count_fresh
// cross-check inside admissible_count is gated behind
// GENTRIUS_ENABLE_EXPENSIVE_INVARIANTS (off by default even in debug), so
// divergence surfaces as a mismatch against the non-incremental reference
// engine, exactly as it would in a release build.
#include <gtest/gtest.h>

#include <vector>

#include "datagen/dataset.hpp"
#include "gentrius/terrace.hpp"
#include "support/rng.hpp"

namespace gentrius::core {
namespace {

class CacheChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheChurn, DynamicChoiceMatchesNonIncrementalUnderBacktracking) {
  support::Rng rng(GetParam());
  datagen::SimulatedParams sp;
  sp.n_taxa = 16 + rng.below(12);
  sp.n_loci = 8 + rng.below(5);
  sp.missing_fraction = 0.55 + 0.2 * rng.uniform();
  sp.seed = GetParam() * 977 + 13;
  const auto ds = datagen::make_simulated(sp);

  Options opts;
  const auto problem = build_problem(ds.constraints, opts);
  Terrace inc(problem, /*incremental=*/true);
  Terrace ref(problem, /*incremental=*/false);
  ASSERT_TRUE(inc.initial_state_consistent());

  struct Level {
    InsertRecord inc_rec, ref_rec;
  };
  std::vector<Level> stack;
  std::vector<EdgeId> bi, br;
  for (int step = 0; step < 1200; ++step) {
    // Periodic full comparison: every admissible count of the incremental
    // engine (cached or fresh) must match the always-fresh reference.
    if (step % 5 == 0) {
      const auto ci = inc.choose_dynamic(bi);
      const auto cr = ref.choose_dynamic(br);
      ASSERT_EQ(ci.taxon, cr.taxon)
          << "step " << step << " seed " << GetParam();
      ASSERT_EQ(ci.complete, cr.complete) << "step " << step;
      ASSERT_EQ(ci.dead_end, cr.dead_end) << "step " << step;
      ASSERT_EQ(bi, br) << "taxon " << ci.taxon << " step " << step
                        << " seed " << GetParam();
    }
    // Random backtracking keeps the free lists churning so freed edge ids
    // get re-allocated while older journal events still reference them.
    if (!stack.empty() && (inc.remaining_count() == 0 || rng.bernoulli(0.4))) {
      inc.remove(stack.back().inc_rec);
      ref.remove(stack.back().ref_rec);
      stack.pop_back();
      continue;
    }
    if (inc.remaining_count() == 0) break;
    // Advance along a random admissible insertion without touching the
    // count cache (choose_static never calls admissible_count).
    const auto remaining = inc.remaining();
    const TaxonId pick = remaining[rng.below(remaining.size())];
    inc.choose_static(pick, bi);
    ref.choose_static(pick, br);
    ASSERT_EQ(bi, br) << "taxon " << pick << " step " << step << " seed "
                      << GetParam();
    if (bi.empty()) {
      if (stack.empty()) break;
      inc.remove(stack.back().inc_rec);
      ref.remove(stack.back().ref_rec);
      stack.pop_back();
      continue;
    }
    const EdgeId e = bi[rng.below(bi.size())];
    const InsertRecord ri = inc.insert(pick, e);
    const InsertRecord rr = ref.insert(pick, e);
    stack.push_back(Level{ri, rr});
  }
  while (!stack.empty()) {
    inc.remove(stack.back().inc_rec);
    ref.remove(stack.back().ref_rec);
    stack.pop_back();
  }
  EXPECT_EQ(inc.remaining_count(), problem.missing_count());
  EXPECT_TRUE(inc.initial_state_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheChurn,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace gentrius::core
