#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "gentrius/verify.hpp"
#include "phylo/newick.hpp"

namespace gentrius::core {
namespace {

TEST(VerifyStand, AcceptsAnEnumeratedStand) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 14;
  sp.n_loci = 4;
  sp.missing_fraction = 0.45;
  sp.seed = 606;
  const auto ds = datagen::make_simulated(sp);
  Options opts;
  opts.collect_trees = true;
  opts.tree_names = &ds.taxa;
  const auto r = run_serial(ds.constraints, opts);
  ASSERT_EQ(r.reason, StopReason::kCompleted);
  const auto v = verify_stand(ds.constraints, r.trees, ds.taxa);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.trees_checked, r.stand_trees);
}

TEST(VerifyStand, RejectsDuplicatesViolationsAndGaps) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((a,b),c,(d,e));", taxa));
  cs.push_back(phylo::parse_newick("(w,a,b);", taxa));
  Options opts;
  opts.collect_trees = true;
  opts.tree_names = &taxa;
  const auto r = run_serial(cs, opts);
  ASSERT_EQ(r.stand_trees, 7u);
  ASSERT_TRUE(verify_stand(cs, r.trees, taxa).ok);

  auto dup = r.trees;
  dup.push_back(dup.front());
  EXPECT_FALSE(verify_stand(cs, dup, taxa).ok);

  // A tree violating constraint 0.
  std::vector<std::string> bad{"((a,c),(b,w),(d,e));"};
  const auto vb = verify_stand(cs, bad, taxa);
  EXPECT_FALSE(vb.ok);
  EXPECT_NE(vb.error.find("constraint"), std::string::npos);

  // A tree missing taxon w.
  std::vector<std::string> gap{"((a,b),c,(d,e));"};
  EXPECT_FALSE(verify_stand(cs, gap, taxa).ok);

  // Unparsable input.
  std::vector<std::string> junk{"((a,b"};
  EXPECT_FALSE(verify_stand(cs, junk, taxa).ok);
}

TEST(DynamicVariant, MostConstrainedAlsoEnumeratesCorrectly) {
  for (std::uint64_t seed = 900; seed < 912; ++seed) {
    datagen::SimulatedParams sp;
    sp.n_taxa = 10;
    sp.n_loci = 3;
    sp.missing_fraction = 0.4;
    sp.seed = seed;
    const auto ds = datagen::make_simulated(sp);
    Options a;
    const auto ra = run_serial(ds.constraints, a);
    Options b;
    b.dynamic_variant = Options::DynamicVariant::kMostConstrained;
    const auto rb = run_serial(ds.constraints, b);
    EXPECT_EQ(ra.stand_trees, rb.stand_trees) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gentrius::core
