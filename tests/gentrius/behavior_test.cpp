// Behavioural contracts: stopping rules, heuristic effects, input
// validation, counter batching, tree collection.
#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "parallel/pool.hpp"
#include "phylo/newick.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::StopReason;

datagen::Dataset hard_dataset(std::uint64_t seed = 31415) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 32;
  sp.n_loci = 6;
  sp.missing_fraction = 0.5;
  sp.seed = seed;
  return datagen::make_simulated(sp);
}

TEST(StoppingRules, TreeLimitIsExactInSerial) {
  const auto ds = hard_dataset();
  Options opts;
  opts.stop.max_stand_trees = 500;
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.reason, StopReason::kTreeLimit);
  EXPECT_EQ(r.stand_trees, 500u);
}

TEST(StoppingRules, StateLimitIsExactInSerial) {
  const auto ds = hard_dataset();
  Options opts;
  opts.stop.max_states = 700;
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.reason, StopReason::kStateLimit);
  EXPECT_EQ(r.intermediate_states, 700u);
}

TEST(StoppingRules, TimeLimitFires) {
  const auto ds = hard_dataset(999);  // needs enough work to hit the clock
  Options opts;
  opts.stop.max_seconds = 0.0;
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.reason, StopReason::kTimeLimit);
}

TEST(StoppingRules, ParallelOvershootIsBounded) {
  // Paper §III-B: batched flushes let parallel runs exceed the limits by at
  // most ~(threads * batch) counts.
  const auto ds = hard_dataset();
  Options opts;
  opts.stop.max_stand_trees = 1000;
  const std::size_t threads = 4;
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto r = parallel::run_parallel(problem, opts, threads);
  EXPECT_EQ(r.reason, StopReason::kTreeLimit);
  EXPECT_GE(r.stand_trees, 1000u);
  EXPECT_LE(r.stand_trees,
            1000u + threads * (opts.tree_flush_batch + 1));
}

TEST(StoppingRules, VirtualTimeLimit) {
  const auto ds = hard_dataset();
  Options opts;
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto full = vthread::run_virtual(problem, opts, 2);
  ASSERT_EQ(full.reason, StopReason::kCompleted);
  vthread::VirtualRules rules;
  rules.max_virtual_time = full.virtual_makespan / 4;
  const auto cut = vthread::run_virtual(problem, opts, 2, {}, rules);
  EXPECT_EQ(cut.reason, StopReason::kTimeLimit);
  EXPECT_LT(cut.intermediate_states, full.intermediate_states);
}

TEST(Heuristics, DisablingThemNeverHelps) {
  // Paper §II-B: on emp-data-42370, disabling initial-tree selection cost
  // 3.5x more states; disabling dynamic insertion cost 12x and introduced
  // 1.5M dead ends. Direction (not magnitude) must hold on hard instances.
  std::uint64_t with_h = 0, without_init = 0, without_dyn = 0;
  std::uint64_t dead_with = 0, dead_without_dyn = 0;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const auto ds = hard_dataset(seed);
    Options opts;
    opts.stop.max_states = 2'000'000;
    const auto a = core::run_serial(ds.constraints, opts);
    Options no_init = opts;
    no_init.select_initial_tree = false;
    const auto b = core::run_serial(ds.constraints, no_init);
    Options no_dyn = opts;
    no_dyn.dynamic_taxon_order = false;
    no_dyn.shuffle_seed = seed;
    const auto c = core::run_serial(ds.constraints, no_dyn);
    with_h += a.intermediate_states;
    without_init += b.intermediate_states;
    without_dyn += c.intermediate_states;
    dead_with += a.dead_ends;
    dead_without_dyn += c.dead_ends;
  }
  EXPECT_LE(with_h, without_init);
  EXPECT_LE(with_h, without_dyn);
  EXPECT_LE(dead_with, dead_without_dyn);
}

TEST(Options, BadInsertionOrderRejected) {
  const auto ds = hard_dataset();
  Options opts;
  opts.dynamic_taxon_order = false;
  opts.insertion_order = {0, 1, 2};  // not a permutation of the missing taxa
  EXPECT_THROW(core::run_serial(ds.constraints, opts), support::InvalidInput);
}

TEST(Options, BadInitialConstraintRejected) {
  const auto ds = hard_dataset();
  Options opts;
  opts.initial_constraint = 999;
  EXPECT_THROW(core::build_problem(ds.constraints, opts),
               support::InvalidInput);
}

TEST(Problem, RejectsDegenerateInputs) {
  Options opts;
  EXPECT_THROW(core::build_problem({}, opts), support::InvalidInput);
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> tiny;
  tiny.push_back(phylo::parse_newick("(a,b);", taxa));
  EXPECT_THROW(core::build_problem(tiny, opts), support::InvalidInput);
}

TEST(Collection, CollectLimitRespected) {
  const auto ds = hard_dataset();
  Options opts;
  opts.collect_trees = true;
  opts.collect_limit = 50;
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.trees.size(), 50u);
  EXPECT_GT(r.stand_trees, 50u);
}

TEST(Collection, NewickNamesWhenTaxonSetGiven) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> cs;
  cs.push_back(phylo::parse_newick("((alpha,beta),gamma,(delta,eps));", taxa));
  cs.push_back(phylo::parse_newick("(w,alpha,beta);", taxa));
  Options opts;
  opts.collect_trees = true;
  opts.tree_names = &taxa;
  const auto r = core::run_serial(cs, opts);
  ASSERT_EQ(r.trees.size(), 7u);
  for (const auto& newick : r.trees) {
    EXPECT_NE(newick.find("alpha"), std::string::npos);
    EXPECT_EQ(newick.back(), ';');
    phylo::TaxonSet check = taxa;
    EXPECT_NO_THROW(
        phylo::parse_newick(newick, check, {.register_new_taxa = false}));
  }
}

TEST(Diagnostics, PrefixAndSplitReported) {
  const auto ds = hard_dataset();
  Options opts;
  const auto r = core::run_serial(ds.constraints, opts);
  // A hard instance must actually branch somewhere.
  EXPECT_GE(r.initial_split_branches, 2u);
}

}  // namespace
}  // namespace gentrius
