// Rejection matrix of the centralized Options validator: every driver
// surface funnels through core::validate_options, so the accepted/rejected
// combinations are pinned here once instead of per driver.
#include <gtest/gtest.h>

#include <cmath>

#include "gentrius/options.hpp"
#include "support/error.hpp"

namespace gentrius::core {
namespace {

constexpr OptionsSurface kSurfaces[] = {OptionsSurface::kSingleInstance,
                                        OptionsSurface::kSharded,
                                        OptionsSurface::kIncremental};

Options valid_for(OptionsSurface surface) {
  Options o;
  if (surface == OptionsSurface::kIncremental)
    o.decompose = Decompose::kComponents;
  return o;
}

TEST(ValidateOptions, DefaultsPassTheirSurfaces) {
  for (const auto surface : kSurfaces)
    EXPECT_NO_THROW(validate_options(valid_for(surface), surface))
        << to_string(surface);
}

TEST(ValidateOptions, ZeroFlushBatchRejectedEverywhere) {
  for (const auto surface : kSurfaces) {
    SCOPED_TRACE(to_string(surface));
    Options o = valid_for(surface);
    o.tree_flush_batch = 0;
    EXPECT_THROW(validate_options(o, surface), support::InvalidInput);
    o = valid_for(surface);
    o.state_flush_batch = 0;
    EXPECT_THROW(validate_options(o, surface), support::InvalidInput);
    o = valid_for(surface);
    o.dead_end_flush_batch = 0;
    EXPECT_THROW(validate_options(o, surface), support::InvalidInput);
  }
}

TEST(ValidateOptions, OfferSplitFractionMustBeInteriorAndFinite) {
  for (const auto surface : kSurfaces) {
    SCOPED_TRACE(to_string(surface));
    for (const double bad :
         {0.0, 1.0, -0.5, 2.0, std::nan("")}) {
      Options o = valid_for(surface);
      o.offer_split_fraction = bad;
      EXPECT_THROW(validate_options(o, surface), support::InvalidInput);
    }
    Options o = valid_for(surface);
    o.offer_split_fraction = 0.25;
    EXPECT_NO_THROW(validate_options(o, surface));
  }
}

TEST(ValidateOptions, ExplicitOrderAndShuffleAreExclusive) {
  for (const auto surface :
       {OptionsSurface::kSingleInstance, OptionsSurface::kSharded}) {
    SCOPED_TRACE(to_string(surface));
    Options o = valid_for(surface);
    o.insertion_order = {2, 1, 0};
    EXPECT_NO_THROW(validate_options(o, surface));
    o.shuffle_seed = 7;
    EXPECT_THROW(validate_options(o, surface), support::InvalidInput);
    o.insertion_order.clear();
    EXPECT_NO_THROW(validate_options(o, surface));
  }
}

TEST(ValidateOptions, SingleInstanceRejectsDecompose) {
  Options o;
  o.decompose = Decompose::kComponents;
  EXPECT_THROW(validate_options(o, OptionsSurface::kSingleInstance),
               support::InvalidInput);
  // The sharded surface honors both modes.
  EXPECT_NO_THROW(validate_options(o, OptionsSurface::kSharded));
  o.decompose = Decompose::kOff;
  EXPECT_NO_THROW(validate_options(o, OptionsSurface::kSharded));
}

TEST(ValidateOptions, IncrementalRequiresDecomposition) {
  Options o;  // decompose defaults to kOff
  EXPECT_THROW(validate_options(o, OptionsSurface::kIncremental),
               support::InvalidInput);
}

TEST(ValidateOptions, IncrementalRejectsWholeInstanceOverrides) {
  Options o = valid_for(OptionsSurface::kIncremental);
  o.initial_constraint = 0;
  EXPECT_THROW(validate_options(o, OptionsSurface::kIncremental),
               support::InvalidInput);

  o = valid_for(OptionsSurface::kIncremental);
  o.insertion_order = {0, 1, 2};
  EXPECT_THROW(validate_options(o, OptionsSurface::kIncremental),
               support::InvalidInput);

  // The same overrides stay legal on the other surfaces (run_sharded
  // clears them per shard; the single-instance drivers honor them).
  o = valid_for(OptionsSurface::kSingleInstance);
  o.initial_constraint = 0;
  o.insertion_order = {0, 1, 2};
  EXPECT_NO_THROW(validate_options(o, OptionsSurface::kSingleInstance));
  EXPECT_NO_THROW(validate_options(o, OptionsSurface::kSharded));
}

TEST(ValidateOptions, IncrementalCollectNeedsLabels) {
  Options o = valid_for(OptionsSurface::kIncremental);
  o.collect_trees = true;
  EXPECT_THROW(validate_options(o, OptionsSurface::kIncremental),
               support::InvalidInput);
  // Counting-only sessions need no labels.
  o.collect_trees = false;
  EXPECT_NO_THROW(validate_options(o, OptionsSurface::kIncremental));
  // Other surfaces fall back to the compact id-based encoding instead.
  Options s;
  s.collect_trees = true;
  EXPECT_NO_THROW(validate_options(s, OptionsSurface::kSingleInstance));
  EXPECT_NO_THROW(validate_options(s, OptionsSurface::kSharded));
}

TEST(CacheStats, MergeAccumulates) {
  CacheStats a;
  a.hits = 2;
  a.misses = 1;
  a.reused_states = 100;
  CacheStats b;
  b.hits = 3;
  b.evictions = 4;
  b.recomputed_components = 5;
  a.merge(b);
  EXPECT_EQ(a.hits, 5u);
  EXPECT_EQ(a.misses, 1u);
  EXPECT_EQ(a.evictions, 4u);
  EXPECT_EQ(a.recomputed_components, 5u);
  EXPECT_EQ(a.reused_states, 100u);
}

}  // namespace
}  // namespace gentrius::core
