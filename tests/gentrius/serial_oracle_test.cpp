// Cross-validation of the Gentrius engine against the brute-force oracle.
//
// The oracle enumerates the full tree space and applies the stand
// *definition*; Gentrius must produce the identical tree set for every
// instance, regardless of heuristic configuration.
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "oracle/brute_force.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::StopReason;

Result run_collecting(const std::vector<phylo::Tree>& constraints,
                      Options opts = {}) {
  opts.collect_trees = true;
  return core::run_serial(constraints, opts);
}

std::vector<std::string> sorted_trees(Result& r) {
  std::sort(r.trees.begin(), r.trees.end());
  return r.trees;
}

TEST(SerialOracle, PaperFigure1aStyle) {
  // Two missing taxa with disjoint admissible regions multiply the stand.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  constraints.push_back(phylo::parse_newick("((c1,c2),(c3,c4),(c5,c6));", taxa));
  constraints.push_back(phylo::parse_newick("((a,c1),(c2,c3));", taxa));
  constraints.push_back(phylo::parse_newick("((b,c5),(c6,c3));", taxa));

  auto oracle = oracle::brute_force_stand(constraints);
  auto result = run_collecting(constraints);
  EXPECT_EQ(result.reason, StopReason::kCompleted);
  EXPECT_EQ(result.stand_trees, oracle.size());
  EXPECT_EQ(sorted_trees(result), oracle);
}

TEST(SerialOracle, SingleConstraintIsItsOwnStand) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  constraints.push_back(
      phylo::parse_newick("((a,b),(c,d),(e,f));", taxa));
  auto result = run_collecting(constraints);
  EXPECT_EQ(result.stand_trees, 1u);
  EXPECT_EQ(result.intermediate_states, 0u);
  EXPECT_EQ(result.dead_ends, 0u);
  EXPECT_EQ(result.reason, StopReason::kCompleted);
}

TEST(SerialOracle, IncompatibleConstraintsGiveEmptyStand) {
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  constraints.push_back(phylo::parse_newick("((a,b),(c,d));", taxa));
  constraints.push_back(phylo::parse_newick("((a,c),(b,d));", taxa));
  auto result = run_collecting(constraints);
  EXPECT_EQ(result.stand_trees, 0u);
  EXPECT_EQ(result.reason, StopReason::kEmptyStand);
  EXPECT_EQ(oracle::brute_force_stand_count(constraints), 0u);
}

TEST(SerialOracle, LaterIncompatibilityIsFoundViaDeadEnds) {
  // The initial agile tree is consistent with each constraint, but the two
  // quartets pin x to disjoint regions: the stand is empty and the search
  // must discover it rather than the upfront check.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  constraints.push_back(phylo::parse_newick("((a,b),c,(d,e));", taxa));
  constraints.push_back(phylo::parse_newick("((x,a),(b,d));", taxa));   // x near a
  constraints.push_back(phylo::parse_newick("((x,e),(d,a));", taxa));   // x near e
  auto result = run_collecting(constraints);
  EXPECT_EQ(oracle::brute_force_stand_count(constraints), result.stand_trees);
  EXPECT_EQ(result.stand_trees, 0u);
  EXPECT_EQ(result.reason, StopReason::kCompleted);
  EXPECT_GE(result.dead_ends, 1u);
}

TEST(SerialOracle, UnconstrainedTaxonMultipliesStand) {
  // w appears only in a 3-taxon tree: every edge of the 5-taxon agile tree
  // (7 edges) is admissible, so the stand has exactly 7 trees.
  phylo::TaxonSet taxa;
  std::vector<phylo::Tree> constraints;
  constraints.push_back(phylo::parse_newick("((a,b),c,(d,e));", taxa));
  constraints.push_back(phylo::parse_newick("(w,a,b);", taxa));
  auto result = run_collecting(constraints);
  EXPECT_EQ(result.stand_trees, 7u);
  EXPECT_EQ(result.stand_trees, oracle::brute_force_stand_count(constraints));
}

// ---------------------------------------------------------------------------
// Property sweep: random simulated instances, all heuristic configurations.
// ---------------------------------------------------------------------------

struct SweepCase {
  std::size_t n_taxa;
  std::size_t n_loci;
  double missing;
  std::uint64_t seed;
};

class OracleSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OracleSweep, MatchesBruteForceUnderAllHeuristicConfigs) {
  const auto param = GetParam();
  datagen::SimulatedParams sp;
  sp.n_taxa = param.n_taxa;
  sp.n_loci = param.n_loci;
  sp.missing_fraction = param.missing;
  sp.seed = param.seed;
  const auto ds = datagen::make_simulated(sp);
  const auto expected = oracle::brute_force_stand(ds.constraints);

  // (dynamic order?, initial-tree heuristic?) in all combinations, plus a
  // shuffled static order.
  for (const bool dynamic : {true, false}) {
    for (const bool select_initial : {true, false}) {
      Options opts;
      opts.dynamic_taxon_order = dynamic;
      opts.select_initial_tree = select_initial;
      auto result = run_collecting(ds.constraints, opts);
      EXPECT_EQ(result.stand_trees, expected.size())
          << "dynamic=" << dynamic << " select_initial=" << select_initial;
      EXPECT_EQ(sorted_trees(result), expected);
      EXPECT_EQ(result.reason, StopReason::kCompleted);
    }
  }
  Options shuffled;
  shuffled.dynamic_taxon_order = false;
  shuffled.shuffle_seed = param.seed * 77 + 1;
  auto result = run_collecting(ds.constraints, shuffled);
  EXPECT_EQ(sorted_trees(result), expected);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 1000;
  for (const std::size_t n : {5u, 6u, 7u, 8u}) {
    for (const std::size_t loci : {2u, 3u, 5u}) {
      for (const double missing : {0.2, 0.35, 0.5}) {
        cases.push_back({n, loci, missing, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, OracleSweep,
                         ::testing::ValuesIn(sweep_cases()));

}  // namespace
}  // namespace gentrius
