#include <gtest/gtest.h>

#include "gentrius/counters.hpp"

namespace gentrius::core {
namespace {

TEST(CounterSink, LimitsFireAndFirstReasonWins) {
  StoppingRules rules;
  rules.max_stand_trees = 100;
  rules.max_states = 1000;
  CounterSink sink(rules);
  EXPECT_FALSE(sink.stop_requested());
  sink.add_stand_trees(99);
  EXPECT_FALSE(sink.stop_requested());
  sink.add_stand_trees(1);
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kTreeLimit);
  // A later state-limit crossing does not override the first reason.
  sink.add_states(5000);
  EXPECT_EQ(sink.reason(), StopReason::kTreeLimit);
  EXPECT_EQ(sink.stand_trees(), 100u);
  EXPECT_EQ(sink.states(), 5000u);
}

TEST(CounterSink, TimeRule) {
  StoppingRules rules;
  rules.max_seconds = 0.0;
  CounterSink sink(rules);
  EXPECT_FALSE(sink.stop_requested());
  sink.check_time();
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kTimeLimit);
}

TEST(CounterSink, CompletedWhenNothingFires) {
  CounterSink sink({});
  sink.add_stand_trees(10);
  sink.add_states(10);
  sink.add_dead_ends(10);
  EXPECT_FALSE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kCompleted);
}

TEST(LocalCounters, BatchesAreHonored) {
  CounterSink sink({});
  LocalCounters local(sink, /*tree=*/4, /*state=*/8, /*dead=*/2);
  for (int i = 0; i < 3; ++i) local.count_stand_tree();
  EXPECT_EQ(sink.stand_trees(), 0u);  // below batch: nothing published
  local.count_stand_tree();
  EXPECT_EQ(sink.stand_trees(), 4u);  // batch boundary: published
  for (int i = 0; i < 7; ++i) local.count_state();
  EXPECT_EQ(sink.states(), 0u);
  local.count_state();
  EXPECT_EQ(sink.states(), 8u);
  local.count_dead_end();
  EXPECT_EQ(sink.dead_ends(), 0u);
  local.count_dead_end();
  EXPECT_EQ(sink.dead_ends(), 2u);
  EXPECT_EQ(local.flush_count(), 3u);
}

TEST(LocalCounters, FlushAllPublishesRemainders) {
  CounterSink sink({});
  LocalCounters local(sink, 1024, 8192, 1024);
  for (int i = 0; i < 5; ++i) local.count_stand_tree();
  for (int i = 0; i < 7; ++i) local.count_state();
  local.count_dead_end();
  local.flush_all();
  EXPECT_EQ(sink.stand_trees(), 5u);
  EXPECT_EQ(sink.states(), 7u);
  EXPECT_EQ(sink.dead_ends(), 1u);
}

TEST(LocalCounters, BatchZeroBehavesAsOne) {
  CounterSink sink({});
  LocalCounters local(sink, 0, 0, 0);
  local.count_stand_tree();
  EXPECT_EQ(sink.stand_trees(), 1u);
}

TEST(LocalCounters, DefaultPeriodChecksTimeEveryFlush) {
  // The documented granularity: one clock read per flush, any flush site.
  CounterSink sink({});
  LocalCounters local(sink, /*tree=*/1, /*state=*/1, /*dead=*/1);
  for (int i = 0; i < 3; ++i) local.count_state();
  local.count_stand_tree();
  local.count_dead_end();
  EXPECT_EQ(local.flush_count(), 5u);
  EXPECT_EQ(sink.time_checks(), 5u);
}

TEST(LocalCounters, TimeCheckPeriodThrottlesClockReads) {
  // Period K: the clock is read only on every K-th flush, across all three
  // flush sites combined. Counter totals and flush counts are unchanged.
  CounterSink sink({});
  LocalCounters local(sink, 1, 1, 1, /*time_check_period=*/3);
  for (int i = 0; i < 7; ++i) local.count_state();  // flushes 1..7
  EXPECT_EQ(local.flush_count(), 7u);
  EXPECT_EQ(sink.time_checks(), 2u);  // on flush 3 and flush 6
  EXPECT_EQ(sink.states(), 7u);       // publication itself is untouched
  local.count_stand_tree();
  local.count_dead_end();  // flush 9: third check
  EXPECT_EQ(sink.time_checks(), 3u);
}

TEST(LocalCounters, ThrottledTimeRuleStillFires) {
  StoppingRules rules;
  rules.max_seconds = 0.0;  // an expired clock: first read must stop the run
  CounterSink sink(rules);
  LocalCounters local(sink, 1, 1, 1, /*time_check_period=*/4);
  for (int i = 0; i < 3; ++i) {
    local.count_state();
    EXPECT_FALSE(sink.stop_requested()) << "flush " << i + 1;
  }
  local.count_state();  // 4th flush reads the clock
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kTimeLimit);
}

TEST(LocalCounters, TimeCheckPeriodZeroBehavesAsOne) {
  CounterSink sink({});
  LocalCounters local(sink, 1, 1, 1, /*time_check_period=*/0);
  local.count_state();
  EXPECT_EQ(sink.time_checks(), 1u);
}

namespace {
class CountingWaker final : public StopWaker {
 public:
  void wake_all() override { ++calls; }
  int calls = 0;
};
}  // namespace

TEST(CounterSink, RequestStopInvokesRegisteredWaker) {
  CounterSink sink({});
  CountingWaker waker;
  sink.set_stop_waker(&waker);
  sink.request_stop(StopReason::kTreeLimit);
  EXPECT_EQ(waker.calls, 1);
  sink.request_stop(StopReason::kStateLimit);  // repeated stops re-wake
  EXPECT_EQ(waker.calls, 2);
  EXPECT_EQ(sink.reason(), StopReason::kTreeLimit);  // first reason kept
}

TEST(CounterSink, ClearedWakerIsNotInvoked) {
  CounterSink sink({});
  CountingWaker waker;
  sink.set_stop_waker(&waker);
  sink.set_stop_waker(nullptr);
  sink.request_stop(StopReason::kTreeLimit);
  EXPECT_EQ(waker.calls, 0);
}

TEST(CounterSink, StoppingRuleCrossingFiresWaker) {
  // The satellite regression: a limit crossed via a counter flush must ring
  // the waker so parked consumers unblock without a second stop observer.
  StoppingRules rules;
  rules.max_states = 10;
  CounterSink sink(rules);
  CountingWaker waker;
  sink.set_stop_waker(&waker);
  sink.add_states(10);
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_EQ(waker.calls, 1);
}

}  // namespace
}  // namespace gentrius::core
