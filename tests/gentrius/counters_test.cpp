#include <gtest/gtest.h>

#include "gentrius/counters.hpp"

namespace gentrius::core {
namespace {

TEST(CounterSink, LimitsFireAndFirstReasonWins) {
  StoppingRules rules;
  rules.max_stand_trees = 100;
  rules.max_states = 1000;
  CounterSink sink(rules);
  EXPECT_FALSE(sink.stop_requested());
  sink.add_stand_trees(99);
  EXPECT_FALSE(sink.stop_requested());
  sink.add_stand_trees(1);
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kTreeLimit);
  // A later state-limit crossing does not override the first reason.
  sink.add_states(5000);
  EXPECT_EQ(sink.reason(), StopReason::kTreeLimit);
  EXPECT_EQ(sink.stand_trees(), 100u);
  EXPECT_EQ(sink.states(), 5000u);
}

TEST(CounterSink, TimeRule) {
  StoppingRules rules;
  rules.max_seconds = 0.0;
  CounterSink sink(rules);
  EXPECT_FALSE(sink.stop_requested());
  sink.check_time();
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kTimeLimit);
}

TEST(CounterSink, CompletedWhenNothingFires) {
  CounterSink sink({});
  sink.add_stand_trees(10);
  sink.add_states(10);
  sink.add_dead_ends(10);
  EXPECT_FALSE(sink.stop_requested());
  EXPECT_EQ(sink.reason(), StopReason::kCompleted);
}

TEST(LocalCounters, BatchesAreHonored) {
  CounterSink sink({});
  LocalCounters local(sink, /*tree=*/4, /*state=*/8, /*dead=*/2);
  for (int i = 0; i < 3; ++i) local.count_stand_tree();
  EXPECT_EQ(sink.stand_trees(), 0u);  // below batch: nothing published
  local.count_stand_tree();
  EXPECT_EQ(sink.stand_trees(), 4u);  // batch boundary: published
  for (int i = 0; i < 7; ++i) local.count_state();
  EXPECT_EQ(sink.states(), 0u);
  local.count_state();
  EXPECT_EQ(sink.states(), 8u);
  local.count_dead_end();
  EXPECT_EQ(sink.dead_ends(), 0u);
  local.count_dead_end();
  EXPECT_EQ(sink.dead_ends(), 2u);
  EXPECT_EQ(local.flush_count(), 3u);
}

TEST(LocalCounters, FlushAllPublishesRemainders) {
  CounterSink sink({});
  LocalCounters local(sink, 1024, 8192, 1024);
  for (int i = 0; i < 5; ++i) local.count_stand_tree();
  for (int i = 0; i < 7; ++i) local.count_state();
  local.count_dead_end();
  local.flush_all();
  EXPECT_EQ(sink.stand_trees(), 5u);
  EXPECT_EQ(sink.states(), 7u);
  EXPECT_EQ(sink.dead_ends(), 1u);
}

TEST(LocalCounters, BatchZeroBehavesAsOne) {
  CounterSink sink({});
  LocalCounters local(sink, 0, 0, 0);
  local.count_stand_tree();
  EXPECT_EQ(sink.stand_trees(), 1u);
}

}  // namespace
}  // namespace gentrius::core
