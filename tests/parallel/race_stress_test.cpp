// TSan-focused stress tests for the steal/terminate/stop-rule edges of the
// work-stealing queue and the batched counter sink (paper §III-A/B).
//
// These tests are about *interleavings*, not outcomes: each scenario drives
// many threads through a narrow synchronization window (producers racing
// broadcast_stop, last-worker termination racing a late try_push, flush
// storms into one CounterSink) and asserts the linearizable invariants that
// must survive every schedule. Run them under GENTRIUS_SAN=thread (the
// `tsan` preset) to turn any data race into a failure; they also pass — and
// check the same invariants — in plain builds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gentrius/counters.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/task_queue.hpp"

namespace gentrius::parallel {
namespace {

core::Task make_task(int tag) {
  core::Task t;
  t.next_taxon = static_cast<core::TaxonId>(tag);
  return t;
}

/// try_push takes a mutable Task (swap hand-off); stage the temporary.
bool push(TaskQueue& q, core::Task t) { return q.try_push(t); }

// --- producers hammering try_push while broadcast_stop fires ---------------
//
// The edge under test: a stopping rule fires while external producers are
// mid-push and consumers are blocked in pop(). Every schedule must (a) let
// all threads exit, (b) reject every push after done_ is set, and (c) hand
// each accepted task to at most one consumer.
TEST(RaceStress, PushStormVersusBroadcastStop) {
  constexpr int kRounds = 40;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kProducers = 4;

  for (int round = 0; round < kRounds; ++round) {
    core::CounterSink sink({});
    TaskQueue queue(/*capacity=*/4, /*workers=*/kConsumers);
    std::atomic<int> consumed{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> producers_done{false};

    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        core::Task task;
        while (queue.pop(sink, task)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::size_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        int tag = static_cast<int>(p) * 10000;
        while (!producers_done.load(std::memory_order_acquire)) {
          if (push(queue, make_task(tag++)))
            accepted.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      });
    }

    // Let the storm develop, then fire the stopping rule mid-flight.
    for (int spin = 0; spin < 100 * (round % 7 + 1); ++spin)
      std::this_thread::yield();
    sink.request_stop(core::StopReason::kTreeLimit);
    queue.broadcast_stop();
    producers_done.store(true, std::memory_order_release);

    for (auto& t : threads) t.join();

    // Consumers never see more tasks than producers enqueued; tasks left in
    // the queue when the stop landed are the only permissible shortfall.
    EXPECT_LE(consumed.load(), accepted.load());
    EXPECT_FALSE(push(queue, make_task(-1)))
        << "queue must stay terminated after broadcast_stop";
  }
}

// --- last-worker termination racing a late try_push ------------------------
//
// The edge under test: both workers drain toward idle while a third thread
// pushes one final task. Linearizability of pop's termination check demands
// that a push accepted before done_ is always consumed (termination requires
// an empty queue), and a push after done_ is always rejected — a lost task
// here is exactly the silent race this suite exists to catch.
TEST(RaceStress, LastWorkerTerminationRacesLatePush) {
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    core::CounterSink sink({});
    TaskQueue queue(/*capacity=*/2, /*workers=*/2);
    std::atomic<int> consumed{0};
    std::atomic<int> accepted{0};

    std::thread pusher([&] {
      // Vary the push timing across rounds to sweep the race window.
      for (int spin = 0; spin < round % 50; ++spin) std::this_thread::yield();
      if (push(queue, make_task(round)))
        accepted.fetch_add(1, std::memory_order_relaxed);
    });
    std::thread worker_a([&] {
      core::Task task;
      while (queue.pop(sink, task))
        consumed.fetch_add(1, std::memory_order_relaxed);
    });
    std::thread worker_b([&] {
      core::Task task;
      while (queue.pop(sink, task))
        consumed.fetch_add(1, std::memory_order_relaxed);
    });

    pusher.join();
    worker_a.join();
    worker_b.join();

    EXPECT_EQ(consumed.load(), accepted.load())
        << "an accepted task was lost (or duplicated) in round " << round;
    EXPECT_FALSE(push(queue, make_task(-1)))
        << "try_push must reject after termination";
  }
}

// --- workers re-offering tasks while the pool drains -----------------------
//
// Production-shaped traffic: busy workers intermittently push subtasks while
// idle workers steal, with the queue repeatedly bouncing between full and
// empty until the pool terminates itself (no external stop). Checks the
// busy-count bookkeeping: exactly every accepted task is consumed.
TEST(RaceStress, SelfDrainingPoolWithReoffers) {
  constexpr int kRounds = 20;
  constexpr std::size_t kWorkers = 8;
  for (int round = 0; round < kRounds; ++round) {
    core::CounterSink sink({});
    TaskQueue queue(queue_capacity_for(kWorkers), kWorkers);
    std::atomic<int> consumed{0};
    std::atomic<int> accepted{0};

    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        // Seed the queue while "busy", then drain; every fifth consumed task
        // re-offers a child task that does not itself spawn more work.
        for (int i = 0; i < 40; ++i) {
          if (push(queue, make_task(static_cast<int>(w) * 1000 + i + 2)))
            accepted.fetch_add(1, std::memory_order_relaxed);
        }
        core::Task task;
        while (queue.pop(sink, task)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          if (task.next_taxon % 5 == 0 && push(queue, make_task(1)))
            accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(consumed.load(), accepted.load());
    EXPECT_EQ(queue.size(), 0u) << "pool terminated with tasks still queued";
  }
}

// --- deque scheduler: owner pushes racing concurrent steals ----------------
//
// The distributed scheduler's narrow window: owners push/pop their own ring
// at the tail while thieves take from the head, with termination detected
// by the busy count. Every accepted task must be consumed exactly once and
// the pool must terminate itself with all deques empty, on every schedule.
TEST(RaceStress, DequeSelfDrainingPoolWithReoffers) {
  constexpr int kRounds = 20;
  constexpr std::size_t kWorkers = 8;
  for (int round = 0; round < kRounds; ++round) {
    core::CounterSink sink({});
    DequeScheduler sched(kWorkers, /*steal_seed=*/static_cast<std::uint64_t>(round));
    std::atomic<int> consumed{0};
    std::atomic<int> accepted{0};

    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        core::TaskSink* sink_w = sched.sink_for(w);
        // Seed the own deque while "busy" (more offers than its capacity,
        // so the rejection path is exercised too), then drain; every fifth
        // consumed task re-offers a child that spawns no more work.
        for (int i = 0; i < 40; ++i) {
          core::Task t = make_task(static_cast<int>(w) * 1000 + i + 2);
          if (sink_w->try_push(t))
            accepted.fetch_add(1, std::memory_order_relaxed);
        }
        core::Task task;
        while (sched.acquire(w, sink, task)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          core::Task child = make_task(1);
          if (task.next_taxon % 5 == 0 && sink_w->try_push(child))
            accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(consumed.load(), accepted.load());
    EXPECT_EQ(sched.pending(), 0u) << "pool terminated with tasks queued";
    const auto stats = sched.stats();
    EXPECT_LE(stats.tasks_stolen, static_cast<std::uint64_t>(accepted.load()));
    EXPECT_LE(stats.tasks_stolen, stats.steal_attempts);
  }
}

// --- deque scheduler: steal storm racing broadcast_stop --------------------
//
// Mirrors PushStormVersusBroadcastStop on the distributed scheduler: the
// stop must release parked thieves, reject subsequent pushes, and never
// duplicate a hand-off.
TEST(RaceStress, DequeStealStormVersusBroadcastStop) {
  constexpr int kRounds = 40;
  constexpr std::size_t kWorkers = 4;

  for (int round = 0; round < kRounds; ++round) {
    core::CounterSink sink({});
    DequeScheduler sched(kWorkers, /*steal_seed=*/7);
    std::atomic<int> consumed{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> quit{false};

    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        core::TaskSink* sink_w = sched.sink_for(w);
        int tag = static_cast<int>(w) * 10000;
        // Interleave pushing and acquiring until the stop lands.
        while (!quit.load(std::memory_order_acquire)) {
          core::Task t = make_task(tag++);
          if (sink_w->try_push(t))
            accepted.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
          if (sink.stop_requested()) break;
        }
        core::Task task;
        while (sched.acquire(w, sink, task))
          consumed.fetch_add(1, std::memory_order_relaxed);
      });
    }

    for (int spin = 0; spin < 100 * (round % 7 + 1); ++spin)
      std::this_thread::yield();
    sink.request_stop(core::StopReason::kTreeLimit);
    sched.broadcast_stop();
    quit.store(true, std::memory_order_release);

    for (auto& t : threads) t.join();

    EXPECT_LE(consumed.load(), accepted.load());
    core::Task late = make_task(-1);
    EXPECT_FALSE(sched.sink_for(0)->try_push(late))
        << "scheduler must stay terminated after broadcast_stop";
  }
}

// --- raw Chase-Lev deque: owner loop versus a steal storm ------------------
//
// Below the scheduler, the lock-free StealDeque itself: one owner pushes
// sequence-tagged tasks and pops interleaved while several thieves steal
// concurrently. Every pushed task must surface exactly once — at the owner
// or at exactly one thief — across every interleaving of the owner's
// bottom_ updates with the thieves' top_ CAS. The per-sequence tally turns
// both a lost hand-off and a duplicated one into a failure; under
// GENTRIUS_SAN=thread any unsynchronized ring access is a race report.
TEST(RaceStress, LockFreeDequeExactlyOnceUnderStealStorm) {
  constexpr int kTasks = 20000;
  constexpr std::size_t kThieves = 3;

  StealDeque deque(/*capacity=*/8, /*max_thieves=*/kThieves);
  std::vector<std::atomic<int>> seen(kTasks);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<bool> owner_done{false};

  const auto record = [&](const core::Task& t) {
    seen[static_cast<int>(t.next_taxon)].fetch_add(1,
                                                   std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (std::size_t i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      core::Task out;
      // Keep probing until the owner is done AND the deque reads empty;
      // a failed steal during the storm is just a lost race.
      for (;;) {
        if (deque.steal(out)) {
          record(out);
        } else if (owner_done.load(std::memory_order_acquire) &&
                   deque.size() == 0) {
          return;
        } else {
          std::this_thread::yield();  // single-core hosts: let the owner run
        }
      }
    });
  }

  core::Task out;
  for (int seq = 0; seq < kTasks; ++seq) {
    core::Task t = make_task(seq);
    while (!deque.owner_push(t)) {
      // Ring full: drain one (this also exercises pop racing the thieves).
      if (deque.owner_pop(out)) record(out);
    }
    // Interleave owner pops so the last-element CAS window is hit often.
    if (seq % 3 == 0 && deque.owner_pop(out)) record(out);
  }
  while (deque.owner_pop(out)) record(out);
  owner_done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (int seq = 0; seq < kTasks; ++seq) {
    ASSERT_EQ(seen[seq].load(), 1)
        << "task " << seq << " was lost or duplicated";
  }
}

// --- raw Chase-Lev deque: the one-element owner/thief race -----------------
//
// Capacity 1 pins every round on the narrowest window in the protocol: the
// owner's bottom_ decrement racing the thief's top_ CAS for the same final
// element. Exactly one side may win each round; the loser must observe an
// empty deque, never a duplicate or a stale task.
TEST(RaceStress, LockFreeDequeLastElementRaceHandsOffExactlyOnce) {
  constexpr int kRounds = 4000;
  StealDeque deque(/*capacity=*/1, /*max_thieves=*/1);
  std::vector<std::atomic<int>> seen(kRounds);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<int> round_ready{-1};
  std::atomic<int> round_done{-1};

  std::thread thief([&] {
    core::Task out;
    for (int r = 0; r < kRounds; ++r) {
      while (round_ready.load(std::memory_order_acquire) < r)
        std::this_thread::yield();
      if (deque.steal(out))
        seen[static_cast<int>(out.next_taxon)].fetch_add(
            1, std::memory_order_relaxed);
      round_done.store(r, std::memory_order_release);
    }
  });

  core::Task out;
  for (int r = 0; r < kRounds; ++r) {
    core::Task t = make_task(r);
    ASSERT_TRUE(deque.owner_push(t));
    round_ready.store(r, std::memory_order_release);
    if (deque.owner_pop(out))
      seen[static_cast<int>(out.next_taxon)].fetch_add(
          1, std::memory_order_relaxed);
    while (round_done.load(std::memory_order_acquire) < r)
      std::this_thread::yield();
    ASSERT_EQ(seen[r].load(), 1)
        << "round " << r << ": the final element must go to exactly one side";
    ASSERT_EQ(deque.size(), 0u);
  }
  thief.join();
}

// --- counter-flush storms across >= 8 threads ------------------------------
//
// Every thread owns a LocalCounters with tiny batch sizes and publishes into
// one CounterSink as fast as it can. The totals are exact sums regardless of
// interleaving; under TSan this also proves the relaxed-atomic publication
// protocol is race-free.
TEST(RaceStress, CounterFlushStorm) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kTreesPer = 2000;
  constexpr std::uint64_t kStatesPer = 5000;
  constexpr std::uint64_t kDeadEndsPer = 3000;

  core::CounterSink sink({});  // default limits: far out of reach
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      core::LocalCounters local(sink, /*tree_batch=*/3, /*state_batch=*/7,
                                /*dead_end_batch=*/2);
      for (std::uint64_t n = 0; n < kStatesPer; ++n) local.count_state();
      for (std::uint64_t n = 0; n < kTreesPer; ++n) local.count_stand_tree();
      for (std::uint64_t n = 0; n < kDeadEndsPer; ++n) local.count_dead_end();
      local.flush_all();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(sink.stand_trees(), kThreads * kTreesPer);
  EXPECT_EQ(sink.states(), kThreads * kStatesPer);
  EXPECT_EQ(sink.dead_ends(), kThreads * kDeadEndsPer);
  EXPECT_EQ(sink.reason(), core::StopReason::kCompleted);
}

// --- stopping-rule storm: many threads trip the limit at once --------------
//
// All threads race to cross max_states simultaneously; the reason CAS must
// record exactly one rule and the published total must be at least the
// limit (overshoot bounded by threads * batch, as the paper documents).
TEST(RaceStress, StopRuleFiresOnceUnderFlushStorm) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kLimit = 10000;
  core::StoppingRules rules;
  rules.max_states = kLimit;

  core::CounterSink sink(rules);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      core::LocalCounters local(sink, 8, 8, 8);
      while (!sink.stop_requested()) local.count_state();
      local.flush_all();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(sink.reason(), core::StopReason::kStateLimit);
  EXPECT_TRUE(sink.stop_requested());
  EXPECT_GE(sink.states(), kLimit);
  // Overshoot is bounded by in-flight batches (threads * batch) plus the
  // propagation window of the stop flag; 2x the limit is far beyond both.
  EXPECT_LE(sink.states(), 2 * kLimit);
}

}  // namespace
}  // namespace gentrius::parallel
