#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/task_queue.hpp"

namespace gentrius::parallel {
namespace {

core::Task make_task(int tag) {
  core::Task t;
  t.next_taxon = static_cast<core::TaxonId>(tag);
  return t;
}

/// try_push takes a mutable Task (swap hand-off); stage the temporary.
bool push(TaskQueue& q, core::Task t) { return q.try_push(t); }

TEST(TaskQueue, CapacityRuleMatchesPaper) {
  EXPECT_EQ(queue_capacity_for(1), 2u);
  EXPECT_EQ(queue_capacity_for(2), 3u);
  EXPECT_EQ(queue_capacity_for(7), 8u);
  EXPECT_EQ(queue_capacity_for(8), 4u);
  EXPECT_EQ(queue_capacity_for(16), 8u);
  EXPECT_EQ(queue_capacity_for(48), 24u);
}

TEST(TaskQueue, RejectsWhenFull) {
  TaskQueue q(2, /*workers=*/2);
  EXPECT_TRUE(push(q, make_task(1)));
  EXPECT_TRUE(push(q, make_task(2)));
  EXPECT_FALSE(push(q, make_task(3)));
}

TEST(TaskQueue, SingleWorkerTerminatesImmediately) {
  core::CounterSink sink({});
  TaskQueue q(2, 1);
  core::Task out;
  EXPECT_FALSE(q.pop(sink, out));
}

TEST(TaskQueue, HandsTasksFifoAndTerminates) {
  core::CounterSink sink({});
  TaskQueue q(4, 2);
  ASSERT_TRUE(push(q, make_task(7)));
  ASSERT_TRUE(push(q, make_task(8)));
  // Worker A: takes both tasks, then goes idle; worker B goes idle first.
  std::vector<int> taken;
  std::thread b([&] {
    // B: no tasks for it after A drains; must exit via termination.
    core::Task t;
    while (q.pop(sink, t)) taken.push_back(static_cast<int>(t.next_taxon));
  });
  std::thread a([&] {
    core::Task t;
    while (q.pop(sink, t)) {
      // tasks observed in FIFO order overall
    }
  });
  a.join();
  b.join();
  SUCCEED();  // termination without deadlock is the property under test
}

TEST(TaskQueue, StopReleasesWaiters) {
  core::CounterSink sink({});
  TaskQueue q(4, 2);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    core::Task t;
    EXPECT_FALSE(q.pop(sink, t));  // blocks: 1 busy worker remains
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(released.load());
  sink.request_stop(core::StopReason::kTreeLimit);
  q.broadcast_stop();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(TaskQueue, PopReturnsNulloptAfterStopWithTasksStillEnqueued) {
  // A stopping rule fired while the queue still holds work: pop must not
  // hand out the stale tasks, it must report termination.
  core::CounterSink sink({});
  TaskQueue q(4, /*workers=*/2);
  ASSERT_TRUE(push(q, make_task(1)));
  ASSERT_TRUE(push(q, make_task(2)));
  ASSERT_EQ(q.size(), 2u);
  sink.request_stop(core::StopReason::kStateLimit);
  q.broadcast_stop();
  core::Task out;
  EXPECT_FALSE(q.pop(sink, out));
  EXPECT_FALSE(q.pop(sink, out));
  EXPECT_EQ(q.size(), 2u);  // tasks abandoned, not delivered
}

TEST(TaskQueue, PopHonoursSinkStopEvenWithoutBroadcast) {
  // The sink's stop flag alone (no broadcast_stop yet) must already prevent
  // task hand-out to a worker arriving at pop().
  core::CounterSink sink({});
  TaskQueue q(4, /*workers=*/2);
  ASSERT_TRUE(push(q, make_task(7)));
  sink.request_stop(core::StopReason::kTreeLimit);
  core::Task out;
  EXPECT_FALSE(q.pop(sink, out));
}

TEST(TaskQueue, TryPushRejectedAfterTermination) {
  // done_ set by broadcast_stop: every subsequent push must be rejected so
  // producers keep their branches instead of leaking them into a dead queue.
  core::CounterSink sink({});
  TaskQueue q(4, /*workers=*/2);
  q.broadcast_stop();
  EXPECT_FALSE(push(q, make_task(1)));
  EXPECT_EQ(q.size(), 0u);
}

TEST(TaskQueue, TryPushRejectedAfterLastWorkerTerminates) {
  // done_ set by the termination-detection path (last worker idle, queue
  // empty) rather than by broadcast_stop.
  core::CounterSink sink({});
  TaskQueue q(4, /*workers=*/1);
  core::Task out;
  EXPECT_FALSE(q.pop(sink, out));  // sole worker goes idle: done
  EXPECT_FALSE(push(q, make_task(1)));
}

TEST(TaskQueue, ManyThreadsStress) {
  // Producers/consumers hammering the queue; the test asserts clean
  // termination and that every pushed task is consumed at most once.
  core::CounterSink sink({});
  constexpr std::size_t kWorkers = 8;
  TaskQueue q(queue_capacity_for(kWorkers), kWorkers);
  std::atomic<int> consumed{0};
  std::atomic<int> produced{0};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      // Each worker produces a few tasks while "busy", then drains.
      for (int i = 0; i < 50; ++i) {
        if (push(q, make_task(static_cast<int>(w * 100 + i)))) ++produced;
      }
      core::Task t;
      while (q.pop(sink, t)) {
        ++consumed;
        // Simulate a bit of work and possibly re-push (a tag that does not
        // itself trigger another re-push, or the pool never drains).
        if (t.next_taxon % 5 == 0 && push(q, make_task(1001))) ++produced;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(), produced.load());
}

}  // namespace
}  // namespace gentrius::parallel
