// Serial / parallel / virtual equivalence (paper §IV intro: "we thoroughly
// verified that the sequential and parallel versions yield the exact same
// results ... same number of stand trees, intermediate states, and dead
// ends", and identical stands).
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "parallel/pool.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::StopReason;

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct EqCase {
  std::size_t n_taxa;
  std::size_t n_loci;
  double missing;
  std::uint64_t seed;
  bool empirical;
};

class Equivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(Equivalence, AllDriversAgreeOnCountsAndStand) {
  const auto p = GetParam();
  datagen::Dataset ds;
  if (p.empirical) {
    datagen::EmpiricalLikeParams ep;
    ep.n_taxa = p.n_taxa;
    ep.n_loci = p.n_loci;
    ep.seed = p.seed;
    ds = datagen::make_empirical_like(ep);
  } else {
    datagen::SimulatedParams sp;
    sp.n_taxa = p.n_taxa;
    sp.n_loci = p.n_loci;
    sp.missing_fraction = p.missing;
    sp.seed = p.seed;
    ds = datagen::make_simulated(sp);
  }

  Options opts;
  opts.collect_trees = true;
  const auto problem = core::build_problem(ds.constraints, opts);

  const Result serial = core::run_serial(problem, opts);
  ASSERT_EQ(serial.reason, StopReason::kCompleted);
  const auto expected_trees = sorted(serial.trees);

  for (const std::size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    const Result par = parallel::run_parallel(problem, opts, threads);
    EXPECT_EQ(par.stand_trees, serial.stand_trees) << "threads=" << threads;
    EXPECT_EQ(par.intermediate_states, serial.intermediate_states)
        << "threads=" << threads;
    EXPECT_EQ(par.dead_ends, serial.dead_ends) << "threads=" << threads;
    EXPECT_EQ(par.reason, StopReason::kCompleted);
    EXPECT_EQ(sorted(par.trees), expected_trees) << "threads=" << threads;

    const Result vir = vthread::run_virtual(problem, opts, threads);
    EXPECT_EQ(vir.stand_trees, serial.stand_trees) << "vthreads=" << threads;
    EXPECT_EQ(vir.intermediate_states, serial.intermediate_states)
        << "vthreads=" << threads;
    EXPECT_EQ(vir.dead_ends, serial.dead_ends) << "vthreads=" << threads;
    EXPECT_EQ(sorted(vir.trees), expected_trees) << "vthreads=" << threads;
    if (serial.intermediate_states > 0)
      EXPECT_GT(vir.virtual_makespan, 0.0);

    const Result stat = parallel::run_static_split(problem, opts, threads);
    EXPECT_EQ(stat.stand_trees, serial.stand_trees);
    EXPECT_EQ(stat.intermediate_states, serial.intermediate_states);
    EXPECT_EQ(sorted(stat.trees), expected_trees);
  }
}

std::vector<EqCase> eq_cases() {
  std::vector<EqCase> cases;
  std::uint64_t seed = 42;
  for (const std::size_t n : {8u, 12u, 16u}) {
    for (const double missing : {0.3, 0.5}) {
      cases.push_back({n, 4, missing, seed++, false});
      cases.push_back({n, 4, missing, seed++, true});
    }
  }
  // A couple of larger ones with real search effort.
  cases.push_back({24, 6, 0.45, 7001, false});
  cases.push_back({24, 6, 0.45, 7002, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Instances, Equivalence,
                         ::testing::ValuesIn(eq_cases()));

TEST(OpenMpDriver, MatchesStdThreadDriver) {
  if (!parallel::openmp_available()) GTEST_SKIP() << "compiled without OpenMP";
  datagen::SimulatedParams sp;
  sp.n_taxa = 14;
  sp.n_loci = 4;
  sp.missing_fraction = 0.4;
  sp.seed = 99;
  const auto ds = datagen::make_simulated(sp);
  Options opts;
  opts.collect_trees = true;
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto a =
      parallel::run_parallel(problem, opts, 4, parallel::LaunchMode::kStdThread);
  const auto b =
      parallel::run_parallel(problem, opts, 4, parallel::LaunchMode::kOpenMP);
  EXPECT_EQ(a.stand_trees, b.stand_trees);
  EXPECT_EQ(a.intermediate_states, b.intermediate_states);
  EXPECT_EQ(a.dead_ends, b.dead_ends);
  EXPECT_EQ(sorted(a.trees), sorted(b.trees));
}

TEST(VirtualDeterminism, SameSeedSameMakespan) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 16;
  sp.n_loci = 5;
  sp.missing_fraction = 0.45;
  sp.seed = 1234;
  const auto ds = datagen::make_simulated(sp);
  Options opts;
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto a = vthread::run_virtual(problem, opts, 4);
  const auto b = vthread::run_virtual(problem, opts, 4);
  EXPECT_EQ(a.virtual_makespan, b.virtual_makespan);
  EXPECT_EQ(a.stand_trees, b.stand_trees);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
}

}  // namespace
}  // namespace gentrius
