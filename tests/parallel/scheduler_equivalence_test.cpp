// Cross-scheduler equivalence: the central queue and the distributed
// deques implement the same decomposition, so with stopping rules quiet
// every driver — serial, real pool under either scheduler, virtual-time
// simulator under either scheduler — must report identical tree / state /
// dead-end counts and the identical canonical stand set at every thread
// count. This is the §IV "exact same results" check extended to the
// scheduler axis.
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "parallel/pool.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::Result;
using core::Scheduler;
using core::StopReason;

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct SchedCase {
  std::size_t n_taxa;
  std::size_t n_loci;
  double missing;
  std::uint64_t seed;
};

class SchedulerEquivalence : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerEquivalence, BothSchedulersMatchSerialRealAndVirtual) {
  const auto p = GetParam();
  datagen::SimulatedParams sp;
  sp.n_taxa = p.n_taxa;
  sp.n_loci = p.n_loci;
  sp.missing_fraction = p.missing;
  sp.seed = p.seed;
  const auto ds = datagen::make_simulated(sp);

  Options opts;
  opts.collect_trees = true;
  const auto problem = core::build_problem(ds.constraints, opts);

  const Result serial = core::run_serial(problem, opts);
  ASSERT_EQ(serial.reason, StopReason::kCompleted);
  const auto expected_trees = sorted(serial.trees);

  for (const Scheduler sched :
       {Scheduler::kCentralQueue, Scheduler::kDistributedDeques}) {
    Options o = opts;
    o.scheduler = sched;
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const Result par = parallel::run_parallel(problem, o, threads);
      EXPECT_EQ(par.stand_trees, serial.stand_trees)
          << to_string(sched) << " threads=" << threads;
      EXPECT_EQ(par.intermediate_states, serial.intermediate_states)
          << to_string(sched) << " threads=" << threads;
      EXPECT_EQ(par.dead_ends, serial.dead_ends)
          << to_string(sched) << " threads=" << threads;
      EXPECT_EQ(par.reason, StopReason::kCompleted);
      EXPECT_EQ(sorted(par.trees), expected_trees)
          << to_string(sched) << " threads=" << threads;
      // A completed run drained every accepted offer: the schedulers
      // terminate only with empty queues/deques, and each acquired task
      // is adopted exactly once.
      EXPECT_EQ(par.tasks_executed, par.tasks_offered)
          << to_string(sched) << " threads=" << threads;
      if (sched == Scheduler::kCentralQueue) {
        // Every central hand-off crosses the shared queue.
        EXPECT_EQ(par.sched.tasks_stolen, par.tasks_executed);
        EXPECT_EQ(par.sched.failed_steal_probes, 0u);
      } else {
        // Steal accounting: transfers never exceed probes, and only
        // offered tasks can be stolen.
        EXPECT_LE(par.sched.tasks_stolen, par.sched.steal_attempts);
        EXPECT_LE(par.sched.tasks_stolen, par.tasks_offered);
      }
      if (par.tasks_offered > 0) {
        EXPECT_GE(par.sched.max_queue_depth, 1u);
      }

      const Result vir = vthread::run_virtual(problem, o, threads);
      EXPECT_EQ(vir.stand_trees, serial.stand_trees)
          << to_string(sched) << " vthreads=" << threads;
      EXPECT_EQ(vir.intermediate_states, serial.intermediate_states)
          << to_string(sched) << " vthreads=" << threads;
      EXPECT_EQ(vir.dead_ends, serial.dead_ends)
          << to_string(sched) << " vthreads=" << threads;
      EXPECT_EQ(sorted(vir.trees), expected_trees)
          << to_string(sched) << " vthreads=" << threads;
      EXPECT_EQ(vir.tasks_executed, vir.tasks_offered)
          << to_string(sched) << " vthreads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, SchedulerEquivalence,
    ::testing::Values(SchedCase{12, 4, 0.4, 311}, SchedCase{16, 5, 0.45, 312},
                      SchedCase{20, 5, 0.5, 313}, SchedCase{24, 6, 0.45, 314}));

// The distributed scheduler's counts must not depend on the victim-
// selection seed (the schedule may differ; the enumeration may not).
TEST(StealSeed, CountsAreSeedIndependent) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 18;
  sp.n_loci = 5;
  sp.missing_fraction = 0.45;
  sp.seed = 2024;
  const auto ds = datagen::make_simulated(sp);
  Options opts;
  opts.collect_trees = true;
  opts.scheduler = Scheduler::kDistributedDeques;
  const auto problem = core::build_problem(ds.constraints, opts);

  const Result base = parallel::run_parallel(problem, opts, 4);
  for (const std::uint64_t seed : {1ull, 0xdeadbeefull, 42ull}) {
    Options o = opts;
    o.steal_seed = seed;
    const Result r = parallel::run_parallel(problem, o, 4);
    EXPECT_EQ(r.stand_trees, base.stand_trees) << "seed=" << seed;
    EXPECT_EQ(r.intermediate_states, base.intermediate_states)
        << "seed=" << seed;
    EXPECT_EQ(r.dead_ends, base.dead_ends) << "seed=" << seed;
    EXPECT_EQ(sorted(r.trees), sorted(base.trees)) << "seed=" << seed;
  }
}

// Virtual distributed runs are bit-deterministic: same options → same
// makespan, same schedule statistics.
TEST(VirtualDistributed, SameSeedSameMakespan) {
  datagen::SimulatedParams sp;
  sp.n_taxa = 16;
  sp.n_loci = 5;
  sp.missing_fraction = 0.45;
  sp.seed = 1234;
  const auto ds = datagen::make_simulated(sp);
  Options opts;
  opts.scheduler = Scheduler::kDistributedDeques;
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto a = vthread::run_virtual(problem, opts, 4);
  const auto b = vthread::run_virtual(problem, opts, 4);
  EXPECT_EQ(a.virtual_makespan, b.virtual_makespan);
  EXPECT_EQ(a.stand_trees, b.stand_trees);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.sched.tasks_stolen, b.sched.tasks_stolen);
  EXPECT_EQ(a.sched.steal_attempts, b.sched.steal_attempts);
}

}  // namespace
}  // namespace gentrius
