// Adaptive offer policy (Options::OfferPolicy::kAdaptiveGW): the online
// Galton–Watson granularity controller may change *which* frames become
// tasks, but never what is enumerated. These tests pin
//   * the GW estimator's recurrence and its lazy refit,
//   * policy equivalence: identical counts and identical canonical stand
//     sets across serial / real pool / virtual simulator, both schedulers,
//     both policies, N_t in {2,4,8},
//   * bit-identical virtual-time determinism under the adaptive policy,
//   * the starvation regression on the skewed hand-off-flood family: with
//     the policy live (offers actually suppressed) the pool must not run
//     slower than the paper's fixed rule,
//   * the lifted splitting-rule knobs (offer_min_remaining,
//     offer_split_fraction) and the offer counters in core::Result.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/dataset.hpp"
#include "gentrius/offer_policy.hpp"
#include "gentrius/serial.hpp"
#include "parallel/pool.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius {
namespace {

using core::GwOfferModel;
using core::OfferPolicy;
using core::Options;
using core::Result;
using core::Scheduler;
using core::StopReason;

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

Options options_for(const datagen::Dataset& ds) {
  Options o;
  if (ds.forced_initial_constraint) {
    o.select_initial_tree = false;
    o.initial_constraint = *ds.forced_initial_constraint;
  }
  if (!ds.forced_insertion_order.empty()) {
    o.dynamic_taxon_order = false;
    o.insertion_order = ds.forced_insertion_order;
  }
  return o;
}

// ---- GW estimator ----------------------------------------------------------

TEST(GwOfferModel, PriorOnlyPredictionFollowsRecurrence) {
  Options o;
  o.gw_prior_offspring = 2.0;
  GwOfferModel model(/*max_remaining=*/4, o);
  // No observations: m(r) = prior everywhere, so W(r) = 2 * (1 + W(r-1)):
  // W(1) = 2, W(2) = 6, W(3) = 14, and a branch of a stratum-r frame is
  // worth 1 + W(r-1).
  EXPECT_DOUBLE_EQ(model.expected_branch_states(1), 1.0);
  EXPECT_DOUBLE_EQ(model.expected_branch_states(2), 3.0);
  EXPECT_DOUBLE_EQ(model.expected_branch_states(3), 7.0);
  EXPECT_DOUBLE_EQ(model.expected_branch_states(4), 15.0);
}

TEST(GwOfferModel, ConvergesToObservedBranching) {
  Options o;
  o.gw_prior_offspring = 2.0;
  o.gw_prior_weight = 4.0;
  o.gw_refit_period = 64;
  GwOfferModel model(/*max_remaining=*/3, o);
  for (int i = 0; i < 10'000; ++i)
    for (std::size_t r = 1; r <= 3; ++r) model.record(r, 3);
  // Prior washed out: m -> 3, so W(1)=3, W(2)=12 and branch values follow.
  EXPECT_NEAR(model.offspring_mean(1), 3.0, 1e-3);
  EXPECT_NEAR(model.expected_branch_states(2), 4.0, 1e-2);
  EXPECT_NEAR(model.expected_branch_states(3), 13.0, 5e-2);
}

TEST(GwOfferModel, DeadEndsShrinkTheForecast) {
  Options o;
  GwOfferModel model(/*max_remaining=*/2, o);
  for (int i = 0; i < 1'000; ++i) model.record(1, 0);  // stratum 1 dead-ends
  // W(1) -> 0: a branch of a stratum-2 frame is worth just its own insert.
  EXPECT_NEAR(model.expected_branch_states(2), 1.0, 1e-2);
}

TEST(GwOfferModel, RefitIsLazyAndDeterministic) {
  Options o;
  o.gw_refit_period = 64;
  GwOfferModel model(/*max_remaining=*/2, o);
  const double before = model.expected_branch_states(2);  // fits the prior
  for (int i = 0; i < 10; ++i) model.record(1, 6);
  // Fewer than gw_refit_period new samples: the table must not move.
  EXPECT_DOUBLE_EQ(model.expected_branch_states(2), before);
  for (int i = 0; i < 64; ++i) model.record(1, 6);
  EXPECT_GT(model.expected_branch_states(2), before);
}

// ---- policy equivalence ----------------------------------------------------

class OfferPolicyEquivalence : public ::testing::TestWithParam<OfferPolicy> {};

TEST_P(OfferPolicyEquivalence, CountsAndStandSetMatchSerialEverywhere) {
  // The flood family is the adversarial case: an offer-eligible frame at
  // every state, so the two policies schedule very differently.
  const auto ds = datagen::make_flood_instance(/*depth=*/6, /*seed=*/3);
  Options opts = options_for(ds);
  opts.collect_trees = true;
  opts.offer_policy = GetParam();
  const auto problem = core::build_problem(ds.constraints, opts);

  const Result serial = core::run_serial(problem, opts);
  ASSERT_EQ(serial.reason, StopReason::kCompleted);
  ASSERT_GT(serial.stand_trees, 100u);
  const auto expected_trees = sorted(serial.trees);

  for (const Scheduler sched :
       {Scheduler::kCentralQueue, Scheduler::kDistributedDeques}) {
    Options o = opts;
    o.scheduler = sched;
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const Result real = parallel::run_parallel(problem, o, threads);
      const Result sim = vthread::run_virtual(problem, o, threads);
      for (const Result* r : {&real, &sim}) {
        EXPECT_EQ(r->stand_trees, serial.stand_trees)
            << to_string(sched) << " threads=" << threads;
        EXPECT_EQ(r->intermediate_states, serial.intermediate_states)
            << to_string(sched) << " threads=" << threads;
        EXPECT_EQ(r->dead_ends, serial.dead_ends)
            << to_string(sched) << " threads=" << threads;
        EXPECT_EQ(sorted(r->trees), expected_trees)
            << to_string(sched) << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, OfferPolicyEquivalence,
                         ::testing::Values(OfferPolicy::kPaperFixed,
                                           OfferPolicy::kAdaptiveGW),
                         [](const auto& info) {
                           return info.param == OfferPolicy::kPaperFixed
                                      ? "PaperFixed"
                                      : "AdaptiveGW";
                         });

// ---- virtual-time determinism ---------------------------------------------

TEST(AdaptiveOfferPolicy, VirtualRunsAreBitIdentical) {
  const auto ds = datagen::make_flood_instance(/*depth=*/7, /*seed=*/1);
  Options opts = options_for(ds);
  opts.offer_policy = OfferPolicy::kAdaptiveGW;
  const auto problem = core::build_problem(ds.constraints, opts);
  for (const Scheduler sched :
       {Scheduler::kCentralQueue, Scheduler::kDistributedDeques}) {
    Options o = opts;
    o.scheduler = sched;
    const Result a = vthread::run_virtual(problem, o, 8);
    const Result b = vthread::run_virtual(problem, o, 8);
    EXPECT_EQ(a.virtual_makespan, b.virtual_makespan) << to_string(sched);
    EXPECT_EQ(a.tasks_offered, b.tasks_offered) << to_string(sched);
    EXPECT_EQ(a.sched.offers_evaluated, b.sched.offers_evaluated);
    EXPECT_EQ(a.sched.offers_suppressed, b.sched.offers_suppressed);
    EXPECT_EQ(a.sched.adopted_actual_states, b.sched.adopted_actual_states);
  }
}

// ---- starvation regression on the skewed family ---------------------------

TEST(AdaptiveOfferPolicy, DoesNotStarveTheFloodedPool) {
  const auto ds = datagen::make_flood_instance(/*depth=*/9, /*seed=*/2);
  Options opts = options_for(ds);
  const auto problem = core::build_problem(ds.constraints, opts);
  for (const std::size_t threads : {8UL, 16UL}) {
    Options fixed = opts, adaptive = opts;
    fixed.offer_policy = OfferPolicy::kPaperFixed;
    adaptive.offer_policy = OfferPolicy::kAdaptiveGW;
    const Result rf = vthread::run_virtual(problem, fixed, threads);
    const Result ra = vthread::run_virtual(problem, adaptive, threads);
    ASSERT_EQ(ra.reason, StopReason::kCompleted);
    // The policy is genuinely live on this family...
    EXPECT_GT(ra.sched.offers_evaluated, 0u);
    EXPECT_GT(ra.sched.offers_suppressed, 0u);
    // ...suppression must starve nobody: within 2% of the fixed rule even
    // under the rejection-free historical cost model (where the fixed
    // rule's flooding is cheapest), at every pool size.
    EXPECT_LE(ra.virtual_makespan, rf.virtual_makespan * 1.02)
        << "threads=" << threads;
    // Suppressed offers never touch the sink, so the adaptive run cannot
    // bounce off the full ring more often than the fixed rule does.
    EXPECT_LE(ra.sched.queue_full_rejections, rf.sched.queue_full_rejections)
        << "threads=" << threads;
  }
}

// ---- lifted splitting-rule knobs ------------------------------------------

TEST(OfferPolicyKnobs, MinRemainingDisablesAllOffers) {
  const auto ds = datagen::make_flood_instance(/*depth=*/6, /*seed=*/1);
  Options opts = options_for(ds);
  opts.offer_min_remaining = 1'000;  // no frame ever qualifies
  const auto problem = core::build_problem(ds.constraints, opts);
  const Result serial = core::run_serial(problem, opts);
  for (const OfferPolicy policy :
       {OfferPolicy::kPaperFixed, OfferPolicy::kAdaptiveGW}) {
    Options o = opts;
    o.offer_policy = policy;
    const Result r = vthread::run_virtual(problem, o, 4);
    EXPECT_EQ(r.tasks_offered, 0u);
    EXPECT_EQ(r.sched.offers_evaluated, 0u);
    EXPECT_EQ(r.stand_trees, serial.stand_trees);
  }
}

TEST(OfferPolicyKnobs, SplitFractionKeepsCountsExact) {
  const auto ds = datagen::make_flood_instance(/*depth=*/6, /*seed=*/2);
  Options opts = options_for(ds);
  const auto problem = core::build_problem(ds.constraints, opts);
  const Result serial = core::run_serial(problem, opts);
  for (const double fraction : {0.25, 0.5, 0.75}) {
    Options o = opts;
    o.offer_split_fraction = fraction;
    const Result r = vthread::run_virtual(problem, o, 4);
    EXPECT_EQ(r.stand_trees, serial.stand_trees) << "fraction=" << fraction;
    EXPECT_EQ(r.intermediate_states, serial.intermediate_states)
        << "fraction=" << fraction;
    EXPECT_EQ(r.dead_ends, serial.dead_ends) << "fraction=" << fraction;
  }
}

TEST(OfferPolicyKnobs, AdaptiveStatsFlowThroughResult) {
  const auto ds = datagen::make_flood_instance(/*depth=*/7, /*seed=*/4);
  Options opts = options_for(ds);
  opts.offer_policy = OfferPolicy::kAdaptiveGW;
  const auto problem = core::build_problem(ds.constraints, opts);
  const Result r = vthread::run_virtual(problem, opts, 8);
  // Every candidate frame was evaluated; accepted + suppressed + rejected
  // pushes partition the evaluations.
  EXPECT_GT(r.sched.offers_evaluated, 0u);
  EXPECT_GE(r.sched.offers_evaluated,
            r.sched.offers_suppressed + r.tasks_offered);
  // Adopted tasks carried GW predictions and the replay accounting closed.
  EXPECT_GT(r.sched.adopted_predicted_states, 0.0);
  EXPECT_GT(r.sched.adopted_actual_states, 0u);
  EXPECT_GT(r.sched.offer_prediction_error(), 0.0);
  // Fixed-policy runs keep the adaptive counters silent.
  Options fixed = opts;
  fixed.offer_policy = OfferPolicy::kPaperFixed;
  const Result rf = vthread::run_virtual(problem, fixed, 8);
  EXPECT_EQ(rf.sched.offers_evaluated, 0u);
  EXPECT_EQ(rf.sched.offers_suppressed, 0u);
}

}  // namespace
}  // namespace gentrius
