// Unit tests for the distributed scheduler's building blocks: StealDeque
// ring semantics (owner LIFO / thief FIFO, capacity rejection, stats),
// DequeScheduler termination and stop handling, and the stop-wake
// regression — a consumer parked inside either scheduler must unblock
// promptly when CounterSink::request_stop fires from another thread,
// without anyone calling broadcast_stop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/steal_deque.hpp"
#include "parallel/task_queue.hpp"

namespace gentrius::parallel {
namespace {

core::Task make_task(int tag) {
  core::Task t;
  t.next_taxon = static_cast<core::TaxonId>(tag);
  return t;
}

bool push(StealDeque& d, core::Task t) { return d.owner_push(t); }

int tag_of(const core::Task& t) { return static_cast<int>(t.next_taxon); }

// The zero-worker VictimSelector state is unrepresentable by construction:
// no default constructor, and n_workers >= 1 is checked. The static_assert
// makes the "no default constructor" half a compile-time contract.
static_assert(!std::is_default_constructible_v<VictimSelector>,
              "a VictimSelector without a worker count must not compile");

TEST(VictimSelector, SingleWorkerAlwaysSweepsFromZero) {
  VictimSelector sel(/*seed=*/123, /*tid=*/0, /*n_workers=*/1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sel.begin_sweep(), 0u);
}

TEST(VictimSelector, SweepStartsStayInRangeAndCoverAllWorkers) {
  constexpr std::size_t kWorkers = 5;
  VictimSelector sel(/*seed=*/99, /*tid=*/2, kWorkers);
  std::vector<bool> hit(kWorkers, false);
  for (int i = 0; i < 500; ++i) {
    const std::size_t v = sel.begin_sweep();
    ASSERT_LT(v, kWorkers);
    hit[v] = true;
  }
  for (std::size_t w = 0; w < kWorkers; ++w)
    EXPECT_TRUE(hit[w]) << "worker " << w << " never chosen as sweep start";
}

TEST(VictimSelector, SeededSelectionIsDeterministicPerThread) {
  VictimSelector a(/*seed=*/7, /*tid=*/3, /*n_workers=*/8);
  VictimSelector b(/*seed=*/7, /*tid=*/3, /*n_workers=*/8);
  VictimSelector c(/*seed=*/7, /*tid=*/4, /*n_workers=*/8);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const std::size_t va = a.begin_sweep();
    EXPECT_EQ(va, b.begin_sweep());
    differs |= (va != c.begin_sweep());
  }
  EXPECT_TRUE(differs) << "different tids must not share a victim sequence";
}

TEST(StealDeque, OwnerPopsLifoThievesStealFifo) {
  StealDeque d(4);
  ASSERT_TRUE(push(d, make_task(1)));
  ASSERT_TRUE(push(d, make_task(2)));
  ASSERT_TRUE(push(d, make_task(3)));
  core::Task out;
  ASSERT_TRUE(d.owner_pop(out));
  EXPECT_EQ(tag_of(out), 3);  // newest first for the owner
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(tag_of(out), 1);  // oldest first for a thief
  ASSERT_TRUE(d.owner_pop(out));
  EXPECT_EQ(tag_of(out), 2);
  EXPECT_FALSE(d.owner_pop(out));
  EXPECT_FALSE(d.steal(out));
}

TEST(StealDeque, RejectsWhenFullAndCountsRejections) {
  StealDeque d(2);
  EXPECT_TRUE(push(d, make_task(1)));
  EXPECT_TRUE(push(d, make_task(2)));
  EXPECT_FALSE(push(d, make_task(3)));
  EXPECT_FALSE(push(d, make_task(4)));
  EXPECT_EQ(d.rejections(), 2u);
  EXPECT_EQ(d.max_depth(), 2u);
  core::Task out;
  ASSERT_TRUE(d.steal(out));
  EXPECT_TRUE(push(d, make_task(5)));  // capacity freed by the steal
  EXPECT_EQ(d.rejections(), 2u);
}

TEST(StealDeque, TryReserveCountsButDoesNotConsume) {
  StealDeque d(1);
  EXPECT_TRUE(d.try_reserve());
  EXPECT_TRUE(d.try_reserve());  // a reservation holds no slot
  ASSERT_TRUE(push(d, make_task(1)));
  EXPECT_FALSE(d.try_reserve());
  EXPECT_EQ(d.rejections(), 1u);
}

TEST(StealDeque, RingWrapsAcrossManyHandoffs) {
  StealDeque d(3);
  core::Task out;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(push(d, make_task(2 * i)));
    ASSERT_TRUE(push(d, make_task(2 * i + 1)));
    ASSERT_TRUE(d.steal(out));
    EXPECT_EQ(tag_of(out), 2 * i);
    ASSERT_TRUE(d.owner_pop(out));
    EXPECT_EQ(tag_of(out), 2 * i + 1);
  }
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.max_depth(), 2u);
}

TEST(DequeScheduler, PerWorkerCapacityBeatsTheCentralRuleAtScale) {
  // The structural headroom argument for the scheduler: at 48 threads the
  // central queue holds 24 tasks in total, the deques 8 per worker.
  EXPECT_EQ(queue_capacity_for(48), 24u);
  EXPECT_EQ(steal_deque_capacity_for(48) * 48, 384u);
}

TEST(DequeScheduler, SingleWorkerTerminatesImmediately) {
  core::CounterSink sink({});
  DequeScheduler sched(1, /*steal_seed=*/1);
  core::Task out;
  EXPECT_FALSE(sched.acquire(0, sink, out));
}

TEST(DequeScheduler, OwnerDrainsOwnDequeBeforeTermination) {
  core::CounterSink sink({});
  DequeScheduler sched(1, 1);
  core::Task t = make_task(7);
  ASSERT_TRUE(sched.sink_for(0)->try_push(t));
  core::Task out;
  ASSERT_TRUE(sched.acquire(0, sink, out));
  EXPECT_EQ(tag_of(out), 7);
  EXPECT_FALSE(sched.acquire(0, sink, out));  // drained: terminates
  const auto s = sched.stats();
  EXPECT_EQ(s.tasks_stolen, 0u);  // an own-pop is not a steal
  EXPECT_EQ(s.max_queue_depth, 1u);
}

TEST(DequeScheduler, ThiefStealsAcrossWorkersAndPoolTerminates) {
  core::CounterSink sink({});
  DequeScheduler sched(2, 1);
  // Worker 0 offers two tasks, then both workers drain to termination.
  for (int i = 0; i < 2; ++i) {
    core::Task t = make_task(i);
    ASSERT_TRUE(sched.sink_for(0)->try_push(t));
  }
  std::atomic<int> taken{0};
  std::vector<std::thread> threads;
  for (std::size_t tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      core::Task out;
      while (sched.acquire(tid, sink, out)) ++taken;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(taken.load(), 2);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(DequeScheduler, PushRejectedAfterStop) {
  core::CounterSink sink({});
  DequeScheduler sched(2, 1);
  sched.broadcast_stop();
  core::Task t = make_task(1);
  EXPECT_FALSE(sched.sink_for(0)->try_push(t));
  core::Task out;
  EXPECT_FALSE(sched.acquire(0, sink, out));
}

// --- stop-wake latency regression ------------------------------------------
//
// Before the StopWaker hook, CounterSink::request_stop only raised a flag;
// a consumer parked in a scheduler's condition-variable wait stayed parked
// until some *other* worker observed the flag and called broadcast_stop.
// With the waker registered, the stop itself must unpark the consumer.
// The 5 s ceiling is three orders of magnitude above a healthy wake-up; the
// old behavior hangs here forever (no second worker ever broadcasts).
template <typename Scheduler, typename BlockedPop>
void expect_prompt_stop_wake(Scheduler& sched, core::CounterSink& sink,
                             BlockedPop blocked_pop) {
  sink.set_stop_waker(&sched);
  std::atomic<bool> released{false};
  std::thread consumer([&] {
    blocked_pop();
    released.store(true, std::memory_order_release);
  });
  // Let the consumer reach the parked state, then stop WITHOUT broadcast.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(released.load(std::memory_order_acquire));
  sink.request_stop(core::StopReason::kTreeLimit);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!released.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(released.load(std::memory_order_acquire))
      << "consumer still parked 5 s after request_stop";
  consumer.join();
  sink.set_stop_waker(nullptr);
}

TEST(StopWake, RequestStopUnparksCentralQueueConsumer) {
  core::CounterSink sink({});
  TaskQueue queue(4, /*workers=*/2);  // 1 busy worker remains: pop blocks
  expect_prompt_stop_wake(queue, sink, [&] {
    core::Task t;
    EXPECT_FALSE(queue.pop(sink, t));
  });
}

TEST(StopWake, RequestStopUnparksDequeSchedulerConsumer) {
  core::CounterSink sink({});
  DequeScheduler sched(2, /*steal_seed=*/1);  // worker 1 never arrives
  expect_prompt_stop_wake(sched, sink, [&] {
    core::Task t;
    EXPECT_FALSE(sched.acquire(0, sink, t));
  });
}

}  // namespace
}  // namespace gentrius::parallel
