// Virtual-time scheduler behaviour: the qualitative effects the paper
// reports must emerge from the cost model + scheduling policy.
#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius {
namespace {

using core::Options;
using vthread::CostModel;

core::Problem make_problem(std::size_t n_taxa, double missing,
                           std::uint64_t seed, const Options& opts) {
  datagen::SimulatedParams sp;
  sp.n_taxa = n_taxa;
  sp.n_loci = 6;
  sp.missing_fraction = missing;
  sp.seed = seed;
  const auto ds = datagen::make_simulated(sp);
  return core::build_problem(ds.constraints, opts);
}

TEST(VirtualPool, SmallDatasetsSlowDownUnderThreads) {
  // Paper §IV-A: datasets with tiny serial runtimes are *slower* in
  // parallel because of thread creation and task-distribution overhead.
  Options opts;
  const auto problem = make_problem(12, 0.35, 3001, opts);
  const auto serial = vthread::run_virtual(problem, opts, 1);
  ASSERT_LT(serial.virtual_makespan, 2000.0) << "instance not small enough";
  const auto par = vthread::run_virtual(problem, opts, 8);
  EXPECT_GT(par.virtual_makespan, serial.virtual_makespan);
}

TEST(VirtualPool, LargeDatasetsSpeedUpNearLinearly) {
  Options opts;
  opts.stop.max_stand_trees = 500'000;
  opts.stop.max_states = 5'000'000;
  // A hard instance (found by the corpus generators).
  datagen::SimulatedParams sp;
  sp.n_taxa = 40;
  sp.n_loci = 8;
  sp.missing_fraction = 0.5;
  sp.seed = 20230501;
  const auto ds = datagen::make_simulated(sp);
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto serial = vthread::run_virtual(problem, opts, 1);
  ASSERT_EQ(serial.reason, core::StopReason::kCompleted);
  ASSERT_GT(serial.virtual_makespan, 20'000.0);
  const auto p4 = vthread::run_virtual(problem, opts, 4);
  const auto p8 = vthread::run_virtual(problem, opts, 8);
  EXPECT_GT(serial.virtual_makespan / p4.virtual_makespan, 3.0);
  EXPECT_GT(serial.virtual_makespan / p8.virtual_makespan, 5.0);
}

TEST(VirtualPool, WorkStealingBeatsStaticSplitOnAverage) {
  Options opts;
  opts.stop.max_stand_trees = 300'000;
  opts.stop.max_states = 3'000'000;
  double pool_total = 0, static_total = 0;
  int used = 0;
  for (std::uint64_t seed = 500; seed < 540 && used < 6; ++seed) {
    datagen::SimulatedParams sp;
    sp.n_taxa = 36;
    sp.n_loci = 7;
    sp.missing_fraction = 0.5;
    sp.seed = seed;
    const auto ds = datagen::make_simulated(sp);
    const auto problem = core::build_problem(ds.constraints, opts);
    const auto probe = vthread::run_virtual(problem, opts, 8);
    if (probe.reason != core::StopReason::kCompleted ||
        probe.virtual_makespan < 1000)
      continue;
    pool_total += probe.virtual_makespan;
    static_total +=
        vthread::run_virtual_static_split(problem, opts, 8).virtual_makespan;
    ++used;
  }
  ASSERT_GT(used, 2);
  EXPECT_LT(pool_total, static_total);
}

TEST(VirtualPool, SpawnCostOnlyChargedWhenParallel) {
  Options opts;
  const auto problem = make_problem(12, 0.35, 3001, opts);
  CostModel expensive;
  expensive.spawn_cost = 1e6;
  const auto serial = vthread::run_virtual(problem, opts, 1, expensive);
  EXPECT_LT(serial.virtual_makespan, 1e6);
  const auto par = vthread::run_virtual(problem, opts, 2, expensive);
  EXPECT_GE(par.virtual_makespan, 1e6);
}

TEST(VirtualPool, UnbatchedCountersCostMoreAtHighThreadCounts) {
  Options batched;
  batched.stop.max_stand_trees = 200'000;
  Options unbatched = batched;
  unbatched.tree_flush_batch = 1;
  unbatched.state_flush_batch = 1;
  unbatched.dead_end_flush_batch = 1;
  const auto problem = make_problem(36, 0.5, 20230501, batched);
  const auto fast = vthread::run_virtual(problem, batched, 16);
  const auto slow = vthread::run_virtual(problem, unbatched, 16);
  EXPECT_LT(fast.virtual_makespan, slow.virtual_makespan);
  // Identical work, only publication cost differs.
  EXPECT_EQ(fast.stand_trees, slow.stand_trees);
}

TEST(VirtualPool, MakespanMonotonicallyImprovesOrSaturates) {
  Options opts;
  opts.stop.max_stand_trees = 300'000;
  const auto problem = make_problem(40, 0.5, 20230501, opts);
  double prev = vthread::run_virtual(problem, opts, 1).virtual_makespan;
  for (const std::size_t t : {2u, 4u, 8u, 16u}) {
    const double cur = vthread::run_virtual(problem, opts, t).virtual_makespan;
    EXPECT_LT(cur, prev * 1.15) << "threads=" << t;  // allow mild saturation
    prev = cur;
  }
}

}  // namespace
}  // namespace gentrius
