#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "datagen/dataset.hpp"
#include "datagen/dataset_io.hpp"
#include "gentrius/serial.hpp"
#include "phylo/topology.hpp"

namespace gentrius::datagen {
namespace {

class DatasetIo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "gentrius_io_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DatasetIo, RoundTripPreservesEverything) {
  SimulatedParams p;
  p.n_taxa = 18;
  p.n_loci = 4;
  p.missing_fraction = 0.4;
  p.seed = 321;
  const auto original = make_simulated(p);
  write_dataset(original, dir_.string());

  const auto loaded = load_dataset(dir_.string());
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.taxa.size(), original.taxa.size());
  EXPECT_EQ(loaded.pam.to_text(loaded.taxa), original.pam.to_text(original.taxa));
  ASSERT_EQ(loaded.constraints.size(), original.constraints.size());
  // Taxon ids may be permuted (PAM row order defines them on load); compare
  // via the stand itself, which is label-invariant in size.
  const auto a = core::run_serial(original.constraints, {});
  const auto b = core::run_serial(loaded.constraints, {});
  EXPECT_EQ(a.stand_trees, b.stand_trees);
  EXPECT_EQ(a.intermediate_states, b.intermediate_states);
  EXPECT_TRUE(phylo::displays(loaded.species_tree, loaded.constraints[0]));
}

TEST_F(DatasetIo, ConstraintOnlyDatasets) {
  Dataset ds = make_plateau_instance(3, 0);
  write_dataset(ds, dir_.string());
  const auto loaded = load_dataset(dir_.string());
  EXPECT_EQ(loaded.constraints.size(), ds.constraints.size());
  EXPECT_EQ(loaded.pam.taxon_count(), 0u);
  EXPECT_EQ(loaded.species_tree.leaf_count(), 0u);
}

TEST_F(DatasetIo, RoundTripPreservesEngineOverrides) {
  // Crafted instances only reproduce their figure with the forced initial
  // tree and insertion order; both must survive a write/load cycle.
  const Dataset ds = make_plateau_instance(4, 0);
  ASSERT_TRUE(ds.forced_initial_constraint.has_value());
  ASSERT_FALSE(ds.forced_insertion_order.empty());
  write_dataset(ds, dir_.string());

  const auto loaded = load_dataset(dir_.string());
  EXPECT_EQ(loaded.forced_initial_constraint, ds.forced_initial_constraint);
  // Ids may be permuted on load; the label sequence is the invariant.
  ASSERT_EQ(loaded.forced_insertion_order.size(),
            ds.forced_insertion_order.size());
  for (std::size_t i = 0; i < ds.forced_insertion_order.size(); ++i)
    EXPECT_EQ(loaded.taxa.name(loaded.forced_insertion_order[i]),
              ds.taxa.name(ds.forced_insertion_order[i]));
}

TEST_F(DatasetIo, PamAndConstraintsRoundTripBitForBit) {
  SimulatedParams p;
  p.n_taxa = 12;
  p.n_loci = 3;
  p.seed = 9;
  const auto ds = make_simulated(p);
  write_dataset(ds, dir_.string());
  const auto loaded = load_dataset(dir_.string());

  // Same shape, same cells under the (possibly permuted) label mapping.
  ASSERT_EQ(loaded.pam.taxon_count(), ds.pam.taxon_count());
  ASSERT_EQ(loaded.pam.locus_count(), ds.pam.locus_count());
  for (phylo::TaxonId t = 0; t < ds.pam.taxon_count(); ++t) {
    const auto lt = loaded.taxa.id_of(ds.taxa.name(t));
    for (std::size_t l = 0; l < ds.pam.locus_count(); ++l)
      EXPECT_EQ(loaded.pam.present(lt, l), ds.pam.present(t, l));
  }
  // Writing the loaded dataset again reproduces the files byte for byte.
  const auto dir2 = dir_.string() + "_again";
  write_dataset(loaded, dir2);
  for (const char* file : {"constraints.nwk", "matrix.pam", "name.txt"}) {
    std::ifstream a(dir_ / file), b(std::filesystem::path(dir2) / file);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << file;
  }
  std::filesystem::remove_all(dir2);
}

TEST_F(DatasetIo, MissingDirectoryFails) {
  EXPECT_THROW(load_dataset((dir_ / "nonexistent").string()),
               support::InvalidInput);
}

}  // namespace
}  // namespace gentrius::datagen
