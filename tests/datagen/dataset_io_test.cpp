#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/dataset.hpp"
#include "datagen/dataset_io.hpp"
#include "gentrius/serial.hpp"
#include "phylo/topology.hpp"

namespace gentrius::datagen {
namespace {

class DatasetIo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "gentrius_io_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DatasetIo, RoundTripPreservesEverything) {
  SimulatedParams p;
  p.n_taxa = 18;
  p.n_loci = 4;
  p.missing_fraction = 0.4;
  p.seed = 321;
  const auto original = make_simulated(p);
  write_dataset(original, dir_.string());

  const auto loaded = load_dataset(dir_.string());
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.taxa.size(), original.taxa.size());
  EXPECT_EQ(loaded.pam.to_text(loaded.taxa), original.pam.to_text(original.taxa));
  ASSERT_EQ(loaded.constraints.size(), original.constraints.size());
  // Taxon ids may be permuted (PAM row order defines them on load); compare
  // via the stand itself, which is label-invariant in size.
  const auto a = core::run_serial(original.constraints, {});
  const auto b = core::run_serial(loaded.constraints, {});
  EXPECT_EQ(a.stand_trees, b.stand_trees);
  EXPECT_EQ(a.intermediate_states, b.intermediate_states);
  EXPECT_TRUE(phylo::displays(loaded.species_tree, loaded.constraints[0]));
}

TEST_F(DatasetIo, ConstraintOnlyDatasets) {
  Dataset ds = make_plateau_instance(3, 0);
  write_dataset(ds, dir_.string());
  const auto loaded = load_dataset(dir_.string());
  EXPECT_EQ(loaded.constraints.size(), ds.constraints.size());
  EXPECT_EQ(loaded.pam.taxon_count(), 0u);
  EXPECT_EQ(loaded.species_tree.leaf_count(), 0u);
}

TEST_F(DatasetIo, MissingDirectoryFails) {
  EXPECT_THROW(load_dataset((dir_ / "nonexistent").string()),
               support::InvalidInput);
}

}  // namespace
}  // namespace gentrius::datagen
