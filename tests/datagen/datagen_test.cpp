#include <gtest/gtest.h>

#include <cmath>

#include "datagen/dataset.hpp"
#include "datagen/tree_gen.hpp"
#include "oracle/brute_force.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"

namespace gentrius::datagen {
namespace {

TEST(TreeGen, RandomTreeIsValidBinary) {
  support::Rng rng(1);
  for (const std::size_t n : {4u, 5u, 10u, 50u, 200u}) {
    std::vector<phylo::TaxonId> taxa;
    for (phylo::TaxonId i = 0; i < n; ++i) taxa.push_back(i);
    const auto t = random_tree(taxa, rng);
    t.validate();
    EXPECT_EQ(t.leaf_count(), n);
    EXPECT_EQ(t.edge_count(), 2 * n - 3);
    const auto y = yule_tree(taxa, rng);
    y.validate();
    EXPECT_EQ(y.leaf_count(), n);
  }
}

TEST(TreeGen, UniformModelIsRoughlyUniform) {
  // 5 taxa: 15 topologies; chi-square-ish sanity check on frequencies.
  support::Rng rng(12345);
  std::vector<phylo::TaxonId> taxa{0, 1, 2, 3, 4};
  std::map<std::string, int> freq;
  const int trials = 15'000;
  for (int i = 0; i < trials; ++i)
    ++freq[phylo::canonical_encoding(random_tree(taxa, rng))];
  EXPECT_EQ(freq.size(), 15u);
  for (const auto& [enc, count] : freq) {
    EXPECT_NEAR(count, trials / 15.0, 5 * std::sqrt(trials / 15.0)) << enc;
  }
}

TEST(TreeGen, Deterministic) {
  std::vector<phylo::TaxonId> taxa;
  for (phylo::TaxonId i = 0; i < 30; ++i) taxa.push_back(i);
  support::Rng a(7), b(7);
  EXPECT_TRUE(phylo::same_topology(random_tree(taxa, a), random_tree(taxa, b)));
}

TEST(Dataset, SimulatedRespectsShape) {
  SimulatedParams p;
  p.n_taxa = 40;
  p.n_loci = 6;
  p.missing_fraction = 0.4;
  p.seed = 9;
  const auto ds = make_simulated(p);
  EXPECT_EQ(ds.taxon_count(), 40u);
  EXPECT_EQ(ds.pam.locus_count(), 6u);
  EXPECT_TRUE(ds.pam.covers_all_taxa());
  EXPECT_NEAR(ds.pam.missing_fraction(), 0.4, 0.12);
  EXPECT_LE(ds.constraints.size(), 6u);
  for (std::size_t locus = 0; locus < 6; ++locus)
    EXPECT_GE(ds.pam.locus_taxa(locus).count(), 4u);
  // Constraints are the induced subtrees: the species tree displays all.
  for (const auto& c : ds.constraints)
    EXPECT_TRUE(phylo::displays(ds.species_tree, c));
}

TEST(Dataset, SimulatedDeterministicAndSeedSensitive) {
  SimulatedParams p;
  p.seed = 77;
  const auto a = make_simulated(p);
  const auto b = make_simulated(p);
  EXPECT_TRUE(phylo::same_topology(a.species_tree, b.species_tree));
  EXPECT_EQ(a.pam.to_text(a.taxa), b.pam.to_text(b.taxa));
  p.seed = 78;
  const auto c = make_simulated(p);
  EXPECT_NE(a.pam.to_text(a.taxa), c.pam.to_text(c.taxa));
}

TEST(Dataset, EmpiricalLikeHasBackboneAndTail) {
  EmpiricalLikeParams p;
  p.n_taxa = 60;
  p.n_loci = 12;
  p.seed = 5;
  const auto ds = make_empirical_like(p);
  EXPECT_TRUE(ds.pam.covers_all_taxa());
  // Backbone locus: widely sampled — only base missingness and rogue taxa
  // removed — and at least as full as any non-backbone locus.
  EXPECT_GE(ds.pam.locus_taxa(0).count(), 40u);
  for (std::size_t l = 1; l < p.n_loci; ++l)
    EXPECT_GE(ds.pam.locus_taxa(0).count() + 3,
              ds.pam.locus_taxa(l).count());
  // Missingness varies across loci (heavy tail): spread should be wide.
  std::size_t min_c = p.n_taxa, max_c = 0;
  for (std::size_t l = 0; l < p.n_loci; ++l) {
    min_c = std::min(min_c, ds.pam.locus_taxa(l).count());
    max_c = std::max(max_c, ds.pam.locus_taxa(l).count());
  }
  EXPECT_GT(max_c - min_c, 10u);
  for (const auto& c : ds.constraints)
    EXPECT_TRUE(phylo::displays(ds.species_tree, c));
}

TEST(Dataset, NonEmptyStandGuarantee) {
  // Constraints are induced from one species tree, so the species tree
  // itself is always on the stand.
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    SimulatedParams p;
    p.n_taxa = 7;
    p.n_loci = 3;
    p.seed = seed;
    const auto ds = make_simulated(p);
    EXPECT_GE(oracle::brute_force_stand_count(ds.constraints), 1u);
  }
}

TEST(Oracle, TreeSpaceSizes) {
  EXPECT_EQ(oracle::tree_space_size(3), 1u);
  EXPECT_EQ(oracle::tree_space_size(4), 3u);
  EXPECT_EQ(oracle::tree_space_size(5), 15u);
  EXPECT_EQ(oracle::tree_space_size(6), 105u);
  EXPECT_EQ(oracle::tree_space_size(8), 10395u);
}

TEST(Oracle, AllTreesAreDistinctAndComplete) {
  const std::vector<phylo::TaxonId> taxa{0, 1, 2, 3, 4, 5};
  const auto trees = oracle::all_trees(taxa);
  EXPECT_EQ(trees.size(), 105u);
  std::set<std::string> encodings;
  for (const auto& t : trees) {
    t.validate();
    encodings.insert(phylo::canonical_encoding(t));
  }
  EXPECT_EQ(encodings.size(), 105u);
}

}  // namespace
}  // namespace gentrius::datagen
