// Verifies that the crafted Fig. 5 instance families have exactly the
// branch-and-bound shape they were designed for (see the construction notes
// in src/datagen/dataset.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "datagen/dataset.hpp"
#include "gentrius/serial.hpp"
#include "oracle/brute_force.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius {
namespace {

using core::Options;
using core::StopReason;

Options crafted_options(const datagen::Dataset& ds) {
  Options opts;
  opts.select_initial_tree = false;
  opts.dynamic_taxon_order = false;
  opts.initial_constraint = ds.forced_initial_constraint;
  opts.insertion_order = ds.forced_insertion_order;
  return opts;
}

TEST(PlateauInstance, HasTheDesignedShape) {
  const std::size_t chain = 12;
  const auto ds = datagen::make_plateau_instance(chain, 0);
  const auto opts = crafted_options(ds);
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto r = core::run_serial(problem, opts);

  // 3-way initial split at the root; two branches are immediate dead ends;
  // the third is a fully forced chain ending in exactly one stand tree.
  EXPECT_EQ(r.reason, StopReason::kCompleted);
  EXPECT_EQ(r.prefix_length, 0u);
  EXPECT_EQ(r.initial_split_branches, 3u);
  EXPECT_EQ(r.dead_ends, 2u);
  EXPECT_EQ(r.stand_trees, 1u);
  // states: 2 dead-end insertions of x + (x, d, z_0..z_{chain-1}) on the
  // live branch.
  EXPECT_EQ(r.intermediate_states, 2 + 2 + chain);
}

TEST(PlateauInstance, MatchesOracleOnSmallChain) {
  const auto ds = datagen::make_plateau_instance(2, 0);
  const auto opts = crafted_options(ds);
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.stand_trees, oracle::brute_force_stand_count(ds.constraints));
}

TEST(PlateauInstance, VirtualSpeedupPlateaus) {
  const auto ds = datagen::make_plateau_instance(64, 0);
  const auto opts = crafted_options(ds);
  const auto problem = core::build_problem(ds.constraints, opts);
  vthread::CostModel costs;
  costs.spawn_cost = 0.0;  // isolate the workflow-shape effect
  const auto serial = vthread::run_virtual(problem, opts, 1, costs);
  ASSERT_GT(serial.virtual_makespan, 0.0);
  for (const std::size_t t : {2u, 4u, 8u}) {
    const auto par = vthread::run_virtual(problem, opts, t, costs);
    const double speedup = serial.virtual_makespan / par.virtual_makespan;
    EXPECT_LT(speedup, 1.3) << "threads=" << t;
    EXPECT_EQ(par.stand_trees, serial.stand_trees);
  }
}

TEST(SuperlinearInstance, SerialExhaustsStateBudgetWithZeroTrees) {
  const auto ds = datagen::make_superlinear_instance(4, 0);
  auto opts = crafted_options(ds);
  opts.stop.max_states = 20'000;
  const auto problem = core::build_problem(ds.constraints, opts);

  const auto serial = core::run_serial(problem, opts);
  EXPECT_EQ(serial.reason, StopReason::kStateLimit);
  EXPECT_EQ(serial.stand_trees, 0u)
      << "serial search should die inside the barren region first";

  // Two virtual threads: the second descends the stand-rich branch
  // immediately and finds trees long before the state budget is gone.
  const auto par = vthread::run_virtual(problem, opts, 2);
  EXPECT_GT(par.stand_trees, 0u);
}

TEST(SuperlinearInstance, CompletesCorrectlyWithoutLimits) {
  const auto ds = datagen::make_superlinear_instance(2, 0);
  const auto opts = crafted_options(ds);
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.reason, StopReason::kCompleted);
  EXPECT_EQ(r.stand_trees, oracle::brute_force_stand_count(ds.constraints));
  EXPECT_GT(r.stand_trees, 0u);
  EXPECT_GT(r.dead_ends, 0u);
}

// Expected stand size of make_flood_instance(depth, seed): each flood taxon
// is pinned to its own clade — a cherry (3 admissible edges) or, for the
// depth/4 seeded "wide" positions, a 3-taxon clade (5 edges) — and the
// choices are independent, so the stand is an exact product.
std::uint64_t flood_stand_size(std::size_t depth) {
  const std::size_t wide = std::max<std::size_t>(1, depth / 4);
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < depth - wide; ++i) n *= 3;
  for (std::size_t i = 0; i < wide; ++i) n *= 5;
  return n;
}

TEST(FloodInstance, EnumeratesTheDesignedProductStand) {
  const auto ds = datagen::make_flood_instance(/*depth=*/6, /*seed=*/3);
  const auto opts = crafted_options(ds);
  const auto r = core::run_serial(ds.constraints, opts);
  EXPECT_EQ(r.reason, StopReason::kCompleted);
  EXPECT_EQ(r.stand_trees, flood_stand_size(6));
  // Every admissible branch leads to a stand tree: the family stresses
  // task granularity, never pruning.
  EXPECT_EQ(r.dead_ends, 0u);
}

TEST(FloodInstance, SeedsVaryTheOrderNotTheStand) {
  const auto a = datagen::make_flood_instance(/*depth=*/8, /*seed=*/1);
  const auto b = datagen::make_flood_instance(/*depth=*/8, /*seed=*/2);
  EXPECT_NE(a.forced_insertion_order, b.forced_insertion_order)
      << "seeds must produce genuinely different replicate instances";
  const auto ra = core::run_serial(a.constraints, crafted_options(a));
  const auto rb = core::run_serial(b.constraints, crafted_options(b));
  EXPECT_EQ(ra.stand_trees, flood_stand_size(8));
  EXPECT_EQ(rb.stand_trees, flood_stand_size(8));
}

TEST(FloodInstance, FloodsTheBoundedQueue) {
  // The design target: under the paper's fixed offer rule, offer-eligible
  // frames vastly outnumber the central queue's capacity, so most offers
  // bounce off the full ring.
  const auto ds = datagen::make_flood_instance(/*depth=*/10, /*seed=*/1);
  const auto opts = crafted_options(ds);
  const auto problem = core::build_problem(ds.constraints, opts);
  const auto r = vthread::run_virtual(problem, opts, 8);
  EXPECT_EQ(r.reason, StopReason::kCompleted);
  EXPECT_GT(r.sched.queue_full_rejections, 1'000u);
  EXPECT_GT(r.sched.queue_full_rejections, 2 * r.tasks_offered);
}

}  // namespace
}  // namespace gentrius
