#include <gtest/gtest.h>

#include "datagen/tree_gen.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "support/rng.hpp"

namespace gentrius::pam {
namespace {

TEST(Pam, SetAndQuery) {
  Pam pam(4, 3);
  EXPECT_EQ(pam.taxon_count(), 4u);
  EXPECT_EQ(pam.locus_count(), 3u);
  EXPECT_FALSE(pam.present(0, 0));
  pam.set_present(0, 0);
  pam.set_present(3, 2);
  EXPECT_TRUE(pam.present(0, 0));
  pam.set_present(0, 0, false);
  EXPECT_FALSE(pam.present(0, 0));
  EXPECT_THROW(pam.set_present(4, 0), support::InvalidInput);
  EXPECT_THROW(pam.set_present(0, 3), support::InvalidInput);
}

TEST(Pam, Stats) {
  Pam pam(4, 2);
  for (phylo::TaxonId t = 0; t < 4; ++t) pam.set_present(t, 0);
  pam.set_present(0, 1);
  EXPECT_DOUBLE_EQ(pam.missing_fraction(), 3.0 / 8.0);
  EXPECT_EQ(pam.taxon_coverage(0), 2u);
  EXPECT_EQ(pam.taxon_coverage(1), 1u);
  ASSERT_TRUE(pam.comprehensive_taxon().has_value());
  EXPECT_EQ(*pam.comprehensive_taxon(), 0u);
  EXPECT_TRUE(pam.covers_all_taxa());
  pam.set_present(2, 0, false);
  EXPECT_FALSE(pam.covers_all_taxa());
  EXPECT_EQ(pam.locus_taxa_list(1), std::vector<phylo::TaxonId>{0});
}

TEST(Pam, TextRoundTrip) {
  phylo::TaxonSet taxa;
  const std::string text = "3 2\nalpha 1 0\nbeta 0 1\ngamma 1 1\n";
  const Pam pam = Pam::parse(text, taxa);
  EXPECT_EQ(pam.taxon_count(), 3u);
  EXPECT_TRUE(pam.present(taxa.id_of("alpha"), 0));
  EXPECT_FALSE(pam.present(taxa.id_of("alpha"), 1));
  EXPECT_EQ(pam.to_text(taxa), text);
  phylo::TaxonSet taxa2;
  const Pam back = Pam::parse(pam.to_text(taxa), taxa2);
  EXPECT_EQ(back.to_text(taxa2), text);
}

TEST(Pam, ParseErrors) {
  phylo::TaxonSet taxa;
  EXPECT_THROW(Pam::parse("", taxa), support::InvalidInput);
  EXPECT_THROW(Pam::parse("2 2\na 1 0\n", taxa), support::InvalidInput);
  EXPECT_THROW(Pam::parse("2 2\na 1 2\nb 0 1\n", taxa),
               support::InvalidInput);
  EXPECT_THROW(Pam::parse("2 1\na 1\na 0\n", taxa), support::InvalidInput);
}

TEST(Pam, InducedSubtreeMatchesRestriction) {
  support::Rng rng(8);
  phylo::TaxonSet taxa;
  std::vector<phylo::TaxonId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(taxa.add("T" + std::to_string(i)));
  const auto species = datagen::random_tree(ids, rng);

  Pam pam(12, 2);
  for (const phylo::TaxonId t : {0u, 2u, 4u, 6u, 8u}) pam.set_present(t, 0);
  for (const phylo::TaxonId t : {1u, 3u, 5u}) pam.set_present(t, 1);

  const auto induced0 = induced_subtree(species, pam, 0);
  EXPECT_TRUE(phylo::same_topology(
      induced0, phylo::restrict_to(species, {0, 2, 4, 6, 8})));
  EXPECT_TRUE(phylo::displays(species, induced0));

  // Locus 1 has 3 taxa: dropped by the min_taxa=4 filter.
  const auto all = induced_subtrees(species, pam, 4);
  EXPECT_EQ(all.size(), 1u);
  const auto all2 = induced_subtrees(species, pam, 3);
  EXPECT_EQ(all2.size(), 2u);
}

}  // namespace
}  // namespace gentrius::pam
