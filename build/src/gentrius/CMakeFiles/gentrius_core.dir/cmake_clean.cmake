file(REMOVE_RECURSE
  "CMakeFiles/gentrius_core.dir/enumerator.cpp.o"
  "CMakeFiles/gentrius_core.dir/enumerator.cpp.o.d"
  "CMakeFiles/gentrius_core.dir/problem.cpp.o"
  "CMakeFiles/gentrius_core.dir/problem.cpp.o.d"
  "CMakeFiles/gentrius_core.dir/serial.cpp.o"
  "CMakeFiles/gentrius_core.dir/serial.cpp.o.d"
  "CMakeFiles/gentrius_core.dir/terrace.cpp.o"
  "CMakeFiles/gentrius_core.dir/terrace.cpp.o.d"
  "CMakeFiles/gentrius_core.dir/verify.cpp.o"
  "CMakeFiles/gentrius_core.dir/verify.cpp.o.d"
  "libgentrius_core.a"
  "libgentrius_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
