
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gentrius/enumerator.cpp" "src/gentrius/CMakeFiles/gentrius_core.dir/enumerator.cpp.o" "gcc" "src/gentrius/CMakeFiles/gentrius_core.dir/enumerator.cpp.o.d"
  "/root/repo/src/gentrius/problem.cpp" "src/gentrius/CMakeFiles/gentrius_core.dir/problem.cpp.o" "gcc" "src/gentrius/CMakeFiles/gentrius_core.dir/problem.cpp.o.d"
  "/root/repo/src/gentrius/serial.cpp" "src/gentrius/CMakeFiles/gentrius_core.dir/serial.cpp.o" "gcc" "src/gentrius/CMakeFiles/gentrius_core.dir/serial.cpp.o.d"
  "/root/repo/src/gentrius/terrace.cpp" "src/gentrius/CMakeFiles/gentrius_core.dir/terrace.cpp.o" "gcc" "src/gentrius/CMakeFiles/gentrius_core.dir/terrace.cpp.o.d"
  "/root/repo/src/gentrius/verify.cpp" "src/gentrius/CMakeFiles/gentrius_core.dir/verify.cpp.o" "gcc" "src/gentrius/CMakeFiles/gentrius_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phylo/CMakeFiles/gentrius_phylo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
