file(REMOVE_RECURSE
  "libgentrius_core.a"
)
