# Empty compiler generated dependencies file for gentrius_core.
# This may be replaced when dependencies are built.
