file(REMOVE_RECURSE
  "libgentrius_phylo.a"
)
