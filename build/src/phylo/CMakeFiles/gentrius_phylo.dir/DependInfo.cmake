
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phylo/newick.cpp" "src/phylo/CMakeFiles/gentrius_phylo.dir/newick.cpp.o" "gcc" "src/phylo/CMakeFiles/gentrius_phylo.dir/newick.cpp.o.d"
  "/root/repo/src/phylo/splits.cpp" "src/phylo/CMakeFiles/gentrius_phylo.dir/splits.cpp.o" "gcc" "src/phylo/CMakeFiles/gentrius_phylo.dir/splits.cpp.o.d"
  "/root/repo/src/phylo/topology.cpp" "src/phylo/CMakeFiles/gentrius_phylo.dir/topology.cpp.o" "gcc" "src/phylo/CMakeFiles/gentrius_phylo.dir/topology.cpp.o.d"
  "/root/repo/src/phylo/tree.cpp" "src/phylo/CMakeFiles/gentrius_phylo.dir/tree.cpp.o" "gcc" "src/phylo/CMakeFiles/gentrius_phylo.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
