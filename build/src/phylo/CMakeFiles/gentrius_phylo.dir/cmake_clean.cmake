file(REMOVE_RECURSE
  "CMakeFiles/gentrius_phylo.dir/newick.cpp.o"
  "CMakeFiles/gentrius_phylo.dir/newick.cpp.o.d"
  "CMakeFiles/gentrius_phylo.dir/splits.cpp.o"
  "CMakeFiles/gentrius_phylo.dir/splits.cpp.o.d"
  "CMakeFiles/gentrius_phylo.dir/topology.cpp.o"
  "CMakeFiles/gentrius_phylo.dir/topology.cpp.o.d"
  "CMakeFiles/gentrius_phylo.dir/tree.cpp.o"
  "CMakeFiles/gentrius_phylo.dir/tree.cpp.o.d"
  "libgentrius_phylo.a"
  "libgentrius_phylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
