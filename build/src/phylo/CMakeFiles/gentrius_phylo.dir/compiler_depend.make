# Empty compiler generated dependencies file for gentrius_phylo.
# This may be replaced when dependencies are built.
