# CMake generated Testfile for 
# Source directory: /root/repo/src/phylo
# Build directory: /root/repo/build/src/phylo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
