# Empty compiler generated dependencies file for gentrius_datagen.
# This may be replaced when dependencies are built.
