file(REMOVE_RECURSE
  "libgentrius_datagen.a"
)
