file(REMOVE_RECURSE
  "CMakeFiles/gentrius_datagen.dir/dataset.cpp.o"
  "CMakeFiles/gentrius_datagen.dir/dataset.cpp.o.d"
  "CMakeFiles/gentrius_datagen.dir/dataset_io.cpp.o"
  "CMakeFiles/gentrius_datagen.dir/dataset_io.cpp.o.d"
  "CMakeFiles/gentrius_datagen.dir/tree_gen.cpp.o"
  "CMakeFiles/gentrius_datagen.dir/tree_gen.cpp.o.d"
  "libgentrius_datagen.a"
  "libgentrius_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
