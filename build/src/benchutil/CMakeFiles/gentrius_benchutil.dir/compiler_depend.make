# Empty compiler generated dependencies file for gentrius_benchutil.
# This may be replaced when dependencies are built.
