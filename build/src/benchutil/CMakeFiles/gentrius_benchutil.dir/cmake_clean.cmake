file(REMOVE_RECURSE
  "CMakeFiles/gentrius_benchutil.dir/corpus.cpp.o"
  "CMakeFiles/gentrius_benchutil.dir/corpus.cpp.o.d"
  "CMakeFiles/gentrius_benchutil.dir/stats.cpp.o"
  "CMakeFiles/gentrius_benchutil.dir/stats.cpp.o.d"
  "libgentrius_benchutil.a"
  "libgentrius_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
