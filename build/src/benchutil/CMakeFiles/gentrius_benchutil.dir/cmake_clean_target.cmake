file(REMOVE_RECURSE
  "libgentrius_benchutil.a"
)
