file(REMOVE_RECURSE
  "CMakeFiles/gentrius_vthread.dir/virtual_pool.cpp.o"
  "CMakeFiles/gentrius_vthread.dir/virtual_pool.cpp.o.d"
  "libgentrius_vthread.a"
  "libgentrius_vthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_vthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
