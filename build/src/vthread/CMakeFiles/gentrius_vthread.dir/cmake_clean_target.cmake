file(REMOVE_RECURSE
  "libgentrius_vthread.a"
)
