# Empty dependencies file for gentrius_vthread.
# This may be replaced when dependencies are built.
