# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("phylo")
subdirs("pam")
subdirs("datagen")
subdirs("gentrius")
subdirs("parallel")
subdirs("vthread")
subdirs("baseline")
subdirs("oracle")
subdirs("benchutil")
