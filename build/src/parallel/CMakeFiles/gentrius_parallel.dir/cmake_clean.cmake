file(REMOVE_RECURSE
  "CMakeFiles/gentrius_parallel.dir/pool.cpp.o"
  "CMakeFiles/gentrius_parallel.dir/pool.cpp.o.d"
  "libgentrius_parallel.a"
  "libgentrius_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
