file(REMOVE_RECURSE
  "libgentrius_parallel.a"
)
