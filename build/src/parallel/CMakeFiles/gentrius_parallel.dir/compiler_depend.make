# Empty compiler generated dependencies file for gentrius_parallel.
# This may be replaced when dependencies are built.
