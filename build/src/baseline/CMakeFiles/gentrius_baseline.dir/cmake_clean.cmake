file(REMOVE_RECURSE
  "CMakeFiles/gentrius_baseline.dir/superb.cpp.o"
  "CMakeFiles/gentrius_baseline.dir/superb.cpp.o.d"
  "libgentrius_baseline.a"
  "libgentrius_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
