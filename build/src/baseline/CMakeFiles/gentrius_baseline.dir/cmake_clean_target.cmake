file(REMOVE_RECURSE
  "libgentrius_baseline.a"
)
