# Empty compiler generated dependencies file for gentrius_baseline.
# This may be replaced when dependencies are built.
