# Empty compiler generated dependencies file for gentrius_pam.
# This may be replaced when dependencies are built.
