file(REMOVE_RECURSE
  "libgentrius_pam.a"
)
