file(REMOVE_RECURSE
  "CMakeFiles/gentrius_pam.dir/pam.cpp.o"
  "CMakeFiles/gentrius_pam.dir/pam.cpp.o.d"
  "libgentrius_pam.a"
  "libgentrius_pam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_pam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
