file(REMOVE_RECURSE
  "libgentrius_oracle.a"
)
