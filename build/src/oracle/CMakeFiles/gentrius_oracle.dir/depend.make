# Empty dependencies file for gentrius_oracle.
# This may be replaced when dependencies are built.
