file(REMOVE_RECURSE
  "CMakeFiles/gentrius_oracle.dir/brute_force.cpp.o"
  "CMakeFiles/gentrius_oracle.dir/brute_force.cpp.o.d"
  "libgentrius_oracle.a"
  "libgentrius_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentrius_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
