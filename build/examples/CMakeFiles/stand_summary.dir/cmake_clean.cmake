file(REMOVE_RECURSE
  "CMakeFiles/stand_summary.dir/stand_summary.cpp.o"
  "CMakeFiles/stand_summary.dir/stand_summary.cpp.o.d"
  "stand_summary"
  "stand_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stand_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
