# Empty dependencies file for stand_summary.
# This may be replaced when dependencies are built.
