# Empty compiler generated dependencies file for species_tree_terrace.
# This may be replaced when dependencies are built.
