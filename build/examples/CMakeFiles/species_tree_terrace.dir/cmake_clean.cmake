file(REMOVE_RECURSE
  "CMakeFiles/species_tree_terrace.dir/species_tree_terrace.cpp.o"
  "CMakeFiles/species_tree_terrace.dir/species_tree_terrace.cpp.o.d"
  "species_tree_terrace"
  "species_tree_terrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/species_tree_terrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
