# Empty compiler generated dependencies file for grove_survey.
# This may be replaced when dependencies are built.
