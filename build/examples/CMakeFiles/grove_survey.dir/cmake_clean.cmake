file(REMOVE_RECURSE
  "CMakeFiles/grove_survey.dir/grove_survey.cpp.o"
  "CMakeFiles/grove_survey.dir/grove_survey.cpp.o.d"
  "grove_survey"
  "grove_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grove_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
