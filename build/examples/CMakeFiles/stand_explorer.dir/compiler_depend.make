# Empty compiler generated dependencies file for stand_explorer.
# This may be replaced when dependencies are built.
