file(REMOVE_RECURSE
  "CMakeFiles/stand_explorer.dir/stand_explorer.cpp.o"
  "CMakeFiles/stand_explorer.dir/stand_explorer.cpp.o.d"
  "stand_explorer"
  "stand_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stand_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
