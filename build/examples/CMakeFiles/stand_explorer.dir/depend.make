# Empty dependencies file for stand_explorer.
# This may be replaced when dependencies are built.
