# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_species_tree_terrace "/root/repo/build/examples/species_tree_terrace")
set_tests_properties(example_species_tree_terrace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stand_summary "/root/repo/build/examples/stand_summary")
set_tests_properties(example_stand_summary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grove_survey "/root/repo/build/examples/grove_survey")
set_tests_properties(example_grove_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stand_explorer_demo "/root/repo/build/examples/stand_explorer" "--demo")
set_tests_properties(example_stand_explorer_demo PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stand_explorer_trees "/root/repo/build/examples/stand_explorer" "--trees" "demo_trees.nwk" "--print-stand")
set_tests_properties(example_stand_explorer_trees PROPERTIES  DEPENDS "example_stand_explorer_demo" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stand_explorer_pam "/root/repo/build/examples/stand_explorer" "--species" "demo_species.nwk" "--pam" "demo.pam" "--threads" "2")
set_tests_properties(example_stand_explorer_pam PROPERTIES  DEPENDS "example_stand_explorer_demo" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_scaling "/root/repo/build/examples/parallel_scaling")
set_tests_properties(example_parallel_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
