# Empty dependencies file for pam_test.
# This may be replaced when dependencies are built.
