file(REMOVE_RECURSE
  "CMakeFiles/pam_test.dir/pam_test.cpp.o"
  "CMakeFiles/pam_test.dir/pam_test.cpp.o.d"
  "pam_test"
  "pam_test.pdb"
  "pam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
