# Empty compiler generated dependencies file for vthread_test.
# This may be replaced when dependencies are built.
