# Empty compiler generated dependencies file for crafted_instances_test.
# This may be replaced when dependencies are built.
