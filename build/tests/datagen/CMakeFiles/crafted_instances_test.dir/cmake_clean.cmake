file(REMOVE_RECURSE
  "CMakeFiles/crafted_instances_test.dir/crafted_instances_test.cpp.o"
  "CMakeFiles/crafted_instances_test.dir/crafted_instances_test.cpp.o.d"
  "crafted_instances_test"
  "crafted_instances_test.pdb"
  "crafted_instances_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crafted_instances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
