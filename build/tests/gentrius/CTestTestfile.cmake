# CMake generated Testfile for 
# Source directory: /root/repo/tests/gentrius
# Build directory: /root/repo/build/tests/gentrius
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gentrius/serial_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/gentrius/terrace_test[1]_include.cmake")
include("/root/repo/build/tests/gentrius/behavior_test[1]_include.cmake")
include("/root/repo/build/tests/gentrius/enumerator_test[1]_include.cmake")
include("/root/repo/build/tests/gentrius/verify_test[1]_include.cmake")
include("/root/repo/build/tests/gentrius/counters_test[1]_include.cmake")
include("/root/repo/build/tests/gentrius/problem_test[1]_include.cmake")
