# Empty dependencies file for terrace_test.
# This may be replaced when dependencies are built.
