file(REMOVE_RECURSE
  "CMakeFiles/terrace_test.dir/terrace_test.cpp.o"
  "CMakeFiles/terrace_test.dir/terrace_test.cpp.o.d"
  "terrace_test"
  "terrace_test.pdb"
  "terrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
