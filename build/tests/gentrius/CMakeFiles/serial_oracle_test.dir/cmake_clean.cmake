file(REMOVE_RECURSE
  "CMakeFiles/serial_oracle_test.dir/serial_oracle_test.cpp.o"
  "CMakeFiles/serial_oracle_test.dir/serial_oracle_test.cpp.o.d"
  "serial_oracle_test"
  "serial_oracle_test.pdb"
  "serial_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
