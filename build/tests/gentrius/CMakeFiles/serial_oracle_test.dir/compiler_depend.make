# Empty compiler generated dependencies file for serial_oracle_test.
# This may be replaced when dependencies are built.
