file(REMOVE_RECURSE
  "CMakeFiles/superb_test.dir/superb_test.cpp.o"
  "CMakeFiles/superb_test.dir/superb_test.cpp.o.d"
  "superb_test"
  "superb_test.pdb"
  "superb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
