# Empty compiler generated dependencies file for superb_test.
# This may be replaced when dependencies are built.
