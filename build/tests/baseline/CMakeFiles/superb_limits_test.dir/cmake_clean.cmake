file(REMOVE_RECURSE
  "CMakeFiles/superb_limits_test.dir/superb_limits_test.cpp.o"
  "CMakeFiles/superb_limits_test.dir/superb_limits_test.cpp.o.d"
  "superb_limits_test"
  "superb_limits_test.pdb"
  "superb_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superb_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
