# CMake generated Testfile for 
# Source directory: /root/repo/tests/phylo
# Build directory: /root/repo/build/tests/phylo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/phylo/tree_test[1]_include.cmake")
include("/root/repo/build/tests/phylo/newick_test[1]_include.cmake")
include("/root/repo/build/tests/phylo/topology_test[1]_include.cmake")
include("/root/repo/build/tests/phylo/splits_test[1]_include.cmake")
include("/root/repo/build/tests/phylo/fuzz_test[1]_include.cmake")
