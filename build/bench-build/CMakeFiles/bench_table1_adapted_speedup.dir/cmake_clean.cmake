file(REMOVE_RECURSE
  "../bench/bench_table1_adapted_speedup"
  "../bench/bench_table1_adapted_speedup.pdb"
  "CMakeFiles/bench_table1_adapted_speedup.dir/bench_table1_adapted_speedup.cpp.o"
  "CMakeFiles/bench_table1_adapted_speedup.dir/bench_table1_adapted_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_adapted_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
