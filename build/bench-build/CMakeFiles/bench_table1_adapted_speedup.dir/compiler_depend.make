# Empty compiler generated dependencies file for bench_table1_adapted_speedup.
# This may be replaced when dependencies are built.
