file(REMOVE_RECURSE
  "../bench/bench_work_stealing_ablation"
  "../bench/bench_work_stealing_ablation.pdb"
  "CMakeFiles/bench_work_stealing_ablation.dir/bench_work_stealing_ablation.cpp.o"
  "CMakeFiles/bench_work_stealing_ablation.dir/bench_work_stealing_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_work_stealing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
