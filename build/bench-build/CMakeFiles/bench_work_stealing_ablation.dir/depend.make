# Empty dependencies file for bench_work_stealing_ablation.
# This may be replaced when dependencies are built.
