# Empty dependencies file for bench_insertion_heuristics.
# This may be replaced when dependencies are built.
