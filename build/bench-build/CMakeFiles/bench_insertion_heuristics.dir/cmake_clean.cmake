file(REMOVE_RECURSE
  "../bench/bench_insertion_heuristics"
  "../bench/bench_insertion_heuristics.pdb"
  "CMakeFiles/bench_insertion_heuristics.dir/bench_insertion_heuristics.cpp.o"
  "CMakeFiles/bench_insertion_heuristics.dir/bench_insertion_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insertion_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
