file(REMOVE_RECURSE
  "../bench/bench_counter_batching"
  "../bench/bench_counter_batching.pdb"
  "CMakeFiles/bench_counter_batching.dir/bench_counter_batching.cpp.o"
  "CMakeFiles/bench_counter_batching.dir/bench_counter_batching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
