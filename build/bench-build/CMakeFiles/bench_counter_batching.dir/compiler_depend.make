# Empty compiler generated dependencies file for bench_counter_batching.
# This may be replaced when dependencies are built.
