file(REMOVE_RECURSE
  "../bench/bench_superb_baseline"
  "../bench/bench_superb_baseline.pdb"
  "CMakeFiles/bench_superb_baseline.dir/bench_superb_baseline.cpp.o"
  "CMakeFiles/bench_superb_baseline.dir/bench_superb_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superb_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
