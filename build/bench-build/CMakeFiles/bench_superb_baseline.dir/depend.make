# Empty dependencies file for bench_superb_baseline.
# This may be replaced when dependencies are built.
