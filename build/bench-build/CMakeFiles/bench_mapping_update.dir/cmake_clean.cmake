file(REMOVE_RECURSE
  "../bench/bench_mapping_update"
  "../bench/bench_mapping_update.pdb"
  "CMakeFiles/bench_mapping_update.dir/bench_mapping_update.cpp.o"
  "CMakeFiles/bench_mapping_update.dir/bench_mapping_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapping_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
