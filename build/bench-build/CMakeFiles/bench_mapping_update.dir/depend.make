# Empty dependencies file for bench_mapping_update.
# This may be replaced when dependencies are built.
