file(REMOVE_RECURSE
  "../bench/bench_fig5_unbalanced"
  "../bench/bench_fig5_unbalanced.pdb"
  "CMakeFiles/bench_fig5_unbalanced.dir/bench_fig5_unbalanced.cpp.o"
  "CMakeFiles/bench_fig5_unbalanced.dir/bench_fig5_unbalanced.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_unbalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
