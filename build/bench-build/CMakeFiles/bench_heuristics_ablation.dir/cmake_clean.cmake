file(REMOVE_RECURSE
  "../bench/bench_heuristics_ablation"
  "../bench/bench_heuristics_ablation.pdb"
  "CMakeFiles/bench_heuristics_ablation.dir/bench_heuristics_ablation.cpp.o"
  "CMakeFiles/bench_heuristics_ablation.dir/bench_heuristics_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristics_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
