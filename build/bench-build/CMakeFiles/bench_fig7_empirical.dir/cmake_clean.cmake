file(REMOVE_RECURSE
  "../bench/bench_fig7_empirical"
  "../bench/bench_fig7_empirical.pdb"
  "CMakeFiles/bench_fig7_empirical.dir/bench_fig7_empirical.cpp.o"
  "CMakeFiles/bench_fig7_empirical.dir/bench_fig7_empirical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
