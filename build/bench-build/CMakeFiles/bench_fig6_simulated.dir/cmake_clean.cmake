file(REMOVE_RECURSE
  "../bench/bench_fig6_simulated"
  "../bench/bench_fig6_simulated.pdb"
  "CMakeFiles/bench_fig6_simulated.dir/bench_fig6_simulated.cpp.o"
  "CMakeFiles/bench_fig6_simulated.dir/bench_fig6_simulated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_simulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
