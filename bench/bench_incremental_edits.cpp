// Incremental re-enumeration under PAM edits (BENCH_9): an
// IncrementalSession absorbs a structure-preserving edit stream and is
// compared, at every step, against a from-scratch decompose::run_sharded of
// the same matrix.
//
// Two deterministic families:
//   - count5: five 4-5 taxon block components, counting only, with the
//     closed-form residual on in BOTH drivers — at this component count the
//     interleaving count M is ~10^18, so any enumerated residual baseline
//     is impossible; this is exactly the regime the closed form exists for.
//     Each edit dirties at most one component, so the session re-runs (at
//     most) one cheap shard where the baseline re-runs five. This family
//     carries the BENCH_9 gate: median per-edit speedup >= 5x with count
//     equality at every step.
//   - collect2: two block components with an enumerated residual and full
//     stand collection; the sorted stand set must match the baseline byte
//     for byte at every step (the cross-product streamer differential, on
//     a family small enough to materialize).
//
// Cost metric: Result::intermediate_states — states expanded by the
// branch-and-bound engine, identical across machines (component probes are
// excluded identically in both drivers). GENTRIUS_INCREMENTAL_SEED
// overrides the family seeds for exploration; BENCH_9.json is generated
// from the defaults by tools/run_benchmarks.py --incremental.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "benchutil/edit_stream.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "incremental/session.hpp"

namespace {

using namespace gentrius;

struct FamilyConfig {
  const char* name;
  benchutil::MultiComponentParams params;
  std::size_t noop_loci = 0;    ///< extra below-floor loci (no-op hosts)
  std::size_t n_edits = 12;
  double noop_fraction = 0.25;
  /// Constraint floor (SessionOptions::min_taxa). 3 gives 4-taxon blocks
  /// absent cells to toggle: at floor 4 a 4-taxon block is fully dense and
  /// no structure-preserving cell edit exists.
  std::size_t min_taxa = 3;
  bool collect = false;
  bool closed_form = false;
};

std::vector<std::string> sorted_trees(const core::Result& r) {
  std::vector<std::string> t = r.trees;
  std::sort(t.begin(), t.end());
  return t;
}

void run_family(const FamilyConfig& cfg) {
  auto ds = benchutil::make_multi_component(cfg.params);

  // Below-floor loci host the no-op edit flavor: a single present taxon
  // keeps the locus under the floor, and one fill (to floor - 1 taxa)
  // still induces no constraint.
  for (std::size_t i = 0; i < cfg.noop_loci; ++i) {
    const std::size_t locus = ds.pam.add_locus();
    ds.pam.set_present(
        static_cast<phylo::TaxonId>((3 * i) % ds.pam.taxon_count()), locus,
        true);
  }

  core::Options opts;
  opts.decompose = core::Decompose::kComponents;
  if (cfg.collect) {
    opts.collect_trees = true;
    opts.tree_names = &ds.taxa;
  }

  incremental::SessionOptions so;
  so.engine = opts;
  so.min_taxa = cfg.min_taxa;
  so.run.residual_closed_form = cfg.closed_form;
  incremental::IncrementalSession session(ds.species_tree, ds.pam, so);

  const auto run_scratch = [&]() {
    const auto dec =
        decompose::analyze_pam(ds.species_tree, session.pam(), so.min_taxa);
    return decompose::run_sharded(dec.constraints, opts, so.run);
  };

  const auto dec0 =
      decompose::analyze_pam(ds.species_tree, ds.pam, so.min_taxa);
  std::printf(
      "INC family=%s instance=%s components=%zu enumerable=%zu edits=%zu "
      "closed_form=%d collect=%d\n",
      cfg.name, ds.name.c_str(), dec0.split.components.size(),
      dec0.split.enumerable_count, cfg.n_edits, cfg.closed_form ? 1 : 0,
      cfg.collect ? 1 : 0);

  // The initial enumeration is paid by both drivers and populates the
  // cache; it is reported but not part of the per-edit gate.
  const core::Result init = session.enumerate();
  std::printf("INCINIT family=%s states=%llu trees=%llu saturated=%d\n",
              cfg.name,
              static_cast<unsigned long long>(init.intermediate_states),
              static_cast<unsigned long long>(init.stand_trees),
              init.count_saturated ? 1 : 0);

  benchutil::EditStreamParams ep;
  ep.seed = cfg.params.seed;
  ep.n_edits = cfg.n_edits;
  ep.min_taxa = so.min_taxa;
  ep.noop_fraction = cfg.noop_fraction;
  const auto stream =
      benchutil::make_edit_stream(ds.species_tree, ds.pam, ep);

  std::vector<double> speedups;
  unsigned long long inc_total = 0, scratch_total = 0;
  std::size_t max_dirty = 0;
  bool equal = true;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const core::Result inc = session.apply(stream[i]);
    const core::Result ref = run_scratch();

    const bool count_ok = inc.stand_trees == ref.stand_trees &&
                          inc.count_saturated == ref.count_saturated &&
                          inc.reason == ref.reason;
    bool stands_ok = true;
    if (cfg.collect) stands_ok = sorted_trees(inc) == sorted_trees(ref);
    equal = equal && count_ok && stands_ok;

    const std::size_t dirty = inc.cache.recomputed_components;
    max_dirty = std::max(max_dirty, dirty);
    const unsigned long long inc_states = inc.intermediate_states;
    const unsigned long long scratch_states = ref.intermediate_states;
    inc_total += inc_states;
    scratch_total += scratch_states;
    const double speedup = static_cast<double>(scratch_states) /
                           static_cast<double>(std::max(1ULL, inc_states));
    speedups.push_back(speedup);

    std::printf(
        "INCEDIT family=%s i=%zu kind=%s dirty=%zu inc_states=%llu "
        "scratch_states=%llu hits=%llu misses=%llu count_ok=%d stands_ok=%d "
        "speedup=%.2f\n",
        cfg.name, i + 1, to_string(stream[i].kind), dirty, inc_states,
        scratch_states, static_cast<unsigned long long>(inc.cache.hits),
        static_cast<unsigned long long>(inc.cache.misses), count_ok ? 1 : 0,
        stands_ok ? 1 : 0, speedup);
  }

  std::vector<double> sorted_speedups = speedups;
  std::sort(sorted_speedups.begin(), sorted_speedups.end());
  const double median = sorted_speedups[sorted_speedups.size() / 2];
  const double amortized = static_cast<double>(scratch_total) /
                           static_cast<double>(std::max(1ULL, inc_total));
  std::printf(
      "INCSUM family=%s edits=%zu median_speedup=%.2f amortized_speedup=%.2f "
      "max_dirty=%zu equal=%d lifetime_hits=%llu lifetime_misses=%llu\n",
      cfg.name, speedups.size(), median, amortized, max_dirty, equal ? 1 : 0,
      static_cast<unsigned long long>(session.lifetime_cache_stats().hits),
      static_cast<unsigned long long>(session.lifetime_cache_stats().misses));
}

}  // namespace

int main() {
  std::uint64_t seed_override = 0;
  if (const char* e = std::getenv("GENTRIUS_INCREMENTAL_SEED"))
    seed_override = std::strtoull(e, nullptr, 10);

  // count5: five 4-5 taxon blocks. Seed 23 keeps the closed-form product
  // count uint64-exact (INCINIT saturated=0, 8209003536174065625 trees)
  // with five enumerable components; the costlier components carry most of
  // the from-scratch sweep, so an edit landing elsewhere replays one cheap
  // shard against the baseline's full pass.
  FamilyConfig count5;
  count5.name = "count5";
  count5.params.n_components = 5;
  count5.params.min_taxa_per_component = 4;
  count5.params.max_taxa_per_component = 5;
  count5.params.loci_per_component = 4;
  count5.params.min_taxa_per_locus = 3;
  count5.params.missing_fraction = 0.35;
  count5.params.seed = seed_override ? seed_override : 23;
  count5.noop_loci = 3;
  count5.n_edits = 12;
  count5.closed_form = true;
  run_family(count5);

  // collect2: two blocks, enumerated residual, full stand materialization.
  FamilyConfig collect2;
  collect2.name = "collect2";
  collect2.params.n_components = 2;
  collect2.params.min_taxa_per_component = 4;
  collect2.params.max_taxa_per_component = 4;
  collect2.params.loci_per_component = 3;
  collect2.params.min_taxa_per_locus = 3;
  collect2.params.missing_fraction = 0.3;
  collect2.params.seed = seed_override ? seed_override : 1;
  collect2.n_edits = 8;
  collect2.noop_fraction = 0.0;
  collect2.collect = true;
  run_family(collect2);
  return 0;
}
