// §II-B in-text experiment: the two Gentrius heuristics.
//
// Paper numbers on emp-data-42370 (stand = 2,448,225 trees):
//   both heuristics        : 547,786 states, 0 dead ends, 14 s
//   random initial tree    : 6,829,128 states, 0 dead ends, 50 s (3.5x)
//   shuffled taxon order   : 30,124,986 states, 1,547,640 dead ends, 174 s (12x)
//
// This harness scans an empirical-like corpus for the instance on which the
// heuristics matter most (the paper likewise showcases one dataset from its
// corpus) and reruns the three configurations sequentially on real
// wall-clock. Expected shape: both ablations multiply the state count and
// runtime; the shuffled order additionally introduces mass dead ends.
#include <algorithm>
#include <cstdio>

#include "benchutil/corpus.hpp"
#include "gentrius/serial.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options base;
  base.stop.max_stand_trees = static_cast<std::uint64_t>(500'000 * scale);
  base.stop.max_states = static_cast<std::uint64_t>(5'000'000 * scale);

  std::printf("Heuristics ablation (paper §II-B)\n");
  const auto corpus = benchutil::empirical_corpus(60, /*seed0=*/121);
  support::Rng rng(2718);

  struct Triple {
    const datagen::Dataset* ds = nullptr;
    core::Result both, no_init, no_dyn;
    double score = 0;  // min of the two state-count ratios
  } best;

  std::size_t evaluated = 0;
  for (const auto& ds : corpus) {
    if (evaluated >= static_cast<std::size_t>(20 * scale)) break;
    core::Result a;
    try {
      a = core::run_serial(ds.constraints, base);
    } catch (const support::Error&) {
      continue;
    }
    if (a.reason != core::StopReason::kCompleted ||
        a.intermediate_states < 5'000 || a.stand_trees < 1'000)
      continue;
    ++evaluated;

    core::Options no_init = base;
    no_init.select_initial_tree = false;
    no_init.initial_constraint = rng.below(ds.constraints.size());
    core::Result b;
    try {
      b = core::run_serial(ds.constraints, no_init);
    } catch (const support::Error&) {
      continue;  // random pick may be an unusable (<3 taxa) start
    }

    core::Options no_dyn = base;
    no_dyn.dynamic_taxon_order = false;
    no_dyn.shuffle_seed = 20230 + evaluated;
    const auto c = core::run_serial(ds.constraints, no_dyn);

    const double ra = static_cast<double>(b.intermediate_states) /
                      static_cast<double>(a.intermediate_states);
    const double rc = static_cast<double>(c.intermediate_states) /
                      static_cast<double>(a.intermediate_states);
    const double score = std::min(ra, rc);
    if (score > best.score) best = Triple{&ds, a, b, c, score};
  }

  if (best.ds == nullptr) {
    std::printf("no suitable dataset found — increase scale\n");
    return 1;
  }

  const auto row = [&](const char* label, const core::Result& r) {
    std::printf("%-28s %12llu %12llu %10llu %9.3fs %7.2fx  (%s)\n", label,
                static_cast<unsigned long long>(r.intermediate_states),
                static_cast<unsigned long long>(r.stand_trees),
                static_cast<unsigned long long>(r.dead_ends), r.seconds,
                static_cast<double>(r.intermediate_states) /
                    static_cast<double>(best.both.intermediate_states),
                core::to_string(r.reason));
  };
  std::printf("\ndataset %s (%zu taxa, %zu loci; most heuristic-sensitive of "
              "%zu scanned)\n",
              best.ds->name.c_str(), best.ds->taxon_count(),
              best.ds->constraints.size(), evaluated);
  std::printf("%-28s %12s %12s %10s %10s %8s\n", "configuration", "states",
              "stand trees", "dead ends", "time", "states x");
  row("both heuristics", best.both);
  row("random initial tree", best.no_init);
  row("shuffled taxon order", best.no_dyn);
  return 0;
}
