// Figure 8: speedup distributions on datasets that trigger stopping rule 1
// (stand trees) or 2 (intermediate states).
//
// Paper §IV-D: 50 simulated + 50 empirical datasets, thresholds reduced to
// 10M for a "short analysis"; the speedup distributions are substantially
// distorted — sub-linear tails and occasional super-linear outliers (e.g.
// sr_sim-data-44 reached 59x at 16 threads) caused by the parallel descent
// into different branches combined with the stopping rules.
//
// Here the thresholds are scaled to 60k trees / 60k states and candidates
// are kept only when the 16-thread probe *does* trigger rule 1 or 2.
// Expected shape: wide distributions with min << N_t << max and
// super-linear outliers.
#include <cstdio>

#include "benchutil/corpus.hpp"

namespace {

using namespace gentrius;

/// The pathological unbalanced instances (paper: sr_sim-data-44 reached 59x
/// at 16 threads): barren-first workflows where extra threads reach the
/// stand-rich region the serial search never sees within its budget.
void append_unbalanced(std::vector<benchutil::CorpusRun>& runs) {
  for (const std::size_t free_taxa : {4u, 5u}) {
    const auto ds = datagen::make_superlinear_instance(free_taxa, 0);
    core::Options opts;
    opts.select_initial_tree = false;
    opts.dynamic_taxon_order = false;
    opts.initial_constraint = ds.forced_initial_constraint;
    opts.insertion_order = ds.forced_insertion_order;
    // Tree limit well below the state budget: the serial search burns the
    // whole state budget in the barren region while parallel threads
    // terminate on the tree rule almost immediately (super-linear ratio).
    opts.stop.max_stand_trees = 6'000;
    opts.stop.max_states = 60'000;
    const auto problem = core::build_problem(ds.constraints, opts);
    benchutil::CorpusRun run;
    run.name = "sr_" + ds.name;
    const auto serial = vthread::run_virtual(problem, opts, 1);
    run.serial_units = serial.virtual_makespan;
    run.serial_trees = serial.stand_trees;
    for (const std::size_t t : benchutil::thread_counts()) {
      const auto r = vthread::run_virtual(problem, opts, t);
      run.makespans.push_back(r.virtual_makespan);
      run.trees.push_back(r.stand_trees);
      run.speedups.push_back(serial.virtual_makespan / r.virtual_makespan);
    }
    runs.push_back(std::move(run));
  }
}

void run_panel(const char* title, std::vector<datagen::Dataset> corpus,
               std::size_t want) {
  benchutil::Protocol protocol;
  protocol.options.stop.max_stand_trees = 60'000;
  protocol.options.stop.max_states = 60'000;
  protocol.require_completion = false;

  std::vector<benchutil::CorpusRun> runs;
  for (const auto& ds : corpus) {
    if (runs.size() >= want) break;
    // Keep only rule-triggering datasets (probe with 16 virtual threads).
    core::Problem problem;
    try {
      problem = core::build_problem(ds.constraints, protocol.options);
    } catch (const support::Error&) {
      continue;
    }
    const auto probe =
        vthread::run_virtual(problem, protocol.options, 16, protocol.costs);
    if (probe.reason != core::StopReason::kTreeLimit &&
        probe.reason != core::StopReason::kStateLimit)
      continue;
    benchutil::CorpusRun run;
    if (!benchutil::run_dataset(ds, protocol, run)) continue;
    if (run.serial_units <= 0) continue;
    runs.push_back(std::move(run));
  }
  append_unbalanced(runs);
  std::printf("\n%s: %zu rule-triggering datasets\n", title, runs.size());
  benchutil::print_speedup_panels(title, runs, {0.0});

  // Highlight the extremes the paper discusses.
  double best = 0;
  std::string best_name;
  for (const auto& r : runs) {
    for (std::size_t i = 0; i < r.speedups.size(); ++i) {
      if (r.speedups[i] > best) {
        best = r.speedups[i];
        best_name = r.name;
      }
    }
  }
  if (!best_name.empty())
    std::printf("largest (super-linear) speedup: %.1fx on %s\n", best,
                best_name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = benchutil::parse_scale(argc, argv);
  const auto want = static_cast<std::size_t>(30 * scale);
  std::printf("Figure 8 reproduction — stopping-rule datasets (target %zu "
              "per panel)\n",
              want);
  run_panel("Fig. 8a: simulated, rules 1-2 triggered",
            benchutil::simulated_corpus(6 * want, 81), want);
  run_panel("Fig. 8b: empirical-like, rules 1-2 triggered",
            benchutil::empirical_corpus(6 * want, 91), want);
  return 0;
}
