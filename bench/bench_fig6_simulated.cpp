// Figure 6: per-thread speedup distributions on simulated data.
//
// Paper protocol (§IV-B): 4,997 simulated instances (50-300 taxa, 5-30
// loci, 30-50 % missing); datasets that trigger any stopping rule at 16
// threads are filtered out, and three panels report speedups for serial
// execution times > 1 s / 10 s / 50 s. Result: linear mean speedups.
//
// This harness regenerates the same recipe scaled down (~×10 smaller
// instances and thresholds; 1 virtual unit = 1 state expansion, converted
// to "seconds" at 250k states/s). Expected shape: mean speedup close to the
// thread count, tightening as the serial-time threshold grows.
#include <cstdio>

#include "benchutil/corpus.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);
  const auto count = static_cast<std::size_t>(120 * scale);

  benchutil::Protocol protocol;
  protocol.options.stop.max_stand_trees = 500'000;
  protocol.options.stop.max_states = 3'000'000;

  std::printf("Figure 6 reproduction — simulated data (%zu candidate "
              "datasets, scale %.2f)\n",
              count, scale);

  const auto corpus = benchutil::simulated_corpus(count, /*seed0=*/61);
  std::vector<benchutil::CorpusRun> runs;
  std::size_t filtered = 0;
  for (const auto& ds : corpus) {
    benchutil::CorpusRun run;
    if (!benchutil::run_dataset(ds, protocol, run)) {
      ++filtered;
      continue;
    }
    // Paper: exclude "small" datasets (serial < 1 s); scaled: < 0.1 s.
    if (run.serial_units / benchutil::kUnitsPerSecond < 0.1) continue;
    runs.push_back(std::move(run));
  }
  std::printf("%zu datasets filtered by stopping rules, %zu in the figure\n",
              filtered, runs.size());

  benchutil::print_speedup_panels(
      "Fig. 6: speedup distributions, simulated data", runs,
      /*thresholds (s.e.t. equivalents, paper/10)=*/{0.1, 0.4, 1.2});
  return 0;
}
