// Prior-method baseline: SUPERB (terraphy / Biczok et al.) vs Gentrius.
//
// The paper's introduction positions Gentrius against SUPERB-based tools:
// they count the same stands but require a comprehensive taxon to root the
// input. This harness (a) cross-checks counts on comprehensive-taxon
// datasets and compares runtimes, and (b) shows the datasets without a
// comprehensive taxon, where only Gentrius can run at all.
#include <cstdio>

#include "baseline/superb.hpp"
#include "benchutil/corpus.hpp"
#include "gentrius/serial.hpp"
#include "pam/pam.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options options;
  options.stop.max_stand_trees = 2'000'000;
  options.stop.max_states = 20'000'000;

  std::printf("SUPERB baseline vs Gentrius\n\n");
  std::printf("-- comprehensive-taxon datasets (both methods applicable) --\n");
  std::printf("%-22s %12s %12s %11s %11s %6s\n", "dataset", "superb",
              "gentrius", "t_superb", "t_gentrius", "agree");

  support::Rng rng(151);
  std::size_t shown = 0;
  std::size_t no_comp_total = 0, tried = 0;
  for (std::uint64_t i = 0; shown < static_cast<std::size_t>(8 * scale) &&
                            i < 400; ++i) {
    datagen::SimulatedParams p;
    p.n_taxa = 24 + rng.below(41);
    p.n_loci = 4 + rng.below(5);
    p.missing_fraction = 0.35 + 0.2 * rng.uniform();
    p.seed = 151'000 + i;
    auto ds = datagen::make_simulated(p);
    ++tried;
    // Mode (a): force taxon 0 comprehensive.
    for (std::size_t l = 0; l < ds.pam.locus_count(); ++l)
      ds.pam.set_present(0, l, true);
    ds.constraints = pam::induced_subtrees(ds.species_tree, ds.pam);

    baseline::SuperbOptions so;
    so.max_recursion_nodes = 5'000'000;
    const auto superb = baseline::count_stand_superb(ds.constraints, 0, so);

    const auto gentrius = core::run_serial(ds.constraints, options);
    if (gentrius.reason != core::StopReason::kCompleted) continue;
    if (gentrius.stand_trees < 10) continue;  // show non-trivial stands

    char superb_count[32];
    if (superb.budget_exceeded)
      std::snprintf(superb_count, sizeof(superb_count), "gave up");
    else if (superb.saturated)
      std::snprintf(superb_count, sizeof(superb_count), "overflow");
    else
      std::snprintf(superb_count, sizeof(superb_count), "%llu",
                    static_cast<unsigned long long>(superb.count));
    const bool comparable = !superb.budget_exceeded && !superb.saturated;
    std::printf("%-22s %12s %12llu %10.4fs %10.4fs %6s\n", ds.name.c_str(),
                superb_count,
                static_cast<unsigned long long>(gentrius.stand_trees),
                superb.seconds, gentrius.seconds,
                !comparable ? "n/a"
                            : (superb.count == gentrius.stand_trees ? "yes"
                                                                    : "NO"));
    ++shown;
  }

  std::printf("\n-- datasets without a comprehensive taxon --\n");
  std::printf("%-22s %18s %14s\n", "dataset", "superb", "gentrius trees");
  for (std::uint64_t i = 0; no_comp_total < 4 && i < 200; ++i) {
    datagen::SimulatedParams p;
    p.n_taxa = 24;
    p.n_loci = 6;
    p.missing_fraction = 0.45;
    p.seed = 152'000 + i;
    const auto ds = datagen::make_simulated(p);
    if (baseline::find_comprehensive_taxon(ds.constraints).has_value())
      continue;
    const auto gentrius = core::run_serial(ds.constraints, options);
    std::printf("%-22s %18s %14llu\n", ds.name.c_str(),
                "not applicable",
                static_cast<unsigned long long>(gentrius.stand_trees));
    ++no_comp_total;
  }
  std::printf("\n(SUPERB-style methods cannot root inputs lacking a "
              "comprehensive taxon — Gentrius's key advantage.)\n");
  return 0;
}
