// Future-work exploration (paper §V): alternative taxon-insertion-order
// heuristics.
//
// The paper's dynamic rule inserts the taxon with the fewest admissible
// branches; its future work proposes exploring other orders. This harness
// compares, across a corpus:
//   min-branches        — the published heuristic
//   most-constrained    — taxon in the most active constraint trees
//   static shuffled     — the no-heuristic baseline
// on intermediate states, dead ends, and serial runtime. Expected shape:
// min-branches wins overall (that is why the paper ships it); the
// most-constrained variant lands between it and the shuffled baseline.
#include <cstdio>

#include "benchutil/corpus.hpp"
#include "benchutil/stats.hpp"
#include "gentrius/serial.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options base;
  base.stop.max_stand_trees = 300'000;
  base.stop.max_states = 3'000'000;

  struct Config {
    const char* name;
    core::Options opts;
  };
  core::Options most = base;
  most.dynamic_variant = core::Options::DynamicVariant::kMostConstrained;
  core::Options shuffled = base;
  shuffled.dynamic_taxon_order = false;
  shuffled.shuffle_seed = 4711;
  const Config configs[] = {
      {"min-branches (paper)", base},
      {"most-constrained", most},
      {"static shuffled", shuffled},
  };

  std::uint64_t states[3] = {0, 0, 0};
  std::uint64_t dead[3] = {0, 0, 0};
  double seconds[3] = {0, 0, 0};
  std::size_t wins[3] = {0, 0, 0};
  std::size_t used = 0;

  const auto corpus = benchutil::empirical_corpus(
      static_cast<std::size_t>(50 * scale), /*seed0=*/161);
  for (const auto& ds : corpus) {
    core::Result results[3];
    bool usable = true;
    for (int i = 0; i < 3 && usable; ++i) {
      try {
        results[i] = core::run_serial(ds.constraints, configs[i].opts);
      } catch (const support::Error&) {
        usable = false;
      }
      if (results[i].reason != core::StopReason::kCompleted) usable = false;
    }
    if (!usable || results[0].intermediate_states < 1'000) continue;
    ++used;
    std::size_t best = 0;
    for (int i = 0; i < 3; ++i) {
      states[i] += results[i].intermediate_states;
      dead[i] += results[i].dead_ends;
      seconds[i] += results[i].seconds;
      if (results[i].intermediate_states <
          results[best].intermediate_states)
        best = static_cast<std::size_t>(i);
    }
    ++wins[best];
  }

  std::printf("Insertion-order heuristics across %zu completing datasets\n\n",
              used);
  std::printf("%-24s %14s %12s %10s %6s\n", "heuristic", "total states",
              "dead ends", "time", "wins");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-24s %14llu %12llu %9.2fs %6zu\n", configs[i].name,
                static_cast<unsigned long long>(states[i]),
                static_cast<unsigned long long>(dead[i]), seconds[i],
                wins[i]);
  }
  return 0;
}
