// Table I: adapted speedups of datasets that reach the time limit under
// serial execution.
//
// Paper §IV-A: when the serial run is cut off by the time rule but the
// parallel run enumerates more of (or the whole) stand, raw time ratios
// underestimate the benefit, so the paper defines
//   ASP_N = (ST_N / T_N) / (ST_1 / T_1)
// (ST = stand trees counted, T = execution time) and reports it for five
// datasets at 2..16 threads (values ~1.9 .. ~12).
//
// Here the time limit is a virtual-clock budget chosen so that serial
// execution cannot finish the instance; the same formula is reported.
// Expected shape: ASP_N grows near-linearly with N.
#include <cstdio>

#include "benchutil/corpus.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);
  const std::size_t want = 5;

  core::Options options;  // generous rules 1-2; rule 3 dominates
  options.stop.max_stand_trees = 5'000'000;
  options.stop.max_states = 50'000'000;
  vthread::CostModel costs;
  vthread::VirtualRules rules;
  rules.max_virtual_time = 400'000.0 * scale;  // ~1.6 paper-seconds

  std::printf("Table I reproduction — adapted speedups under the time rule\n");
  std::printf("virtual time limit: %.0f units (%.2f s equivalent)\n\n",
              *rules.max_virtual_time,
              *rules.max_virtual_time / benchutil::kUnitsPerSecond);
  std::printf("%-22s %8s |", "dataset", "ST_1");
  for (const auto t : benchutil::thread_counts()) std::printf(" ASP_%-4zu", t);
  std::printf("\n");

  const auto corpus = benchutil::simulated_corpus(
      static_cast<std::size_t>(120 * scale), /*seed0=*/101);
  std::size_t reported = 0;
  for (const auto& ds : corpus) {
    if (reported >= want) break;
    core::Problem problem;
    try {
      problem = core::build_problem(ds.constraints, options);
    } catch (const support::Error&) {
      continue;
    }
    const auto serial = vthread::run_virtual(problem, options, 1, costs, rules);
    if (serial.reason != core::StopReason::kTimeLimit) continue;
    if (serial.stand_trees == 0) continue;  // Table I needs tree-producing runs

    const double serial_rate =
        static_cast<double>(serial.stand_trees) / serial.virtual_makespan;
    std::printf("%-22s %8llu |", ds.name.c_str(),
                static_cast<unsigned long long>(serial.stand_trees));
    for (const auto t : benchutil::thread_counts()) {
      const auto r = vthread::run_virtual(problem, options, t, costs, rules);
      const double rate =
          static_cast<double>(r.stand_trees) / r.virtual_makespan;
      std::printf(" %7.1f", rate / serial_rate);
    }
    std::printf("\n");
    ++reported;
  }
  if (reported == 0)
    std::printf("(no dataset hit the time limit — increase scale)\n");
  return 0;
}
