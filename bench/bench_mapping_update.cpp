// §V (future work) experiment: the cost of double-edge-mapping updates.
//
// The paper profiles its implementation with Valgrind and finds that
// updating the branch mappings after taxon insertions/removals consumes
// 15-30 % of total runtime, motivating a mapping-structure redesign as
// future work. This library implements both regimes:
//   incremental — constraints not containing the inserted taxon get an O(1)
//                 bucket update (this library's redesign),
//   recompute   — every active constraint's mapping is rebuilt per state
//                 (an upper bound on any per-state maintenance scheme).
// The difference isolates the mapping-maintenance share of runtime. It is
// largest on many-locus datasets, where most constraints are active at any
// state; the measured share bounds what the paper's redesign can save.
//
// Each regime is timed over several interleaved repetitions and the share
// is computed from the medians: single wall-clock runs on a shared host
// were observed to move the reported share by >5 percentage points run to
// run (docs/PERFORMANCE.md §4 post-mortem), drowning real changes.
// argv: [scale] [repetitions] (defaults 1.0 and 3).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchutil/corpus.hpp"
#include "gentrius/serial.hpp"
#include "support/rng.hpp"

namespace {

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);
  const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;

  core::Options incremental;
  incremental.stop.max_stand_trees = 300'000;
  incremental.stop.max_states = 3'000'000;
  core::Options recompute = incremental;
  recompute.incremental_mappings = false;

  std::printf("Mapping-update cost (paper §V: 15-30%% of runtime)\n\n");
  std::printf("%-22s %5s %8s %12s %12s %13s\n", "dataset", "loci", "states",
              "incremental", "recompute", "mapping share");

  support::Rng rng(171);
  std::size_t shown = 0;
  double share_sum = 0;
  for (std::uint64_t i = 0; shown < static_cast<std::size_t>(6 * scale) &&
                            i < 300; ++i) {
    datagen::SimulatedParams p;
    p.n_taxa = 60 + rng.below(61);
    p.n_loci = 12 + rng.below(9);  // many loci: most stay active per state
    p.missing_fraction = 0.40 + 0.15 * rng.uniform();
    p.seed = 171'000 + i;
    const auto ds = datagen::make_simulated(p);

    core::Result a;
    try {
      a = core::run_serial(ds.constraints, incremental);
    } catch (const support::Error&) {
      continue;
    }
    // Tree-limit runs are admissible too: serial stopping rules are exact,
    // so both modes perform the identical state sequence.
    if ((a.reason != core::StopReason::kCompleted &&
         a.reason != core::StopReason::kTreeLimit) ||
        a.intermediate_states < 15'000)
      continue;
    // Interleave the regimes so slow host phases hit both medians alike.
    std::vector<double> ta, tb;
    ta.push_back(a.seconds);
    for (int r = 0; r < reps; ++r) {
      const auto b = core::run_serial(ds.constraints, recompute);
      if (b.intermediate_states != a.intermediate_states) {
        std::printf("%-22s COUNT MISMATCH\n", ds.name.c_str());
        return 1;
      }
      tb.push_back(b.seconds);
      if (static_cast<int>(ta.size()) < reps)
        ta.push_back(core::run_serial(ds.constraints, incremental).seconds);
    }
    const double ma = median_of(ta);
    const double mb = median_of(tb);
    const double share = 100.0 * (mb - ma) / mb;
    std::printf("%-22s %5zu %8llu %11.3fs %11.3fs %12.1f%%\n",
                ds.name.c_str(), ds.constraints.size(),
                static_cast<unsigned long long>(a.intermediate_states),
                ma, mb, share);
    share_sum += share;
    ++shown;
  }
  if (shown)
    std::printf(
        "\nmean share of runtime the incremental scheme avoids: %.1f%%"
        " (medians of %d runs per regime)\n",
        share_sum / static_cast<double>(shown), reps);
  return 0;
}
