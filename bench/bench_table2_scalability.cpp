// Table II: scalability beyond 16 threads.
//
// Paper §IV-E: two long-running datasets (serial 11,200 s and 17,163 s)
// anecdotally tested at 16/32/48 threads, reaching 12.0/20.4/26.2x and
// 13.4/23.0/29.5x. Expected shape here: monotone growth with visibly
// sub-linear efficiency at 48 threads.
#include <cstdio>

#include "benchutil/corpus.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options options;
  options.stop.max_stand_trees = 1'000'000;
  options.stop.max_states = 8'000'000;
  vthread::CostModel costs;

  // Scan for the two longest-running completing datasets.
  std::printf("Table II reproduction — scalability at 16/32/48 threads\n");
  const auto corpus = benchutil::simulated_corpus(
      static_cast<std::size_t>(60 * scale), /*seed0=*/111);
  struct Pick {
    const datagen::Dataset* ds = nullptr;
    core::Problem problem;
    double serial_units = 0;
  };
  Pick best[2];
  for (const auto& ds : corpus) {
    core::Problem problem;
    try {
      problem = core::build_problem(ds.constraints, options);
    } catch (const support::Error&) {
      continue;
    }
    const auto probe = vthread::run_virtual(problem, options, 16, costs);
    if (probe.reason != core::StopReason::kCompleted) continue;
    const auto serial = vthread::run_virtual(problem, options, 1, costs);
    if (serial.virtual_makespan > best[0].serial_units) {
      best[1] = std::move(best[0]);
      best[0] = Pick{&ds, std::move(problem), serial.virtual_makespan};
    } else if (serial.virtual_makespan > best[1].serial_units) {
      best[1] = Pick{&ds, std::move(problem), serial.virtual_makespan};
    }
  }

  std::printf("\n%-22s %14s | %8s %8s %8s\n", "dataset", "serial units",
              "16", "32", "48");
  for (const auto& pick : best) {
    if (pick.ds == nullptr) continue;
    std::printf("%-22s %14.0f |", pick.ds->name.c_str(), pick.serial_units);
    for (const std::size_t t : {16u, 32u, 48u}) {
      const auto r = vthread::run_virtual(pick.problem, options, t, costs);
      std::printf(" %8.2f", pick.serial_units / r.virtual_makespan);
    }
    std::printf("\n");
  }
  return 0;
}
