// Design ablation: work stealing vs. static initial split, and (with
// --schedulers) central queue vs. distributed per-worker deques.
//
// The paper motivates the thread pool with Figure 3: the initial split can
// assign nearly all work to one thread. This harness compares the full
// work-stealing pool against a split-only baseline (identical except tasks
// are never offered) across a corpus. Expected shape: stealing matches or
// beats the static split everywhere, with large gaps on imbalanced
// instances; the static split's mean speedup saturates well below N_t.
//
// --schedulers: sweep the Table-2 configuration through both schedulers
// (Options::scheduler) under the virtual-time simulator at
// N_t in {1,2,4,8,16,32,48,96}. The run is fully deterministic, so the
// emitted "SCHED ..." lines are machine-parsable and stable across
// machines; tools/run_benchmarks.py --schedulers turns them into
// BENCH_5.json and the CI regression gate. Expected shape: both schedulers
// within noise at small N_t, the central queue's single lock saturating its
// speedup at high N_t while the deques keep scaling.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "benchutil/corpus.hpp"
#include "benchutil/stats.hpp"

namespace {

const char* sched_name(gentrius::core::Scheduler s) {
  return s == gentrius::core::Scheduler::kCentralQueue ? "central"
                                                       : "distributed";
}

int run_scheduler_sweep() {
  using namespace gentrius;
  core::Options options;
  options.stop.max_stand_trees = 2'000'000;
  options.stop.max_states = 30'000'000;
  vthread::CostModel costs;

  // The Table-2 stand-in: the long-running multi-constraint configuration
  // (also pinned by the golden determinism trace and BENCH_4's throughput
  // probe), which completes without tripping a stopping rule so speedups
  // are comparable across N_t.
  // GENTRIUS_SWEEP_{TAXA,LOCI,MISSING,SEED} override the instance for
  // exploration; BENCH_5.json is generated from the defaults.
  datagen::SimulatedParams params;
  params.n_taxa = 56;
  params.n_loci = 12;
  params.missing_fraction = 0.55;
  params.seed = 7014;
  if (const char* e = std::getenv("GENTRIUS_SWEEP_TAXA"))
    params.n_taxa = std::strtoul(e, nullptr, 10);
  if (const char* e = std::getenv("GENTRIUS_SWEEP_LOCI"))
    params.n_loci = std::strtoul(e, nullptr, 10);
  if (const char* e = std::getenv("GENTRIUS_SWEEP_MISSING"))
    params.missing_fraction = std::strtod(e, nullptr);
  if (const char* e = std::getenv("GENTRIUS_SWEEP_SEED"))
    params.seed = std::strtoull(e, nullptr, 10);
  const auto dataset = datagen::make_simulated(params);
  const auto problem = core::build_problem(dataset.constraints, options);

  const auto serial = vthread::run_virtual(problem, options, 1, costs);
  std::printf("Scheduler sweep (virtual time, Table-2 configuration)\n");
  std::printf("instance %zux%zu missing=%.2f seed=%llu\n", params.n_taxa,
              params.n_loci, params.missing_fraction,
              static_cast<unsigned long long>(params.seed));
  std::printf("SCHED serial makespan=%.0f states=%llu trees=%llu reason=%s\n",
              serial.virtual_makespan,
              static_cast<unsigned long long>(serial.intermediate_states),
              static_cast<unsigned long long>(serial.stand_trees),
              core::to_string(serial.reason));
  std::printf("\n%-12s %4s %12s %8s %8s %8s %8s %6s %6s\n", "scheduler",
              "nt", "makespan", "speedup", "stolen", "attempts", "failed",
              "reject", "depth");
  for (const std::size_t nt : {1UL, 2UL, 4UL, 8UL, 16UL, 32UL, 48UL, 96UL}) {
    for (const core::Scheduler sched :
         {core::Scheduler::kCentralQueue,
          core::Scheduler::kDistributedDeques}) {
      core::Options o = options;
      o.scheduler = sched;
      const auto r = vthread::run_virtual(problem, o, nt, costs);
      const double speedup = serial.virtual_makespan / r.virtual_makespan;
      std::printf("%-12s %4zu %12.0f %8.2f %8llu %8llu %8llu %6llu %6llu\n",
                  sched_name(sched), nt, r.virtual_makespan, speedup,
                  static_cast<unsigned long long>(r.sched.tasks_stolen),
                  static_cast<unsigned long long>(r.sched.steal_attempts),
                  static_cast<unsigned long long>(r.sched.failed_steal_probes),
                  static_cast<unsigned long long>(
                      r.sched.queue_full_rejections),
                  static_cast<unsigned long long>(r.sched.max_queue_depth));
      // The machine-parsable record behind the table above. The trailing
      // offer-policy counters are zero under the default kPaperFixed policy
      // (it evaluates nothing); they are populated uniformly by the real
      // pool and both simulators when Options::offer_policy is adaptive.
      std::printf(
          "SCHED scheduler=%s nt=%zu makespan=%.2f speedup=%.4f "
          "tasks_offered=%llu tasks_stolen=%llu steal_attempts=%llu "
          "failed_probes=%llu rejections=%llu max_depth=%llu "
          "offers_evaluated=%llu offers_suppressed=%llu\n",
          sched_name(sched), nt, r.virtual_makespan, speedup,
          static_cast<unsigned long long>(r.tasks_offered),
          static_cast<unsigned long long>(r.sched.tasks_stolen),
          static_cast<unsigned long long>(r.sched.steal_attempts),
          static_cast<unsigned long long>(r.sched.failed_steal_probes),
          static_cast<unsigned long long>(r.sched.queue_full_rejections),
          static_cast<unsigned long long>(r.sched.max_queue_depth),
          static_cast<unsigned long long>(r.sched.offers_evaluated),
          static_cast<unsigned long long>(r.sched.offers_suppressed));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gentrius;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schedulers") == 0) return run_scheduler_sweep();
  }
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options options;
  options.stop.max_stand_trees = 200'000;
  options.stop.max_states = 1'500'000;
  vthread::CostModel costs;

  const auto corpus = benchutil::simulated_corpus(
      static_cast<std::size_t>(48 * scale), /*seed0=*/141);

  std::printf("Work-stealing ablation (pool vs static initial split)\n");
  std::vector<double> pool_speedup[2], static_speedup[2];
  const std::size_t threads_of[2] = {8, 16};
  std::size_t used = 0;
  double worst_ratio = 1.0;
  std::string worst_name;
  for (const auto& ds : corpus) {
    core::Problem problem;
    try {
      problem = core::build_problem(ds.constraints, options);
    } catch (const support::Error&) {
      continue;
    }
    const auto probe = vthread::run_virtual(problem, options, 16, costs);
    if (probe.reason != core::StopReason::kCompleted ||
        probe.virtual_makespan < 5'000)
      continue;
    const auto serial = vthread::run_virtual(problem, options, 1, costs);
    ++used;
    for (int i = 0; i < 2; ++i) {
      const auto pool =
          vthread::run_virtual(problem, options, threads_of[i], costs);
      const auto stat = vthread::run_virtual_static_split(
          problem, options, threads_of[i], costs);
      pool_speedup[i].push_back(serial.virtual_makespan /
                                pool.virtual_makespan);
      static_speedup[i].push_back(serial.virtual_makespan /
                                  stat.virtual_makespan);
      const double ratio = stat.virtual_makespan / pool.virtual_makespan;
      if (i == 1 && ratio > worst_ratio) {
        worst_ratio = ratio;
        worst_name = ds.name;
      }
    }
  }

  std::printf("%zu datasets\n\n%-26s %10s %s\n", used, "configuration",
              "threads", "speedup  mean  [q1 median q3]  (min..max)");
  for (int i = 0; i < 2; ++i) {
    std::printf("%-26s %10zu %s\n", "work-stealing pool", threads_of[i],
                benchutil::format_distribution(
                    benchutil::Distribution::of(pool_speedup[i]))
                    .c_str());
    std::printf("%-26s %10zu %s\n", "static split only", threads_of[i],
                benchutil::format_distribution(
                    benchutil::Distribution::of(static_speedup[i]))
                    .c_str());
  }
  if (!worst_name.empty())
    std::printf("\nlargest imbalance rescued by stealing: %.1fx on %s\n",
                worst_ratio, worst_name.c_str());
  return 0;
}
