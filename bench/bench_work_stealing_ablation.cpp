// Design ablation: work stealing vs. static initial split.
//
// The paper motivates the thread pool with Figure 3: the initial split can
// assign nearly all work to one thread. This harness compares the full
// work-stealing pool against a split-only baseline (identical except tasks
// are never offered) across a corpus. Expected shape: stealing matches or
// beats the static split everywhere, with large gaps on imbalanced
// instances; the static split's mean speedup saturates well below N_t.
#include <cstdio>

#include "benchutil/corpus.hpp"
#include "benchutil/stats.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options options;
  options.stop.max_stand_trees = 200'000;
  options.stop.max_states = 1'500'000;
  vthread::CostModel costs;

  const auto corpus = benchutil::simulated_corpus(
      static_cast<std::size_t>(48 * scale), /*seed0=*/141);

  std::printf("Work-stealing ablation (pool vs static initial split)\n");
  std::vector<double> pool_speedup[2], static_speedup[2];
  const std::size_t threads_of[2] = {8, 16};
  std::size_t used = 0;
  double worst_ratio = 1.0;
  std::string worst_name;
  for (const auto& ds : corpus) {
    core::Problem problem;
    try {
      problem = core::build_problem(ds.constraints, options);
    } catch (const support::Error&) {
      continue;
    }
    const auto probe = vthread::run_virtual(problem, options, 16, costs);
    if (probe.reason != core::StopReason::kCompleted ||
        probe.virtual_makespan < 5'000)
      continue;
    const auto serial = vthread::run_virtual(problem, options, 1, costs);
    ++used;
    for (int i = 0; i < 2; ++i) {
      const auto pool =
          vthread::run_virtual(problem, options, threads_of[i], costs);
      const auto stat = vthread::run_virtual_static_split(
          problem, options, threads_of[i], costs);
      pool_speedup[i].push_back(serial.virtual_makespan /
                                pool.virtual_makespan);
      static_speedup[i].push_back(serial.virtual_makespan /
                                  stat.virtual_makespan);
      const double ratio = stat.virtual_makespan / pool.virtual_makespan;
      if (i == 1 && ratio > worst_ratio) {
        worst_ratio = ratio;
        worst_name = ds.name;
      }
    }
  }

  std::printf("%zu datasets\n\n%-26s %10s %s\n", used, "configuration",
              "threads", "speedup  mean  [q1 median q3]  (min..max)");
  for (int i = 0; i < 2; ++i) {
    std::printf("%-26s %10zu %s\n", "work-stealing pool", threads_of[i],
                benchutil::format_distribution(
                    benchutil::Distribution::of(pool_speedup[i]))
                    .c_str());
    std::printf("%-26s %10zu %s\n", "static split only", threads_of[i],
                benchutil::format_distribution(
                    benchutil::Distribution::of(static_speedup[i]))
                    .c_str());
  }
  if (!worst_name.empty())
    std::printf("\nlargest imbalance rescued by stealing: %.1fx on %s\n",
                worst_ratio, worst_name.c_str());
  return 0;
}
