// Figure 5 behaviours: unbalanced branch-and-bound workflows.
//
// (a) Speedup plateau: the workflow after the initial split is one cheap
//     dead end plus one long forced chain — no tasks can ever be created,
//     so additional threads cannot help (paper observed ~3x/5x plateaus on
//     sim-data-1511/1792/1795). Expected: speedup ~1 for all N_t.
// (b) Super-linear speedup under stopping rule 2: the serial search
//     descends a huge zero-stand-tree region and exhausts the state budget
//     with 0 trees, while a second thread finds the stand-rich branch
//     immediately (paper: sim-data-5001, 22.6x at 2 threads; 220x with a
//     raised state budget). Expected: tree-rate "adapted" speedups far
//     above N_t, growing with the state budget.
#include <cstdio>
#include <utility>

#include "benchutil/corpus.hpp"
#include "datagen/dataset.hpp"

namespace {

using namespace gentrius;

core::Options crafted_options(const datagen::Dataset& ds) {
  core::Options opts;
  opts.select_initial_tree = false;
  opts.dynamic_taxon_order = false;
  opts.initial_constraint = ds.forced_initial_constraint;
  opts.insertion_order = ds.forced_insertion_order;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = benchutil::parse_scale(argc, argv);

  // ---- (a) plateau ---------------------------------------------------------
  {
    const auto ds = datagen::make_plateau_instance(
        static_cast<std::size_t>(3000 * scale), 0);
    const auto opts = crafted_options(ds);
    const auto problem = core::build_problem(ds.constraints, opts);
    vthread::CostModel costs;
    const auto serial = vthread::run_virtual(problem, opts, 1, costs);
    std::printf("Fig. 5a — plateau workflow (forced chain of %zu taxa)\n",
                ds.forced_insertion_order.size());
    std::printf("%8s %14s %9s %8s\n", "threads", "makespan", "speedup",
                "tasks");
    std::printf("%8d %14.0f %9.2f %8s\n", 1, serial.virtual_makespan, 1.0, "-");
    for (const std::size_t t : {2u, 4u, 8u, 16u}) {
      const auto r = vthread::run_virtual(problem, opts, t, costs);
      std::printf("%8zu %14.0f %9.2f %8llu\n", t, r.virtual_makespan,
                  serial.virtual_makespan / r.virtual_makespan,
                  static_cast<unsigned long long>(r.tasks_executed));
    }
  }

  // ---- (b) super-linear under stopping rule 2 ------------------------------
  // Tree limit << state budget, as in the paper's sim-data-5001 runs: the
  // serial search burns the whole state budget inside the barren region,
  // while parallel threads reach the stand-rich branch and terminate on the
  // tree rule almost immediately. Raising the state budget (second round)
  // amplifies the super-linearity — the paper reports 22.6x, then 220x.
  const std::pair<std::size_t, std::uint64_t> rounds[] = {
      {5, 300'000ull}, {6, static_cast<std::uint64_t>(3'000'000 * scale)}};
  for (const auto& [free_taxa, budget] : rounds) {
    const auto ds = datagen::make_superlinear_instance(free_taxa, 0);
    auto opts = crafted_options(ds);
    opts.stop.max_states = budget;
    opts.stop.max_stand_trees = 20'000;
    const auto problem = core::build_problem(ds.constraints, opts);
    const auto serial = vthread::run_virtual(problem, opts, 1);
    const double serial_rate =
        serial.stand_trees == 0
            ? 0.0
            : static_cast<double>(serial.stand_trees) / serial.virtual_makespan;
    std::printf("\nFig. 5b — barren-first workflow, state budget %llu\n",
                static_cast<unsigned long long>(budget));
    std::printf("  serial: %llu trees, %llu states (%s) — %s\n",
                static_cast<unsigned long long>(serial.stand_trees),
                static_cast<unsigned long long>(serial.intermediate_states),
                core::to_string(serial.reason),
                serial.stand_trees == 0 ? "stuck in the barren region"
                                        : "found trees");
    std::printf("%8s %10s %12s %14s %14s %16s\n", "threads", "trees",
                "states", "makespan", "time speedup", "adapted");
    for (const std::size_t t : {2u, 4u, 8u}) {
      const auto r = vthread::run_virtual(problem, opts, t);
      const double rate =
          static_cast<double>(r.stand_trees) / r.virtual_makespan;
      char adapted[32];
      if (serial_rate > 0)
        std::snprintf(adapted, sizeof(adapted), "%.1f", rate / serial_rate);
      else
        std::snprintf(adapted, sizeof(adapted), "%s",
                      r.stand_trees > 0 ? "inf (serial: 0)" : "-");
      std::printf("%8zu %10llu %12llu %14.0f %13.1fx %16s\n", t,
                  static_cast<unsigned long long>(r.stand_trees),
                  static_cast<unsigned long long>(r.intermediate_states),
                  r.virtual_makespan,
                  serial.virtual_makespan / r.virtual_makespan, adapted);
    }
  }
  return 0;
}
