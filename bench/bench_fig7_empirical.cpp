// Figure 7: per-thread speedup distributions on empirical data.
//
// The paper extracts 3,097 datasets from RAxML Grove, filters with the same
// protocol as Fig. 6, and reports linear speedups for serial times > 50 s.
// RAxML Grove is not available offline; the empirical-like generator
// (clade-correlated, heavy-tailed missingness on Yule trees — see
// DESIGN.md) substitutes the database. Expected shape: same linear trend,
// noisier at low serial-time thresholds than the simulated corpus.
#include <cstdio>

#include "benchutil/corpus.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);
  const auto count = static_cast<std::size_t>(120 * scale);

  benchutil::Protocol protocol;
  protocol.options.stop.max_stand_trees = 500'000;
  protocol.options.stop.max_states = 3'000'000;

  std::printf("Figure 7 reproduction — empirical-like data (%zu candidate "
              "datasets, scale %.2f)\n",
              count, scale);

  const auto corpus = benchutil::empirical_corpus(count, /*seed0=*/71);
  std::vector<benchutil::CorpusRun> runs;
  std::size_t filtered = 0;
  for (const auto& ds : corpus) {
    benchutil::CorpusRun run;
    if (!benchutil::run_dataset(ds, protocol, run)) {
      ++filtered;
      continue;
    }
    if (run.serial_units / benchutil::kUnitsPerSecond < 0.1) continue;
    runs.push_back(std::move(run));
  }
  std::printf("%zu datasets filtered by stopping rules, %zu in the figure\n",
              filtered, runs.size());

  benchutil::print_speedup_panels(
      "Fig. 7: speedup distributions, empirical-like data", runs,
      {0.1, 0.4, 1.2});
  return 0;
}
