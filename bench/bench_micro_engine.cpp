// Micro-benchmarks of the engine (google-benchmark).
//
// Paper claims quantified here:
//  * §III-A: a single thread processes "hundreds of thousands of states per
//    second" — BM_SerialStateThroughput reports states/s.
//  * §III-A: reaching another thread's state by replaying a path costs only
//    milliseconds — BM_TaskReplay reports insertions/s for replay+rewind.
//  * §V (future work): updating the branch mappings consumes 15-30 % of the
//    runtime — BM_InsertRemoveOnly vs BM_FullStateExpansion isolates the
//    mapping/selection share of a state expansion.
#include <benchmark/benchmark.h>

#include "datagen/dataset.hpp"
#include "gentrius/enumerator.hpp"
#include "gentrius/serial.hpp"
#include "support/rng.hpp"

namespace {

using namespace gentrius;

const datagen::Dataset& bench_dataset() {
  static const datagen::Dataset ds = [] {
    datagen::SimulatedParams p;
    p.n_taxa = 48;
    p.n_loci = 8;
    p.missing_fraction = 0.5;
    p.seed = 4242;
    return datagen::make_simulated(p);
  }();
  return ds;
}

void BM_SerialStateThroughput(benchmark::State& state) {
  core::Options opts;
  opts.stop.max_states = 200'000;
  opts.stop.max_stand_trees = 1'000'000'000;
  const auto problem = core::build_problem(bench_dataset().constraints, opts);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = core::run_serial(problem, opts);
    states += r.intermediate_states;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SerialStateThroughput)->Unit(benchmark::kMillisecond);

void BM_SerialStateThroughputMultiConstraint(benchmark::State& state) {
  // The heavy-overlap configuration (56 taxa, 12 loci, 55 % missing): most
  // taxa occur in several constraint trees, so candidate selection runs the
  // multi-constraint preimage-list intersection and every insertion dirties
  // several mappings. This is the configuration the hot-path overhaul is
  // gated on (docs/PERFORMANCE.md); tools/run_benchmarks.py records its
  // states/s into BENCH_4.json.
  datagen::SimulatedParams p;
  p.n_taxa = 56;
  p.n_loci = 12;
  p.missing_fraction = 0.55;
  p.seed = 7014;
  const auto ds = datagen::make_simulated(p);
  core::Options opts;
  opts.stop.max_states = 300'000;
  opts.stop.max_stand_trees = 1'000'000'000;
  const auto problem = core::build_problem(ds.constraints, opts);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = core::run_serial(problem, opts);
    states += r.intermediate_states;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SerialStateThroughputMultiConstraint)
    ->Unit(benchmark::kMillisecond);

void BM_TaskReplay(benchmark::State& state) {
  core::Options opts;
  const auto problem = core::build_problem(bench_dataset().constraints, opts);
  core::CounterSink sink(opts.stop);

  // The worker sits at the initial split state I0; a scout copy of its
  // Terrace walks admissible insertions from there, building a replayable
  // path exactly like a working thread would when creating a task.
  core::Enumerator worker(problem, opts, sink);
  const auto& prefix = worker.run_prefix(false);
  if (prefix.outcome != core::Enumerator::Prefix::Outcome::kSplit) {
    state.SkipWithError("benchmark instance has no initial split");
    return;
  }
  core::Terrace scout(worker.terrace());  // copy at I0
  support::Rng rng(7);
  core::Task task;
  std::vector<core::EdgeId> branches;
  {
    // First insertion: the split taxon itself.
    scout.choose_static(prefix.split_taxon, branches);
    task.path.emplace_back(prefix.split_taxon, branches[0]);
    scout.insert(prefix.split_taxon, branches[0]);
  }
  while (scout.remaining_count() > 1) {
    const auto choice = scout.choose_dynamic(branches);
    if (choice.complete || choice.dead_end) break;
    const core::EdgeId e = branches[rng.below(branches.size())];
    task.path.emplace_back(choice.taxon, e);
    scout.insert(choice.taxon, e);
  }
  // Delegate the final taxon's branches.
  const auto last = scout.choose_dynamic(branches);
  if (last.complete || last.dead_end || branches.empty()) {
    state.SkipWithError("scout walk ended prematurely");
    return;
  }
  task.next_taxon = last.taxon;
  task.branches = branches;
  std::uint64_t insertions = 0;
  for (auto _ : state) {
    insertions += worker.adopt_task(task);
    worker.rewind_to_split();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insertions));
  state.counters["replayed_insertions/s"] = benchmark::Counter(
      static_cast<double>(insertions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TaskReplay);

void BM_FullStateExpansion(benchmark::State& state) {
  // choose_dynamic (mapping recomputation + taxon selection) + insert +
  // remove: the complete per-state work of the search.
  core::Options opts;
  const auto problem = core::build_problem(bench_dataset().constraints, opts);
  core::Terrace terrace(problem);
  std::vector<core::EdgeId> branches;
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto choice = terrace.choose_dynamic(branches);
    if (choice.complete || choice.dead_end) {
      state.SkipWithError("unexpected terminal state");
      return;
    }
    const auto rec = terrace.insert(choice.taxon, branches[0]);
    terrace.remove(rec);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullStateExpansion);

void BM_InsertRemoveOnly(benchmark::State& state) {
  // The same mutation without recomputing mappings: the difference to
  // BM_FullStateExpansion is the mapping/selection share.
  core::Options opts;
  const auto problem = core::build_problem(bench_dataset().constraints, opts);
  core::Terrace terrace(problem);
  std::vector<core::EdgeId> branches;
  const auto choice = terrace.choose_dynamic(branches);
  if (choice.complete || choice.dead_end) {
    state.SkipWithError("unexpected terminal state");
    return;
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto rec = terrace.insert(choice.taxon, branches[0]);
    terrace.remove(rec);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InsertRemoveOnly);

}  // namespace

BENCHMARK_MAIN();
