// Offer-policy ablation: the paper's fixed splitting rule (§III-A) vs the
// online Galton–Watson granularity controller (Options::offer_policy).
//
// The interesting regime is hand-off flooding: instances whose offer-
// eligible frames vastly outnumber the bounded queue's capacity, so under
// kPaperFixed nearly every candidate frame bounces off the full ring —
// paying the contended hand-off mutex just to be rejected. The skewed
// "flood" family (datagen::make_flood_instance) is built for exactly that
// shape; the empirical corpus instances represent the coarse-grained
// opposite, where offers are scarce and granularity control has little to
// win. Both families run under both schedulers at N_t in {1,2,8,16,32,48}
// and both policies, entirely under the virtual-time simulator, so every
// number is deterministic and machine-comparable.
//
// Cost model: queue_reject_cost is raised from its historical-compatibility
// default of 0 to queue_cost (0.5) — the real TaskQueue::try_push acquires
// the contended mutex even when it only learns the ring is full, and this
// harness exists to measure precisely that traffic. Everything else is the
// default model, so serial makespans match the other benches.
//
// Output: human table plus machine-parsable lines consumed by
// tools/run_benchmarks.py --offer-policies (BENCH_8.json + the CI gate):
//   OFFER serial instance=<n> family=<f> makespan=<m> states=<s> trees=<t>
//       dead_ends=<d>
//   OFFER instance=<n> family=<f> scheduler=<s> nt=<k> policy=<p>
//       makespan=<m> speedup=<x> tasks_offered=<o> rejections=<r>
//       offers_evaluated=<e> offers_suppressed=<u> prediction_error=<pe>
// The binary itself hard-fails (exit 1) when any parallel run's counts
// (trees / intermediate states / dead ends) differ from serial — the
// policy may only change *scheduling*, never what is enumerated.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil/corpus.hpp"
#include "datagen/dataset.hpp"
#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"
#include "vthread/virtual_pool.hpp"

namespace {

using namespace gentrius;

const char* sched_name(core::Scheduler s) {
  return s == core::Scheduler::kCentralQueue ? "central" : "distributed";
}

const char* policy_name(core::OfferPolicy p) {
  return p == core::OfferPolicy::kPaperFixed ? "fixed" : "adaptive";
}

struct Entry {
  std::string family;  // "skewed" | "corpus"
  datagen::Dataset dataset;
};

// Safety caps far above every instance in the battery (the flood family at
// the default depth holds ~3M states); no run below may trip a stopping
// rule, or counts would depend on scheduling and the identity check fails.
core::Options base_options(const datagen::Dataset& d) {
  core::Options o;
  o.stop.max_stand_trees = 20'000'000;
  o.stop.max_states = 100'000'000;
  if (d.forced_initial_constraint) {
    o.select_initial_tree = false;
    o.initial_constraint = *d.forced_initial_constraint;
  }
  if (!d.forced_insertion_order.empty()) {
    o.dynamic_taxon_order = false;
    o.insertion_order = d.forced_insertion_order;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t flood_depth = 12;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--flood-depth")
      flood_depth = std::strtoul(argv[i + 1], nullptr, 10);
  if (const char* e = std::getenv("GENTRIUS_FLOOD_DEPTH"))
    flood_depth = std::strtoul(e, nullptr, 10);

  std::vector<Entry> battery;
  for (std::uint64_t seed : {1, 2, 3, 4})
    battery.push_back(
        {"skewed", datagen::make_flood_instance(flood_depth, seed)});
  for (auto& d : benchutil::empirical_corpus(4, 202))
    battery.push_back({"corpus", std::move(d)});

  vthread::CostModel costs;
  costs.queue_reject_cost = costs.queue_cost;  // see file comment

  std::printf("Offer-policy ablation (virtual time, flood depth %zu)\n",
              flood_depth);
  bool counts_ok = true;
  for (const Entry& entry : battery) {
    const datagen::Dataset& ds = entry.dataset;
    core::Options base = base_options(ds);
    const auto problem = core::build_problem(ds.constraints, base);
    const auto serial = vthread::run_virtual(problem, base, 1, costs);
    if (serial.reason != core::StopReason::kCompleted) {
      std::printf("# skipping %s: serial run stopped early (%s)\n",
                  ds.name.c_str(), core::to_string(serial.reason));
      continue;
    }
    // The tiny corpus members (a handful of states) say nothing about
    // scheduling; keep the battery to instances with real parallel work.
    if (entry.family == "corpus" && serial.intermediate_states < 1'000)
      continue;
    std::printf(
        "OFFER serial instance=%s family=%s makespan=%.2f states=%llu "
        "trees=%llu dead_ends=%llu\n",
        ds.name.c_str(), entry.family.c_str(), serial.virtual_makespan,
        static_cast<unsigned long long>(serial.intermediate_states),
        static_cast<unsigned long long>(serial.stand_trees),
        static_cast<unsigned long long>(serial.dead_ends));
    std::printf("\n%-22s %-12s %4s %9s %9s %7s %7s %7s\n", ds.name.c_str(),
                "scheduler", "nt", "fixed", "adaptive", "ratio", "offers",
                "suppr");
    for (const core::Scheduler sched : {core::Scheduler::kCentralQueue,
                                        core::Scheduler::kDistributedDeques}) {
      for (const std::size_t nt : {2UL, 8UL, 16UL, 32UL, 48UL}) {
        core::Result by_policy[2];
        for (const core::OfferPolicy policy :
             {core::OfferPolicy::kPaperFixed,
              core::OfferPolicy::kAdaptiveGW}) {
          core::Options o = base;
          o.scheduler = sched;
          o.offer_policy = policy;
          const auto r = vthread::run_virtual(problem, o, nt, costs);
          by_policy[policy == core::OfferPolicy::kAdaptiveGW] = r;
          if (r.stand_trees != serial.stand_trees ||
              r.intermediate_states != serial.intermediate_states ||
              r.dead_ends != serial.dead_ends) {
            std::printf(
                "COUNT MISMATCH %s %s nt=%zu %s: trees %llu/%llu states "
                "%llu/%llu dead_ends %llu/%llu\n",
                ds.name.c_str(), sched_name(sched), nt, policy_name(policy),
                static_cast<unsigned long long>(r.stand_trees),
                static_cast<unsigned long long>(serial.stand_trees),
                static_cast<unsigned long long>(r.intermediate_states),
                static_cast<unsigned long long>(serial.intermediate_states),
                static_cast<unsigned long long>(r.dead_ends),
                static_cast<unsigned long long>(serial.dead_ends));
            counts_ok = false;
          }
          std::printf(
              "OFFER instance=%s family=%s scheduler=%s nt=%zu policy=%s "
              "makespan=%.2f speedup=%.4f tasks_offered=%llu "
              "rejections=%llu offers_evaluated=%llu offers_suppressed=%llu "
              "prediction_error=%.4f\n",
              ds.name.c_str(), entry.family.c_str(), sched_name(sched), nt,
              policy_name(policy), r.virtual_makespan,
              serial.virtual_makespan / r.virtual_makespan,
              static_cast<unsigned long long>(r.tasks_offered),
              static_cast<unsigned long long>(r.sched.queue_full_rejections),
              static_cast<unsigned long long>(r.sched.offers_evaluated),
              static_cast<unsigned long long>(r.sched.offers_suppressed),
              r.sched.offer_prediction_error());
        }
        std::printf("%-22s %-12s %4zu %9.0f %9.0f %7.3f %7llu %7llu\n", "",
                    sched_name(sched), nt, by_policy[0].virtual_makespan,
                    by_policy[1].virtual_makespan,
                    by_policy[0].virtual_makespan /
                        by_policy[1].virtual_makespan,
                    static_cast<unsigned long long>(by_policy[1].tasks_offered),
                    static_cast<unsigned long long>(
                        by_policy[1].sched.offers_suppressed));
      }
    }
    std::printf("\n");
  }
  if (!counts_ok) {
    std::printf("FAIL: offer policy changed enumeration counts\n");
    return 1;
  }
  std::printf("counts identical to serial across all runs\n");
  return 0;
}
