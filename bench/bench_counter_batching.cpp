// §III-B in-text experiment: batched global-counter updates.
//
// The paper replaces per-state atomic updates with thread-local batches
// (2^10 stand trees / 2^13 states / 2^10 dead ends) and measures an average
// 2-5 % parallel speedup improvement at 16 threads (e.g. +4 % on
// emp-data-3802). This harness compares flush-every-update against the
// batched defaults under the virtual cost model's contention term.
// Expected shape: a few percent improvement, growing with thread count.
#include <cstdio>

#include "benchutil/corpus.hpp"

int main(int argc, char** argv) {
  using namespace gentrius;
  const double scale = benchutil::parse_scale(argc, argv);

  core::Options batched;
  batched.stop.max_stand_trees = 400'000;
  batched.stop.max_states = 4'000'000;
  core::Options unbatched = batched;
  unbatched.tree_flush_batch = 1;
  unbatched.state_flush_batch = 1;
  unbatched.dead_end_flush_batch = 1;

  std::printf("Counter-batching ablation (paper §III-B: 2-5%% at 16 threads)\n");
  std::printf("%-22s %8s %14s %14s %10s\n", "dataset", "threads",
              "batched", "flush-always", "gain");

  const auto corpus = benchutil::simulated_corpus(
      static_cast<std::size_t>(30 * scale), /*seed0=*/131);
  std::size_t shown = 0;
  double gain_sum = 0;
  std::size_t gain_n = 0;
  for (const auto& ds : corpus) {
    if (shown >= 5) break;
    core::Problem problem;
    try {
      problem = core::build_problem(ds.constraints, batched);
    } catch (const support::Error&) {
      continue;
    }
    const auto probe = vthread::run_virtual(problem, batched, 16);
    if (probe.reason != core::StopReason::kCompleted ||
        probe.virtual_makespan < 20'000)
      continue;
    ++shown;
    for (const std::size_t t : {4u, 16u}) {
      const auto fast = vthread::run_virtual(problem, batched, t);
      const auto slow = vthread::run_virtual(problem, unbatched, t);
      const double gain =
          100.0 * (slow.virtual_makespan - fast.virtual_makespan) /
          slow.virtual_makespan;
      std::printf("%-22s %8zu %14.0f %14.0f %9.2f%%\n", ds.name.c_str(), t,
                  fast.virtual_makespan, slow.virtual_makespan, gain);
      if (t == 16) {
        gain_sum += gain;
        ++gain_n;
      }
    }
  }
  if (gain_n > 0)
    std::printf("\nmean improvement at 16 threads: %.2f%% (paper: 2-5%%)\n",
                gain_sum / static_cast<double>(gain_n));
  return 0;
}
