// Decomposition ablation: sharded enumeration vs the monolithic engine on a
// multi-component instance, under the virtual-time simulator.
//
// The product law makes decomposition a work-count optimization, not just a
// parallelism one: the monolithic engine enumerates all
// prod_i c_i * M stand trees one by one, while the sharded driver
// enumerates c_1 + ... + c_k component trees plus the M interleavings of
// the residual shard — the products are never materialized unless the
// caller asks for the stand itself. On the default instance (two blocks,
// component counts 3 x 3, M = 21879) that is 196,911 monolithic
// enumerations against ~21,885 sharded ones: an ~9x reduction in virtual
// makespan before any threads are added.
//
// The run is fully deterministic (virtual time), so the emitted "SHARD ..."
// lines are machine-parsable and stable across machines;
// tools/run_benchmarks.py --decompose turns them into BENCH_7.json and the
// CI gate requiring sharded throughput >= monolithic on a >= 2-component
// instance.
#include <cstdio>
#include <cstdlib>

#include "benchutil/corpus.hpp"
#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/problem.hpp"
#include "vthread/virtual_pool.hpp"

int main() {
  using namespace gentrius;

  // Seed 4 of the block-structured generator: two components (5 + 6 taxa)
  // with per-component counts 3 and 3, residual M = 21879, whole stand
  // 196,911 trees, completing without stopping rules. Component counts > 1
  // matter: with counts of 1 the residual does all the work and sharding
  // can only add dispatch overhead. GENTRIUS_DECOMPOSE_SEED overrides for
  // exploration; BENCH_7.json is generated from the default.
  benchutil::MultiComponentParams params;
  params.n_components = 2;
  params.min_taxa_per_component = 5;
  params.max_taxa_per_component = 6;
  params.loci_per_component = 3;
  params.missing_fraction = 0.35;
  params.seed = 4;
  if (const char* e = std::getenv("GENTRIUS_DECOMPOSE_SEED"))
    params.seed = std::strtoull(e, nullptr, 10);
  const auto dataset = benchutil::make_multi_component(params);

  core::Options options;
  options.stop.max_stand_trees = 2'000'000;
  options.stop.max_states = 30'000'000;

  const auto split = decompose::analyze_components(dataset.constraints);
  std::printf("instance %s\n", dataset.name.c_str());
  std::printf("SHARD instance=%s components=%zu enumerable=%zu\n",
              dataset.name.c_str(), split.components.size(),
              split.enumerable_count);

  const auto problem = core::build_problem(dataset.constraints, options);
  core::Options sharded_opts = options;
  sharded_opts.decompose = core::Decompose::kComponents;

  for (const std::size_t nt : {1UL, 2UL, 4UL, 8UL}) {
    const auto mono = vthread::run_virtual(problem, options, nt);
    const auto seq = decompose::run_virtual(
        dataset.constraints, sharded_opts, nt, {},
        decompose::ShardSchedule::kSequential);
    const auto conc = decompose::run_virtual(
        dataset.constraints, sharded_opts, nt, {},
        decompose::ShardSchedule::kConcurrent);
    std::printf(
        "SHARD nt=%zu mono_makespan=%.1f sharded_seq_makespan=%.1f "
        "sharded_conc_makespan=%.1f speedup_seq=%.3f speedup_conc=%.3f "
        "mono_trees=%llu sharded_trees=%llu reason=%s\n",
        nt, mono.virtual_makespan, seq.virtual_makespan,
        conc.virtual_makespan,
        mono.virtual_makespan / seq.virtual_makespan,
        mono.virtual_makespan / conc.virtual_makespan,
        static_cast<unsigned long long>(mono.stand_trees),
        static_cast<unsigned long long>(seq.stand_trees),
        core::to_string(mono.reason));
    if (nt == 1) {
      for (const auto& s : seq.shards)
        std::printf("SHARDDETAIL %s makespan=%.1f\n",
                    decompose::shard_trace_line(s).c_str(),
                    s.virtual_makespan);
    }
  }
  return 0;
}
