#!/usr/bin/env bash
# Checks (or fixes, with --fix) clang-format conformance for all C++ sources.
#
# Usage:
#   tools/format_check.sh          # dry run; exit 1 on any deviation
#   tools/format_check.sh --fix    # rewrite files in place
#
# Exits 0 with a notice when clang-format is not installed (developer
# machines without LLVM still build and test; CI installs clang-format and
# enforces the check).
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
mode="check"
if [[ "${1:-}" == "--fix" ]]; then
  mode="fix"
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--fix]" >&2
  exit 2
fi

clang_format=""
for candidate in clang-format clang-format-19 clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15 clang-format-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clang_format="$candidate"
    break
  fi
done
if [[ -z "$clang_format" ]]; then
  echo "format_check: clang-format not found; skipping (CI enforces this)" >&2
  exit 0
fi

mapfile -t files < <(find "$root/src" "$root/tests" "$root/bench" \
  "$root/examples" -name '*.hpp' -o -name '*.cpp' | sort)

if [[ "$mode" == "fix" ]]; then
  "$clang_format" -i --style=file "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
else
  if ! "$clang_format" --dry-run --Werror --style=file "${files[@]}"; then
    echo "format_check: run tools/format_check.sh --fix" >&2
    exit 1
  fi
  echo "format_check: OK (${#files[@]} files)"
fi
