#!/usr/bin/env python3
"""Benchmark regression harness: runs the engine micro-benchmarks and emits
a machine-readable BENCH_9.json so the perf trajectory is comparable across
PRs.

What it runs (from a Release build tree):
  * bench/bench_micro_engine   (google-benchmark, JSON output) — serial
    states/s on the default and multi-constraint corpus configurations,
    task-replay throughput, full-state-expansion latency.
  * bench/bench_mapping_update (plain text) — the share of runtime the
    incremental mapping scheme avoids vs full per-state recomputation.
  * bench/bench_work_stealing_ablation --schedulers (with --schedulers) —
    the central-queue vs distributed-deques sweep under the virtual-time
    simulator at N_t in {1,2,4,8,16,32,48,96}. Virtual time is
    deterministic, so these numbers are exact across machines and gate
    tightly.
  * bench/bench_decompose_sharding (with --decompose) — sharded (component
    decomposition, Options::decompose) vs monolithic enumeration of a
    multi-component instance under the virtual-time simulator at N_t in
    {1,2,4,8}. Also deterministic; the hard gate requires sharded
    throughput >= monolithic (speedup >= 1.0) at every N_t.
  * bench/bench_offer_policy (with --offer-policies) — the paper's fixed
    task-splitting rule vs the adaptive Galton-Watson granularity
    controller (Options::offer_policy), both schedulers, N_t in
    {2,8,16,32,48}, over the skewed hand-off-flood family (4 seeded
    replicate instances) and the nontrivial empirical corpus members.
    Deterministic; the hard gate requires every skewed seed's *median*
    adaptive advantage over the N_t >= 8 grid to be >= 1.15x and every
    instance to stay within 3% of the fixed policy at N_t <= 2.
  * bench/bench_incremental_edits (with --incremental) — an
    IncrementalSession (src/incremental) absorbing a structure-preserving
    PAM edit stream vs a from-scratch decompose::run_sharded at every step.
    Cost metric is states expanded (deterministic). The hard gate requires,
    on the >= 4-component counting family: median per-edit speedup >= 5x,
    at most 1 recomputed component per edit, an unsaturated (exact) count,
    and count equality with the baseline at every step; and, on the
    collecting family, sorted stand sets byte-equal at every step.

Wall-clock micro-benchmarks run with >= 4 repetitions by default and the
*median* across repetitions is the headline number. The PR 5 post-mortem
(docs/PERFORMANCE.md) showed why: a single repetition on a noisy one-core
host mis-measured BM_FullStateExpansion by ~10% and was chased as a code
regression. Each micro entry records the repetition count and the spread
(cv) so a noisy reading is visible in the report itself.

Output schema (BENCH_9.json):
  {
    "schema": "gentrius-bench-9",
    "baseline": {...},            # pinned pre-PR-4 reference numbers
    "micro_engine": {name: {"real_time_ns", "items_per_second",
                            "states_per_sec",      # medians over repetitions
                            "repetitions": int,
                            "cv_percent": float | null}},
    "mapping_update": {"mean_share_percent": float | null,
                       "repetitions": int},
    "scheduler_sweep": {"instance": str, "serial_makespan": float,
                        "central" | "distributed":
                            {nt: {"makespan", "speedup", ...}}} | null,
    "decompose_sharding": {"instance": str, "components": int,
                           nt: {"mono_makespan", "sharded_seq_makespan",
                                "sharded_conc_makespan", "speedup_seq",
                                "speedup_conc", "mono_trees",
                                "sharded_trees"}} | null,
    "incremental_edits": {"families": {name:
                          {"instance": str, "components": int,
                           "enumerable": int, "closed_form": bool,
                           "collect": bool, "init": {...},
                           "edits": [{"kind", "dirty", "inc_states",
                                      "scratch_states", "count_ok",
                                      "stands_ok", "speedup"}],
                           "median_speedup", "amortized_speedup",
                           "max_dirty", "equal": bool}}} | null,
    "offer_policy": {"instances": {name:
                         {"family": "skewed" | "corpus",
                          "serial_makespan", "serial_states", ...,
                          "central" | "distributed":
                              {nt: {"fixed": {...}, "adaptive": {...},
                                    "ratio": float}}}}} | null,
    "derived": {"multi_constraint_states_per_sec", "per_state_ns",
                "speedup_vs_baseline",
                "distributed_over_central_speedup_at_48",
                "max_scheduler_mismatch_percent_at_low_nt",
                "sharded_over_mono_speedup_at_1",
                "offer_policy_skewed_median_advantage",
                "offer_policy_skewed_min_advantage",
                "incremental_median_speedup",
                "incremental_amortized_speedup"}
  }

Typical use:
  python3 tools/run_benchmarks.py --build-dir build-bench --schedulers \
      --decompose --offer-policies --incremental
  python3 tools/run_benchmarks.py --min-time 0.1 --mapping-scale 0.2 \
      --schedulers --decompose --offer-policies --incremental \
      --check-against BENCH_9.json  # CI smoke

--check-against compares every micro-benchmark present in both reports
(medians vs medians: states/s and items/s must not fall below, latency-only
micros such as BM_FullStateExpansion must not rise above, baseline within
the --max-regression factor) plus, when both reports carry a scheduler
sweep, the distributed speedup at N_t = 48. Exits non-zero on any
regression (the CI gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys

# Serial states/s of the seed engine (commit 206d898, pre-PR 4) on the
# multi-constraint configuration (56 taxa, 12 loci, 55 % missing, seed
# 7014, max_states 300k), measured with the same probe protocol as
# BM_SerialStateThroughputMultiConstraint. The acceptance bar for PR 4 is
# >= 1.5x this number.
PRE_PR4_MULTI_CONSTRAINT_STATES_PER_SEC = 577_312.0

MULTI_BENCH = "BM_SerialStateThroughputMultiConstraint"


def run_micro_engine(build_dir: pathlib.Path, min_time: float | None,
                     repetitions: int) -> dict:
    exe = build_dir / "bench" / "bench_micro_engine"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} --target bench_micro_engine)")
    cmd = [str(exe), "--benchmark_format=json"]
    if min_time is not None:
        # Plain double: compatible with both old and new google-benchmark
        # (newer releases also accept a "0.5s" suffix form, old ones do not).
        cmd.append(f"--benchmark_min_time={min_time}")
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
        cmd.append("--benchmark_report_aggregates_only=true")
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    data = json.loads(proc.stdout)
    out: dict = {}
    # With repetitions google-benchmark emits one aggregate row per statistic
    # (mean/median/stddev/cv). The median is the headline value — robust to
    # the one-off scheduler hiccups that dominate single-core containers —
    # and the cv is recorded alongside so a noisy run is visible in the
    # report rather than silently trusted.
    for b in data.get("benchmarks", []):
        name = b.get("run_name", b["name"])
        agg = b.get("aggregate_name")
        if b.get("run_type") == "aggregate":
            if agg == "median":
                entry = out.setdefault(name, {})
                entry["real_time_ns"] = to_ns(b.get("real_time", 0.0),
                                              b.get("time_unit", "ns"))
                entry["items_per_second"] = b.get("items_per_second")
                if "states/s" in b:
                    entry["states_per_sec"] = b["states/s"]
                entry["repetitions"] = b.get("repetitions", repetitions)
            elif agg == "cv":
                # cv rows report the ratio in real_time (dimensionless).
                out.setdefault(name, {})["cv_percent"] = (
                    b.get("real_time", 0.0) * 100.0)
        elif repetitions <= 1:
            entry = {
                "real_time_ns": to_ns(b.get("real_time", 0.0),
                                      b.get("time_unit", "ns")),
                "items_per_second": b.get("items_per_second"),
                "repetitions": 1,
                "cv_percent": None,
            }
            if "states/s" in b:
                entry["states_per_sec"] = b["states/s"]
            out[name] = entry
    return out


def to_ns(value: float, unit: str) -> float:
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
    return value * scale


def run_mapping_update(build_dir: pathlib.Path, scale: float,
                       reps: int = 5) -> dict:
    exe = build_dir / "bench" / "bench_mapping_update"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} --target bench_mapping_update)")
    cmd = [str(exe), str(scale), str(reps)]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    m = re.search(r"mean share of runtime the incremental scheme avoids:\s*"
                  r"([0-9.]+)%", proc.stdout)
    reps = re.search(r"medians of (\d+) runs per regime", proc.stdout)
    return {
        "scale": scale,
        "mean_share_percent": float(m.group(1)) if m else None,
        "repetitions": int(reps.group(1)) if reps else 1,
    }


SCHED_LINE = re.compile(
    r"^SCHED scheduler=(\w+) nt=(\d+) makespan=([0-9.]+) speedup=([0-9.]+) "
    r"tasks_offered=(\d+) tasks_stolen=(\d+) steal_attempts=(\d+) "
    r"failed_probes=(\d+) rejections=(\d+) max_depth=(\d+)"
    r"(?: offers_evaluated=(\d+) offers_suppressed=(\d+))?")
SCHED_SERIAL = re.compile(
    r"^SCHED serial makespan=([0-9.]+) states=(\d+) trees=(\d+) "
    r"reason=(\S+)")
SCHED_INSTANCE = re.compile(r"^instance (\S.*)$", re.MULTILINE)


def run_scheduler_sweep(build_dir: pathlib.Path) -> dict:
    exe = build_dir / "bench" / "bench_work_stealing_ablation"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} "
                 f"--target bench_work_stealing_ablation)")
    cmd = [str(exe), "--schedulers"]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    sweep: dict = {"central": {}, "distributed": {}}
    im = SCHED_INSTANCE.search(proc.stdout)
    if im:
        sweep["instance"] = im.group(1)
    for line in proc.stdout.splitlines():
        sm = SCHED_SERIAL.match(line)
        if sm:
            sweep["serial_makespan"] = float(sm.group(1))
            sweep["serial_states"] = int(sm.group(2))
            sweep["serial_trees"] = int(sm.group(3))
            sweep["serial_reason"] = sm.group(4)
            continue
        m = SCHED_LINE.match(line)
        if not m:
            continue
        sweep[m.group(1)][m.group(2)] = {
            "makespan": float(m.group(3)),
            "speedup": float(m.group(4)),
            "tasks_offered": int(m.group(5)),
            "tasks_stolen": int(m.group(6)),
            "steal_attempts": int(m.group(7)),
            "failed_probes": int(m.group(8)),
            "rejections": int(m.group(9)),
            "max_depth": int(m.group(10)),
            # Offer-policy counters (absent in pre-BENCH-8 output).
            "offers_evaluated": int(m.group(11) or 0),
            "offers_suppressed": int(m.group(12) or 0),
        }
    if not sweep["central"] or not sweep["distributed"]:
        sys.exit("error: no SCHED lines parsed from "
                 "bench_work_stealing_ablation --schedulers")
    return sweep


SHARD_HEADER = re.compile(
    r"^SHARD instance=(\S+) components=(\d+) enumerable=(\d+)")
SHARD_LINE = re.compile(
    r"^SHARD nt=(\d+) mono_makespan=([0-9.]+) "
    r"sharded_seq_makespan=([0-9.]+) sharded_conc_makespan=([0-9.]+) "
    r"speedup_seq=([0-9.]+) speedup_conc=([0-9.]+) "
    r"mono_trees=(\d+) sharded_trees=(\d+) reason=(\S+)")


def run_decompose_sweep(build_dir: pathlib.Path) -> dict:
    exe = build_dir / "bench" / "bench_decompose_sharding"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} "
                 f"--target bench_decompose_sharding)")
    cmd = [str(exe)]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    sweep: dict = {"by_nt": {}}
    for line in proc.stdout.splitlines():
        hm = SHARD_HEADER.match(line)
        if hm:
            sweep["instance"] = hm.group(1)
            sweep["components"] = int(hm.group(2))
            sweep["enumerable"] = int(hm.group(3))
            continue
        m = SHARD_LINE.match(line)
        if not m:
            continue
        sweep["by_nt"][m.group(1)] = {
            "mono_makespan": float(m.group(2)),
            "sharded_seq_makespan": float(m.group(3)),
            "sharded_conc_makespan": float(m.group(4)),
            "speedup_seq": float(m.group(5)),
            "speedup_conc": float(m.group(6)),
            "mono_trees": int(m.group(7)),
            "sharded_trees": int(m.group(8)),
            "reason": m.group(9),
        }
    if not sweep["by_nt"]:
        sys.exit("error: no SHARD lines parsed from bench_decompose_sharding")
    return sweep


def gate_decompose(sweep: dict) -> bool:
    """Hard gate (virtual time is deterministic, so this is exact): the
    instance must actually decompose (>= 2 components), the sharded and
    monolithic runs must find the same stand, and sharded throughput must
    be >= monolithic (speedup >= 1.0) at every N_t."""
    ok = True
    if sweep.get("components", 0) < 2:
        print(f"decompose gate: instance has {sweep.get('components')} "
              "component(s), need >= 2: FAIL")
        ok = False
    for nt, e in sorted(sweep["by_nt"].items(), key=lambda kv: int(kv[0])):
        agree = e["mono_trees"] == e["sharded_trees"]
        fast = e["speedup_seq"] >= 1.0
        print(f"decompose gate: nt={nt} sharded/mono speedup "
              f"{e['speedup_seq']:.3f}x trees "
              f"{e['sharded_trees']}/{e['mono_trees']}: "
              f"{'OK' if agree and fast else 'FAIL'}")
        ok &= agree and fast
    return ok


def print_decompose_table(sweep: dict) -> None:
    print(f"decompose sharding ({sweep.get('instance', '?')}, "
          f"{sweep.get('components', '?')} components):")
    print(f"  {'nt':>4} {'mono':>12} {'sharded':>12} {'speedup':>9}")
    for nt, e in sorted(sweep["by_nt"].items(), key=lambda kv: int(kv[0])):
        print(f"  {nt:>4} {e['mono_makespan']:12.1f} "
              f"{e['sharded_seq_makespan']:12.1f} "
              f"{e['speedup_seq']:8.2f}x")


OFFER_SERIAL = re.compile(
    r"^OFFER serial instance=(\S+) family=(\w+) makespan=([0-9.]+) "
    r"states=(\d+) trees=(\d+) dead_ends=(\d+)")
OFFER_LINE = re.compile(
    r"^OFFER instance=(\S+) family=(\w+) scheduler=(\w+) nt=(\d+) "
    r"policy=(\w+) makespan=([0-9.]+) speedup=([0-9.]+) tasks_offered=(\d+) "
    r"rejections=(\d+) offers_evaluated=(\d+) offers_suppressed=(\d+) "
    r"prediction_error=([0-9.]+)")

# The adaptive-policy acceptance bars. Multi-threaded advantage is judged on
# the *median* ratio across the N_t >= 8 grid per instance — the virtual-time
# simulator is deterministic, so replication comes from the >= 4 skewed
# instance seeds rather than from repeated identical runs.
OFFER_MULTI_NTS = (8, 16, 32, 48)
OFFER_SKEWED_MIN_ADVANTAGE = 1.15  # median over OFFER_MULTI_NTS, per seed
OFFER_LOW_NT_TOLERANCE = 0.03      # |ratio - 1| at N_t <= 2, every instance


def run_offer_policy_sweep(build_dir: pathlib.Path) -> dict:
    exe = build_dir / "bench" / "bench_offer_policy"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} --target bench_offer_policy)")
    cmd = [str(exe)]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit("error: bench_offer_policy failed (count identity "
                 f"violated?):\n{proc.stdout[-2000:]}")
    sweep: dict = {"instances": {}}
    for line in proc.stdout.splitlines():
        sm = OFFER_SERIAL.match(line)
        if sm:
            sweep["instances"][sm.group(1)] = {
                "family": sm.group(2),
                "serial_makespan": float(sm.group(3)),
                "serial_states": int(sm.group(4)),
                "serial_trees": int(sm.group(5)),
                "serial_dead_ends": int(sm.group(6)),
                "central": {},
                "distributed": {},
            }
            continue
        m = OFFER_LINE.match(line)
        if not m:
            continue
        inst = sweep["instances"].get(m.group(1))
        if inst is None:
            continue
        entry = inst[m.group(3)].setdefault(m.group(4), {})
        entry[m.group(5)] = {
            "makespan": float(m.group(6)),
            "speedup": float(m.group(7)),
            "tasks_offered": int(m.group(8)),
            "rejections": int(m.group(9)),
            "offers_evaluated": int(m.group(10)),
            "offers_suppressed": int(m.group(11)),
            "prediction_error": float(m.group(12)),
        }
        if "fixed" in entry and "adaptive" in entry:
            entry["ratio"] = (entry["fixed"]["makespan"] /
                              entry["adaptive"]["makespan"])
    if not sweep["instances"]:
        sys.exit("error: no OFFER lines parsed from bench_offer_policy")
    return sweep


def _median(values: list) -> float:
    vs = sorted(values)
    n = len(vs)
    return vs[n // 2] if n % 2 else (vs[n // 2 - 1] + vs[n // 2]) / 2.0


def offer_policy_derived(sweep: dict) -> dict:
    """Per-instance median adaptive/fixed advantage over the N_t >= 8 grid
    (central queue — the scheduler whose single mutex the policy protects)
    plus the battery-level skewed median that --check-against gates."""
    per_instance: dict = {}
    for name, inst in sweep["instances"].items():
        ratios = [inst["central"][str(nt)]["ratio"]
                  for nt in OFFER_MULTI_NTS
                  if str(nt) in inst["central"] and
                  "ratio" in inst["central"][str(nt)]]
        if ratios:
            per_instance[name] = {
                "family": inst["family"],
                "median_advantage": _median(ratios),
            }
    out = {"per_instance": per_instance}
    skewed = [e["median_advantage"] for e in per_instance.values()
              if e["family"] == "skewed"]
    if skewed:
        out["skewed_median_advantage"] = _median(skewed)
        out["skewed_min_advantage"] = min(skewed)
    return out


def gate_offer_policy(sweep: dict, derived: dict) -> bool:
    """Hard gate (deterministic virtual time, so exact):
      * every skewed instance's median adaptive advantage over the
        N_t >= 8 grid must be >= OFFER_SKEWED_MIN_ADVANTAGE;
      * at N_t <= 2 every instance under both schedulers must be within
        OFFER_LOW_NT_TOLERANCE of the fixed policy (the controller may not
        tax runs that have nothing to adapt to);
      * count identity across policies is enforced by the binary itself
        (it exits non-zero on any mismatch)."""
    ok = True
    for name, entry in sorted(derived["per_instance"].items()):
        if entry["family"] != "skewed":
            continue
        good = entry["median_advantage"] >= OFFER_SKEWED_MIN_ADVANTAGE
        print(f"offer gate: {name} median advantage "
              f"{entry['median_advantage']:.3f}x "
              f"(need >= {OFFER_SKEWED_MIN_ADVANTAGE}): "
              f"{'OK' if good else 'FAIL'}")
        ok &= good
    for name, inst in sorted(sweep["instances"].items()):
        for sched in ("central", "distributed"):
            for nt, entry in sorted(inst[sched].items(), key=lambda kv:
                                    int(kv[0])):
                if int(nt) > 2 or "ratio" not in entry:
                    continue
                good = abs(entry["ratio"] - 1.0) <= OFFER_LOW_NT_TOLERANCE
                if not good:
                    print(f"offer gate: {name} {sched} nt={nt} low-thread "
                          f"ratio {entry['ratio']:.3f} outside "
                          f"{OFFER_LOW_NT_TOLERANCE:.0%}: FAIL")
                ok &= good
    if ok:
        print("offer gate: all low-thread ratios within "
              f"{OFFER_LOW_NT_TOLERANCE:.0%}")
    return ok


def print_offer_policy_table(sweep: dict, derived: dict) -> None:
    print("offer-policy ablation (fixed/adaptive makespan, central queue):")
    nts = [str(nt) for nt in (2,) + OFFER_MULTI_NTS]
    print(f"  {'instance':<24} {'family':<7} " +
          " ".join(f"nt={nt:>2}" for nt in nts) + "   median(nt>=8)")
    for name, inst in sorted(sweep["instances"].items()):
        cells = []
        for nt in nts:
            e = inst["central"].get(nt, {})
            cells.append(f"{e['ratio']:5.2f}" if "ratio" in e else "    -")
        med = derived["per_instance"].get(name, {}).get("median_advantage")
        print(f"  {name:<24} {inst['family']:<7} " + " ".join(cells) +
              (f"   {med:8.2f}x" if med else ""))


def sweep_derived(sweep: dict) -> dict:
    """Per-N_t speedup comparison plus the two headline figures."""
    out: dict = {}
    central, dist = sweep["central"], sweep["distributed"]
    c48 = central.get("48", {}).get("speedup")
    d48 = dist.get("48", {}).get("speedup")
    if c48 and d48:
        out["distributed_over_central_speedup_at_48"] = d48 / c48
    mismatches = []
    for nt in ("1", "2", "4"):
        c = central.get(nt, {}).get("speedup")
        d = dist.get(nt, {}).get("speedup")
        if c and d:
            mismatches.append(abs(d - c) / c * 100.0)
    if mismatches:
        out["max_scheduler_mismatch_percent_at_low_nt"] = max(mismatches)
    return out


def print_sweep_table(sweep: dict) -> None:
    nts = sorted(set(sweep["central"]) | set(sweep["distributed"]), key=int)
    print(f"scheduler sweep ({sweep.get('instance', '?')}):")
    print(f"  {'nt':>4} {'central':>9} {'distributed':>12} {'ratio':>7}")
    for nt in nts:
        c = sweep["central"].get(nt, {}).get("speedup")
        d = sweep["distributed"].get(nt, {}).get("speedup")
        ratio = f"{d / c:7.3f}" if c and d else "      -"
        print(f"  {nt:>4} {c or float('nan'):9.2f} "
              f"{d or float('nan'):12.2f} {ratio}")



INC_HEADER = re.compile(
    r"^INC family=(\w+) instance=(\S+) components=(\d+) enumerable=(\d+) "
    r"edits=(\d+) closed_form=(\d) collect=(\d)")
INC_INIT = re.compile(
    r"^INCINIT family=(\w+) states=(\d+) trees=(\d+) saturated=(\d)")
INC_EDIT = re.compile(
    r"^INCEDIT family=(\w+) i=(\d+) kind=(\w+) dirty=(\d+) "
    r"inc_states=(\d+) scratch_states=(\d+) hits=(\d+) misses=(\d+) "
    r"count_ok=(\d) stands_ok=(\d) speedup=([0-9.]+)")
INC_SUM = re.compile(
    r"^INCSUM family=(\w+) edits=(\d+) median_speedup=([0-9.]+) "
    r"amortized_speedup=([0-9.]+) max_dirty=(\d+) equal=(\d) "
    r"lifetime_hits=(\d+) lifetime_misses=(\d+)")

# The incremental acceptance bars (states expanded are deterministic, so
# these are exact): the >= 4-component counting family must amortize each
# edit to >= 5x cheaper than from-scratch at the median, recompute at most
# one component per edit, and agree with the baseline exactly.
INCREMENTAL_MIN_COMPONENTS = 4
INCREMENTAL_MIN_MEDIAN_SPEEDUP = 5.0


def run_incremental_sweep(build_dir: pathlib.Path) -> dict:
    exe = build_dir / "bench" / "bench_incremental_edits"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} "
                 f"--target bench_incremental_edits)")
    cmd = [str(exe)]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    sweep: dict = {"families": {}}
    for line in proc.stdout.splitlines():
        hm = INC_HEADER.match(line)
        if hm:
            sweep["families"][hm.group(1)] = {
                "instance": hm.group(2),
                "components": int(hm.group(3)),
                "enumerable": int(hm.group(4)),
                "closed_form": hm.group(6) == "1",
                "collect": hm.group(7) == "1",
                "edits": [],
            }
            continue
        im = INC_INIT.match(line)
        if im:
            sweep["families"][im.group(1)]["init"] = {
                "states": int(im.group(2)),
                "trees": int(im.group(3)),
                "saturated": im.group(4) == "1",
            }
            continue
        em = INC_EDIT.match(line)
        if em:
            sweep["families"][em.group(1)]["edits"].append({
                "kind": em.group(3),
                "dirty": int(em.group(4)),
                "inc_states": int(em.group(5)),
                "scratch_states": int(em.group(6)),
                "hits": int(em.group(7)),
                "misses": int(em.group(8)),
                "count_ok": em.group(9) == "1",
                "stands_ok": em.group(10) == "1",
                "speedup": float(em.group(11)),
            })
            continue
        sm = INC_SUM.match(line)
        if sm:
            sweep["families"][sm.group(1)].update({
                "median_speedup": float(sm.group(3)),
                "amortized_speedup": float(sm.group(4)),
                "max_dirty": int(sm.group(5)),
                "equal": sm.group(6) == "1",
                "lifetime_hits": int(sm.group(7)),
                "lifetime_misses": int(sm.group(8)),
            })
    if not sweep["families"]:
        sys.exit("error: no INC lines parsed from bench_incremental_edits")
    return sweep


def gate_incremental(sweep: dict) -> bool:
    ok = True
    gate_family = None
    collect_family = None
    for name, fam in sorted(sweep["families"].items()):
        if not fam.get("collect") and \
                fam.get("components", 0) >= INCREMENTAL_MIN_COMPONENTS:
            gate_family = (name, fam)
        if fam.get("collect"):
            collect_family = (name, fam)
        equal = fam.get("equal", False)
        print(f"incremental gate: family={name} equal={equal}: "
              f"{'OK' if equal else 'FAIL'}")
        ok &= equal

    if gate_family is None:
        print(f"incremental gate: no counting family with >= "
              f"{INCREMENTAL_MIN_COMPONENTS} components: FAIL")
        ok = False
    else:
        name, fam = gate_family
        med = fam.get("median_speedup", 0.0)
        fast = med >= INCREMENTAL_MIN_MEDIAN_SPEEDUP
        print(f"incremental gate: family={name} "
              f"components={fam['components']} median speedup {med:.2f}x "
              f"(need >= {INCREMENTAL_MIN_MEDIAN_SPEEDUP:.0f}x): "
              f"{'OK' if fast else 'FAIL'}")
        ok &= fast
        local = fam.get("max_dirty", 99) <= 1
        print(f"incremental gate: family={name} max recomputed components "
              f"per edit {fam.get('max_dirty')}: "
              f"{'OK' if local else 'FAIL'}")
        ok &= local
        exact = not fam.get("init", {}).get("saturated", True)
        print(f"incremental gate: family={name} count exact "
              f"(unsaturated): {'OK' if exact else 'FAIL'}")
        ok &= exact

    if collect_family is None:
        print("incremental gate: no stand-collecting family: FAIL")
        ok = False
    return ok


def print_incremental_table(sweep: dict) -> None:
    for name, fam in sorted(sweep["families"].items()):
        print(f"incremental edits ({name}: {fam.get('instance', '?')}, "
              f"{fam.get('components', '?')} components, "
              f"{'stands' if fam.get('collect') else 'counts'}):")
        print(f"  {'edit':>4} {'kind':>10} {'dirty':>5} {'inc':>8} "
              f"{'scratch':>8} {'speedup':>9}")
        for i, e in enumerate(fam.get("edits", []), 1):
            print(f"  {i:>4} {e['kind']:>10} {e['dirty']:>5} "
                  f"{e['inc_states']:>8} {e['scratch_states']:>8} "
                  f"{e['speedup']:8.2f}x")
        print(f"  median {fam.get('median_speedup', 0):.2f}x amortized "
              f"{fam.get('amortized_speedup', 0):.2f}x "
              f"hits {fam.get('lifetime_hits')} "
              f"misses {fam.get('lifetime_misses')}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-bench", type=pathlib.Path,
                    help="Release build tree containing bench/ binaries")
    ap.add_argument("--output", default="BENCH_9.json", type=pathlib.Path)
    ap.add_argument("--min-time", type=float, default=None,
                    help="google-benchmark per-benchmark min time, seconds "
                         "(default: library default; use 0.1 for CI smoke)")
    ap.add_argument("--repetitions", type=int, default=4,
                    help="repetitions per micro-benchmark; the median is "
                         "reported (default 4 — single-rep wall-clock "
                         "numbers proved untrustworthy, see the PR 5 "
                         "post-mortem in docs/PERFORMANCE.md)")
    ap.add_argument("--mapping-scale", type=float, default=1.0,
                    help="corpus scale for bench_mapping_update "
                         "(0.2 keeps the CI smoke run short)")
    ap.add_argument("--mapping-reps", type=int, default=5,
                    help="interleaved runs per regime in "
                         "bench_mapping_update; the share is computed "
                         "from medians (default 5)")
    ap.add_argument("--skip-mapping-update", action="store_true",
                    help="only run bench_micro_engine")
    ap.add_argument("--schedulers", action="store_true",
                    help="also run the central vs distributed scheduler "
                         "sweep (bench_work_stealing_ablation --schedulers)")
    ap.add_argument("--decompose", action="store_true",
                    help="also run the sharded-vs-monolithic decomposition "
                         "sweep (bench_decompose_sharding); hard-gates "
                         "sharded throughput >= monolithic")
    ap.add_argument("--offer-policies", action="store_true",
                    help="also run the fixed-vs-adaptive offer-policy sweep "
                         "(bench_offer_policy); hard-gates the skewed-"
                         "family median advantage at N_t >= 8 and the "
                         "low-thread parity of the adaptive controller")
    ap.add_argument("--incremental", action="store_true",
                    help="also run the incremental re-enumeration sweep "
                         "(bench_incremental_edits); hard-gates >= 5x "
                         "median per-edit speedup on the >= 4-component "
                         "family and exact agreement with from-scratch at "
                         "every edit step")
    ap.add_argument("--check-against", type=pathlib.Path, default=None,
                    help="baseline BENCH_N.json; exit non-zero when any "
                         "micro-benchmark present in both reports (or the "
                         "distributed speedup at N_t=48, when both reports "
                         "have a sweep) regressed by more than "
                         "--max-regression")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="regression factor that fails --check-against "
                         "(default 2.0 = fail when less than half as fast)")
    args = ap.parse_args()

    report = {
        "schema": "gentrius-bench-9",
        "generated_by": "tools/run_benchmarks.py",
        "build_dir": str(args.build_dir),
        "baseline": {
            "multi_constraint_states_per_sec":
                PRE_PR4_MULTI_CONSTRAINT_STATES_PER_SEC,
            "description":
                "seed engine (pre-PR 4) serial throughput on the "
                "56-taxon/12-locus/0.55-missing configuration, seed 7014",
        },
        "micro_engine": run_micro_engine(args.build_dir, args.min_time,
                                         args.repetitions),
        "mapping_update": (None if args.skip_mapping_update else
                           run_mapping_update(args.build_dir,
                                              args.mapping_scale,
                                              args.mapping_reps)),
        "scheduler_sweep": (run_scheduler_sweep(args.build_dir)
                            if args.schedulers else None),
        "decompose_sharding": (run_decompose_sweep(args.build_dir)
                               if args.decompose else None),
        "offer_policy": (run_offer_policy_sweep(args.build_dir)
                         if args.offer_policies else None),
        "incremental_edits": (run_incremental_sweep(args.build_dir)
                              if args.incremental else None),
    }

    derived = {}
    multi = report["micro_engine"].get(MULTI_BENCH, {})
    sps = multi.get("states_per_sec")
    if sps:
        derived["multi_constraint_states_per_sec"] = sps
        derived["per_state_ns"] = 1e9 / sps
        derived["speedup_vs_baseline"] = (
            sps / PRE_PR4_MULTI_CONSTRAINT_STATES_PER_SEC)
    if report["scheduler_sweep"]:
        derived.update(sweep_derived(report["scheduler_sweep"]))
    if report["decompose_sharding"]:
        s1 = report["decompose_sharding"]["by_nt"].get("1", {})
        if "speedup_seq" in s1:
            derived["sharded_over_mono_speedup_at_1"] = s1["speedup_seq"]
    offer_derived = None
    if report["offer_policy"]:
        offer_derived = offer_policy_derived(report["offer_policy"])
        if "skewed_median_advantage" in offer_derived:
            derived["offer_policy_skewed_median_advantage"] = (
                offer_derived["skewed_median_advantage"])
            derived["offer_policy_skewed_min_advantage"] = (
                offer_derived["skewed_min_advantage"])
    if report["incremental_edits"]:
        for fam in report["incremental_edits"]["families"].values():
            if not fam.get("collect") and \
                    fam.get("components", 0) >= INCREMENTAL_MIN_COMPONENTS:
                derived["incremental_median_speedup"] = fam.get(
                    "median_speedup")
                derived["incremental_amortized_speedup"] = fam.get(
                    "amortized_speedup")
    report["derived"] = derived

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if sps:
        print(f"multi-constraint: {sps:,.0f} states/s "
              f"({derived['per_state_ns']:.1f} ns/state, "
              f"{derived['speedup_vs_baseline']:.2f}x vs pre-PR baseline)")
    if report["scheduler_sweep"]:
        print_sweep_table(report["scheduler_sweep"])
        ratio = derived.get("distributed_over_central_speedup_at_48")
        if ratio:
            print(f"distributed/central speedup at nt=48: {ratio:.3f}x")
    if report["decompose_sharding"]:
        print_decompose_table(report["decompose_sharding"])
        if not gate_decompose(report["decompose_sharding"]):
            return 1
    if report["offer_policy"]:
        print_offer_policy_table(report["offer_policy"], offer_derived)
        if not gate_offer_policy(report["offer_policy"], offer_derived):
            return 1
    if report["incremental_edits"]:
        print_incremental_table(report["incremental_edits"])
        if not gate_incremental(report["incremental_edits"]):
            return 1

    if args.check_against is not None:
        base = json.loads(args.check_against.read_text())
        base_sps = (base.get("derived") or {}).get(
            "multi_constraint_states_per_sec")
        if not base_sps:
            sys.exit(f"error: {args.check_against} has no "
                     "derived.multi_constraint_states_per_sec")
        if not sps:
            sys.exit(f"error: fresh run has no {MULTI_BENCH} result")
        failed = False
        # Per-micro diff: every benchmark present in both reports gates.
        # Throughput micros (states/s, items/s) must not fall below the
        # floor; latency-only micros — BM_FullStateExpansion is the one
        # that slipped through the old single-number check — must not rise
        # above the ceiling.
        base_micro = base.get("micro_engine") or {}
        for name in sorted(set(report["micro_engine"]) & set(base_micro)):
            fresh_e, base_e = report["micro_engine"][name], base_micro[name]
            fresh_v = fresh_e.get("states_per_sec") or fresh_e.get(
                "items_per_second")
            base_v = base_e.get("states_per_sec") or base_e.get(
                "items_per_second")
            if fresh_v and base_v:
                floor = base_v / args.max_regression
                ok = fresh_v >= floor
                print(f"micro check: {name} {fresh_v:,.0f}/s vs baseline "
                      f"{base_v:,.0f}/s (floor {floor:,.0f}): "
                      f"{'OK' if ok else 'REGRESSION'}")
            else:
                fresh_v = fresh_e.get("real_time_ns")
                base_v = base_e.get("real_time_ns")
                if not (fresh_v and base_v):
                    continue
                ceiling = base_v * args.max_regression
                ok = fresh_v <= ceiling
                print(f"micro check: {name} {fresh_v:,.0f}ns vs baseline "
                      f"{base_v:,.0f}ns (ceiling {ceiling:,.0f}ns): "
                      f"{'OK' if ok else 'REGRESSION'}")
            failed |= not ok
        if failed:
            return 1
        base_sweep = base.get("scheduler_sweep")
        if report["scheduler_sweep"] and base_sweep:
            base_d48 = (base_sweep.get("distributed", {})
                        .get("48", {}).get("speedup"))
            d48 = (report["scheduler_sweep"]["distributed"]
                   .get("48", {}).get("speedup"))
            if base_d48 and d48:
                floor = base_d48 / args.max_regression
                verdict = "OK" if d48 >= floor else "REGRESSION"
                print(f"scheduler check: distributed@48 {d48:.2f}x vs "
                      f"baseline {base_d48:.2f}x (floor {floor:.2f}x): "
                      f"{verdict}")
                if d48 < floor:
                    return 1
        base_dec = base.get("decompose_sharding")
        if report["decompose_sharding"] and base_dec:
            base_s1 = base_dec.get("by_nt", {}).get("1", {}).get(
                "speedup_seq")
            s1 = derived.get("sharded_over_mono_speedup_at_1")
            if base_s1 and s1:
                floor = base_s1 / args.max_regression
                verdict = "OK" if s1 >= floor else "REGRESSION"
                print(f"decompose check: sharded@1 {s1:.2f}x vs baseline "
                      f"{base_s1:.2f}x (floor {floor:.2f}x): {verdict}")
                if s1 < floor:
                    return 1
        base_offer = (base.get("derived") or {}).get(
            "offer_policy_skewed_median_advantage")
        fresh_offer = derived.get("offer_policy_skewed_median_advantage")
        if base_offer and fresh_offer:
            # Virtual time is exact, so the deterministic sweep gates with
            # a tight tolerance rather than the wall-clock factor.
            floor = base_offer * 0.98
            verdict = "OK" if fresh_offer >= floor else "REGRESSION"
            print(f"offer check: skewed median advantage {fresh_offer:.3f}x "
                  f"vs baseline {base_offer:.3f}x (floor {floor:.3f}x): "
                  f"{verdict}")
            if fresh_offer < floor:
                return 1
        base_inc = (base.get("derived") or {}).get(
            "incremental_median_speedup")
        fresh_inc = derived.get("incremental_median_speedup")
        if base_inc and fresh_inc:
            # States expanded are deterministic: tight tolerance, as above.
            floor = base_inc * 0.98
            verdict = "OK" if fresh_inc >= floor else "REGRESSION"
            print(f"incremental check: median speedup {fresh_inc:.2f}x vs "
                  f"baseline {base_inc:.2f}x (floor {floor:.2f}x): "
                  f"{verdict}")
            if fresh_inc < floor:
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
