#!/usr/bin/env python3
"""Benchmark regression harness: runs the engine micro-benchmarks and emits
a machine-readable BENCH_4.json so the perf trajectory is comparable across
PRs.

What it runs (from a Release build tree):
  * bench/bench_micro_engine   (google-benchmark, JSON output) — serial
    states/s on the default and multi-constraint corpus configurations,
    task-replay throughput, full-state-expansion latency.
  * bench/bench_mapping_update (plain text) — the share of runtime the
    incremental mapping scheme avoids vs full per-state recomputation.

Output schema (BENCH_4.json):
  {
    "schema": "gentrius-bench-4",
    "baseline": {...},            # pinned pre-PR-4 reference numbers
    "micro_engine": {name: {"real_time_ns", "items_per_second",
                            "states_per_sec"}},
    "mapping_update": {"mean_share_percent": float | null},
    "derived": {"multi_constraint_states_per_sec", "per_state_ns",
                "speedup_vs_baseline"}
  }

Typical use:
  python3 tools/run_benchmarks.py --build-dir build-bench
  python3 tools/run_benchmarks.py --min-time 0.1 --mapping-scale 0.2 \
      --check-against bench/BENCH_4.baseline.json   # CI smoke mode

--check-against compares the fresh multi-constraint states/s against the
checked-in baseline and exits non-zero on a >2x regression (the CI gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys

# Serial states/s of the seed engine (commit 206d898, pre-PR 4) on the
# multi-constraint configuration (56 taxa, 12 loci, 55 % missing, seed
# 7014, max_states 300k), measured with the same probe protocol as
# BM_SerialStateThroughputMultiConstraint. The acceptance bar for PR 4 is
# >= 1.5x this number.
PRE_PR4_MULTI_CONSTRAINT_STATES_PER_SEC = 577_312.0

MULTI_BENCH = "BM_SerialStateThroughputMultiConstraint"


def run_micro_engine(build_dir: pathlib.Path, min_time: float | None,
                     repetitions: int) -> dict:
    exe = build_dir / "bench" / "bench_micro_engine"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} --target bench_micro_engine)")
    cmd = [str(exe), "--benchmark_format=json"]
    if min_time is not None:
        # Plain double: compatible with both old and new google-benchmark
        # (newer releases also accept a "0.5s" suffix form, old ones do not).
        cmd.append(f"--benchmark_min_time={min_time}")
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
        cmd.append("--benchmark_report_aggregates_only=true")
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    data = json.loads(proc.stdout)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        name = b.get("run_name", b["name"])
        entry = {
            "real_time_ns": to_ns(b.get("real_time", 0.0), b.get("time_unit", "ns")),
            "items_per_second": b.get("items_per_second"),
        }
        if "states/s" in b:
            entry["states_per_sec"] = b["states/s"]
        out[name] = entry
    return out


def to_ns(value: float, unit: str) -> float:
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
    return value * scale


def run_mapping_update(build_dir: pathlib.Path, scale: float) -> dict:
    exe = build_dir / "bench" / "bench_mapping_update"
    if not exe.exists():
        sys.exit(f"error: {exe} not found - build the bench targets first "
                 f"(cmake --build {build_dir} --target bench_mapping_update)")
    cmd = [str(exe), str(scale)]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    m = re.search(r"mean share of runtime the incremental scheme avoids:\s*"
                  r"([0-9.]+)%", proc.stdout)
    return {
        "scale": scale,
        "mean_share_percent": float(m.group(1)) if m else None,
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-bench", type=pathlib.Path,
                    help="Release build tree containing bench/ binaries")
    ap.add_argument("--output", default="BENCH_4.json", type=pathlib.Path)
    ap.add_argument("--min-time", type=float, default=None,
                    help="google-benchmark per-benchmark min time, seconds "
                         "(default: library default; use 0.1 for CI smoke)")
    ap.add_argument("--repetitions", type=int, default=1)
    ap.add_argument("--mapping-scale", type=float, default=1.0,
                    help="corpus scale for bench_mapping_update "
                         "(0.2 keeps the CI smoke run short)")
    ap.add_argument("--skip-mapping-update", action="store_true",
                    help="only run bench_micro_engine")
    ap.add_argument("--check-against", type=pathlib.Path, default=None,
                    help="baseline BENCH_4.json; exit non-zero when the "
                         "multi-constraint states/s regressed by more than "
                         "--max-regression vs it")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="regression factor that fails --check-against "
                         "(default 2.0 = fail when less than half as fast)")
    args = ap.parse_args()

    report = {
        "schema": "gentrius-bench-4",
        "generated_by": "tools/run_benchmarks.py",
        "build_dir": str(args.build_dir),
        "baseline": {
            "multi_constraint_states_per_sec":
                PRE_PR4_MULTI_CONSTRAINT_STATES_PER_SEC,
            "description":
                "seed engine (pre-PR 4) serial throughput on the "
                "56-taxon/12-locus/0.55-missing configuration, seed 7014",
        },
        "micro_engine": run_micro_engine(args.build_dir, args.min_time,
                                         args.repetitions),
        "mapping_update": (None if args.skip_mapping_update else
                           run_mapping_update(args.build_dir,
                                              args.mapping_scale)),
    }

    derived = {}
    multi = report["micro_engine"].get(MULTI_BENCH, {})
    sps = multi.get("states_per_sec")
    if sps:
        derived["multi_constraint_states_per_sec"] = sps
        derived["per_state_ns"] = 1e9 / sps
        derived["speedup_vs_baseline"] = (
            sps / PRE_PR4_MULTI_CONSTRAINT_STATES_PER_SEC)
    report["derived"] = derived

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if sps:
        print(f"multi-constraint: {sps:,.0f} states/s "
              f"({derived['per_state_ns']:.1f} ns/state, "
              f"{derived['speedup_vs_baseline']:.2f}x vs pre-PR baseline)")

    if args.check_against is not None:
        base = json.loads(args.check_against.read_text())
        base_sps = (base.get("derived") or {}).get(
            "multi_constraint_states_per_sec")
        if not base_sps:
            sys.exit(f"error: {args.check_against} has no "
                     "derived.multi_constraint_states_per_sec")
        if not sps:
            sys.exit(f"error: fresh run has no {MULTI_BENCH} result")
        floor = base_sps / args.max_regression
        verdict = "OK" if sps >= floor else "REGRESSION"
        print(f"regression check: {sps:,.0f} vs baseline {base_sps:,.0f} "
              f"(floor {floor:,.0f}): {verdict}")
        if sps < floor:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
