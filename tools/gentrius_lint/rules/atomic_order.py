"""Atomic-ordering audit.

Two analyses over ``src/``:

``atomic-order`` — every *explicit non-seq_cst* ``std::memory_order_*``
argument must carry an adjacent ``// order:`` justification: on the same
line, or in the comment block attached directly above the statement (the
walk upward passes through continuation lines of a multi-line statement
and stops at the previous statement boundary or a blank line). seq_cst is
the safe default and needs no justification; anything weaker is a claim
about the program's happens-before structure and must say why it holds.

``atomic-hb`` — a declared happens-before table is checked against the
code. A source file may declare, in comments,

    // hb-table: StealDeque
    //   owner_push: bottom_.load relaxed ; top_.load acquire ;
    //     ring_.store relaxed ; bottom_.store release
    //   steal: top_.load acquire ; fence seq_cst ; ...
    // hb-end

Rows name a function and its exact sequence of atomic operations on the
*covered* variables (the union of variables the table mentions), plus all
fences, in source order; ``cas`` stands for compare_exchange_strong/weak
and lists success,failure orders. The rule re-extracts each declared
function's sequence from the code and fails on any drift — a changed
order, a reordered op, an added or dropped access — and on any function in
the file that touches a covered variable without being declared. The
table is therefore a *checked* protocol spec: edits to the Chase-Lev
deque's top/bottom/buffer choreography cannot land without updating the
declared happens-before reasoning next to it.
"""

from __future__ import annotations

import pathlib
import re

from gentrius_lint import core

_WEAK_ORDER_RE = re.compile(
    r"\bmemory_order_(relaxed|acquire|release|acq_rel|consume)\b")
_ORDER_COMMENT_RE = re.compile(r"(?://|/\*|\*).*\border:")
_STMT_BOUNDARY_RE = re.compile(r"[;{}:]\s*$")

_TABLE_START_RE = re.compile(r"//\s*hb-table:\s*(\w+)")
_TABLE_END_RE = re.compile(r"//\s*hb-end")
_ROW_START_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*:\s*(.*)$")

_OP_SPEC_RE = re.compile(
    r"^(?:(fence)|(\w+)\.(\w+))\s+([a-z_]+(?:\s*,\s*[a-z_]+)*)$")


def _has_order_justification(sf: core.SourceFile, lineno: int) -> bool:
    """Same-line ``order:`` comment, or one in the attached comment block
    above the statement containing ``lineno``."""
    if _ORDER_COMMENT_RE.search(sf.raw_lines[lineno - 1]):
        return True
    i = lineno - 1
    steps = 0
    while i >= 1 and steps < 16:
        steps += 1
        raw = sf.raw_lines[i - 1]
        code = sf.code_lines[i - 1]
        if code.strip() == "":
            if raw.strip() == "":
                return False  # blank line: comment above is detached
            if "order:" in raw:
                return True
            i -= 1  # comment line: keep climbing the block
            continue
        if _STMT_BOUNDARY_RE.search(code.rstrip()):
            return False  # previous statement ends here
        i -= 1  # continuation line of the same statement
    return False


def _check_order_comments(sf: core.SourceFile) -> list[core.Finding]:
    findings: list[core.Finding] = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        if not _WEAK_ORDER_RE.search(code):
            continue
        if sf.allowed(lineno, "atomic-order"):
            continue
        if _has_order_justification(sf, lineno):
            continue
        findings.append(
            core.Finding(
                sf.path, lineno, "atomic-order",
                "non-seq_cst memory order without an adjacent '// order:' "
                "justification (state the happens-before edge that makes "
                "the weaker order sound)",
                sf.raw_lines[lineno - 1].strip()))
    return findings


# --- happens-before tables ---------------------------------------------------

class _Table:
    def __init__(self, name: str, line: int):
        self.name = name
        self.line = line
        # function -> (declaration line, [(var, op, orders...)])
        self.rows: dict[str, tuple[int, list[tuple[str, str, tuple[str, ...]]]]] = {}


def _parse_tables(sf: core.SourceFile) -> tuple[list[_Table], list[core.Finding]]:
    tables: list[_Table] = []
    findings: list[core.Finding] = []
    current: _Table | None = None
    row_fn: str | None = None
    pending: str = ""

    def flush_row() -> None:
        nonlocal pending, row_fn
        if current is None or row_fn is None:
            return
        line = current.rows[row_fn][0]
        ops = current.rows[row_fn][1]
        for spec in pending.split(";"):
            spec = spec.strip()
            if not spec:
                continue
            m = _OP_SPEC_RE.match(spec)
            if not m:
                findings.append(
                    core.Finding(sf.path, line, "atomic-hb",
                                 f"unparseable hb-table op spec '{spec}' "
                                 "(want 'var.op order[,order]' or "
                                 "'fence order')", spec))
                continue
            if m.group(1):
                var, op = "fence", "fence"
            else:
                var, op = m.group(2), m.group(3)
            orders = tuple(o.strip().removeprefix("std::memory_order_")
                           for o in m.group(4).split(","))
            ops.append((var, op, orders))
        pending = ""

    for lineno, raw in enumerate(sf.raw_lines, start=1):
        start = _TABLE_START_RE.search(raw)
        if start:
            current = _Table(start.group(1), lineno)
            tables.append(current)
            row_fn = None
            continue
        if current is None:
            continue
        if _TABLE_END_RE.search(raw):
            flush_row()
            current = None
            row_fn = None
            continue
        body = raw.strip()
        if not body.startswith("//"):
            findings.append(
                core.Finding(sf.path, lineno, "atomic-hb",
                             "hb-table interrupted by non-comment line "
                             "before hb-end", body))
            current = None
            continue
        body = body[2:]
        row = _ROW_START_RE.match(body)
        if row:
            flush_row()
            row_fn = row.group(1)
            current.rows[row_fn] = (lineno, [])
            pending = row.group(2)
        elif row_fn is not None:
            pending += " " + body.strip()
    return tables, findings


def _check_tables(sf: core.SourceFile) -> list[core.Finding]:
    tables, findings = _parse_tables(sf)
    if not tables:
        return findings
    flat = core.FlatText(sf.code_lines)
    functions = core.extract_functions(flat)
    by_name: dict[str, list[core.FunctionDef]] = {}
    for f in functions:
        by_name.setdefault(f.name, []).append(f)

    for table in tables:
        covered = {var for _line, ops in table.rows.values()
                   for var, _op, _orders in ops if var != "fence"}

        def relevant(ops: list[core.AtomicOp]) -> list[core.AtomicOp]:
            return [op for op in ops if op.var in covered or op.op == "fence"]

        for fn_name, (decl_line, declared) in table.rows.items():
            defs = by_name.get(fn_name)
            if not defs:
                findings.append(
                    core.Finding(sf.path, decl_line, "atomic-hb",
                                 f"hb-table '{table.name}' declares "
                                 f"'{fn_name}' but no such function is "
                                 "defined in this file", fn_name))
                continue
            fndef = defs[0]
            actual = relevant(
                core.extract_atomic_ops(flat, fndef.body_start, fndef.body_end))
            declared_fmt = [f"{v}.{o} {','.join(orders)}" if v != "fence"
                            else f"fence {','.join(orders)}"
                            for v, o, orders in declared]
            actual_fmt = [op.render() for op in actual]
            if declared_fmt != actual_fmt:
                if sf.allowed(fndef.header_line, "atomic-hb"):
                    continue
                findings.append(
                    core.Finding(
                        sf.path, fndef.header_line, "atomic-hb",
                        f"'{fn_name}' drifted from hb-table '{table.name}': "
                        f"declared [{'; '.join(declared_fmt)}] but code does "
                        f"[{'; '.join(actual_fmt)}] — update the protocol "
                        "table with the reasoning for the change", fn_name))
        # Completeness: any function touching a covered variable must be in
        # the table, or the protocol spec is silently partial.
        for fndef in functions:
            if fndef.name in table.rows:
                continue
            touched = [op for op in core.extract_atomic_ops(
                           flat, fndef.body_start, fndef.body_end)
                       if op.var in covered]
            if touched and not sf.allowed(fndef.header_line, "atomic-hb"):
                findings.append(
                    core.Finding(
                        sf.path, fndef.header_line, "atomic-hb",
                        f"'{fndef.name}' touches hb-table '{table.name}' "
                        f"variable '{touched[0].var}' but is not declared "
                        "in the table", fndef.name))
    return findings


class AtomicOrderRule:
    name = "atomic-order"
    codes = frozenset({"atomic-order", "atomic-hb"})
    dirs = ("src",)

    @staticmethod
    def describe() -> str:
        return ("non-seq_cst memory orders need '// order:' justifications; "
                "hb-table protocol specs are checked against the code")

    @staticmethod
    def check(files: list[core.SourceFile],
              root: pathlib.Path) -> list[core.Finding]:
        del root
        findings: list[core.Finding] = []
        for sf in files:
            findings.extend(_check_order_comments(sf))
            findings.extend(_check_tables(sf))
        return findings

    @staticmethod
    def self_test() -> list[tuple[str, bool]]:
        return _self_test()


def _lint(text: str) -> list[core.Finding]:
    sf = core.SourceFile("<seeded>", text, AtomicOrderRule.codes)
    return _check_order_comments(sf) + _check_tables(sf)


_HB_SNIPPET_OK = """\
// hb-table: Ring
//   push: buf_.store relaxed ; tail_.store release
//   pop: tail_.load acquire ; fence seq_cst ;
//     head_.cas seq_cst,relaxed
// hb-end
struct Ring {
  bool push(int v) {
    // order: payload published by the tail_ release below
    buf_.store(v, std::memory_order_relaxed);
    // order: pairs with pop's tail_ acquire
    tail_.store(1, std::memory_order_release);
    return true;
  }
  bool pop() {
    // order: pairs with push's tail_ release
    int t = tail_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: failure path re-reads, no payload access
    return head_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
  }
};
"""


def _self_test() -> list[tuple[str, bool]]:
    checks: list[tuple[str, bool]] = []

    def fires(text: str, code: str) -> bool:
        return any(f.code == code for f in _lint(text))

    seeded = "x_.store(1, std::memory_order_release);"
    checks.append(("atomic-order: fires on unjustified release",
                   fires(seeded, "atomic-order")))
    checks.append(("atomic-order: quiet with same-line order: comment",
                   not fires(seeded + "  // order: pairs with reader acquire",
                             "atomic-order")))
    checks.append(("atomic-order: quiet with order: comment above",
                   not fires("// order: pairs with reader acquire\n" + seeded,
                             "atomic-order")))
    checks.append(("atomic-order: comment detached by blank line stays a "
                   "finding",
                   fires("// order: pairs with reader acquire\n\n" + seeded,
                         "atomic-order")))
    multi = ("// order: publication store, reader pairs with acquire\n"
             "x_.store(\n    v, std::memory_order_release);")
    checks.append(("atomic-order: comment above a multi-line statement "
                   "covers its continuation lines",
                   not fires(multi, "atomic-order")))
    checks.append(("atomic-order: previous statement boundary blocks the "
                   "walk-up",
                   fires("// order: justification\nint y = 0;\n" + seeded,
                         "atomic-order")))
    checks.append(("atomic-order: explicit seq_cst needs no justification",
                   not fires("x_.store(1, std::memory_order_seq_cst);",
                             "atomic-order")))
    checks.append(("atomic-order: silenced by lint:allow(atomic-order)",
                   not fires(seeded + "  // lint:allow(atomic-order)",
                             "atomic-order")))

    checks.append(("atomic-hb: matching table is quiet",
                   not fires(_HB_SNIPPET_OK, "atomic-hb")))
    drifted = _HB_SNIPPET_OK.replace("tail_.store(1, std::memory_order_release)",
                                     "tail_.store(1, std::memory_order_relaxed)")
    checks.append(("atomic-hb: fires when a declared order drifts",
                   fires(drifted, "atomic-hb")))
    reordered = _HB_SNIPPET_OK.replace(
        "push: buf_.store relaxed ; tail_.store release",
        "push: tail_.store release ; buf_.store relaxed")
    checks.append(("atomic-hb: fires when the declared op sequence is "
                   "reordered",
                   fires(reordered, "atomic-hb")))
    undeclared = _HB_SNIPPET_OK.replace(
        "};", "  int peek() { return tail_.load(std::memory_order_seq_cst); }\n"
              "};")
    checks.append(("atomic-hb: fires on an undeclared function touching a "
                   "covered variable",
                   fires(undeclared, "atomic-hb")))
    allowed = undeclared.replace(
        "  int peek() {",
        "  // lint:allow(atomic-hb) diagnostics-only read\n  int peek() {")
    checks.append(("atomic-hb: undeclared function silenced by lint:allow",
                   not fires(allowed, "atomic-hb")))
    missing_fn = _HB_SNIPPET_OK.replace("bool pop()", "bool pop_renamed()")
    checks.append(("atomic-hb: fires when a declared function is missing",
                   fires(missing_fn, "atomic-hb")))
    seeded_decompose = core.SourceFile("src/decompose/sharded.cpp",
                                       seeded + "\n",
                                       AtomicOrderRule.codes)
    checks.append(("atomic-order: fires on seeded violation in "
                   "src/decompose/sharded.cpp",
                   any(f.code == "atomic-order"
                       for f in _check_order_comments(seeded_decompose))))
    return checks


RULE = AtomicOrderRule()
