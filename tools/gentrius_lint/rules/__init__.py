"""Rule registry for gentrius-analyze.

A rule is an object with:
  name        CLI/ctest identifier (kebab-case)
  codes       allow-codes it can emit (``lint:allow(<code>)`` targets)
  dirs        repo-relative directories it scans
  describe()  one-line summary for --list-rules
  check(files, root) -> list[Finding]   (files: SourceFiles of its dirs)
  self_test() -> list[(description, ok)]

Adding a rule = dropping a module here and listing it in ALL_RULES.
"""

from __future__ import annotations

from gentrius_lint.rules import arena_escape, atomic_order, determinism, lock_rank

ALL_RULES = [
    determinism.RULE,
    atomic_order.RULE,
    lock_rank.RULE,
    arena_escape.RULE,
]

RULES_BY_NAME = {rule.name: rule for rule in ALL_RULES}

ALL_CODES = sorted(set().union(*(rule.codes for rule in ALL_RULES)))
