"""Lock-hierarchy analysis.

Every ``support::Mutex`` in the project carries a compile-time rank
(``Mutex mu_{support::Rank::kPool}``); the discipline is that a thread
only acquires mutexes in *strictly increasing* rank order. This rule
proves the discipline statically:

``mutex-rank``  — a ``Mutex`` member/variable declared without a
``Rank::k*`` argument, or with a rank name that is not in the ``Rank``
enum (parsed from ``support/sync.hpp``).

``lock-order``  — the static acquisition graph. For every function the
rule extracts its ``MutexLock`` sites, computes the scope of each guard
(to the end of its enclosing block), and records an edge
``rank(held) -> rank(acquired)`` for every acquisition — direct or via a
call — made while the guard is live. Callee acquisitions are propagated
through a call-graph fixpoint, and functions whose acquisitions the
extractor cannot see (callbacks, type-erased paths) can declare them with
``// lint:acquires(kRankA, kRankB)`` above their definition. Any edge
that is not strictly increasing is a finding at the inner acquisition
site.

``lock-cycle``  — a cycle in the rank graph built from the surviving
edges (reported even if each individual edge was ``lint:allow``ed away,
because a cycle means the allows jointly re-introduced a deadlock).

The companion runtime validator (``support/sync.hpp``) enforces the same
invariant dynamically in debug/sanitizer builds via a thread-local stack
of held ranks.
"""

from __future__ import annotations

import pathlib
import re

from gentrius_lint import core

_RANK_ENUM_RE = re.compile(r"\benum\s+class\s+Rank\b")
_RANK_ENTRY_RE = re.compile(r"(k\w+)(?:\s*=\s*(-?\d+))?")
_MUTEX_DECL_RE = re.compile(r"\bMutex\b\s+(\w+)\s*(\{[^}]*\}|\([^)]*\))?\s*;")
_RANK_ARG_RE = re.compile(r"\bRank::(k\w+)")
_LOCK_SITE_RE = re.compile(r"\bMutexLock\b\s+\w+\s*[({]([^)}]*)[)}]")
_ACQUIRES_RE = re.compile(r"//\s*lint:acquires\(\s*(k\w+(?:\s*,\s*k\w+)*)\s*\)")
_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def parse_rank_enum(files: list[core.SourceFile]) -> dict[str, int]:
    """Rank name -> numeric value, parsed from the enum definition."""
    for sf in files:
        flat_text = "\n".join(sf.code_lines)
        m = _RANK_ENUM_RE.search(flat_text)
        if not m:
            continue
        brace = flat_text.find("{", m.end())
        if brace < 0:
            continue
        end = core._skip_balanced(flat_text, brace)
        ranks: dict[str, int] = {}
        next_value = 0
        for entry in _RANK_ENTRY_RE.finditer(flat_text, brace, end - 1):
            value = int(entry.group(2)) if entry.group(2) else next_value
            ranks[entry.group(1)] = value
            next_value = value + 1
        if ranks:
            return ranks
    raise core.LintUsageError(
        "no 'enum class Rank' definition found in the scanned sources "
        "(expected in src/support/sync.hpp)")


def _find_mutexes(sf: core.SourceFile, ranks: dict[str, int],
                  findings: list[core.Finding]) -> dict[str, str]:
    """Mutex variable name -> rank name for this file; emits mutex-rank
    findings for unranked declarations."""
    table: dict[str, str] = {}
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in _MUTEX_DECL_RE.finditer(code):
            var, init = m.group(1), m.group(2) or ""
            rank = _RANK_ARG_RE.search(init)
            if not rank:
                if not sf.allowed(lineno, "mutex-rank"):
                    findings.append(core.Finding(
                        sf.path, lineno, "mutex-rank",
                        f"Mutex '{var}' declared without a rank; give it "
                        "one from support::Rank so the lock hierarchy "
                        "covers it", sf.raw_lines[lineno - 1].strip()))
                continue
            name = rank.group(1)
            if name not in ranks:
                if not sf.allowed(lineno, "mutex-rank"):
                    findings.append(core.Finding(
                        sf.path, lineno, "mutex-rank",
                        f"Mutex '{var}' uses unknown rank '{name}' "
                        f"(known: {sorted(ranks)})",
                        sf.raw_lines[lineno - 1].strip()))
                continue
            table[var] = name
    return table


def _declared_acquires(sf: core.SourceFile, header_line: int) -> set[str]:
    """Ranks declared via ``// lint:acquires(...)`` on or just above the
    function header."""
    out: set[str] = set()
    for lineno in range(max(1, header_line - 3), header_line + 1):
        m = _ACQUIRES_RE.search(sf.raw_lines[lineno - 1])
        if m:
            out.update(r.strip() for r in m.group(1).split(","))
    return out


def _scope_end(text: str, pos: int, body_end: int) -> int:
    """Offset where the block enclosing ``pos`` closes (a ``MutexLock``
    guard lives until then)."""
    depth = 0
    i = pos
    while i < body_end:
        ch = text[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return i
        i += 1
    return body_end


class _Site:
    """One MutexLock acquisition: its rank, line, and guard scope."""

    def __init__(self, rank: str, line: int, pos: int, end: int):
        self.rank = rank
        self.line = line
        self.pos = pos
        self.end = end


class _Function:
    def __init__(self, sf: core.SourceFile, fndef: core.FunctionDef,
                 flat: core.FlatText):
        self.sf = sf
        self.fndef = fndef
        self.flat = flat
        self.sites: list[_Site] = []
        self.declared = _declared_acquires(sf, fndef.header_line)
        # transitive set of ranks this function may acquire (fixpoint)
        self.acquires: set[str] = set(self.declared)


class _DeclaredStub:
    """A body-less declaration carrying ``// lint:acquires(...)``: it
    participates in the call graph with exactly its declared ranks."""

    def __init__(self, ranks: set[str]):
        self.acquires = set(ranks)


def _collect_functions(files: list[core.SourceFile],
                       mutex_tables: dict[str, dict[str, str]],
                       ) -> dict[str, list[_Function]]:
    by_name: dict[str, list[_Function]] = {}
    for sf in files:
        flat = core.FlatText(sf.code_lines)
        local = mutex_tables.get(sf.path, {})
        for fndef in core.extract_functions(flat):
            fn = _Function(sf, fndef, flat)
            for m in _LOCK_SITE_RE.finditer(flat.text, fndef.body_start,
                                            fndef.body_end):
                arg = m.group(1)
                var_m = re.search(r"(\w+)\s*$", arg)
                if not var_m:
                    continue
                rank = local.get(var_m.group(1))
                if rank is None:
                    continue  # unresolvable (parameter, foreign object)
                fn.sites.append(_Site(
                    rank, flat.line_of(m.start()), m.start(),
                    _scope_end(flat.text, m.end(), fndef.body_end)))
            fn.acquires.update(site.rank for site in fn.sites)
            by_name.setdefault(fndef.name, []).append(fn)
    # lint:acquires above a body-less declaration: attach to the first
    # callable name on the following code line.
    for sf in files:
        for lineno, raw in enumerate(sf.raw_lines, start=1):
            m = _ACQUIRES_RE.search(raw)
            if not m:
                continue
            ranks = {r.strip() for r in m.group(1).split(",")}
            for target_line in range(lineno + 1,
                                     min(lineno + 3, len(sf.code_lines) + 1)):
                name_m = _CALL_RE.search(sf.code_lines[target_line - 1])
                if name_m:
                    by_name.setdefault(name_m.group(1), []).append(
                        _DeclaredStub(ranks))
                    break
    return by_name


def _close_acquires(by_name: dict[str, list[_Function]]) -> None:
    """Propagate acquisitions through the call graph to a fixpoint."""
    changed = True
    guard = 0
    while changed and guard < 64:
        changed = False
        guard += 1
        for fns in by_name.values():
            for fn in fns:
                if isinstance(fn, _DeclaredStub):
                    continue
                for m in _CALL_RE.finditer(fn.flat.text, fn.fndef.body_start,
                                           fn.fndef.body_end):
                    callee = m.group(1)
                    if callee == fn.fndef.name or callee not in by_name:
                        continue
                    for target in by_name[callee]:
                        extra = target.acquires - fn.acquires
                        if extra:
                            fn.acquires.update(extra)
                            changed = True


def _edges_for(fn: _Function, by_name: dict[str, list[_Function]],
               ) -> list[tuple[str, str, int]]:
    """(held_rank, acquired_rank, line) edges created inside ``fn``."""
    edges: list[tuple[str, str, int]] = []
    for site in fn.sites:
        # Later direct acquisitions inside this guard's scope.
        for other in fn.sites:
            if site.pos < other.pos < site.end:
                edges.append((site.rank, other.rank, other.line))
        # Calls made while the guard is held.
        for m in _CALL_RE.finditer(fn.flat.text, site.pos, site.end):
            callee = m.group(1)
            if callee == fn.fndef.name or callee not in by_name:
                continue
            line = fn.flat.line_of(m.start())
            for target in by_name[callee]:
                for rank in sorted(target.acquires):
                    edges.append((site.rank, rank, line))
    return edges


def _find_rank_cycle(edges: set[tuple[str, str]]) -> list[str] | None:
    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in
             set(graph) | {b for bs in graph.values() for b in bs}}
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if color[nxt] == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if color[nxt] == WHITE:
                cycle = dfs(nxt)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(color):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                return cycle
    return None


def run_check(files: list[core.SourceFile]) -> list[core.Finding]:
    findings: list[core.Finding] = []
    ranks = parse_rank_enum(files)
    mutex_tables = {sf.path: _find_mutexes(sf, ranks, findings)
                    for sf in files}
    by_name = _collect_functions(files, mutex_tables)
    _close_acquires(by_name)

    graph_edges: set[tuple[str, str]] = set()
    first_site: dict[tuple[str, str], tuple[str, int]] = {}
    for fns in by_name.values():
        for fn in fns:
            if isinstance(fn, _DeclaredStub):
                continue
            for held, acquired, line in _edges_for(fn, by_name):
                if held not in ranks or acquired not in ranks:
                    continue
                graph_edges.add((held, acquired))
                first_site.setdefault((held, acquired), (fn.sf.path, line))
                if ranks[acquired] <= ranks[held]:
                    if fn.sf.allowed(line, "lock-order"):
                        continue
                    findings.append(core.Finding(
                        fn.sf.path, line, "lock-order",
                        f"acquires {acquired} (rank {ranks[acquired]}) while "
                        f"holding {held} (rank {ranks[held]}); the hierarchy "
                        "requires strictly increasing ranks",
                        fn.sf.raw_lines[line - 1].strip()))

    cycle = _find_rank_cycle(graph_edges)
    if cycle:
        path, line = first_site[(cycle[0], cycle[1])]
        findings.append(core.Finding(
            path, line, "lock-cycle",
            "static acquisition graph has a cycle: " + " -> ".join(cycle),
            " -> ".join(cycle)))
    return findings


class LockRankRule:
    name = "lock-rank"
    codes = frozenset({"mutex-rank", "lock-order", "lock-cycle"})
    dirs = ("src",)

    @staticmethod
    def describe() -> str:
        return ("every Mutex carries a Rank; static acquisition graph must "
                "be strictly increasing and cycle-free")

    @staticmethod
    def check(files: list[core.SourceFile],
              root: pathlib.Path) -> list[core.Finding]:
        del root
        return run_check(files)

    @staticmethod
    def self_test() -> list[tuple[str, bool]]:
        return _self_test()


_ENUM_SRC = """\
namespace support {
enum class Rank : int {
  kTaskQueue = 10,
  kSchedulerSignal = 20,
  kCounterSink = 30,
  kTest = 100,
};
}
"""

_OK_SRC = """\
class Pipeline {
 public:
  void submit() {
    support::MutexLock lock(queue_mu_);
    signal();
  }
  void signal() {
    support::MutexLock lock(signal_mu_);
  }

 private:
  support::Mutex queue_mu_{support::Rank::kTaskQueue};
  support::Mutex signal_mu_{support::Rank::kSchedulerSignal};
};
"""


def _lint(*sources: str) -> list[core.Finding]:
    codes = LockRankRule.codes
    files = [core.SourceFile("src/support/sync.hpp", _ENUM_SRC, codes)]
    files += [core.SourceFile(f"<seeded-{i}>", text, codes)
              for i, text in enumerate(sources)]
    return run_check(files)


def _self_test() -> list[tuple[str, bool]]:
    checks: list[tuple[str, bool]] = []

    def fires(code: str, *sources: str) -> bool:
        return any(f.code == code for f in _lint(*sources))

    checks.append(("lock-rank: increasing acquisition through a call is "
                   "quiet", not any(_lint(_OK_SRC))))

    inverted = _OK_SRC.replace("Rank::kTaskQueue", "Rank::kTEMP").replace(
        "Rank::kSchedulerSignal", "Rank::kTaskQueue").replace(
        "Rank::kTEMP", "Rank::kSchedulerSignal")
    checks.append(("lock-order: fires on rank inversion through a call",
                   fires("lock-order", inverted)))
    checks.append(("lock-cycle: inversion also reports the rank-graph cycle "
                   "when paired with the forward edge",
                   fires("lock-cycle", inverted, _OK_SRC)))

    nested = """\
class Nested {
  void both() {
    support::MutexLock outer(signal_mu_);
    support::MutexLock inner(queue_mu_);
  }
  support::Mutex queue_mu_{support::Rank::kTaskQueue};
  support::Mutex signal_mu_{support::Rank::kSchedulerSignal};
};
"""
    checks.append(("lock-order: fires on directly nested inverted guards",
                   fires("lock-order", nested)))
    allowed = nested.replace(
        "    support::MutexLock inner(queue_mu_);",
        "    // lint:allow(lock-order)\n"
        "    support::MutexLock inner(queue_mu_);")
    checks.append(("lock-order: silenced by lint:allow at the inner site",
                   not fires("lock-order", allowed)))

    scoped = """\
class Scoped {
  void sequential() {
    { support::MutexLock a(signal_mu_); }
    { support::MutexLock b(queue_mu_); }
  }
  support::Mutex queue_mu_{support::Rank::kTaskQueue};
  support::Mutex signal_mu_{support::Rank::kSchedulerSignal};
};
"""
    checks.append(("lock-order: sequential non-overlapping guards are quiet",
                   not any(_lint(scoped))))

    unranked = "class U { support::Mutex mu_; };"
    checks.append(("mutex-rank: fires on an unranked Mutex",
                   fires("mutex-rank", unranked)))
    checks.append(("mutex-rank: silenced by lint:allow",
                   not fires("mutex-rank",
                             "class U { support::Mutex mu_; "
                             "};  // lint:allow(mutex-rank)")))
    checks.append(("mutex-rank: fires on an unknown rank name",
                   fires("mutex-rank",
                         "class U { support::Mutex mu_{support::Rank::"
                         "kBogus}; };")))

    annotated = """\
class Ann {
  void run() {
    support::MutexLock lock(signal_mu_);
    callback();
  }
  // lint:acquires(kTaskQueue)
  void callback();
  support::Mutex signal_mu_{support::Rank::kSchedulerSignal};
};
"""
    checks.append(("lock-order: lint:acquires declarations feed the edge "
                   "check", fires("lock-order", annotated)))

    same_rank = """\
class Same {
  void a() {
    support::MutexLock l1(mu1_);
    support::MutexLock l2(mu2_);
  }
  support::Mutex mu1_{support::Rank::kTaskQueue};
  support::Mutex mu2_{support::Rank::kTaskQueue};
};
"""
    checks.append(("lock-order: equal ranks are not 'strictly increasing'",
                   fires("lock-order", same_rank)))
    seeded_decompose = [
        core.SourceFile("src/support/sync.hpp", _ENUM_SRC,
                        LockRankRule.codes),
        core.SourceFile("src/decompose/sharded.cpp", nested,
                        LockRankRule.codes),
    ]
    checks.append(("lock-order: fires on seeded violation in "
                   "src/decompose/sharded.cpp",
                   any(f.code == "lock-order"
                       for f in run_check(seeded_decompose))))
    return checks


RULE = LockRankRule()
