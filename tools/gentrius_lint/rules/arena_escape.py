"""Arena-escape rule.

``support::Arena`` memory lives exactly as long as the arena; an
``ArenaVector``/``ArenaAllocator``-backed container stored somewhere that
can outlive the arena is a use-after-free waiting for a schedule to
expose it. The rule enforces the containment contract statically:

``arena-escape`` —
  * a class/struct member of an arena-backed container type in a class
    that does not also own the arena (an ``Arena`` or
    ``shared_ptr<Arena>`` member keeps the storage alive for exactly the
    member's lifetime, as ``Terrace`` does);
  * a function whose *return type* is an arena-backed container —
    handing arena storage past the method scope severs it from the
    owner's lifetime.

Either may be deliberate (a view type whose contract documents the arena
outlives it); then the declaration takes a justified
``// lint:allow(arena-escape)``. ``support/arena.hpp`` itself — the file
that defines the types — is exempt.

Locals inside function bodies are fine: they die before the method
returns, inside the owner's lifetime.
"""

from __future__ import annotations

import pathlib
import re

from gentrius_lint import core

_ARENA_TYPE_RE = re.compile(
    r"\b(?:support::)?(?:ArenaVector|ArenaAllocator|AVec)\s*<")
_OWNER_MEMBER_RE = re.compile(
    r"(?:shared_ptr\s*<\s*(?:support::)?Arena\s*>|\bArena\b)\s*&?\s*\w+\s*;")
_CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")
_SKIP_MEMBER_PREFIXES = ("using ", "typedef ", "template", "friend ",
                         "return ")
_EXEMPT_SUFFIX = "support/arena.hpp"


def _class_regions(flat: core.FlatText) -> list[tuple[str, int, int]]:
    """(name, body_start, body_end) for every class/struct definition.
    Deduped by body offset so ``template <class T> class X`` records X,
    not the template parameter."""
    text = flat.text
    n = len(text)
    by_body: dict[int, tuple[str, int]] = {}
    for m in _CLASS_RE.finditer(text):
        name = m.group(2)
        i = m.end()
        j = core._skip_ws(text, i)
        if j < n and text[j] == "(":  # attribute macro: class MACRO(..) Name
            j = core._skip_ws(text, core._skip_balanced(text, j))
            wm = re.match(r"[A-Za-z_]\w*", text[j:])
            if not wm:
                continue
            name = wm.group(0)
            i = j + wm.end()
        depth = 0  # angle-bracket depth while crossing a base clause
        j = i
        body = -1
        while j < n:
            ch = text[j]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth = max(0, depth - 1)
            elif ch == "(":
                j = core._skip_balanced(text, j)
                continue
            elif ch == ";" and depth == 0:
                break  # forward declaration
            elif ch == "{" and depth == 0:
                body = j
                break
            j += 1
        if body < 0:
            continue
        by_body[body] = (name, core._skip_balanced(text, body))
    return [(name, start, end) for start, (name, end) in by_body.items()]


def _innermost_region(regions: list[tuple[str, int, int]],
                      offset: int) -> tuple[str, int, int] | None:
    best = None
    for region in regions:
        if region[1] < offset < region[2]:
            if best is None or region[1] > best[1]:
                best = region
    return best


def _member_lines(flat: core.FlatText, functions: list[core.FunctionDef],
                  start: int, end: int) -> list[int]:
    """1-based lines inside [start, end) that are class-member territory —
    i.e. not inside any function extent (header, initializer list, body):
    parameters and init-list expressions are not stored members."""
    lines = []
    for lineno in range(flat.line_of(start), flat.line_of(end) + 1):
        offset = flat.line_starts[lineno - 1]
        if not (start < offset < end):
            continue
        if any(f.name_offset <= offset < f.body_end for f in functions):
            continue
        lines.append(lineno)
    return lines


def _returns_arena_type(flat: core.FlatText, fndef: core.FunctionDef) -> bool:
    text = flat.text
    boundary = max(text.rfind(";", 0, fndef.name_offset),
                   text.rfind("{", 0, fndef.name_offset),
                   text.rfind("}", 0, fndef.name_offset))
    segment = text[boundary + 1:fndef.name_offset]
    return bool(_ARENA_TYPE_RE.search(segment))


def _lint_file(sf: core.SourceFile) -> list[core.Finding]:
    if sf.path.replace("\\", "/").endswith(_EXEMPT_SUFFIX):
        return []
    findings: list[core.Finding] = []
    flat = core.FlatText(sf.code_lines)
    regions = _class_regions(flat)
    functions = core.extract_functions(flat)

    owner_starts: set[int] = set()
    for name, start, end in regions:
        member_lines = _member_lines(flat, functions, start, end)
        for lineno in member_lines:
            if _OWNER_MEMBER_RE.search(sf.code_lines[lineno - 1]):
                owner_starts.add(start)
                break

    for name, start, end in regions:
        for lineno in _member_lines(flat, functions, start, end):
            code = sf.code_lines[lineno - 1].strip()
            if not _ARENA_TYPE_RE.search(code):
                continue
            if code.startswith(_SKIP_MEMBER_PREFIXES):
                continue
            offset = flat.line_starts[lineno - 1] + 1
            inner = _innermost_region(regions, offset)
            if inner is None or inner[1] != start:
                continue  # belongs to a nested class; handled there
            if start in owner_starts:
                continue
            if sf.allowed(lineno, "arena-escape"):
                continue
            findings.append(core.Finding(
                sf.path, lineno, "arena-escape",
                f"arena-backed member in '{name}', which does not own the "
                "Arena; the container can outlive its storage — hold the "
                "arena (shared_ptr<Arena> member) or justify with "
                "lint:allow(arena-escape)",
                sf.raw_lines[lineno - 1].strip()))

    for fndef in functions:
        if not _returns_arena_type(flat, fndef):
            continue
        if sf.allowed(fndef.header_line, "arena-escape"):
            continue
        findings.append(core.Finding(
            sf.path, fndef.header_line, "arena-escape",
            f"'{fndef.name}' returns an arena-backed container past its "
            "method scope, severing it from the arena's lifetime; return "
            "a plain container or justify with lint:allow(arena-escape)",
            sf.raw_lines[fndef.header_line - 1].strip()))
    return findings


class ArenaEscapeRule:
    name = "arena-escape"
    codes = frozenset({"arena-escape"})
    dirs = ("src",)

    @staticmethod
    def describe() -> str:
        return ("arena-backed containers must not be stored in non-owning "
                "classes or returned past method scope")

    @staticmethod
    def check(files: list[core.SourceFile],
              root: pathlib.Path) -> list[core.Finding]:
        del root
        findings: list[core.Finding] = []
        for sf in files:
            findings.extend(_lint_file(sf))
        return findings

    @staticmethod
    def self_test() -> list[tuple[str, bool]]:
        return _self_test()


def _fires(text: str, path: str = "<seeded>") -> bool:
    sf = core.SourceFile(path, text, ArenaEscapeRule.codes)
    return bool(_lint_file(sf))


_OWNER_SRC = """\
class Terrace {
  std::shared_ptr<support::Arena> arena_;
  support::ArenaVector<int> row_sum_;
};
"""

_ESCAPE_SRC = """\
class KeyMap {
  support::ArenaVector<Slot> slots_;
};
"""

_RETURN_SRC = """\
support::ArenaVector<int> snapshot() {
  support::ArenaVector<int> out(alloc);
  return out;
}
"""


def _self_test() -> list[tuple[str, bool]]:
    checks: list[tuple[str, bool]] = []
    checks.append(("arena-escape: fires on an arena member in a non-owner "
                   "class", _fires(_ESCAPE_SRC)))
    checks.append(("arena-escape: quiet when the class owns the arena",
                   not _fires(_OWNER_SRC)))
    allowed = _ESCAPE_SRC.replace(
        "  support::ArenaVector<Slot> slots_;",
        "  // lint:allow(arena-escape)\n"
        "  support::ArenaVector<Slot> slots_;")
    checks.append(("arena-escape: member silenced by lint:allow",
                   not _fires(allowed)))
    local = """\
class Engine {
  std::shared_ptr<support::Arena> arena_;
  void step() {
    support::ArenaVector<int> scratch(alloc);
    use(scratch);
  }
};
"""
    checks.append(("arena-escape: locals inside method bodies are fine",
                   not _fires(local)))
    checks.append(("arena-escape: fires on a function returning an arena "
                   "container", _fires(_RETURN_SRC)))
    ret_allowed = ("// lint:allow(arena-escape) caller pins the arena\n"
                   + _RETURN_SRC)
    checks.append(("arena-escape: return silenced by lint:allow above",
                   not _fires(ret_allowed)))
    alias = """\
class Terrace {
  std::shared_ptr<support::Arena> arena_;
  template <typename T>
  using AVec = support::ArenaVector<T>;
  AVec<int> row_sum_;
};
"""
    checks.append(("arena-escape: using-alias line itself is not a member "
                   "finding; owner still quiet", not _fires(alias)))
    checks.append(("arena-escape: support/arena.hpp (defines the types) is "
                   "exempt", not _fires(_RETURN_SRC, "src/support/arena.hpp")))
    nested = """\
class Outer {
  struct View {
    support::ArenaVector<int> cells_;
  };
  std::shared_ptr<support::Arena> arena_;
};
"""
    checks.append(("arena-escape: nested non-owner struct fires even inside "
                   "an owner", _fires(nested)))
    checks.append(("arena-escape: fires on seeded violation in "
                   "src/decompose/components.cpp",
                   _fires(_ESCAPE_SRC, "src/decompose/components.cpp")))
    return checks


RULE = ArenaEscapeRule()
