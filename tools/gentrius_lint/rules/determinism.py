"""Determinism rule: rejects constructs that break bit-identical replay.

The virtual-time simulator (src/vthread) promises bit-identical replay, and
the enumeration engine (src/gentrius) promises serial == parallel totals.
Both guarantees are semantic — no test can prove their absence for every
input — so this rule rejects the *constructs* that historically break them:

  wall-clock       reading real time inside the engine (schedules would
                   depend on host speed; the virtual clock is the only
                   notion of time allowed)
  rand             ambient randomness (rand, std::random_device, mt19937 —
                   only support::Rng, seeded and cross-platform stable, is
                   deterministic)
  sleep            real-time blocking (sleep_for/usleep: schedule depends on
                   the host scheduler)
  unordered-iter   iterating an unordered container (iteration order is
                   implementation-defined; anything it feeds — output,
                   counters, task order — diverges across platforms)
  raw-new          raw new/delete (ownership bugs surface as
                   schedule-dependent crashes; use containers or
                   make_unique, which also keeps ASan reports readable)

Escape hatch: ``// lint:allow(<code>)`` on the offending line or alone on
the line above. `counters.hpp` (stopping rule 3 is wall-clock by
definition) is the canonical justified allow.
"""

from __future__ import annotations

import pathlib
import re

from gentrius_lint import core

# code -> (regex on comment/string-stripped code, human explanation)
PATTERNS: dict[str, tuple[re.Pattern[str], str]] = {
    "wall-clock": (
        re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
            r"|\bclock_gettime\b|\bgettimeofday\b|\bStopwatch\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "real time read inside the deterministic core; use the virtual "
        "clock (CostModel) instead",
    ),
    "rand": (
        re.compile(
            r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937"
            r"|\brandom_shuffle\b"
        ),
        "ambient randomness; draw from support::Rng with an explicit seed",
    ),
    "sleep": (
        re.compile(r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\b"),
        "real-time blocking makes the schedule host-dependent",
    ),
    "unordered-iter": (
        re.compile(
            # range-for directly over an unordered container expression, or
            # begin()/iterator walks detected via declared variable names
            # (second pass below).
            r"for\s*\(.*:\s*[^)]*\bunordered_(?:map|set|multimap|multiset)\b"
        ),
        "unordered-container iteration order is implementation-defined; "
        "sort the keys (or use a vector/map) before anything order-sensitive",
    ),
    "raw-new": (
        re.compile(
            r"\bnew\s+[A-Za-z_:(<]"  # new-expressions (incl. placement/array)
            r"|\bdelete\s*\[\]"      # delete[] p
            r"|\bdelete\s+[A-Za-z_*(]"  # delete p   (but not `= delete;`)
        ),
        "raw new/delete; use containers, std::make_unique or arena types",
    ),
}

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;={(]"
)


def _lint_file(sf: core.SourceFile) -> list[core.Finding]:
    findings: list[core.Finding] = []

    # Names of unordered containers declared in this file, for iteration
    # detection beyond literal range-for-over-type expressions.
    unordered_vars = set()
    for code in sf.code_lines:
        unordered_vars.update(UNORDERED_DECL_RE.findall(code))
    iter_res = [
        re.compile(r"for\s*\(.*:\s*(?:\w+\.)*" + re.escape(v) + r"\s*\)")
        for v in unordered_vars
    ] + [
        re.compile(r"\b" + re.escape(v) + r"\s*\.\s*c?begin\s*\(")
        for v in unordered_vars
    ]

    for lineno, code in enumerate(sf.code_lines, start=1):
        if not code.strip():
            continue
        for rule_code, (pattern, why) in PATTERNS.items():
            if sf.allowed(lineno, rule_code):
                continue
            hit = pattern.search(code)
            if not hit and rule_code == "unordered-iter":
                hit = next((r.search(code) for r in iter_res if r.search(code)),
                           None)
            if hit:
                findings.append(
                    core.Finding(sf.path, lineno, rule_code, why,
                                 sf.raw_lines[lineno - 1].strip()))
    return findings


SEEDED_VIOLATIONS = {
    "wall-clock": "auto t0 = std::chrono::system_clock::now();",
    "rand": "int x = rand() % 7;",
    "sleep": "std::this_thread::sleep_for(std::chrono::milliseconds(5));",
    "unordered-iter":
        "for (const auto& kv : std::unordered_map<int, int>(pairs)) { use(kv); }",
    "raw-new": "auto* p = new Frame();",
}

EXTRA_CASES = [
    # (snippet, code, should_fire)
    ("std::unordered_map<int, int> m; for (auto& kv : m) {}",
     "unordered-iter", True),
    ("std::unordered_set<K> seen; seen.insert(k);", "unordered-iter", False),
    ("Widget() = delete;", "raw-new", False),
    ("void operator delete(void*) noexcept;", "raw-new", False),
    ("delete node;", "raw-new", True),
    ("delete[] buf;", "raw-new", True),
    ("double runtime_seconds(); // wraps steady_clock", "wall-clock", False),
    ('const char* s = "call rand() here";', "rand", False),
    ("support::Rng rng(seed); rng.shuffle(v);", "rand", False),
]


class DeterminismRule:
    name = "determinism"
    codes = frozenset(PATTERNS)
    # src/decompose joined in PR 8: the sharded driver feeds golden traces
    # and product-law differentials, so it carries the same bit-identical
    # replay promise as the engine and the simulator.
    # src/parallel joined with the adaptive offer policy: the pool's
    # backlog/handoff signals now feed the enumerator's offer decisions,
    # which the policy-equivalence suite requires to match the virtual
    # drivers exactly — ambient time or randomness on that path would
    # silently diverge real from simulated scheduling.
    # src/incremental joined with the edit-session cache: canonical
    # fingerprints and cached rank-space stands must replay bit-identically
    # against the from-scratch driver, and the result cache's eviction and
    # lookup order feed directly into which components are re-enumerated —
    # unordered iteration or ambient randomness there would make cache
    # behavior (and therefore the reported per-edit cost) host-dependent.
    dirs = ("src/vthread", "src/gentrius", "src/decompose", "src/parallel",
            "src/incremental")

    @staticmethod
    def describe() -> str:
        return ("rejects wall-clock, randomness, sleeps, unordered iteration "
                "and raw new/delete in the deterministic core")

    @staticmethod
    def check(files: list[core.SourceFile],
              root: pathlib.Path) -> list[core.Finding]:
        del root
        findings: list[core.Finding] = []
        for sf in files:
            findings.extend(_lint_file(sf))
        return findings

    @staticmethod
    def self_test() -> list[tuple[str, bool]]:
        def lint_snippet(snippet: str) -> list[core.Finding]:
            sf = core.SourceFile("<seeded>", snippet + "\n", PATTERNS.keys())
            return _lint_file(sf)

        checks: list[tuple[str, bool]] = []
        for rule_code, snippet in SEEDED_VIOLATIONS.items():
            found = lint_snippet(snippet)
            checks.append((f"{rule_code}: fires on `{snippet}`",
                           any(f.code == rule_code for f in found)))
            allowed = lint_snippet(snippet + "  // lint:allow(" + rule_code + ")")
            checks.append((f"{rule_code}: silenced by same-line lint:allow",
                           not any(f.code == rule_code for f in allowed)))
            above = "// lint:allow(" + rule_code + ")\n" + snippet
            checks.append((f"{rule_code}: silenced by lint:allow above",
                           not any(f.code == rule_code
                                   for f in lint_snippet(above))))
        for snippet, rule_code, should_fire in EXTRA_CASES:
            found = any(f.code == rule_code for f in lint_snippet(snippet))
            verb = "fires" if should_fire else "stays quiet"
            checks.append((f"{rule_code}: {verb} on `{snippet}`",
                           found == should_fire))
        checks.append(("violation inside /* block comment */ ignored",
                       not lint_snippet("/* rand() */\nint x;")))
        checks.append(("violation after // comment ignored",
                       not lint_snippet("int x;  // old code used rand()")))
        # Seeded violation in the newly scanned src/decompose directory:
        # a wall-clock read planted in the sharded driver must fire exactly
        # as it would in the engine.
        seeded_decompose = core.SourceFile(
            "src/decompose/sharded.cpp",
            "auto t0 = std::chrono::steady_clock::now();\n",
            PATTERNS.keys())
        checks.append(("wall-clock: fires on seeded violation in "
                       "src/decompose/sharded.cpp",
                       any(f.code == "wall-clock"
                           for f in _lint_file(seeded_decompose))))
        # Seeded violation in the newly scanned src/parallel directory:
        # ambient randomness planted in the task queue's backlog probe —
        # the adaptive offer policy's decision input — must fire.
        seeded_parallel = core.SourceFile(
            "src/parallel/task_queue.hpp",
            "std::mt19937 gen; return gen() % capacity_;\n",
            PATTERNS.keys())
        checks.append(("rand: fires on seeded violation in "
                       "src/parallel/task_queue.hpp",
                       any(f.code == "rand"
                           for f in _lint_file(seeded_parallel))))
        # Seeded violation in the newly scanned src/incremental directory:
        # iterating the result cache's unordered index would make eviction
        # order — and so the set of re-enumerated components — host-
        # dependent; the planted walk must fire.
        seeded_incremental = core.SourceFile(
            "src/incremental/cache.cpp",
            "std::unordered_map<Key, Entry> index_;\n"
            "for (const auto& kv : index_) evict(kv.first);\n",
            PATTERNS.keys())
        checks.append(("unordered-iter: fires on seeded violation in "
                       "src/incremental/cache.cpp",
                       any(f.code == "unordered-iter"
                           for f in _lint_file(seeded_incremental))))
        return checks


RULE = DeterminismRule()
