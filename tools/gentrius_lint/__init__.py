"""gentrius-analyze: pluggable static-analysis framework for this repo.

Each rule module under ``rules/`` packages one project-specific analysis:
what it scans, which finding codes it emits, and a self-test proving the
rule fires on a seeded violation and honours the ``lint:allow`` escape
hatch. The CLI (``python3 tools/gentrius_lint``) runs any subset of rules
and is wired into ctest as ``lint_<rule>`` / ``lint_<rule>_selftest``.

See docs/TOOLING.md ("gentrius-analyze") for the rule catalogue.
"""

__all__ = ["cli", "core", "rules"]
