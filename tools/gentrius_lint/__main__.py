"""Entry point for ``python3 tools/gentrius_lint``.

Running a package directory puts the directory *itself* on sys.path, not
its parent, so absolute imports of ``gentrius_lint`` would fail; fix the
path before importing the CLI.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from gentrius_lint.cli import main  # noqa: E402

sys.exit(main())
