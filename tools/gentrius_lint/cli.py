"""Command-line front end for gentrius-analyze.

    python3 tools/gentrius_lint [--root DIR] [--rules a,b] \
        [--list-rules | --self-test]

Exit codes: 0 clean, 1 findings (or self-test failures), 2 usage error
(unknown rule name, unknown allow code, missing scan directory).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from gentrius_lint import core
from gentrius_lint.rules import ALL_CODES, ALL_RULES, RULES_BY_NAME


def _select_rules(spec: str | None):
    if not spec:
        return list(ALL_RULES)
    selected = []
    for name in spec.split(","):
        name = name.strip()
        if name not in RULES_BY_NAME:
            raise core.LintUsageError(
                f"unknown rule '{name}' (known: {sorted(RULES_BY_NAME)})")
        selected.append(RULES_BY_NAME[name])
    return selected


def _run_lint(root: pathlib.Path, rules) -> int:
    cache: dict[str, list[core.SourceFile]] = {}

    def sources_for(dirs: tuple[str, ...]) -> list[core.SourceFile]:
        key = "|".join(dirs)
        if key not in cache:
            cache[key] = core.iter_sources(root, dirs, ALL_CODES)
        return cache[key]

    findings: list[core.Finding] = []
    for rule in rules:
        findings.extend(rule.check(sources_for(rule.dirs), root))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    for finding in findings:
        print(finding.render())
    names = ", ".join(rule.name for rule in rules)
    if findings:
        print(f"\ngentrius-analyze [{names}]: {len(findings)} finding(s)")
        return 1
    print(f"gentrius-analyze [{names}]: clean")
    return 0


def _run_self_tests(rules) -> int:
    failures = 0
    for rule in rules:
        for description, ok in rule.self_test():
            status = "PASS" if ok else "FAIL"
            print(f"  [{status}] {rule.name}: {description}")
            if not ok:
                failures += 1
    if failures:
        print(f"\nself-test: {failures} check(s) failed")
        return 1
    print("self-test: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gentrius-analyze",
        description="project-specific static analysis for gentrius")
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this package)")
    parser.add_argument(
        "--rules", help="comma-separated rule subset (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run each selected rule against its seeded violations")
    args = parser.parse_args(argv)

    try:
        rules = _select_rules(args.rules)
        if args.list_rules:
            for rule in rules:
                codes = ", ".join(sorted(rule.codes))
                print(f"{rule.name}: {rule.describe()}")
                print(f"    dirs: {', '.join(rule.dirs)}; codes: {codes}")
            return 0
        if args.self_test:
            return _run_self_tests(rules)
        return _run_lint(args.root.resolve(), rules)
    except core.LintUsageError as err:
        print(f"gentrius-analyze: error: {err.message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
