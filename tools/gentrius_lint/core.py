"""Shared infrastructure for gentrius-analyze rules.

Everything here is language-tolerant rather than a real C++ parser: rules
work on comment/string-stripped source lines plus a heuristic function
extractor good enough for this codebase's style (clang-formatted, one
statement per line, no function-try-blocks). Each helper is exercised by
the rule self-tests against seeded violations, so a drift between these
heuristics and the real sources fails ctest instead of silently muting a
rule.
"""

from __future__ import annotations

import bisect
import dataclasses
import pathlib
import re
from typing import Iterable

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class LintUsageError(SystemExit):
    """Raised for configuration mistakes (unknown rule in an allow, missing
    scan root). Exits with status 2, distinct from findings (1)."""

    def __init__(self, message: str):
        super().__init__(2)
        self.message = message


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    code: str  # allow-code, e.g. "wall-clock", "atomic-order"
    message: str
    snippet: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}\n    {self.snippet}"


def strip_code(text: str) -> list[str]:
    """Per-line code with comments and string/char literals blanked.

    Keeps line structure (finding line numbers stay exact) and replaces
    stripped characters with spaces (column-free regexes behave).
    """
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        res: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                res.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                continue
            res.append(ch)
            i += 1
        out.append("".join(res))
    return out


def collect_allows(text: str, known_codes: Iterable[str]) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the allow-codes suppressed on that line.

    A ``// lint:allow(code)`` suppresses findings on its own line; when the
    line holds nothing but the comment, it suppresses the following line
    instead (so justifications can sit above long statements). Unknown
    codes are a usage error: a typo must not silently disable nothing.
    """
    known = set(known_codes)
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        codes = {c.strip() for c in m.group(1).split(",")}
        unknown = codes - known
        if unknown:
            raise LintUsageError(
                f"unknown allow code(s) {sorted(unknown)} on line {lineno} "
                f"(known: {sorted(known)})"
            )
        target = lineno
        if line.split("//", 1)[0].strip() == "":  # comment-only line
            target = lineno + 1
        allows.setdefault(target, set()).update(codes)
    return allows


class SourceFile:
    """One scanned file: raw text plus derived views, computed once and
    shared by every rule that looks at the file."""

    def __init__(self, path: str, text: str, known_codes: Iterable[str]):
        self.path = path
        self.text = text
        self.raw_lines = text.splitlines()
        self.code_lines = strip_code(text)
        self.allows = collect_allows(text, known_codes)

    def allowed(self, lineno: int, code: str) -> bool:
        return code in self.allows.get(lineno, set())


def iter_sources(root: pathlib.Path, rel_dirs: Iterable[str],
                 known_codes: Iterable[str]) -> list[SourceFile]:
    """Loads every C++ source under ``root/<rel_dir>`` for the given dirs."""
    files: list[SourceFile] = []
    codes = list(known_codes)
    for rel in rel_dirs:
        base = root / rel
        if not base.is_dir():
            raise LintUsageError(f"missing scan directory {base}")
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            files.append(
                SourceFile(str(path.relative_to(root)),
                           path.read_text(encoding="utf-8"), codes))
    return files


# --- heuristic function extraction ------------------------------------------

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "throw",
    "new", "delete", "assert", "decltype", "defined", "alignas", "noexcept",
}

_NAME_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")


@dataclasses.dataclass
class FunctionDef:
    name: str
    header_line: int  # 1-based line of the name token
    body_start: int   # offset of '{' in the flattened text
    body_end: int     # offset just past the matching '}'
    name_offset: int  # offset of the name token (for return-type lookback)


class FlatText:
    """Stripped source flattened to one string with an offset->line map."""

    def __init__(self, code_lines: list[str]):
        # Preprocessor lines are blanked: a #define's replacement tokens are
        # not code at this site and confuse the extractor.
        cooked = [("" if line.lstrip().startswith("#") else line)
                  for line in code_lines]
        self.text = "\n".join(cooked)
        self.line_starts = [0]
        for line in cooked:
            self.line_starts.append(self.line_starts[-1] + len(line) + 1)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)


def _skip_ws(text: str, i: int) -> int:
    n = len(text)
    while i < n and text[i].isspace():
        i += 1
    return i


def _skip_balanced(text: str, i: int) -> int:
    """``text[i]`` is an opener; returns the offset just past its match."""
    openers = {"(": ")", "{": "}", "[": "]"}
    close = openers[text[i]]
    opener = text[i]
    depth = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == opener:
            depth += 1
        elif ch == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


_PRECEDING_TOKEN_RE = re.compile(r"(\w+)\s*$")


def extract_functions(flat: FlatText) -> list[FunctionDef]:
    """Finds function *definitions* (a body in this file) heuristically.

    Handles ordinary functions, member functions, and constructors with
    initializer lists; skips declarations, control statements, macro
    invocations used as declaration attributes, and anything inside an
    already-recorded body. Operator overloads are not matched (none of the
    analyzed protocols live in operators).
    """
    text = flat.text
    n = len(text)
    defs: list[FunctionDef] = []
    recorded_end = 0  # bodies are found outside-in; skip interior matches
    for m in _NAME_CALL_RE.finditer(text):
        if m.start() < recorded_end:
            continue
        name = m.group(1)
        if name in _KEYWORDS:
            continue
        prev = _PRECEDING_TOKEN_RE.search(text, 0, m.start())
        if prev and prev.group(1) in {"class", "struct", "enum", "using",
                                      "namespace", "new", "delete", "return",
                                      "case", "goto", "throw"}:
            continue
        open_paren = text.index("(", m.end() - 1)
        i = _skip_balanced(text, open_paren)
        body = _find_body(text, i)
        if body is None:
            continue
        body_end = _skip_balanced(text, body)
        defs.append(FunctionDef(name, flat.line_of(m.start()), body, body_end,
                                m.start()))
        recorded_end = body_end
    return defs


def _find_body(text: str, i: int) -> int | None:
    """After a parameter list: offset of the body's '{', or None if this is
    a declaration/call. Tolerates cv-qualifiers, annotation macros,
    trailing return types and constructor initializer lists."""
    n = len(text)
    guard = 0
    while guard < 64:
        guard += 1
        i = _skip_ws(text, i)
        if i >= n:
            return None
        ch = text[i]
        if ch == "{":
            return i
        if ch in ";,=)]":
            return None
        if ch == ":":
            return _find_body_after_init_list(text, i + 1)
        if ch == "-" and i + 1 < n and text[i + 1] == ">":
            i += 2  # trailing return type: skip its tokens below
            continue
        if ch == "(":
            i = _skip_balanced(text, i)  # noexcept(...), macro(...)
            continue
        wm = re.match(r"[\w:&*<>\[\]]+", text[i:])
        if not wm:
            return None
        i += wm.end()
    return None


def _find_body_after_init_list(text: str, i: int) -> int | None:
    n = len(text)
    guard = 0
    while guard < 128:
        guard += 1
        i = _skip_ws(text, i)
        if i >= n:
            return None
        wm = re.match(r"[\w:]+", text[i:])
        if not wm:
            return None
        i = _skip_ws(text, i + wm.end())
        if i < n and text[i] == "<":
            i = _skip_ws(text, _skip_balanced(text, i))
        if i >= n or text[i] not in "({":
            return None
        i = _skip_ws(text, _skip_balanced(text, i))
        if i < n and text[i] == ",":
            i += 1
            continue
        if i < n and text[i] == "{":
            return i
        return None
    return None


# --- atomic operation extraction --------------------------------------------

ATOMIC_OPS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_strong", "compare_exchange_weak",
)

_ATOMIC_OP_RE = re.compile(
    r"(\w+)(?:\[[^\]]*\])?\s*\.\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")
_FENCE_RE = re.compile(r"\batomic_thread_fence\s*\(")
_ORDER_TOKEN_RE = re.compile(r"\bmemory_order_(\w+)")


@dataclasses.dataclass(frozen=True)
class AtomicOp:
    var: str     # variable name; "fence" for a standalone fence
    op: str      # load/store/cas/fence/...
    orders: tuple[str, ...]
    line: int    # 1-based

    def render(self) -> str:
        if self.op == "fence":
            return f"fence {','.join(self.orders)}"
        return f"{self.var}.{self.op} {','.join(self.orders)}"


def extract_atomic_ops(flat: FlatText, start: int, end: int) -> list[AtomicOp]:
    """Atomic member operations and fences in ``flat.text[start:end]``, in
    source order. compare_exchange_* is reported as op "cas" with its
    (success, failure) orders; an op with no explicit memory_order argument
    reports ("seq_cst",)."""
    text = flat.text
    found: list[tuple[int, AtomicOp]] = []
    for m in _ATOMIC_OP_RE.finditer(text, start, end):
        open_paren = text.index("(", m.end() - 1)
        close = _skip_balanced(text, open_paren)
        orders = tuple(o.group(1)
                       for o in _ORDER_TOKEN_RE.finditer(text, open_paren, close))
        if not orders:
            orders = ("seq_cst",)
        op = m.group(2)
        if op.startswith("compare_exchange"):
            op = "cas"
        found.append((m.start(),
                      AtomicOp(m.group(1), op, orders, flat.line_of(m.start()))))
    for m in _FENCE_RE.finditer(text, start, end):
        open_paren = text.index("(", m.end() - 1)
        close = _skip_balanced(text, open_paren)
        orders = tuple(o.group(1)
                       for o in _ORDER_TOKEN_RE.finditer(text, open_paren, close))
        found.append((m.start(),
                      AtomicOp("fence", "fence", orders or ("seq_cst",),
                               flat.line_of(m.start()))))
    found.sort(key=lambda pair: pair[0])
    return [op for _pos, op in found]
