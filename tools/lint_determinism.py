#!/usr/bin/env python3
"""Determinism lint for the Gentrius enumeration core.

The virtual-time simulator (src/vthread) promises bit-identical replay, and
the enumeration engine (src/gentrius) promises serial == parallel totals.
Both guarantees are semantic — no test can prove their absence for every
input — so this lint rejects the *constructs* that historically break them:

  wall-clock       reading real time inside the engine (schedules would
                   depend on host speed; the virtual clock is the only
                   notion of time allowed)
  rand             ambient randomness (rand, std::random_device, mt19937 —
                   only support::Rng, seeded and cross-platform stable, is
                   deterministic)
  sleep            real-time blocking (sleep_for/usleep: schedule depends on
                   the host scheduler)
  unordered-iter   iterating an unordered container (iteration order is
                   implementation-defined; anything it feeds — output,
                   counters, task order — diverges across platforms)
  raw-new          raw new/delete (ownership bugs surface as
                   schedule-dependent crashes; use containers or
                   make_unique, which also keeps ASan reports readable)

Escape hatch: append  // lint:allow(<rule>)  to the offending line, or put
the comment alone on the line directly above it. Every allow should carry a
justification comment; `counters.hpp` (stopping rule 3 is wall-clock by
definition) is the canonical example.

Exit status: 0 clean, 1 findings, 2 usage error. Wired into CTest as
`lint_determinism` (tree scan) and `lint_determinism_selftest` (verifies
each rule both fires on a seeded violation and is silenced by an allow).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Directories under --root whose files must uphold the determinism contract.
LINTED_DIRS = ("src/vthread", "src/gentrius")
SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# rule name -> (regex on comment/string-stripped code, human explanation)
RULES: dict[str, tuple[re.Pattern[str], str]] = {
    "wall-clock": (
        re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
            r"|\bclock_gettime\b|\bgettimeofday\b|\bStopwatch\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "real time read inside the deterministic core; use the virtual "
        "clock (CostModel) instead",
    ),
    "rand": (
        re.compile(
            r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937"
            r"|\brandom_shuffle\b"
        ),
        "ambient randomness; draw from support::Rng with an explicit seed",
    ),
    "sleep": (
        re.compile(r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\b"),
        "real-time blocking makes the schedule host-dependent",
    ),
    "unordered-iter": (
        re.compile(
            # range-for directly over an unordered container expression, or
            # begin()/iterator walks detected via declared variable names
            # (second pass below).
            r"for\s*\(.*:\s*[^)]*\bunordered_(?:map|set|multimap|multiset)\b"
        ),
        "unordered-container iteration order is implementation-defined; "
        "sort the keys (or use a vector/map) before anything order-sensitive",
    ),
    "raw-new": (
        re.compile(
            r"\bnew\s+[A-Za-z_:(<]"  # new-expressions (incl. placement/array)
            r"|\bdelete\s*\[\]"      # delete[] p
            r"|\bdelete\s+[A-Za-z_*(]"  # delete p   (but not `= delete;`)
        ),
        "raw new/delete; use containers, std::make_unique or arena types",
    ),
}

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;={(]"
)


def strip_code(text: str) -> list[str]:
    """Returns per-line code with comments and string/char literals blanked.

    Keeps line structure (so finding line numbers stay exact) and replaces
    stripped characters with spaces (so column-free regexes behave).
    """
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        res: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                res.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                continue
            res.append(ch)
            i += 1
        out.append("".join(res))
    return out


def collect_allows(text: str) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the set of rules allowed on that line.

    A `// lint:allow(rule)` suppresses findings on its own line; when the
    line holds nothing but the comment, it suppresses the following line
    instead (so justifications can sit above long statements).
    """
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        unknown = rules - RULES.keys()
        if unknown:
            raise SystemExit(
                f"lint_determinism: unknown rule(s) {sorted(unknown)} in "
                f"lint:allow on line {lineno} (known: {sorted(RULES)})"
            )
        target = lineno
        if line.split("//", 1)[0].strip() == "":  # comment-only line
            target = lineno + 1
        allows.setdefault(target, set()).update(rules)
    return allows


def lint_text(text: str, path: str) -> list[tuple[str, int, str, str]]:
    """Returns findings as (path, line, rule, code-snippet) tuples."""
    findings: list[tuple[str, int, str, str]] = []
    allows = collect_allows(text)
    code_lines = strip_code(text)
    raw_lines = text.splitlines()

    # Names of unordered containers declared in this file, for iteration
    # detection beyond literal range-for-over-type expressions.
    unordered_vars = set()
    for code in code_lines:
        unordered_vars.update(UNORDERED_DECL_RE.findall(code))
    iter_res = [
        re.compile(r"for\s*\(.*:\s*(?:\w+\.)*" + re.escape(v) + r"\s*\)")
        for v in unordered_vars
    ] + [
        re.compile(r"\b" + re.escape(v) + r"\s*\.\s*c?begin\s*\(")
        for v in unordered_vars
    ]

    for lineno, code in enumerate(code_lines, start=1):
        if not code.strip():
            continue
        allowed = allows.get(lineno, set())
        for rule, (pattern, _why) in RULES.items():
            if rule in allowed:
                continue
            hit = pattern.search(code)
            if not hit and rule == "unordered-iter":
                hit = next((r.search(code) for r in iter_res if r.search(code)), None)
            if hit:
                findings.append((path, lineno, rule, raw_lines[lineno - 1].strip()))
    return findings


def lint_tree(root: pathlib.Path) -> int:
    findings: list[tuple[str, int, str, str]] = []
    scanned = 0
    for rel in LINTED_DIRS:
        base = root / rel
        if not base.is_dir():
            print(f"lint_determinism: missing directory {base}", file=sys.stderr)
            return 2
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            scanned += 1
            findings.extend(
                lint_text(path.read_text(encoding="utf-8"), str(path.relative_to(root)))
            )
    if findings:
        for path, lineno, rule, snippet in findings:
            why = RULES[rule][1]
            print(f"{path}:{lineno}: [{rule}] {why}\n    {snippet}")
        print(
            f"\nlint_determinism: {len(findings)} finding(s) in {scanned} files. "
            "If a use is genuinely deterministic-safe, annotate it with "
            "// lint:allow(<rule>) and a justification."
        )
        return 1
    print(f"lint_determinism: OK ({scanned} files clean)")
    return 0


# --- self test --------------------------------------------------------------

SEEDED_VIOLATIONS = {
    "wall-clock": "auto t0 = std::chrono::system_clock::now();",
    "rand": "int x = rand() % 7;",
    "sleep": "std::this_thread::sleep_for(std::chrono::milliseconds(5));",
    "unordered-iter": "for (const auto& kv : std::unordered_map<int, int>(pairs)) { use(kv); }",
    "raw-new": "auto* p = new Frame();",
}

EXTRA_CASES = [
    # (snippet, rule, should_fire)
    ("std::unordered_map<int, int> m; for (auto& kv : m) {}", "unordered-iter", True),
    ("std::unordered_set<K> seen; seen.insert(k);", "unordered-iter", False),
    ("Widget() = delete;", "raw-new", False),
    ("void operator delete(void*) noexcept;", "raw-new", False),
    ("delete node;", "raw-new", True),
    ("delete[] buf;", "raw-new", True),
    ("double runtime_seconds(); // wraps steady_clock", "wall-clock", False),
    ('const char* s = "call rand() here";', "rand", False),
    ("support::Rng rng(seed); rng.shuffle(v);", "rand", False),
]


def self_test() -> int:
    failures = 0

    def check(desc: str, ok: bool) -> None:
        nonlocal failures
        status = "PASS" if ok else "FAIL"
        print(f"  [{status}] {desc}")
        if not ok:
            failures += 1

    print("rule detection (seeded violations must fire):")
    for rule, snippet in SEEDED_VIOLATIONS.items():
        found = lint_text(snippet + "\n", "<seeded>")
        check(f"{rule}: fires on `{snippet}`", any(f[2] == rule for f in found))
        allowed = lint_text(snippet + "  // lint:allow(" + rule + ")\n", "<seeded>")
        check(f"{rule}: silenced by same-line lint:allow",
              not any(f[2] == rule for f in allowed))
        above = "// lint:allow(" + rule + ")\n" + snippet + "\n"
        check(f"{rule}: silenced by lint:allow on the line above",
              not any(f[2] == rule for f in lint_text(above, "<seeded>")))

    print("edge cases:")
    for snippet, rule, should_fire in EXTRA_CASES:
        found = any(f[2] == rule for f in lint_text(snippet + "\n", "<case>"))
        verb = "fires" if should_fire else "stays quiet"
        check(f"{rule}: {verb} on `{snippet}`", found == should_fire)

    print("comment/string stripping:")
    check("violation inside /* block comment */ ignored",
          not lint_text("/* rand() */\nint x;\n", "<case>"))
    check("violation after // comment ignored",
          not lint_text("int x;  // old code used rand()\n", "<case>"))

    if failures:
        print(f"\nself-test: {failures} check(s) FAILED")
        return 1
    print("\nself-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout containing this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation and "
                             "honours the lint:allow escape hatch")
    args = parser.parse_args()

    if args.list_rules:
        for rule, (_pattern, why) in RULES.items():
            print(f"{rule:15s} {why}")
        return 0
    if args.self_test:
        return self_test()
    return lint_tree(args.root.resolve())


if __name__ == "__main__":
    sys.exit(main())
