#!/usr/bin/env python3
"""Compatibility shim: the determinism lint now lives in the
gentrius-analyze framework (tools/gentrius_lint/rules/determinism.py).

This entry point keeps the original contract — ``--root``,
``--list-rules``, ``--self-test``, exit codes 0/1/2 and the
``lint:allow`` escape hatch — by delegating to the framework with the
rule selection pinned to ``determinism``. New callers should invoke
``python3 tools/gentrius_lint`` directly.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from gentrius_lint import cli  # noqa: E402


def main() -> int:
    return cli.main(["--rules", "determinism", *sys.argv[1:]])


if __name__ == "__main__":
    sys.exit(main())
