#include "vthread/virtual_pool.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "parallel/task_queue.hpp"
#include "support/check.hpp"
#include "support/invariant.hpp"
#include "support/stopwatch.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::vthread {

using core::CounterSink;
using core::Enumerator;
using core::Options;
using core::Problem;
using core::Result;
using core::StopReason;
using core::Task;

namespace {

/// Simulated bounded queue. The simulation runs on one OS thread, so there
/// is no lock; instead every member is guarded by a SequentialRole
/// capability. Under Clang -Wthread-safety this proves at compile time that
/// the queue is only ever touched from inside the scheduler's RoleGuard
/// scope — the mechanical form of the determinism guarantee the header
/// documents. The push cost is charged to whichever worker's clock is
/// installed as the producer. Like the real TaskQueue, storage is a fixed
/// ring of Task slots: pushes swap the producer's staged task into a slot,
/// pops swap the slot with the scheduler's pooled steal target, so the
/// simulated hand-off is allocation-free too.
class VirtualQueue final : public core::TaskSink {
 public:
  VirtualQueue(std::size_t capacity, double queue_cost)
      : capacity_(capacity), queue_cost_(queue_cost), slots_(capacity) {}

  /// The scheduler capability; the event loop holds it for the whole run.
  support::SequentialRole& role() GENTRIUS_RETURN_CAPABILITY(role_) {
    return role_;
  }

  void set_producer_clock(double* clock) GENTRIUS_REQUIRES(role_) {
    producer_clock_ = clock;
  }

  // Called through core::TaskSink from inside Enumerator::step, which only
  // runs while the event loop (holding the role) steps the worker.
  bool try_push(Task& task) override GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK_LE(size_, capacity_);
    if (size_ >= capacity_) return false;
    GENTRIUS_DCHECK(producer_clock_ != nullptr);
    *producer_clock_ += queue_cost_;
    Entry& slot = slots_[(head_ + size_) % capacity_];
    std::swap(slot.task.path, task.path);
    slot.task.next_taxon = task.next_taxon;
    std::swap(slot.task.branches, task.branches);
    slot.available_at = *producer_clock_;
    ++size_;
    return true;
  }

  bool empty() const GENTRIUS_REQUIRES(role_) { return size_ == 0; }

  double front_available_at() const GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK(size_ > 0);
    return slots_[head_].available_at;
  }

  void pop_front(Task& out) GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK(size_ > 0);
    std::swap(out.path, slots_[head_].task.path);
    out.next_taxon = slots_[head_].task.next_taxon;
    std::swap(out.branches, slots_[head_].task.branches);
    head_ = (head_ + 1) % capacity_;
    --size_;
  }

 private:
  struct Entry {
    Task task;
    double available_at = 0.0;
  };
  const std::size_t capacity_;
  const double queue_cost_;
  support::SequentialRole role_;
  std::vector<Entry> slots_ GENTRIUS_GUARDED_BY(role_);  // fixed ring
  std::size_t head_ GENTRIUS_GUARDED_BY(role_) = 0;
  std::size_t size_ GENTRIUS_GUARDED_BY(role_) = 0;
  double* producer_clock_ GENTRIUS_GUARDED_BY(role_) = nullptr;
};

struct VWorker {
  std::unique_ptr<Enumerator> enumerator;
  double clock = 0.0;
  enum class State { kRunning, kIdle, kDone } state = State::kIdle;
  std::uint64_t last_flushes = 0;
  std::uint64_t tasks_executed = 0;
  core::Terrace::SelectionStats last_stats;  // for per-step cost deltas
};

Result run_simulation(const Problem& problem, const Options& user_options,
                      std::size_t n_threads, const CostModel& costs,
                      const VirtualRules& rules, bool work_stealing) {
  GENTRIUS_CHECK(n_threads >= 1);
  // Diagnostic only: how long the simulation itself took on the host. The
  // simulated schedule depends exclusively on virtual clocks.
  support::Stopwatch wall;  // lint:allow(wall-clock)

  Options options = user_options;
  const bool serial = n_threads == 1;
  if (serial) {
    // Sequential Gentrius uses plain global counters: exact limits, no
    // publication cost.
    options.tree_flush_batch = 1;
    options.state_flush_batch = 1;
    options.dead_end_flush_batch = 1;
  }
  const double flush_unit =
      serial ? 0.0
             : costs.flush_cost +
                   costs.flush_contention * static_cast<double>(n_threads - 1);

  CounterSink sink(options.stop);
  VirtualQueue queue(parallel::queue_capacity_for(n_threads), costs.queue_cost);
  // Single-threaded simulation: assume the scheduler role for the whole run.
  support::RoleGuard scheduler(queue.role());

  std::vector<VWorker> workers(n_threads);
  Result result;

  // --- startup: spawn, private prefix replay, initial split slices --------
  for (std::size_t tid = 0; tid < n_threads; ++tid) {
    VWorker& w = workers[tid];
    w.enumerator = std::make_unique<Enumerator>(problem, options, sink);
    if (work_stealing && !serial) w.enumerator->set_task_sink(&queue);
    w.clock = serial ? 0.0 : costs.spawn_cost;
    const auto& prefix = w.enumerator->run_prefix(/*count=*/tid == 0);
    w.clock += static_cast<double>(prefix.length) * costs.state_cost;
    // Selection work done during the prefix is covered by its state_cost
    // charge; the per-step surcharges start from this snapshot.
    w.last_stats = w.enumerator->terrace().selection_stats();
    if (tid == 0) {
      result.prefix_length = prefix.length;
      if (prefix.outcome == Enumerator::Prefix::Outcome::kSplit)
        result.initial_split_branches = prefix.branches.size();
      if (prefix.outcome == Enumerator::Prefix::Outcome::kEmpty)
        result.reason = StopReason::kEmptyStand;
    }
    if (prefix.outcome == Enumerator::Prefix::Outcome::kSplit) {
      const std::size_t total = prefix.branches.size();
      const std::size_t base = total / n_threads;
      const std::size_t extra = total % n_threads;
      const std::size_t begin = tid * base + std::min(tid, extra);
      const std::size_t len = base + (tid < extra ? 1 : 0);
      GENTRIUS_DCHECK_LE(begin + len, total);
      if (len > 0) {
        std::vector<core::EdgeId> slice(
            prefix.branches.begin() + static_cast<std::ptrdiff_t>(begin),
            prefix.branches.begin() + static_cast<std::ptrdiff_t>(begin + len));
        w.enumerator->begin_branches(prefix.split_taxon, std::move(slice));
        w.state = VWorker::State::kRunning;
      }
    }
  }

  // --- event loop: always advance the earliest actionable worker ----------
  const double inf = std::numeric_limits<double>::infinity();
  Task steal_scratch;  // pooled steal target, swapped with queue slots
  for (;;) {
    // Earliest running worker.
    std::size_t run_idx = n_threads;
    double run_time = inf;
    // Earliest idle worker (a potential thief).
    std::size_t idle_idx = n_threads;
    double idle_clock = inf;
    for (std::size_t i = 0; i < n_threads; ++i) {
      const VWorker& w = workers[i];
      if (w.state == VWorker::State::kRunning && w.clock < run_time) {
        run_time = w.clock;
        run_idx = i;
      }
      if (w.state == VWorker::State::kIdle && w.clock < idle_clock) {
        idle_clock = w.clock;
        idle_idx = i;
      }
    }
    const bool stopped = sink.stop_requested();
    double steal_time = inf;
    if (work_stealing && !stopped && idle_idx < n_threads && !queue.empty())
      steal_time = std::max(idle_clock, queue.front_available_at());

    if (run_idx == n_threads && steal_time == inf) break;  // quiescent

    if (steal_time < run_time) {
      // An idle worker dequeues the oldest task and replays its path.
      VWorker& w = workers[idle_idx];
      queue.pop_front(steal_scratch);
      GENTRIUS_DCHECK_GE(steal_time, w.clock);  // virtual time never rewinds
      w.clock = steal_time + costs.queue_cost;
      const std::size_t replayed = w.enumerator->adopt_task(steal_scratch);
      w.clock += static_cast<double>(replayed) * costs.replay_cost;
      ++w.tasks_executed;
      w.state = VWorker::State::kRunning;
      continue;
    }

    VWorker& w = workers[run_idx];
    if (rules.max_virtual_time && w.clock >= *rules.max_virtual_time)
      sink.request_stop(StopReason::kTimeLimit);

    queue.set_producer_clock(&w.clock);
    const auto step = w.enumerator->step();
    const std::uint64_t flushes = w.enumerator->counters().flush_count();
    GENTRIUS_DCHECK_GE(flushes, w.last_flushes);  // flush counts are monotone
    w.clock += costs.state_cost +
               static_cast<double>(flushes - w.last_flushes) * flush_unit;
    w.last_flushes = flushes;
    // Selection-work surcharges (defaults are all zero).
    {
      const auto& sel = w.enumerator->terrace().selection_stats();
      w.clock +=
          static_cast<double>(sel.fresh_counts - w.last_stats.fresh_counts) *
              costs.fresh_count_cost +
          static_cast<double>(sel.cached_counts - w.last_stats.cached_counts) *
              costs.cached_count_cost +
          static_cast<double>(sel.existence_checks -
                              w.last_stats.existence_checks) *
              costs.existence_check_cost +
          static_cast<double>(sel.mappings_rebuilt -
                              w.last_stats.mappings_rebuilt) *
              costs.mapping_rebuild_cost;
      w.last_stats = sel;
    }

    switch (step) {
      case Enumerator::Step::kWorked:
        break;
      case Enumerator::Step::kExhausted: {
        const std::size_t removed = w.enumerator->rewind_to_split();
        w.clock += static_cast<double>(removed) * costs.rewind_cost;
        w.state = (work_stealing && !serial) ? VWorker::State::kIdle
                                             : VWorker::State::kDone;
        break;
      }
      case Enumerator::Step::kStopped:
        w.state = VWorker::State::kDone;
        break;
    }
  }

  // --- teardown ------------------------------------------------------------
  double makespan = 0.0;
  for (VWorker& w : workers) {
    w.enumerator->counters().flush_all();
    makespan = std::max(makespan, w.clock);
    result.tasks_executed += w.tasks_executed;
    auto& trees = w.enumerator->collected_trees();
    result.trees.insert(result.trees.end(),
                        std::make_move_iterator(trees.begin()),
                        std::make_move_iterator(trees.end()));
  }
  result.stand_trees = sink.stand_trees();
  result.intermediate_states = sink.states();
  result.dead_ends = sink.dead_ends();
  if (result.reason != StopReason::kEmptyStand) result.reason = sink.reason();
  result.virtual_makespan = makespan;
  result.seconds = wall.seconds();
  return result;
}

}  // namespace

Result run_virtual(const Problem& problem, const Options& options,
                   std::size_t n_threads, const CostModel& costs,
                   const VirtualRules& rules) {
  return run_simulation(problem, options, n_threads, costs, rules,
                        /*work_stealing=*/true);
}

Result run_virtual_static_split(const Problem& problem, const Options& options,
                                std::size_t n_threads, const CostModel& costs,
                                const VirtualRules& rules) {
  return run_simulation(problem, options, n_threads, costs, rules,
                        /*work_stealing=*/false);
}

}  // namespace gentrius::vthread
