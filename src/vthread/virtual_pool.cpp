#include "vthread/virtual_pool.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/task_queue.hpp"
#include "support/check.hpp"
#include "support/invariant.hpp"
#include "support/stopwatch.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::vthread {

using core::CounterSink;
using core::Enumerator;
using core::Options;
using core::Problem;
using core::Result;
using core::StopReason;
using core::Task;

namespace {

/// Simulated bounded queue. The simulation runs on one OS thread, so there
/// is no lock; instead every member is guarded by a SequentialRole
/// capability. Under Clang -Wthread-safety this proves at compile time that
/// the queue is only ever touched from inside the scheduler's RoleGuard
/// scope — the mechanical form of the determinism guarantee the header
/// documents. The push cost is charged to whichever worker's clock is
/// installed as the producer. Like the real TaskQueue, storage is a fixed
/// ring of Task slots: pushes swap the producer's staged task into a slot,
/// pops swap the slot with the scheduler's pooled steal target, so the
/// simulated hand-off is allocation-free too.
///
/// The queue's one mutex is modeled as a serial resource: a successful push
/// or pop starts no earlier than `lock_free_at_` (the previous holder's
/// release) and occupies the lock for queue_cost. At high thread counts the
/// aggregate hand-off demand exceeds what one lock can serve per unit of
/// virtual time — the saturation the distributed scheduler removes. A
/// rejected push is a free bail by default (charging it would retroactively
/// change every pre-scheduler cost model), but the real try_push does take
/// the mutex to learn the ring is full — CostModel::queue_reject_cost > 0
/// restores that serialized hold for fidelity studies; either way it is
/// counted in the stats.
class VirtualQueue final : public core::TaskSink {
 public:
  VirtualQueue(std::size_t capacity, std::size_t workers, double queue_cost,
               double reject_cost)
      : capacity_(capacity), workers_(workers), queue_cost_(queue_cost),
        reject_cost_(reject_cost), slots_(capacity) {}

  /// The scheduler capability; the event loop holds it for the whole run.
  support::SequentialRole& role() GENTRIUS_RETURN_CAPABILITY(role_) {
    return role_;
  }

  void set_producer_clock(double* clock) GENTRIUS_REQUIRES(role_) {
    producer_clock_ = clock;
  }

  // Called through core::TaskSink from inside Enumerator::step, which only
  // runs while the event loop (holding the role) steps the worker.
  bool try_push(Task& task) override GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK_LE(size_, capacity_);
    if (size_ >= capacity_) {
      ++rejections_;
      if (reject_cost_ > 0.0) {
        // Faithful mode (CostModel::queue_reject_cost > 0): the rejected
        // producer still holds the serialized mutex to learn the ring is
        // full, exactly like the real try_push. Default mode charges
        // nothing — the historical free-bail model.
        GENTRIUS_DCHECK(producer_clock_ != nullptr);
        const double start = std::max(*producer_clock_, lock_free_at_);
        *producer_clock_ = start + reject_cost_;
        lock_free_at_ = *producer_clock_;
      }
      return false;
    }
    GENTRIUS_DCHECK(producer_clock_ != nullptr);
    const double start = std::max(*producer_clock_, lock_free_at_);
    *producer_clock_ = start + queue_cost_;
    lock_free_at_ = *producer_clock_;
    Entry& slot = slots_[(head_ + size_) % capacity_];
    std::swap(slot.task.path, task.path);
    slot.task.next_taxon = task.next_taxon;
    slot.task.predicted_states = task.predicted_states;
    std::swap(slot.task.branches, task.branches);
    slot.available_at = *producer_clock_;
    ++size_;
    if (size_ > max_depth_) max_depth_ = size_;
    return true;
  }

  // Adaptive-policy starvation probe, reached like try_push from inside
  // Enumerator::step under the event loop's role. The real TaskQueue answers
  // from a lock-free occupancy mirror; here the occupancy itself is the
  // deterministic simulated state, so backlog reads cannot perturb replay.
  std::size_t backlog() const override GENTRIUS_REQUIRES(role_) {
    return size_;
  }

  /// Twin of TaskQueue::backlog_limit: the ring size behind backlog().
  std::size_t backlog_limit() const override GENTRIUS_REQUIRES(role_) {
    return capacity_;
  }

  /// Twin of TaskQueue::handoff_penalty: every hand-off crosses the one
  /// simulated mutex (the lock_free_at_ serial resource), so the adaptive
  /// cutoff's backpressure term scales with the worker count, exactly as
  /// in the real pool.
  double handoff_penalty() const override GENTRIUS_REQUIRES(role_) {
    return static_cast<double>(workers_);
  }

  bool empty() const GENTRIUS_REQUIRES(role_) { return size_ == 0; }

  /// Earliest virtual time a pop could complete its lock acquisition: the
  /// oldest entry must exist and the queue mutex must be free.
  double pop_available_at() const GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK(size_ > 0);
    return std::max(slots_[head_].available_at, lock_free_at_);
  }

  /// Pops the oldest task for a thief whose lock acquisition begins at
  /// `start` (>= pop_available_at()); returns the thief's clock after the
  /// critical section.
  double pop_front(Task& out, double start) GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK(size_ > 0);
    GENTRIUS_DCHECK_GE(start, lock_free_at_);
    std::swap(out.path, slots_[head_].task.path);
    out.next_taxon = slots_[head_].task.next_taxon;
    out.predicted_states = slots_[head_].task.predicted_states;
    std::swap(out.branches, slots_[head_].task.branches);
    head_ = (head_ + 1) % capacity_;
    --size_;
    ++pops_;
    lock_free_at_ = start + queue_cost_;
    return lock_free_at_;
  }

  core::SchedulerStats stats() const GENTRIUS_REQUIRES(role_) {
    core::SchedulerStats s;
    s.tasks_stolen = pops_;
    s.steal_attempts = pops_;
    s.queue_full_rejections = rejections_;
    s.max_queue_depth = max_depth_;
    return s;
  }

 private:
  struct Entry {
    Task task;
    double available_at = 0.0;
  };
  const std::size_t capacity_;
  const std::size_t workers_;
  const double queue_cost_;
  const double reject_cost_;
  support::SequentialRole role_;
  std::vector<Entry> slots_ GENTRIUS_GUARDED_BY(role_);  // fixed ring
  std::size_t head_ GENTRIUS_GUARDED_BY(role_) = 0;
  std::size_t size_ GENTRIUS_GUARDED_BY(role_) = 0;
  double* producer_clock_ GENTRIUS_GUARDED_BY(role_) = nullptr;
  double lock_free_at_ GENTRIUS_GUARDED_BY(role_) = 0.0;
  std::uint64_t pops_ GENTRIUS_GUARDED_BY(role_) = 0;
  std::uint64_t rejections_ GENTRIUS_GUARDED_BY(role_) = 0;
  std::size_t max_depth_ GENTRIUS_GUARDED_BY(role_) = 0;
};

/// Simulated distributed scheduler: the deterministic twin of the
/// lock-free parallel::DequeScheduler. One bounded ring per worker,
/// owner-local LIFO push/pop charged flat (deque_owner_cost — uncontended
/// atomics, never serialized), FIFO steals under the *same* seeded
/// VictimSelector streams as the real scheduler, with thief traffic
/// serialized per victim deque on its steal_free_at (the CAS'd top index
/// behaves as a serial resource among thieves). The owner/thief race for a
/// deque's final element is not modeled (see CostModel). All state is
/// guarded by the SequentialRole capability exactly like VirtualQueue's.
class VirtualDeques {
 public:
  VirtualDeques(std::size_t workers, const CostModel& costs,
                std::uint64_t steal_seed)
      : workers_(workers), costs_(&costs) {
    const std::size_t cap = parallel::steal_deque_capacity_for(workers);
    support::RoleGuard guard(role_);
    deques_.resize(workers);
    for (auto& d : deques_) d.slots.resize(cap);
    selectors_.reserve(workers);
    sinks_.reserve(workers);
    for (std::size_t tid = 0; tid < workers; ++tid) {
      selectors_.emplace_back(steal_seed, tid, workers);
      sinks_.push_back(Sink{this, tid});
    }
  }

  support::SequentialRole& role() GENTRIUS_RETURN_CAPABILITY(role_) {
    return role_;
  }

  /// Per-worker TaskSink adapter: worker tid's offers land in its own ring.
  class Sink final : public core::TaskSink {
   public:
    Sink(VirtualDeques* owner, std::size_t tid) : owner_(owner), tid_(tid) {}
    // Reached from Enumerator::step while the event loop holds the role.
    bool try_push(Task& task) override GENTRIUS_REQUIRES(owner_->role_) {
      return owner_->push(tid_, task);
    }

    // Adaptive-policy starvation probe: the owner's own ring depth, the
    // deterministic twin of parallel::DequeScheduler::Handle::backlog.
    std::size_t backlog() const override GENTRIUS_REQUIRES(owner_->role_) {
      return owner_->deques_[tid_].size;
    }

    // Twin of Handle::backlog_limit: the owner's own ring size. The
    // handoff_penalty stays the TaskSink default of 1, like the real
    // deques — no globally serialized hand-off section to repay.
    std::size_t backlog_limit() const override
        GENTRIUS_REQUIRES(owner_->role_) {
      return owner_->deques_[tid_].slots.size();
    }

   private:
    VirtualDeques* owner_;
    std::size_t tid_;
  };

  core::TaskSink* sink_for(std::size_t tid) { return &sinks_[tid]; }

  void set_producer_clock(double* clock) GENTRIUS_REQUIRES(role_) {
    producer_clock_ = clock;
  }

  /// Fresh sweep-start draw for a worker entering the idle state. One draw
  /// per idle episode (not per replan): the stored start is reused until
  /// the steal commits, so the schedule is a pure function of the seed and
  /// the deterministic event order.
  std::size_t draw_sweep_start(std::size_t tid) GENTRIUS_REQUIRES(role_) {
    return selectors_[tid].begin_sweep();
  }

  struct StealPlan {
    bool valid = false;
    std::size_t victim = 0;
    std::size_t failed_probes = 0;  ///< victims scanned before the hit
    double available_at = 0.0;      ///< head entry ready and lock free
  };

  /// Plans worker `tid`'s steal: scan victims in seeded cyclic order from
  /// `sweep_start`; take the first victim whose oldest task is already
  /// acquirable at `now`, else the one that becomes acquirable earliest
  /// (scan order breaks ties). Pure planning — no state changes; the event
  /// loop replans every iteration and commits only when the steal precedes
  /// every running worker's next step.
  StealPlan plan_steal(std::size_t tid, double now, std::size_t sweep_start)
      const GENTRIUS_REQUIRES(role_) {
    StealPlan plan;
    if (workers_ < 2) return plan;
    std::size_t scanned = 0;
    for (std::size_t k = 0; k < workers_; ++k) {
      const std::size_t victim = (sweep_start + k) % workers_;
      if (victim == tid) continue;
      const Ring& d = deques_[victim];
      if (d.size == 0) {
        ++scanned;
        continue;
      }
      const double avail =
          std::max(d.slots[d.head].available_at, d.steal_free_at);
      if (avail <= now) {  // ready right now: the sweep stops here
        plan.valid = true;
        plan.victim = victim;
        plan.failed_probes = scanned;
        plan.available_at = avail;
        return plan;
      }
      if (!plan.valid || avail < plan.available_at) {
        plan.valid = true;
        plan.victim = victim;
        plan.failed_probes = scanned;
        plan.available_at = avail;
      }
      ++scanned;
    }
    return plan;
  }

  /// Commits a planned steal for a thief whose sweep begins at its current
  /// clock: failed probes are charged first, then the successful probe and
  /// the steal CAS/hand-off (serialized on that deque's steal_free_at —
  /// thieves targeting one deque pass the contended top index around one
  /// at a time). Returns the thief's clock after the hand-off.
  double commit_steal(const StealPlan& plan, double thief_clock, Task& out)
      GENTRIUS_REQUIRES(role_) {
    GENTRIUS_DCHECK(plan.valid);
    Ring& d = deques_[plan.victim];
    GENTRIUS_DCHECK(d.size > 0);
    const double probed =
        thief_clock + static_cast<double>(plan.failed_probes) *
                          (costs_->steal_attempt_cost + costs_->failed_probe_cost);
    const double start = std::max(probed, plan.available_at);
    const double end =
        start + costs_->steal_attempt_cost + costs_->deque_steal_cost;
    swap_out(out, d.slots[d.head].task);
    d.head = (d.head + 1) % d.slots.size();
    --d.size;
    d.steal_free_at = end;
    ++stolen_;
    probes_ += plan.failed_probes + 1;
    failed_probes_ += plan.failed_probes;
    return end;
  }

  bool own_deque_empty(std::size_t tid) const GENTRIUS_REQUIRES(role_) {
    return deques_[tid].size == 0;
  }

  /// Owner-side LIFO pop (the real acquire()'s first resort): takes the
  /// newest task from the worker's own ring. The lock-free owner path is
  /// never serialized against thieves, so the pop is charged flat at
  /// deque_owner_cost. Returns the owner's clock after the pop.
  double own_pop(std::size_t tid, double now, Task& out)
      GENTRIUS_REQUIRES(role_) {
    Ring& d = deques_[tid];
    GENTRIUS_DCHECK(d.size > 0);
    const double end = now + costs_->deque_owner_cost;
    --d.size;
    swap_out(out, d.slots[(d.head + d.size) % d.slots.size()].task);
    return end;
  }

  core::SchedulerStats stats() const GENTRIUS_REQUIRES(role_) {
    core::SchedulerStats s;
    s.tasks_stolen = stolen_;
    s.steal_attempts = probes_;
    s.failed_steal_probes = failed_probes_;
    for (const Ring& d : deques_) {
      s.queue_full_rejections += d.rejections;
      s.max_queue_depth = std::max<std::uint64_t>(s.max_queue_depth, d.max_depth);
    }
    return s;
  }

 private:
  struct Entry {
    Task task;
    double available_at = 0.0;
  };
  struct Ring {
    std::vector<Entry> slots;
    std::size_t head = 0;
    std::size_t size = 0;
    double steal_free_at = 0.0;  ///< thief-side serial resource (top CAS)
    std::uint64_t rejections = 0;
    std::size_t max_depth = 0;
  };

  static void swap_out(Task& dst, Task& src) {
    std::swap(dst.path, src.path);
    dst.next_taxon = src.next_taxon;
    dst.predicted_states = src.predicted_states;
    std::swap(dst.branches, src.branches);
  }

  // Reached through core::TaskSink from inside Enumerator::step, which only
  // runs while the event loop (holding the role) steps the producer.
  bool push(std::size_t tid, Task& task) GENTRIUS_REQUIRES(role_) {
    Ring& d = deques_[tid];
    GENTRIUS_DCHECK_LE(d.size, d.slots.size());
    if (d.size >= d.slots.size()) {
      ++d.rejections;  // free bail, like VirtualQueue's rejected push
      return false;
    }
    GENTRIUS_DCHECK(producer_clock_ != nullptr);
    // Owner pushes are lock-free and uncontended: flat charge, no
    // serialization against thieves (the release-store publish needs no
    // wait on the thief-side top CAS).
    *producer_clock_ += costs_->deque_owner_cost;
    Entry& slot = d.slots[(d.head + d.size) % d.slots.size()];
    swap_out(slot.task, task);
    slot.available_at = *producer_clock_;
    ++d.size;
    if (d.size > d.max_depth) d.max_depth = d.size;
    return true;
  }

  const std::size_t workers_;
  const CostModel* costs_;
  support::SequentialRole role_;
  std::vector<Ring> deques_ GENTRIUS_GUARDED_BY(role_);
  std::vector<parallel::VictimSelector> selectors_ GENTRIUS_GUARDED_BY(role_);
  std::vector<Sink> sinks_;
  double* producer_clock_ GENTRIUS_GUARDED_BY(role_) = nullptr;
  std::uint64_t stolen_ GENTRIUS_GUARDED_BY(role_) = 0;
  std::uint64_t probes_ GENTRIUS_GUARDED_BY(role_) = 0;
  std::uint64_t failed_probes_ GENTRIUS_GUARDED_BY(role_) = 0;
};

struct VWorker {
  std::unique_ptr<Enumerator> enumerator;
  double clock = 0.0;
  enum class State { kRunning, kIdle, kDone } state = State::kIdle;
  std::uint64_t last_flushes = 0;
  std::uint64_t tasks_executed = 0;
  std::size_t sweep_start = 0;  // victim-scan origin for this idle episode
  core::Terrace::SelectionStats last_stats;  // for per-step cost deltas
  std::uint64_t last_offer_evals = 0;        // for offer_eval_cost deltas
};

Result run_simulation(const Problem& problem, const Options& user_options,
                      std::size_t n_threads, const CostModel& costs,
                      const VirtualRules& rules, bool work_stealing) {
  GENTRIUS_CHECK(n_threads >= 1);
  core::validate_options(user_options, core::OptionsSurface::kSingleInstance);
  // Diagnostic only: how long the simulation itself took on the host. The
  // simulated schedule depends exclusively on virtual clocks.
  support::Stopwatch wall;  // lint:allow(wall-clock)

  Options options = user_options;
  const bool serial = n_threads == 1;
  if (serial) {
    // Sequential Gentrius uses plain global counters: exact limits, no
    // publication cost.
    options.tree_flush_batch = 1;
    options.state_flush_batch = 1;
    options.dead_end_flush_batch = 1;
  }
  const double flush_unit =
      serial ? 0.0
             : costs.flush_cost +
                   costs.flush_contention * static_cast<double>(n_threads - 1);

  const bool distributed =
      options.scheduler == core::Scheduler::kDistributedDeques &&
      work_stealing && !serial;

  CounterSink sink(options.stop);
  // The central queue's per-op cost grows with the number of workers
  // bouncing its cache line (see CostModel::queue_contention).
  VirtualQueue queue(
      parallel::queue_capacity_for(n_threads), n_threads,
      costs.queue_cost +
          costs.queue_contention * static_cast<double>(n_threads - 1),
      // A rejected push holds the same contended mutex (when charged at
      // all; the default 0 keeps the historical free-bail model).
      costs.queue_reject_cost > 0.0
          ? costs.queue_reject_cost +
                costs.queue_contention * static_cast<double>(n_threads - 1)
          : 0.0);
  VirtualDeques deques(n_threads, costs, options.steal_seed);
  // Single-threaded simulation: assume the scheduler role for the whole run.
  support::RoleGuard scheduler(queue.role());
  support::RoleGuard deque_scheduler(deques.role());

  std::vector<VWorker> workers(n_threads);
  Result result;

  // --- startup: spawn, private prefix replay, initial split slices --------
  for (std::size_t tid = 0; tid < n_threads; ++tid) {
    VWorker& w = workers[tid];
    w.enumerator = std::make_unique<Enumerator>(problem, options, sink);
    if (work_stealing && !serial)
      w.enumerator->set_task_sink(distributed ? deques.sink_for(tid)
                                              : static_cast<core::TaskSink*>(&queue));
    w.clock = serial ? 0.0 : costs.spawn_cost;
    const auto& prefix = w.enumerator->run_prefix(/*count=*/tid == 0);
    w.clock += static_cast<double>(prefix.length) * costs.state_cost;
    // Selection work done during the prefix is covered by its state_cost
    // charge; the per-step surcharges start from this snapshot.
    w.last_stats = w.enumerator->terrace().selection_stats();
    if (tid == 0) {
      result.prefix_length = prefix.length;
      if (prefix.outcome == Enumerator::Prefix::Outcome::kSplit)
        result.initial_split_branches = prefix.branches.size();
      if (prefix.outcome == Enumerator::Prefix::Outcome::kEmpty)
        result.reason = StopReason::kEmptyStand;
    }
    if (prefix.outcome == Enumerator::Prefix::Outcome::kSplit) {
      const std::size_t total = prefix.branches.size();
      const std::size_t base = total / n_threads;
      const std::size_t extra = total % n_threads;
      const std::size_t begin = tid * base + std::min(tid, extra);
      const std::size_t len = base + (tid < extra ? 1 : 0);
      GENTRIUS_DCHECK_LE(begin + len, total);
      if (len > 0) {
        std::vector<core::EdgeId> slice(
            prefix.branches.begin() + static_cast<std::ptrdiff_t>(begin),
            prefix.branches.begin() + static_cast<std::ptrdiff_t>(begin + len));
        w.enumerator->begin_branches(prefix.split_taxon, std::move(slice));
        w.state = VWorker::State::kRunning;
      }
    }
  }

  // --- event loop: always advance the earliest actionable worker ----------
  const double inf = std::numeric_limits<double>::infinity();
  Task steal_scratch;  // pooled steal target, swapped with queue slots
  for (;;) {
    // Earliest running worker.
    std::size_t run_idx = n_threads;
    double run_time = inf;
    // Earliest idle worker (a potential thief).
    std::size_t idle_idx = n_threads;
    double idle_clock = inf;
    for (std::size_t i = 0; i < n_threads; ++i) {
      const VWorker& w = workers[i];
      if (w.state == VWorker::State::kRunning && w.clock < run_time) {
        run_time = w.clock;
        run_idx = i;
      }
      if (w.state == VWorker::State::kIdle && w.clock < idle_clock) {
        idle_clock = w.clock;
        idle_idx = i;
      }
    }
    // Planning the earliest idle worker's steal is sufficient: idle deques
    // are empty (a worker parks only after draining its own ring), so every
    // thief sees the same candidate set and the earliest thief's
    // acquisition time is a lower bound on the others'.
    const bool stopped = sink.stop_requested();
    double steal_time = inf;
    VirtualDeques::StealPlan plan;
    if (work_stealing && !stopped && idle_idx < n_threads) {
      if (distributed) {
        plan = deques.plan_steal(idle_idx, idle_clock,
                                 workers[idle_idx].sweep_start);
        if (plan.valid) steal_time = std::max(idle_clock, plan.available_at);
      } else if (!queue.empty()) {
        steal_time = std::max(idle_clock, queue.pop_available_at());
      }
    }

    if (run_idx == n_threads && steal_time == inf) break;  // quiescent

    if (steal_time < run_time) {
      // An idle worker takes the oldest available task and replays its path.
      VWorker& w = workers[idle_idx];
      GENTRIUS_DCHECK_GE(steal_time, w.clock);  // virtual time never rewinds
      w.clock = distributed
                    ? deques.commit_steal(plan, w.clock, steal_scratch)
                    : queue.pop_front(steal_scratch, steal_time);
      const std::size_t replayed = w.enumerator->adopt_task(steal_scratch);
      w.clock += static_cast<double>(replayed) * costs.replay_cost;
      ++w.tasks_executed;
      w.state = VWorker::State::kRunning;
      continue;
    }

    VWorker& w = workers[run_idx];
    if (rules.max_virtual_time && w.clock >= *rules.max_virtual_time)
      sink.request_stop(StopReason::kTimeLimit);

    queue.set_producer_clock(&w.clock);
    deques.set_producer_clock(&w.clock);
    const auto step = w.enumerator->step();
    const std::uint64_t flushes = w.enumerator->counters().flush_count();
    GENTRIUS_DCHECK_GE(flushes, w.last_flushes);  // flush counts are monotone
    w.clock += costs.state_cost +
               static_cast<double>(flushes - w.last_flushes) * flush_unit;
    w.last_flushes = flushes;
    // Selection-work surcharges (defaults are all zero).
    {
      const auto& sel = w.enumerator->terrace().selection_stats();
      w.clock +=
          static_cast<double>(sel.fresh_counts - w.last_stats.fresh_counts) *
              costs.fresh_count_cost +
          static_cast<double>(sel.cached_counts - w.last_stats.cached_counts) *
              costs.cached_count_cost +
          static_cast<double>(sel.existence_checks -
                              w.last_stats.existence_checks) *
              costs.existence_check_cost +
          static_cast<double>(sel.mappings_rebuilt -
                              w.last_stats.mappings_rebuilt) *
              costs.mapping_rebuild_cost;
      w.last_stats = sel;
    }
    // Adaptive-offer accounting: each cutoff evaluation this step performed
    // (accepted or suppressed) costs offer_eval_cost. kPaperFixed evaluates
    // nothing, so default-policy schedules are charged exactly as before.
    {
      const std::uint64_t evals =
          w.enumerator->offer_stats().offers_evaluated;
      GENTRIUS_DCHECK_GE(evals, w.last_offer_evals);
      w.clock += static_cast<double>(evals - w.last_offer_evals) *
                 costs.offer_eval_cost;
      w.last_offer_evals = evals;
    }

    switch (step) {
      case Enumerator::Step::kWorked:
        break;
      case Enumerator::Step::kExhausted: {
        const std::size_t removed = w.enumerator->rewind_to_split();
        w.clock += static_cast<double>(removed) * costs.rewind_cost;
        if (!work_stealing || serial) {
          w.state = VWorker::State::kDone;
          break;
        }
        if (distributed && !sink.stop_requested() &&
            !deques.own_deque_empty(run_idx)) {
          // The real acquire()'s first resort: the worker's own ring,
          // newest task first (deepest subtree, warm replay path).
          w.clock = deques.own_pop(run_idx, w.clock, steal_scratch);
          const std::size_t replayed =
              w.enumerator->adopt_task(steal_scratch);
          w.clock += static_cast<double>(replayed) * costs.replay_cost;
          ++w.tasks_executed;
          break;  // still running
        }
        w.state = VWorker::State::kIdle;
        if (distributed) w.sweep_start = deques.draw_sweep_start(run_idx);
        break;
      }
      case Enumerator::Step::kStopped:
        w.state = VWorker::State::kDone;
        break;
    }
  }

  // --- teardown ------------------------------------------------------------
  double makespan = 0.0;
  for (VWorker& w : workers) {
    w.enumerator->counters().flush_all();
    makespan = std::max(makespan, w.clock);
    result.tasks_executed += w.tasks_executed;
    result.tasks_offered += w.enumerator->tasks_offered();
    result.selection.merge(w.enumerator->terrace().selection_stats());
    auto& trees = w.enumerator->collected_trees();
    result.trees.insert(result.trees.end(),
                        std::make_move_iterator(trees.begin()),
                        std::make_move_iterator(trees.end()));
  }
  result.stand_trees = sink.stand_trees();
  result.intermediate_states = sink.states();
  result.dead_ends = sink.dead_ends();
  if (result.reason != StopReason::kEmptyStand) result.reason = sink.reason();
  result.virtual_makespan = makespan;
  result.sched = distributed ? deques.stats() : queue.stats();
  // Enumerator-side offer-policy counters join the scheduler-side stats,
  // mirroring the real pool's assemble().
  for (VWorker& w : workers)
    result.sched.merge(w.enumerator->offer_stats());
  result.seconds = wall.seconds();
  return result;
}

}  // namespace

Result run_virtual(const Problem& problem, const Options& options,
                   std::size_t n_threads, const CostModel& costs,
                   const VirtualRules& rules) {
  return run_simulation(problem, options, n_threads, costs, rules,
                        /*work_stealing=*/true);
}

Result run_virtual_static_split(const Problem& problem, const Options& options,
                                std::size_t n_threads, const CostModel& costs,
                                const VirtualRules& rules) {
  return run_simulation(problem, options, n_threads, costs, rules,
                        /*work_stealing=*/false);
}

}  // namespace gentrius::vthread
