// Virtual-time execution of parallel Gentrius.
//
// The paper's evaluation platform is a 48-core Xeon; this reproduction runs
// where only one hardware core may be available, so parallel *speedups*
// cannot be observed from wall-clock time. Instead, this driver executes
// the identical scheduling policy as src/parallel — N_t workers, the same
// scheduler selected by Options::scheduler (the paper's bounded central
// queue with its capacity rule, or the distributed per-worker steal deques
// with seeded victim selection), the same ≥3-remaining-taxa splitting rule,
// the same batched counter publication — as a deterministic
// discrete-event simulation: each worker has a virtual clock, the globally
// earliest runnable worker is stepped, and every operation is charged from
// an explicit cost model. Load imbalance, speedup plateaus, stopping-rule
// distortions and super-linear effects then emerge from exactly the
// mechanism the paper describes, independent of host parallelism.
//
// Because workers are stepped in virtual-time order by a single OS thread,
// the simulation is fully deterministic and repeatable. That guarantee is
// enforced mechanically: tools/lint_determinism.py (a CTest test) rejects
// wall-clock reads, ambient randomness and unordered iteration in this
// directory, and the scheduler state is guarded by a Clang thread-safety
// SequentialRole capability (see docs/TOOLING.md).
#pragma once

#include <cstddef>
#include <optional>

#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"

namespace gentrius::vthread {

/// Virtual cost of each operation, in abstract work units. One unit ~ one
/// state expansion (the paper measures "hundreds of thousands of states per
/// second", so 1 unit corresponds to a few microseconds of real time).
struct CostModel {
  double state_cost = 1.0;    ///< expanding a state / consuming a terminal event
  double replay_cost = 0.15;  ///< per insertion when replaying a stolen task's path
  double rewind_cost = 0.05;  ///< per removal returning to I0
  double queue_cost = 0.5;    ///< one queue push or pop (critical section)
  /// Serialized mutex hold charged to a producer whose push bounces off a
  /// full ring. The real TaskQueue::try_push acquires the contended mutex
  /// even when it only learns the queue is full, so on flooding workloads
  /// the rejected offers are real serialized traffic; the historical model
  /// treated them as free bails, and the default 0 preserves that (and
  /// every golden trace). Sensitivity/bench runs set it to ~queue_cost to
  /// make the simulated clock follow the real lock (the hold is the same
  /// acquisition; only the O(1) swap is skipped). Like queue_cost it gains
  /// the queue_contention surcharge per extra worker when non-zero.
  double queue_reject_cost = 0.0;
  double spawn_cost = 200.0;  ///< per-thread creation/teardown (N_t > 1 only)

  // Distributed-scheduler terms (Options::Scheduler::kDistributedDeques),
  // mirroring the lock-free Chase-Lev StealDeque. The owner's push/pop is
  // an uncontended atomic path — cheap and never serialized against other
  // workers. A steal is a CAS on the victim's top index: thieves targeting
  // the same deque hand the contended cache line around one at a time, so
  // steals are modeled as a serial resource per deque (an operation begins
  // no earlier than the previous steal's completion) while owner
  // operations are charged flat and unserialized. The owner/thief race for
  // the final element is deliberately not modeled: it costs one extra CAS
  // on a line the participants already hold, is rare (it needs a
  // one-element deque and a simultaneous probe), and either resolution
  // keeps the task counted exactly once.
  double steal_attempt_cost = 0.05;  ///< probing one victim deque
  double failed_probe_cost = 0.02;   ///< surcharge when the probe found nothing
  double deque_owner_cost = 0.08;    ///< one owner push/pop (uncontended atomics)
  double deque_steal_cost = 0.3;     ///< one steal CAS + hand-off (serialized per deque)
  /// Per-op surcharge on the central queue's mutex for each *additional*
  /// worker sharing it (same shape as flush_contention): hand-off of a
  /// contended cache line costs roughly linearly in the number of cores
  /// bouncing it, so a lock shared by 48 workers is far more expensive per
  /// acquisition than an uncontended one. The per-worker deques do not pay
  /// this term — owner traffic is private and thief traffic serializes
  /// only on the one deque being robbed, which deque_steal_cost's serial-
  /// resource treatment already represents.
  double queue_contention = 0.15;
  /// Atomic counter publication: a few hundred ns = a few percent of a state
  /// expansion (paper §III-B cites [18]: up to a few thousand cycles).
  double flush_cost = 0.02;
  double flush_contention = 0.0015;  ///< extra cost per extra thread

  /// Adaptive offer policy (Options::OfferPolicy::kAdaptiveGW): one cutoff
  /// evaluation — GW-table lookup, backlog probe, threshold compare —
  /// charged per offer *evaluated*, accepted or suppressed, so the model's
  /// own overhead shows up in the simulated makespan. A suppressed offer
  /// costs exactly this (it never reaches the sink, so no queue charge);
  /// kPaperFixed evaluates nothing and is unaffected.
  double offer_eval_cost = 0.02;

  // Selection-work surcharges, charged from Terrace::SelectionStats deltas
  // on top of the flat state_cost. The defaults are zero — state_cost
  // already represents an average state — but sensitivity studies can make
  // the simulated clock follow the engine's actual cost profile, where a
  // journal-replay cache refresh is far cheaper than a full recount and
  // mapping rebuilds dominate (docs/PERFORMANCE.md).
  double fresh_count_cost = 0.0;      ///< per full admissible-count recount
  double cached_count_cost = 0.0;     ///< per journal-replay cache refresh
  double existence_check_cost = 0.0;  ///< per zero/nonzero dead-end probe
  double mapping_rebuild_cost = 0.0;  ///< per constraint-mapping rebuild

  // Sharded-run terms (decompose::run_virtual): a decomposed run dispatches
  // each shard as its own simulation and merges the results afterwards.
  // Dispatch covers building the shard sub-problem and seeding its workers
  // (same order of magnitude as spawn_cost); merge covers the product /
  // stats combination per shard. Charged by the sharded driver, not by
  // run_virtual itself, so monolithic simulations are unaffected; see
  // decompose/sharded.hpp for how they enter the sharded makespan under the
  // sequential and concurrent shard schedules.
  double shard_dispatch_cost = 150.0;  ///< per shard: sub-problem build + seed
  double shard_merge_cost = 30.0;      ///< per shard: count/stats combination
};

struct VirtualRules {
  /// Stopping rule 3 measured on the virtual clock (work units) instead of
  /// wall-clock seconds. Unset = no virtual time limit.
  std::optional<double> max_virtual_time;
};

/// Runs Gentrius on n_threads virtual workers. The returned Result carries
/// the virtual makespan in Result::virtual_makespan (Result::seconds is the
/// real single-core time the simulation itself took). For n_threads == 1
/// this is sequential Gentrius with virtual-time accounting (no spawn or
/// queue costs), the denominator of every speedup in the benchmarks.
core::Result run_virtual(const core::Problem& problem,
                         const core::Options& options, std::size_t n_threads,
                         const CostModel& costs = {},
                         const VirtualRules& rules = {});

/// Ablation: initial split only, no work stealing.
core::Result run_virtual_static_split(const core::Problem& problem,
                                      const core::Options& options,
                                      std::size_t n_threads,
                                      const CostModel& costs = {},
                                      const VirtualRules& rules = {});

}  // namespace gentrius::vthread
