// Online Galton–Watson subtree-size model (Options::OfferPolicy::kAdaptiveGW).
//
// The branch-and-bound tree is a branching process: the state reached after
// inserting all but r taxa "reproduces" by inserting the next chosen taxon
// into each of its admissible branches, so the offspring count of a stratum-r
// state is exactly the admissible-branch count the enumerator already
// computes there (0 at a dead end). Keying the offspring distribution by the
// remaining-taxon count r — the natural stratification of this process,
// since every child of a stratum-r state sits at stratum r-1 — gives the
// classic Galton–Watson recurrence for expected subtree work in states:
//
//     W(0) = 0,      W(r) = m(r) * (1 + W(r-1))
//
// where m(r) is the mean offspring count observed at stratum r. A frame at
// stratum r delegating k of its branches therefore hands the thief
// k * (1 + W(r-1)) expected states. `maybe_offer_task` compares that
// prediction against an adaptive cutoff (hand-off cost scaled by the live
// sink backlog) to decide offer vs expand locally — see options.hpp.
//
// Everything here is per-enumerator (no sharing, no locks) and a pure
// function of the states that worker visited, so the virtual-time simulator
// remains bit-identical across replays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gentrius/options.hpp"
#include "support/invariant.hpp"

namespace gentrius::core {

class GwOfferModel {
 public:
  GwOfferModel() = default;

  /// `max_remaining` = the instance's missing-taxon count: strata run
  /// 0..max_remaining inclusive.
  GwOfferModel(std::size_t max_remaining, const Options& options) {
    reset(max_remaining, options);
  }

  void reset(std::size_t max_remaining, const Options& options) {
    prior_mean_ = options.gw_prior_offspring;
    prior_weight_ = options.gw_prior_weight;
    refit_period_ = options.gw_refit_period == 0 ? 1 : options.gw_refit_period;
    offspring_sum_.assign(max_remaining + 1, 0.0);
    samples_.assign(max_remaining + 1, 0);
    expected_.assign(max_remaining + 1, 0.0);
    since_refit_ = refit_period_;  // first prediction fits from the prior
  }

  /// Records one observation: the taxon chosen at a state with `remaining`
  /// taxa left had `offspring` admissible branches (0 at a dead end).
  void record(std::size_t remaining, std::size_t offspring) {
    GENTRIUS_DCHECK_LT(remaining, offspring_sum_.size());
    offspring_sum_[remaining] += static_cast<double>(offspring);
    ++samples_[remaining];
    ++since_refit_;
  }

  /// Expected states a thief expands per delegated branch of a frame whose
  /// state has `remaining` taxa left: the branch insertion itself plus the
  /// expected subtree below it, 1 + W(remaining - 1). Lazily refits the
  /// W table when enough new samples accumulated.
  double expected_branch_states(std::size_t remaining) {
    if (since_refit_ >= refit_period_) refit();
    GENTRIUS_DCHECK_GT(remaining, 0u);
    GENTRIUS_DCHECK_LT(remaining, expected_.size());
    return 1.0 + expected_[remaining - 1];
  }

  /// Smoothed offspring mean at a stratum (exposed for tests/diagnostics).
  double offspring_mean(std::size_t remaining) const {
    GENTRIUS_DCHECK_LT(remaining, offspring_sum_.size());
    return (offspring_sum_[remaining] + prior_mean_ * prior_weight_) /
           (static_cast<double>(samples_[remaining]) + prior_weight_);
  }

  std::uint64_t samples(std::size_t remaining) const {
    GENTRIUS_DCHECK_LT(remaining, samples_.size());
    return samples_[remaining];
  }

 private:
  void refit() {
    since_refit_ = 0;
    // Supercritical strata (m > 1) grow W geometrically; cap it so the
    // product never overflows — beyond the cap every cutoff passes anyway.
    constexpr double kMaxExpected = 1e15;
    double below = 0.0;  // W(r-1)
    for (std::size_t r = 0; r < expected_.size(); ++r) {
      double w = r == 0 ? 0.0 : offspring_mean(r) * (1.0 + below);
      if (w > kMaxExpected) w = kMaxExpected;
      expected_[r] = w;
      below = w;
    }
  }

  double prior_mean_ = 2.0;
  double prior_weight_ = 4.0;
  std::uint32_t refit_period_ = 64;
  std::uint32_t since_refit_ = 0;
  std::vector<double> offspring_sum_;  // indexed by remaining-taxon count
  std::vector<std::uint64_t> samples_;
  std::vector<double> expected_;       // W(r), refreshed by refit()
};

}  // namespace gentrius::core
