// Sequential Gentrius: the baseline the paper parallelizes.
#pragma once

#include "gentrius/enumerator.hpp"
#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"

namespace gentrius::core {

/// Runs sequential Gentrius to completion or until a stopping rule fires.
/// Counter batching is forced to 1 so the limits are exact, matching the
/// original implementation's behaviour.
Result run_serial(const Problem& problem, const Options& options);

/// Convenience overload: builds the Problem from raw constraint trees.
Result run_serial(const std::vector<phylo::Tree>& constraints,
                  const Options& options);

}  // namespace gentrius::core
