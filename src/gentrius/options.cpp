#include "gentrius/options.hpp"

#include <string>

#include "support/error.hpp"

namespace gentrius::core {

using support::InvalidInput;

void validate_options(const Options& options, OptionsSurface surface) {
  // ---- surface-independent combination rules -------------------------------

  if (options.tree_flush_batch == 0 || options.state_flush_batch == 0 ||
      options.dead_end_flush_batch == 0)
    throw InvalidInput(
        "Options: counter flush batches must be >= 1 (a batch of 0 would "
        "never publish local counts, so no stopping rule could fire)");

  // Rejects NaN too: NaN fails both comparisons.
  if (!(options.offer_split_fraction > 0.0 &&
        options.offer_split_fraction < 1.0))
    throw InvalidInput(
        "Options::offer_split_fraction must lie strictly between 0 and 1 "
        "(both sides of an accepted offer must keep work)");

  if (!options.insertion_order.empty() && options.shuffle_seed)
    throw InvalidInput(
        "Options: insertion_order and shuffle_seed are mutually exclusive — "
        "an explicit order leaves nothing to shuffle");

  if (options.collect_trees && options.tree_names == nullptr &&
      surface == OptionsSurface::kIncremental)
    throw InvalidInput(
        "Options: the incremental session collects stand trees as labelled "
        "Newick; set Options::tree_names when collect_trees is on");

  // ---- per-surface rules ---------------------------------------------------

  switch (surface) {
    case OptionsSurface::kSingleInstance:
      if (options.decompose != Decompose::kOff)
        throw InvalidInput(
            "Options::decompose = kComponents is not honored by the "
            "single-instance drivers; use the decompose::run_* entry points "
            "(src/decompose), which shard and recombine");
      break;

    case OptionsSurface::kSharded:
      // Both decompose modes are meaningful here: kOff forwards to the
      // monolithic driver, kComponents shards. initial_constraint /
      // insertion_order are whole-instance references that run_sharded
      // clears per shard, so they stay legal.
      break;

    case OptionsSurface::kIncremental:
      if (options.decompose != Decompose::kComponents)
        throw InvalidInput(
            "Options::decompose = kOff cannot drive an incremental session: "
            "the component-level result cache needs the interaction-graph "
            "decomposition; set Options::decompose = kComponents");
      if (options.initial_constraint || !options.insertion_order.empty())
        throw InvalidInput(
            "Options: initial_constraint / insertion_order index the whole "
            "constraint list and cannot survive PAM edits; the incremental "
            "session rejects them");
      break;
  }
}

}  // namespace gentrius::core
