#include "gentrius/problem.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gentrius::core {

using support::InvalidInput;

Problem build_problem(std::vector<phylo::Tree> constraints,
                      const Options& options) {
  if (constraints.empty())
    throw InvalidInput("Gentrius needs at least one constraint tree");

  Problem p;
  p.constraints = std::move(constraints);

  phylo::TaxonId max_taxon = 0;
  bool any = false;
  for (const auto& t : p.constraints) {
    for (const phylo::TaxonId x : t.taxa()) {
      max_taxon = std::max(max_taxon, x);
      any = true;
    }
  }
  if (!any) throw InvalidInput("constraint trees contain no taxa");
  p.n_taxa = max_taxon + 1;

  p.all_taxa.resize(p.n_taxa);
  p.trees_of_taxon.assign(p.n_taxa, {});
  p.constraint_taxa.reserve(p.constraints.size());
  for (std::size_t i = 0; i < p.constraints.size(); ++i) {
    support::Bitset set(p.n_taxa);
    for (const phylo::TaxonId x : p.constraints[i].taxa()) {
      set.set(x);
      p.trees_of_taxon[x].push_back(static_cast<std::uint32_t>(i));
    }
    p.all_taxa |= set;
    p.constraint_taxa.push_back(std::move(set));
  }

  // Structural validation: every tree must be an unrooted binary tree (or a
  // star on < 4 taxa, which Tree guarantees by construction).
  for (const auto& t : p.constraints) {
    t.validate();
    if (t.leaf_count() == 0)
      throw InvalidInput("constraint tree with no taxa");
  }

  // Initial agile tree: heuristic 1 picks the constraint sharing the most
  // taxa with all remaining constraint trees (paper §II-B); only trees with
  // >= 3 taxa are usable as a starting topology.
  if (options.initial_constraint) {
    const std::size_t idx = *options.initial_constraint;
    if (idx >= p.constraints.size())
      throw InvalidInput("initial_constraint index out of range");
    if (p.constraints[idx].leaf_count() < 3)
      throw InvalidInput("initial constraint tree needs >= 3 taxa");
    p.initial_constraint = idx;
  } else if (options.select_initial_tree) {
    std::size_t best = p.constraints.size();
    std::size_t best_score = 0;
    for (std::size_t i = 0; i < p.constraints.size(); ++i) {
      if (p.constraints[i].leaf_count() < 3) continue;
      std::size_t score = 0;
      for (std::size_t j = 0; j < p.constraints.size(); ++j) {
        if (j == i) continue;
        score += p.constraint_taxa[i].intersection_count(p.constraint_taxa[j]);
      }
      if (best == p.constraints.size() || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    if (best == p.constraints.size())
      throw InvalidInput("no constraint tree with >= 3 taxa to start from");
    p.initial_constraint = best;
  } else {
    std::size_t first = p.constraints.size();
    for (std::size_t i = 0; i < p.constraints.size(); ++i) {
      if (p.constraints[i].leaf_count() >= 3) {
        first = i;
        break;
      }
    }
    if (first == p.constraints.size())
      throw InvalidInput("no constraint tree with >= 3 taxa to start from");
    p.initial_constraint = first;
  }

  const auto& init = p.constraint_taxa[p.initial_constraint];
  p.all_taxa.for_each([&](std::size_t x) {
    if (!init.test(x)) p.missing_taxa.push_back(static_cast<phylo::TaxonId>(x));
  });

  // Fixed-seed split-hash keys: deterministic across runs and threads.
  support::Rng rng(0x5eedc0de12345678ULL);
  p.taxon_keys.resize(p.n_taxa);
  for (auto& k : p.taxon_keys) k = rng.next() | 1;  // never zero

  return p;
}

// ---- canonical instance encoding -------------------------------------------

namespace {

using support::Fingerprint;
using support::mix_hash;

/// Hash of the subtree of `tree` on the far side of `v` seen from `from`,
/// with leaves valued by `color`. Children fold in sorted order, so the
/// hash depends only on the colored rooted topology, never on vertex ids.
std::uint64_t rooted_hash(const phylo::Tree& tree, phylo::VertexId v,
                          phylo::VertexId from,
                          const std::vector<std::uint64_t>& color) {
  const auto& vx = tree.vertex(v);
  if (vx.taxon != phylo::kNoTaxon) return mix_hash(0x1eafULL, color[vx.taxon]);
  std::uint64_t parts[3];
  std::size_t n = 0;
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].to == from) continue;
    parts[n++] = rooted_hash(tree, vx.adj[i].to, v, color);
  }
  std::sort(parts, parts + n);
  std::uint64_t h = 0x5b17ULL;
  for (std::size_t i = 0; i < n; ++i) h = mix_hash(h, parts[i]);
  return h;
}

std::size_t distinct_count(std::vector<std::uint64_t> values) {
  std::sort(values.begin(), values.end());
  return static_cast<std::size_t>(
      std::unique(values.begin(), values.end()) - values.begin());
}

/// One-round-at-a-time WL refinement until the number of color classes
/// stops growing. Each round, a taxon's new color folds its old color with
/// the sorted multiset of its per-tree rooted hashes (sorted: the encoding
/// must not depend on constraint order).
void refine_colors(const std::vector<phylo::Tree>& constraints,
                   const std::vector<phylo::TaxonId>& present,
                   std::vector<std::uint64_t>& color) {
  std::vector<std::uint64_t> active;
  active.reserve(present.size());
  for (const phylo::TaxonId x : present) active.push_back(color[x]);
  std::size_t distinct = distinct_count(active);

  std::vector<std::vector<std::uint64_t>> per_taxon(color.size());
  for (std::size_t round = 0; round <= present.size(); ++round) {
    for (const phylo::TaxonId x : present) per_taxon[x].clear();
    for (const auto& tree : constraints) {
      for (const phylo::TaxonId x : tree.taxa()) {
        const phylo::VertexId leaf = tree.leaf_of(x);
        std::uint64_t h = 0x0133ULL;  // singleton tree: no far side exists
        if (tree.leaf_count() > 1)
          h = rooted_hash(tree, tree.vertex(leaf).adj[0].to, leaf, color);
        per_taxon[x].push_back(h);
      }
    }
    for (const phylo::TaxonId x : present) {
      auto& hashes = per_taxon[x];
      std::sort(hashes.begin(), hashes.end());
      std::uint64_t h = mix_hash(0xc010ULL, color[x]);
      for (const std::uint64_t v : hashes) h = mix_hash(h, v);
      color[x] = h;
    }
    active.clear();
    for (const phylo::TaxonId x : present) active.push_back(color[x]);
    const std::size_t now = distinct_count(active);
    if (now == distinct) break;  // partition stable
    distinct = now;
  }
}

/// Canonical serialization of one tree under rank labels: rooted at the
/// leaf of minimum rank, subtrees sorted lexicographically. Depends only on
/// the topology and the rank function — not on taxon ids or vertex layout.
std::string rank_subtree(const phylo::Tree& tree, phylo::VertexId v,
                         phylo::VertexId from,
                         const std::vector<std::size_t>& rank) {
  const auto& vx = tree.vertex(v);
  if (vx.taxon != phylo::kNoTaxon) return canonical_rank_label(rank[vx.taxon]);
  std::vector<std::string> parts;
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].to == from) continue;
    parts.push_back(rank_subtree(tree, vx.adj[i].to, v, rank));
  }
  std::sort(parts.begin(), parts.end());
  std::string out = "(";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(',');
    out += parts[i];
  }
  out.push_back(')');
  return out;
}

std::string encode_under_order(const std::vector<phylo::Tree>& constraints,
                               const std::vector<phylo::TaxonId>& order,
                               std::size_t universe) {
  std::vector<std::size_t> rank(universe, 0);
  for (std::size_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
  std::vector<std::string> lines;
  lines.reserve(constraints.size());
  for (const auto& tree : constraints)
    lines.push_back(rank_newick(tree, rank));
  // Sorted: the encoding must be constraint-order invariant.
  std::sort(lines.begin(), lines.end());
  std::string out = "gentrius-instance-v1 n=" + std::to_string(order.size()) +
                    " k=" + std::to_string(constraints.size()) + "\n";
  for (const auto& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

/// The (unique) internal vertex a leaf taxon hangs off.
phylo::VertexId leaf_neighbor(const phylo::Tree& tree, phylo::TaxonId t) {
  const auto& vert = tree.vertex(tree.leaf_of(t));
  for (const auto& he : vert.adj)
    if (he.edge != phylo::kNoId && tree.edge_alive(he.edge)) return he.to;
  return phylo::kNoId;
}

/// True when the transposition (a b) is an automorphism of the instance:
/// the two taxa appear in exactly the same trees and are cherry siblings
/// (same internal neighbor) wherever they appear — swapping two leaves of
/// an unrooted tree fixes its topology iff they share their attachment
/// vertex. The analog of the PAM twin-row rule (src/pam/canonical.cpp).
bool swappable_pair(const std::vector<phylo::Tree>& constraints,
                    phylo::TaxonId a, phylo::TaxonId b) {
  for (const auto& tree : constraints) {
    const bool has_a = tree.has_taxon(a);
    if (has_a != tree.has_taxon(b)) return false;
    if (!has_a) continue;
    if (tree.leaf_count() == 2) continue;  // swapping the only two leaves
    if (leaf_neighbor(tree, a) != leaf_neighbor(tree, b)) return false;
  }
  return true;
}

/// Individualization-refinement driver. `budget` caps the total number of
/// refinement branches tried across the whole recursion; on exhaustion ties
/// break by ascending taxon id (deterministic, possibly not
/// relabel-invariant — flagged on the result).
struct InstanceCanonicalizer {
  const std::vector<phylo::Tree>& constraints;
  const std::vector<phylo::TaxonId>& present;
  std::size_t universe;
  int budget = 48;
  bool invariant = true;

  std::string encode(std::vector<std::uint64_t> color,
                     std::vector<phylo::TaxonId>* order_out) {
    refine_colors(constraints, present, color);

    // Classes, ascending by (invariant) color value.
    std::vector<phylo::TaxonId> sorted = present;
    std::sort(sorted.begin(), sorted.end(),
              [&](phylo::TaxonId a, phylo::TaxonId b) {
                return color[a] != color[b] ? color[a] < color[b] : a < b;
              });
    std::size_t tie_begin = sorted.size();
    std::size_t tie_end = tie_begin;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (color[sorted[i]] != color[sorted[i + 1]]) continue;
      tie_begin = i;
      tie_end = i + 2;
      while (tie_end < sorted.size() &&
             color[sorted[tie_end]] == color[sorted[tie_begin]])
        ++tie_end;
      break;
    }

    if (tie_begin == sorted.size()) {  // discrete partition: done
      if (order_out) *order_out = sorted;
      return encode_under_order(constraints, sorted, universe);
    }

    // Fully swappable classes — cherry twins, the common tie on random
    // trees — are symmetric under the full symmetric group on the class,
    // so every branch would produce the identical encoding. Individualize
    // only the first member and spend no budget; this keeps the budget for
    // genuine (non-automorphic) ambiguity.
    bool all_twins = true;
    for (std::size_t i = tie_begin; all_twins && i + 1 < tie_end; ++i)
      for (std::size_t j = i + 1; j < tie_end; ++j)
        if (!swappable_pair(constraints, sorted[i], sorted[j])) {
          all_twins = false;
          break;
        }
    if (all_twins) {
      std::vector<std::uint64_t> branched = color;
      branched[sorted[tie_begin]] =
          mix_hash(0x1d1dULL, branched[sorted[tie_begin]]);
      return encode(std::move(branched), order_out);
    }

    const int class_size = static_cast<int>(tie_end - tie_begin);
    if (budget < class_size) {
      // Budget exhausted: id tie-break (sorted already breaks ties by id).
      invariant = false;
      if (order_out) *order_out = sorted;
      return encode_under_order(constraints, sorted, universe);
    }
    budget -= class_size;

    // Individualize each member of the first tied class in turn; keep the
    // lexicographically smallest encoding. Automorphic members produce the
    // identical encoding, so any automorphism-induced tie is harmless.
    std::string best;
    std::vector<phylo::TaxonId> best_order;
    for (std::size_t i = tie_begin; i < tie_end; ++i) {
      std::vector<std::uint64_t> branched = color;
      branched[sorted[i]] = mix_hash(0x1d1dULL, branched[sorted[i]]);
      std::vector<phylo::TaxonId> branch_order;
      std::string enc = encode(std::move(branched), &branch_order);
      if (best.empty() || enc < best) {
        best = std::move(enc);
        best_order = std::move(branch_order);
      }
    }
    if (order_out) *order_out = std::move(best_order);
    return best;
  }
};

}  // namespace

std::string canonical_rank_label(std::size_t rank) {
  std::string digits = std::to_string(rank);
  std::string out = "c";
  for (std::size_t i = digits.size(); i < 6; ++i) out.push_back('0');
  return out + digits;
}

std::string rank_newick(const phylo::Tree& tree,
                        const std::vector<std::size_t>& rank) {
  const auto taxa = tree.taxa();
  phylo::TaxonId root = taxa.front();
  for (const phylo::TaxonId x : taxa)
    if (rank[x] < rank[root]) root = x;
  if (taxa.size() == 1) return canonical_rank_label(rank[root]) + ";";
  const phylo::VertexId leaf = tree.leaf_of(root);
  return "(" + canonical_rank_label(rank[root]) + "," +
         rank_subtree(tree, tree.vertex(leaf).adj[0].to, leaf, rank) + ");";
}

CanonicalInstance canonicalize_instance(
    const std::vector<phylo::Tree>& constraints) {
  if (constraints.empty())
    throw InvalidInput("cannot canonicalize an empty constraint list");

  std::size_t universe = 0;
  for (const auto& tree : constraints)
    for (const phylo::TaxonId x : tree.taxa())
      universe = std::max<std::size_t>(universe, x + 1);
  if (universe == 0)
    throw InvalidInput("constraint trees contain no taxa");

  std::vector<bool> seen(universe, false);
  for (const auto& tree : constraints)
    for (const phylo::TaxonId x : tree.taxa()) seen[x] = true;
  std::vector<phylo::TaxonId> present;
  for (std::size_t x = 0; x < universe; ++x)
    if (seen[x]) present.push_back(static_cast<phylo::TaxonId>(x));

  InstanceCanonicalizer canon{constraints, present, universe};
  std::vector<std::uint64_t> color(universe, 0x1ULL);

  CanonicalInstance out;
  out.encoding = canon.encode(std::move(color), &out.order);
  out.fp = support::fingerprint_bytes(out.encoding);
  out.relabel_invariant = canon.invariant;
  return out;
}

support::Fingerprint instance_fingerprint(
    const std::vector<phylo::Tree>& constraints) {
  return canonicalize_instance(constraints).fp;
}

}  // namespace gentrius::core
