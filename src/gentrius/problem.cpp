#include "gentrius/problem.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gentrius::core {

using support::InvalidInput;

Problem build_problem(std::vector<phylo::Tree> constraints,
                      const Options& options) {
  if (constraints.empty())
    throw InvalidInput("Gentrius needs at least one constraint tree");

  Problem p;
  p.constraints = std::move(constraints);

  phylo::TaxonId max_taxon = 0;
  bool any = false;
  for (const auto& t : p.constraints) {
    for (const phylo::TaxonId x : t.taxa()) {
      max_taxon = std::max(max_taxon, x);
      any = true;
    }
  }
  if (!any) throw InvalidInput("constraint trees contain no taxa");
  p.n_taxa = max_taxon + 1;

  p.all_taxa.resize(p.n_taxa);
  p.trees_of_taxon.assign(p.n_taxa, {});
  p.constraint_taxa.reserve(p.constraints.size());
  for (std::size_t i = 0; i < p.constraints.size(); ++i) {
    support::Bitset set(p.n_taxa);
    for (const phylo::TaxonId x : p.constraints[i].taxa()) {
      set.set(x);
      p.trees_of_taxon[x].push_back(static_cast<std::uint32_t>(i));
    }
    p.all_taxa |= set;
    p.constraint_taxa.push_back(std::move(set));
  }

  // Structural validation: every tree must be an unrooted binary tree (or a
  // star on < 4 taxa, which Tree guarantees by construction).
  for (const auto& t : p.constraints) {
    t.validate();
    if (t.leaf_count() == 0)
      throw InvalidInput("constraint tree with no taxa");
  }

  // Initial agile tree: heuristic 1 picks the constraint sharing the most
  // taxa with all remaining constraint trees (paper §II-B); only trees with
  // >= 3 taxa are usable as a starting topology.
  if (options.initial_constraint) {
    const std::size_t idx = *options.initial_constraint;
    if (idx >= p.constraints.size())
      throw InvalidInput("initial_constraint index out of range");
    if (p.constraints[idx].leaf_count() < 3)
      throw InvalidInput("initial constraint tree needs >= 3 taxa");
    p.initial_constraint = idx;
  } else if (options.select_initial_tree) {
    std::size_t best = p.constraints.size();
    std::size_t best_score = 0;
    for (std::size_t i = 0; i < p.constraints.size(); ++i) {
      if (p.constraints[i].leaf_count() < 3) continue;
      std::size_t score = 0;
      for (std::size_t j = 0; j < p.constraints.size(); ++j) {
        if (j == i) continue;
        score += p.constraint_taxa[i].intersection_count(p.constraint_taxa[j]);
      }
      if (best == p.constraints.size() || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    if (best == p.constraints.size())
      throw InvalidInput("no constraint tree with >= 3 taxa to start from");
    p.initial_constraint = best;
  } else {
    std::size_t first = p.constraints.size();
    for (std::size_t i = 0; i < p.constraints.size(); ++i) {
      if (p.constraints[i].leaf_count() >= 3) {
        first = i;
        break;
      }
    }
    if (first == p.constraints.size())
      throw InvalidInput("no constraint tree with >= 3 taxa to start from");
    p.initial_constraint = first;
  }

  const auto& init = p.constraint_taxa[p.initial_constraint];
  p.all_taxa.for_each([&](std::size_t x) {
    if (!init.test(x)) p.missing_taxa.push_back(static_cast<phylo::TaxonId>(x));
  });

  // Fixed-seed split-hash keys: deterministic across runs and threads.
  support::Rng rng(0x5eedc0de12345678ULL);
  p.taxon_keys.resize(p.n_taxa);
  for (auto& k : p.taxon_keys) k = rng.next() | 1;  // never zero

  return p;
}

}  // namespace gentrius::core
