// Shared progress counters with batched publication (paper §III-B).
//
// The sequential Gentrius updates three global counters (stand trees,
// intermediate states, dead ends) at every state and checks the stopping
// rules. The parallel version keeps them in std::atomic variables; to avoid
// cache-line ping-pong each thread accumulates locally and publishes every
// 2^10 / 2^13 / 2^10 increments. A consequence the paper documents is that
// parallel runs can overshoot the limits by up to (threads * batch).
//
// Concurrency discipline: CounterSink is deliberately lock-free — every
// member is a std::atomic and there is no mutex to annotate for
// -Wthread-safety. The only cross-thread ordering that matters is the stop
// flag: request_stop publishes with release, stop_requested observes with
// acquire; the counter totals themselves are relaxed (they are monotone sums
// read exactly, after all writers flushed, by the assembling thread).
// LocalCounters is strictly thread-private (one per Enumerator, one
// Enumerator per worker) and must never be shared.
#pragma once

#include <atomic>
#include <cstdint>

#include "gentrius/options.hpp"
#include "support/invariant.hpp"
#include "support/stopwatch.hpp"

namespace gentrius::core {

/// Wakes workers parked in a scheduler's blocking wait. A scheduler
/// registers itself with the CounterSink so that request_stop can unpark
/// blocked consumers immediately — without a waker, a worker sleeping in a
/// condition-variable wait stays parked until some *other* worker observes
/// the stop flag and broadcasts, which can stall termination indefinitely
/// on an otherwise-idle pool. wake_all must be safe to call from any thread
/// and must tolerate repeated calls.
class StopWaker {
 public:
  virtual ~StopWaker() = default;
  virtual void wake_all() = 0;
};

/// Process-wide totals. One instance per run, shared by all threads.
class CounterSink {
 public:
  explicit CounterSink(const StoppingRules& rules) : rules_(rules) {}

  void add_stand_trees(std::uint64_t d) {
    // order: pure tally — fetch_add is atomic on its own; cross-thread
    // publication happens at thread join, and the threshold test below
    // only needs this thread's own returned value
    if (stand_trees_.fetch_add(d, std::memory_order_relaxed) + d >=
        rules_.max_stand_trees)
      request_stop(StopReason::kTreeLimit);
  }

  void add_states(std::uint64_t d) {
    // order: pure tally, same reasoning as add_stand_trees
    if (states_.fetch_add(d, std::memory_order_relaxed) + d >=
        rules_.max_states)
      request_stop(StopReason::kStateLimit);
  }

  void add_dead_ends(std::uint64_t d) {
    // order: pure tally; totals are read after workers join
    dead_ends_.fetch_add(d, std::memory_order_relaxed);
  }

  /// Stopping rule 3. Called by LocalCounters at its configured flush
  /// period; cheap relative to batch work. Wall-clock by definition (the
  /// paper's 168 h limit); equivalence tests disable this rule, so it
  /// cannot perturb serial-vs-parallel comparisons.
  void check_time() {
    // order: pure tally; totals are read after workers join
    time_checks_.fetch_add(1, std::memory_order_relaxed);
    if (clock_.seconds() >= rules_.max_seconds)
      request_stop(StopReason::kTimeLimit);
  }

  /// Registers (or clears, with nullptr) the scheduler to unpark when a
  /// stopping rule fires. Register before workers may block on the
  /// scheduler and clear only after every worker has been joined; the
  /// pointee must stay alive in between.
  void set_stop_waker(StopWaker* waker) {
    // order: release publishes the pointee's construction to the acquire
    // load in request_stop
    waker_.store(waker, std::memory_order_release);
  }

  void request_stop(StopReason why) {
    int expected = -1;
    // order: first-writer-wins tag; readers only consume it after
    // stop_requested() returns true, whose acquire orders this write
    reason_.compare_exchange_strong(expected, static_cast<int>(why),
                                    std::memory_order_relaxed);
    // order: release pairs with stop_requested()'s acquire, making the
    // reason_ write above visible to anyone who observed the stop
    stop_.store(true, std::memory_order_release);
    // order: pairs with set_stop_waker's release so the waker object is
    // fully constructed here; unpark happens *after* the flag store so a
    // woken worker re-checking its predicate observes the stop
    if (StopWaker* w = waker_.load(std::memory_order_acquire)) w->wake_all();
  }

  bool stop_requested() const {
    // order: pairs with request_stop's release; a true read carries the
    // reason_ value with it
    return stop_.load(std::memory_order_acquire);
  }

  /// The rule that fired, or kCompleted when none did.
  StopReason reason() const {
    // order: callers read this after observing stop_ (acquire) or after
    // joining the pool; both order the reason_ write before this load
    const int r = reason_.load(std::memory_order_relaxed);
    return r < 0 ? StopReason::kCompleted : static_cast<StopReason>(r);
  }

  std::uint64_t stand_trees() const {
    // order: pure tally, read after workers join
    return stand_trees_.load(std::memory_order_relaxed);
  }
  std::uint64_t states() const {
    // order: pure tally, read after workers join
    return states_.load(std::memory_order_relaxed);
  }
  std::uint64_t dead_ends() const {
    // order: pure tally, read after workers join
    return dead_ends_.load(std::memory_order_relaxed);
  }

  /// How many times the time rule was evaluated (each one is a clock
  /// syscall — the observable the flush-period throttle reduces).
  std::uint64_t time_checks() const {
    // order: pure tally, read after workers join
    return time_checks_.load(std::memory_order_relaxed);
  }

  double seconds() const { return clock_.seconds(); }

 private:
  StoppingRules rules_;
  std::atomic<std::uint64_t> stand_trees_{0};
  std::atomic<std::uint64_t> states_{0};
  std::atomic<std::uint64_t> dead_ends_{0};
  std::atomic<std::uint64_t> time_checks_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> reason_{-1};
  std::atomic<StopWaker*> waker_{nullptr};
  support::Stopwatch clock_;  // lint:allow(wall-clock) -- stopping rule 3
};

/// Per-thread accumulator. Publishes to the sink in batches; every
/// `time_check_period`-th flush also evaluates the time rule (period 1, the
/// default, preserves the documented every-flush granularity; a larger
/// period amortizes the clock syscall over K flushes). Not thread-safe by
/// design: each worker owns exactly one instance.
class LocalCounters {
 public:
  LocalCounters(CounterSink& sink, std::uint32_t tree_batch,
                std::uint32_t state_batch, std::uint32_t dead_end_batch,
                std::uint32_t time_check_period = 1)
      : sink_(&sink),
        tree_batch_(tree_batch ? tree_batch : 1),
        state_batch_(state_batch ? state_batch : 1),
        dead_end_batch_(dead_end_batch ? dead_end_batch : 1),
        time_check_period_(time_check_period ? time_check_period : 1) {}

  void count_stand_tree() {
    if (++trees_ >= tree_batch_) flush_trees();
  }

  void count_state() {
    if (++states_ >= state_batch_) flush_states();
  }

  void count_dead_end() {
    if (++dead_ends_ >= dead_end_batch_) flush_dead_ends();
  }

  /// Publish everything accumulated so far (end of a task / of the run).
  void flush_all() {
    if (trees_) flush_trees();
    if (states_) flush_states();
    if (dead_ends_) flush_dead_ends();
  }

  /// Number of sink publications so far (the contention-model input of the
  /// counter-batching ablation).
  std::uint64_t flush_count() const { return flushes_; }

 private:
  // Hot-path invariants: a pending local count never exceeds its batch (the
  // increment paths flush exactly at the threshold), and a flush always
  // publishes a non-zero delta — publishing zero would still pay an atomic
  // RMW and could spuriously trip a stopping-rule comparison.
  void flush_trees() {
    GENTRIUS_DCHECK_GT(trees_, 0u);
    GENTRIUS_DCHECK_LE(trees_, tree_batch_);
    sink_->add_stand_trees(trees_);
    trees_ = 0;
    ++flushes_;
    maybe_check_time();
  }
  void flush_states() {
    GENTRIUS_DCHECK_GT(states_, 0u);
    GENTRIUS_DCHECK_LE(states_, state_batch_);
    sink_->add_states(states_);
    states_ = 0;
    ++flushes_;
    maybe_check_time();
  }
  void flush_dead_ends() {
    GENTRIUS_DCHECK_GT(dead_ends_, 0u);
    GENTRIUS_DCHECK_LE(dead_ends_, dead_end_batch_);
    sink_->add_dead_ends(dead_ends_);
    dead_ends_ = 0;
    ++flushes_;
    maybe_check_time();
  }

  /// Evaluates the time rule on every time_check_period_-th flush. The
  /// three flush sites above used to pay one clock syscall each; with a
  /// period K only every K-th flush does. Counter totals, flush counts,
  /// and the batching ablation are untouched — only the clock-read cadence
  /// (and hence the time rule's granularity) changes.
  void maybe_check_time() {
    if (++flushes_since_time_check_ >= time_check_period_) {
      flushes_since_time_check_ = 0;
      sink_->check_time();
    }
  }

  CounterSink* sink_;
  std::uint32_t tree_batch_, state_batch_, dead_end_batch_;
  std::uint32_t time_check_period_;
  std::uint32_t flushes_since_time_check_ = 0;
  std::uint64_t trees_ = 0, states_ = 0, dead_ends_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace gentrius::core
