#include "gentrius/enumerator.hpp"

#include <algorithm>

#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "support/check.hpp"
#include "support/error.hpp"
#include "support/invariant.hpp"
#include "support/rng.hpp"

namespace gentrius::core {

Enumerator::Enumerator(const Problem& problem, const Options& options,
                       CounterSink& sink)
    : problem_(&problem),
      options_(&options),
      terrace_(problem, options.incremental_mappings),
      counters_(sink, options.tree_flush_batch, options.state_flush_batch,
                options.dead_end_flush_batch, options.time_check_flush_period),
      sink_(&sink),
      adaptive_(options.offer_policy == OfferPolicy::kAdaptiveGW) {
  if (adaptive_) gw_model_.reset(problem.missing_count(), options);
  if (!options.dynamic_taxon_order || !options.insertion_order.empty()) {
    if (!options.insertion_order.empty()) {
      static_order_ = options.insertion_order;
      auto sorted = static_order_;
      std::sort(sorted.begin(), sorted.end());
      if (sorted != problem.missing_taxa)
        throw support::InvalidInput(
            "insertion_order must be a permutation of the missing taxa");
    } else {
      static_order_ = problem.missing_taxa;
      if (options.shuffle_seed) {
        support::Rng rng(*options.shuffle_seed);
        rng.shuffle(static_order_);
      }
    }
  }
}

Terrace::Choice Enumerator::choose(std::vector<EdgeId>& branches) {
  if (static_order_.empty())
    return terrace_.choose_dynamic(branches, options_->dynamic_variant);
  if (terrace_.remaining_count() == 0) {
    branches.clear();
    Terrace::Choice c;
    c.complete = true;
    return c;
  }
  const std::size_t index =
      problem_->missing_count() - terrace_.remaining_count();
  return terrace_.choose_static(static_order_[index], branches);
}

const Enumerator::Prefix& Enumerator::run_prefix(bool count) {
  if (prefix_done_) return prefix_;
  prefix_done_ = true;

  if (!terrace_.initial_state_consistent()) {
    prefix_.outcome = Prefix::Outcome::kEmpty;
    return prefix_;
  }
  for (;;) {
    const auto choice = choose(branch_scratch_);
    record_offspring(choice);
    if (choice.complete) {
      if (count) record_stand_tree();
      prefix_.outcome = Prefix::Outcome::kComplete;
      return prefix_;
    }
    if (choice.dead_end) {
      if (count) counters_.count_dead_end();
      prefix_.outcome = Prefix::Outcome::kDeadEnd;
      return prefix_;
    }
    if (branch_scratch_.size() >= 2) {
      prefix_.outcome = Prefix::Outcome::kSplit;
      prefix_.split_taxon = choice.taxon;
      prefix_.branches = branch_scratch_;
      return prefix_;
    }
    // Exactly one admissible branch: a forced, permanent insertion. This is
    // a regular intermediate state of the search.
    terrace_.insert(choice.taxon, branch_scratch_[0]);
    if (count) counters_.count_state();
    ++prefix_.length;
  }
}

void Enumerator::begin_branches(TaxonId taxon, std::vector<EdgeId> branches) {
  GENTRIUS_CHECK(prefix_done_);
  if (depth_ == frames_.size()) frames_.emplace_back();
  Frame& f = frames_[depth_++];
  f.taxon = taxon;
  f.branches = std::move(branches);
  f.next = 0;
  f.applied = false;
  mode_ = Mode::kBacktrack;  // the first step() applies branch 0
}

std::size_t Enumerator::adopt_task(const Task& task) {
  GENTRIUS_DCHECK(depth_ == 0 && replay_records_.empty());
  for (const auto& [taxon, edge] : task.path) {
    replay_records_.push_back(terrace_.insert(taxon, edge));
    path_.emplace_back(taxon, edge);
  }
  begin_branches(task.next_taxon, task.branches);
  // Prediction-error accounting: remember what the producer's model claimed
  // and how many states we had expanded; the delta is settled when this
  // task's rewind returns to I0.
  adopted_active_ = true;
  adopted_predicted_ = task.predicted_states;
  adopt_snapshot_ = states_applied_;
  return task.path.size();
}

std::size_t Enumerator::rewind_to_split() {
  std::size_t removals = 0;
  while (depth_ > 0) {
    Frame& f = frames_[depth_ - 1];
    if (f.applied) {
      terrace_.remove(f.rec);
      f.applied = false;
      path_.pop_back();
      ++removals;
    }
    --depth_;
  }
  for (auto it = replay_records_.rbegin(); it != replay_records_.rend(); ++it) {
    terrace_.remove(*it);
    path_.pop_back();
    ++removals;
  }
  replay_records_.clear();
  GENTRIUS_DCHECK(path_.empty());  // back at I0: no residual insertions
  mode_ = Mode::kDone;
  if (adopted_active_) {
    adopted_active_ = false;
    offer_stats_.adopted_predicted_states += adopted_predicted_;
    offer_stats_.adopted_actual_states += states_applied_ - adopt_snapshot_;
  }
  return removals;
}

void Enumerator::record_stand_tree() {
  counters_.count_stand_tree();
  if (options_->collect_trees && collected_.size() < options_->collect_limit) {
    if (options_->tree_names) {
      collected_.push_back(
          phylo::canonical_newick(terrace_.agile(), *options_->tree_names));
    } else {
      collected_.push_back(phylo::canonical_encoding(terrace_.agile()));
    }
  }
}

void Enumerator::record_offspring(const Terrace::Choice& choice) {
  // kAdaptiveGW only: feed the per-stratum offspring histogram. A complete
  // state has no offspring observation (remaining == 0); a dead end is the
  // offspring-0 event of its stratum. choose() has not inserted anything,
  // so remaining_count() is still this state's stratum.
  if (!adaptive_ || choice.complete) return;
  gw_model_.record(terrace_.remaining_count(),
                   choice.dead_end ? 0 : branch_scratch_.size());
}

void Enumerator::maybe_offer_task(Frame& f) {
  if (task_sink_ == nullptr) return;
  // Paper §III-A: no task submission with fewer than offer_min_remaining
  // (default 3) remaining taxa — finishing that subtree is cheaper than the
  // stealing round-trip.
  if (terrace_.remaining_count() < options_->offer_min_remaining) return;
  if (f.branches.size() < 2) return;
  GENTRIUS_DCHECK(f.next == 0);  // frame freshly set up, nothing consumed yet
  // Delegated share of the branch set. The floor of size * 0.5 equals the
  // paper's size / 2 exactly, so kPaperFixed defaults split byte-identically.
  std::size_t half = static_cast<std::size_t>(
      static_cast<double>(f.branches.size()) * options_->offer_split_fraction);
  half = std::clamp<std::size_t>(half, 1, f.branches.size() - 1);
  double predicted = 0.0;
  if (adaptive_) {
    ++offer_stats_.offers_evaluated;
    const std::size_t backlog = task_sink_->backlog();
    const std::size_t limit = task_sink_->backlog_limit();
    // Saturated sink: the push would be rejected anyway, so don't bounce
    // the hand-off mutex to learn that. The lock-free backlog probe makes
    // this bail strictly cheaper than kPaperFixed's full-queue rejection.
    if (limit > 0 && backlog >= limit) {
      ++offer_stats_.offers_suppressed;
      return;
    }
    predicted = static_cast<double>(half) *
                gw_model_.expected_branch_states(terrace_.remaining_count());
    // The bar a delegated subtree must clear. The base is the uncontended
    // round trip: the transfer itself plus the thief's replay of the
    // producer's path — when the sink is empty the pool looks starved and
    // any subtree repaying that much is worth handing off. As the sink
    // fills, thieves are evidently already fed and every transfer competes
    // for the serialized hand-off section, so the bar rises with the fill
    // fraction, scaled by the sink's contention penalty (N_t for the
    // central queue, whose one mutex is the whole pool's hand-off pipe; 1
    // for per-worker deques): under pressure only work_multiple×penalty×
    // coarser subtrees are worth queueing ahead of the backlog.
    const double base =
        options_->offer_handoff_states +
        options_->offer_handoff_per_path * static_cast<double>(path_.size());
    const double fill =
        limit > 0 ? static_cast<double>(backlog) / static_cast<double>(limit)
                  : (backlog > 0 ? 1.0 : 0.0);
    // Quadratic in fill: one queued task in a wide ring barely raises the
    // bar (small instances need every offer to feed the pool), while a ring
    // approaching capacity pushes it toward the full penalty.
    const double cutoff =
        base * (1.0 + options_->offer_work_multiple *
                          task_sink_->handoff_penalty() * fill * fill);
    if (predicted < cutoff) {
      ++offer_stats_.offers_suppressed;
      return;
    }
  }
  // Stage the offer in the pooled task outside any lock; an accepting sink
  // swaps the vectors for its slot's, so capacity keeps circulating between
  // the pool and the queue and steady-state offers never reallocate.
  offer_task_.path = path_;
  offer_task_.next_taxon = f.taxon;
  offer_task_.predicted_states = predicted;
  offer_task_.branches.assign(
      f.branches.begin(),
      f.branches.begin() + static_cast<std::ptrdiff_t>(half));
  if (task_sink_->try_push(offer_task_)) {
    // The delegated first half is skipped by advancing the cursor — no
    // erase(), the vector is left untouched.
    f.next = half;
    ++tasks_offered_;
    offer_stats_.predicted_task_states += predicted;
  }
}

void Enumerator::apply_branch(Frame& f, bool count) {
  GENTRIUS_DCHECK_LT(f.next, f.branches.size());
  const EdgeId e = f.branches[f.next++];
  f.rec = terrace_.insert(f.taxon, e);
  f.applied = true;
  path_.emplace_back(f.taxon, e);
  if (count) {
    counters_.count_state();
    ++states_applied_;
  }
  mode_ = Mode::kChoose;
}

Enumerator::Step Enumerator::step() {
  GENTRIUS_DCHECK_LE(depth_, frames_.size());
  if (mode_ == Mode::kDone) return Step::kExhausted;
  if (sink_->stop_requested()) return Step::kStopped;

  if (mode_ == Mode::kChoose) {
    const auto choice = choose(branch_scratch_);
    record_offspring(choice);
    if (choice.complete) {
      record_stand_tree();
      mode_ = Mode::kBacktrack;
      return Step::kWorked;
    }
    if (choice.dead_end) {
      counters_.count_dead_end();
      mode_ = Mode::kBacktrack;
      return Step::kWorked;
    }
    if (depth_ == frames_.size()) frames_.emplace_back();
    Frame& f = frames_[depth_++];
    f.taxon = choice.taxon;
    f.branches.swap(branch_scratch_);
    f.next = 0;
    f.applied = false;
    if (f.branches.size() >= 2) maybe_offer_task(f);
    apply_branch(f, /*count=*/true);
    return Step::kWorked;
  }

  // Backtrack: undo the top insertion, then either try its next sibling
  // branch or pop the frame and continue upward.
  while (depth_ > 0) {
    Frame& f = frames_[depth_ - 1];
    if (f.applied) {
      terrace_.remove(f.rec);
      f.applied = false;
      path_.pop_back();
    }
    if (f.next < f.branches.size()) {
      apply_branch(f, /*count=*/true);
      return Step::kWorked;
    }
    --depth_;
  }
  mode_ = Mode::kDone;
  return Step::kExhausted;
}

}  // namespace gentrius::core
