#include "gentrius/serial.hpp"

#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace gentrius::core {

Result run_serial(const Problem& problem, const Options& options) {
  validate_options(options, OptionsSurface::kSingleInstance);
  Options opts = options;
  opts.tree_flush_batch = 1;
  opts.state_flush_batch = 1;
  opts.dead_end_flush_batch = 1;
  // Exact counting (batches of 1) would otherwise evaluate the time rule —
  // an atomic increment plus a clock syscall — once per state. Amortize it
  // over 256 flushes when the caller left the default cadence; at serial
  // state rates this keeps the time rule's granularity well under a
  // millisecond while removing the syscall from the hot loop.
  if (opts.time_check_flush_period <= 1) opts.time_check_flush_period = 256;

  // Diagnostic wall time for Result::seconds; never feeds the enumeration.
  support::Stopwatch clock;  // lint:allow(wall-clock)
  CounterSink sink(opts.stop);
  Enumerator e(problem, opts, sink);

  Result result;
  const auto& prefix = e.run_prefix(/*count=*/true);
  result.prefix_length = prefix.length;

  switch (prefix.outcome) {
    case Enumerator::Prefix::Outcome::kEmpty:
      result.reason = StopReason::kEmptyStand;
      break;
    case Enumerator::Prefix::Outcome::kComplete:
    case Enumerator::Prefix::Outcome::kDeadEnd:
      result.reason = sink.reason();
      break;
    case Enumerator::Prefix::Outcome::kSplit: {
      result.initial_split_branches = prefix.branches.size();
      e.begin_branches(prefix.split_taxon, prefix.branches);
      for (;;) {
        const auto s = e.step();
        if (s == Enumerator::Step::kWorked) continue;
        break;
      }
      result.reason = sink.reason();
      break;
    }
  }

  e.counters().flush_all();
  result.stand_trees = sink.stand_trees();
  result.intermediate_states = sink.states();
  result.dead_ends = sink.dead_ends();
  result.trees = std::move(e.collected_trees());
  result.selection = e.terrace().selection_stats();
  result.seconds = clock.seconds();
  return result;
}

Result run_serial(const std::vector<phylo::Tree>& constraints,
                  const Options& options) {
  return run_serial(build_problem(constraints, options), options);
}

}  // namespace gentrius::core
