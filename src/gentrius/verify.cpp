#include "gentrius/verify.hpp"

#include <algorithm>
#include <unordered_set>

#include "phylo/newick.hpp"
#include "phylo/topology.hpp"
#include "support/error.hpp"

namespace gentrius::core {

StandVerification verify_stand(const std::vector<phylo::Tree>& constraints,
                               const std::vector<std::string>& stand_newicks,
                               const phylo::TaxonSet& taxa) {
  StandVerification v;

  // Universe = union of constraint taxa.
  std::vector<phylo::TaxonId> universe;
  for (const auto& c : constraints)
    for (const auto t : c.taxa()) universe.push_back(t);
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  std::unordered_set<std::string> seen;
  phylo::TaxonSet names = taxa;  // local copy: parsing must not add taxa
  for (const auto& newick : stand_newicks) {
    phylo::Tree tree;
    try {
      tree = phylo::parse_newick(newick, names, {.register_new_taxa = false});
    } catch (const support::Error& e) {
      v.error = "unparsable stand tree: " + std::string(e.what());
      return v;
    }
    if (tree.taxa() != universe) {
      v.error = "stand tree does not cover the full taxon set: " + newick;
      return v;
    }
    const std::string canon = phylo::canonical_encoding(tree);
    if (!seen.insert(canon).second) {
      v.error = "duplicate stand tree: " + newick;
      return v;
    }
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      if (!phylo::displays(tree, constraints[i])) {
        v.error = "stand tree violates constraint " + std::to_string(i) +
                  ": " + newick;
        return v;
      }
    }
    ++v.trees_checked;
  }
  v.ok = true;
  return v;
}

}  // namespace gentrius::core
