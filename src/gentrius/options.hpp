// Run configuration and result types for Gentrius.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"

namespace gentrius::core {

/// The three stopping rules of the paper (§II-B): the run terminates when
/// the stand-tree count, the intermediate-state count, or the wall-clock
/// time exceeds its limit. Paper defaults: 10^6 trees, 10^7 states, 168 h.
struct StoppingRules {
  std::uint64_t max_stand_trees = 1'000'000;
  std::uint64_t max_states = 10'000'000;
  double max_seconds = 168.0 * 3600.0;
};

/// Which work-distribution scheduler the parallel drivers use (real pool
/// and virtual-time simulator alike; serial runs ignore it).
///
///  * kCentralQueue — the paper's §III design: one bounded mutex/condvar
///    queue shared by all workers, capacity N_t+1 (N_t < 8) or N_t/2.
///    Paper-faithful and the default.
///  * kDistributedDeques — per-worker bounded deques with owner-local LIFO
///    push/pop, FIFO steals under deterministically seeded victim
///    selection, and atomic busy-count termination detection. Removes the
///    central queue's lock serialization and capacity starvation at high
///    thread counts (the scalability extension; see docs/PERFORMANCE.md).
///
/// Both schedulers produce identical tree/state/dead-end counts and the
/// identical stand set when the stopping rules do not fire.
enum class Scheduler : std::uint8_t { kCentralQueue, kDistributedDeques };

inline const char* to_string(Scheduler s) {
  switch (s) {
    case Scheduler::kCentralQueue: return "central-queue";
    case Scheduler::kDistributedDeques: return "distributed-deques";
  }
  return "?";
}

/// Instance decomposition mode (src/decompose, DESIGN.md "Decomposition").
///
///  * kOff — paper-faithful: one branch-and-bound tree over the whole
///    instance. The default; every driver in src/gentrius, src/parallel and
///    src/vthread requires it (they run exactly one instance).
///  * kComponents — split the constraint set into connected components of
///    the taxon-overlap graph and enumerate each component plus a canonical
///    residual shard independently; counts combine by product, stands by
///    cross-product streaming. Honored by the decompose::* entry points
///    only — the single-instance drivers reject it loudly instead of
///    silently ignoring it.
enum class Decompose : std::uint8_t { kOff, kComponents };

inline const char* to_string(Decompose d) {
  switch (d) {
    case Decompose::kOff: return "off";
    case Decompose::kComponents: return "components";
  }
  return "?";
}

/// Task-granularity policy: when does `Enumerator::maybe_offer_task` hand a
/// frame's branches to another worker?
///
///  * kPaperFixed — the paper's §III-A rule, verbatim: offer half the
///    admissible branches whenever at least `offer_min_remaining` taxa
///    remain and the frame has >= 2 branches. Paper-faithful and the
///    default; produces the byte-identical golden trace.
///  * kAdaptiveGW — model-driven granularity. The enumerator records a
///    per-stratum offspring histogram (admissible-branch count keyed by
///    remaining-taxon count), fits an online Galton–Watson branching-
///    process estimate of expected subtree size from it, and offers only
///    when the predicted delegated work exceeds an adaptive cutoff derived
///    from the hand-off cost (path replay + queue round-trip) and a live
///    starvation signal (TaskSink::backlog). Starved pools accept any
///    offer that repays its hand-off; deep backlogs demand proportionally
///    larger subtrees, so tiny deep tasks stop flooding the queues at high
///    thread counts. Counts and the stand set are policy-invariant: offers
///    only redistribute who explores a branch, never whether it is
///    explored.
enum class OfferPolicy : std::uint8_t { kPaperFixed, kAdaptiveGW };

inline const char* to_string(OfferPolicy p) {
  switch (p) {
    case OfferPolicy::kPaperFixed: return "paper-fixed";
    case OfferPolicy::kAdaptiveGW: return "adaptive-gw";
  }
  return "?";
}

struct Options {
  /// Heuristic 1: start from the constraint tree sharing the most taxa with
  /// the others (paper §II-B). Off = start from `initial_constraint`
  /// (default 0).
  bool select_initial_tree = true;

  /// Heuristic 2: dynamic taxon insertion — always insert the remaining
  /// taxon with the fewest admissible branches. Off = static order (the
  /// given `insertion_order`, a shuffle when `shuffle_seed` is set, or
  /// ascending taxon id).
  bool dynamic_taxon_order = true;

  /// Dynamic-order selection rule. The paper's future work proposes
  /// exploring different insertion-order heuristics; besides the published
  /// min-branches rule, this library implements a most-constrained-first
  /// variant (taxon appearing in the most active constraint trees, ties by
  /// fewest branches). See bench_insertion_heuristics.
  enum class DynamicVariant : std::uint8_t { kMinBranches, kMostConstrained };
  DynamicVariant dynamic_variant = DynamicVariant::kMinBranches;

  /// Explicit initial agile tree (index into the constraint list).
  std::optional<std::size_t> initial_constraint;

  /// Explicit static insertion order (must be a permutation of the taxa
  /// missing from the initial agile tree). Implies dynamic order off.
  std::vector<phylo::TaxonId> insertion_order;

  /// Shuffle the static order with this seed (heuristic-ablation mode).
  std::optional<std::uint64_t> shuffle_seed;

  /// Maintain the double-edge mappings incrementally across taxon
  /// insertions/removals (default) instead of recomputing every active
  /// constraint at each state. Results are identical; only the per-state
  /// cost changes (see bench_mapping_update and the paper's §V profiling
  /// remark that mapping updates consume 15-30 % of runtime).
  bool incremental_mappings = true;

  StoppingRules stop;

  /// Collect the stand trees themselves (canonical form), up to
  /// collect_limit per enumerator.
  bool collect_trees = false;
  std::size_t collect_limit = 1'000'000;

  /// When set and collect_trees is on, stand trees are stored as canonical
  /// Newick with these labels; otherwise as the compact id-based canonical
  /// encoding. The pointee must outlive the run (not owned).
  const phylo::TaxonSet* tree_names = nullptr;

  /// Batched global-counter updates (paper §III-B): a thread publishes its
  /// local counts every 2^10 stand trees / 2^13 states / 2^10 dead ends.
  /// Serial runs use batch 1 so the stopping rules are exact.
  std::uint32_t tree_flush_batch = 1u << 10;
  std::uint32_t state_flush_batch = 1u << 13;
  std::uint32_t dead_end_flush_batch = 1u << 10;

  /// Stopping rule 3 (wall clock) is evaluated at most once per this many
  /// counter flushes. The documented granularity is every flush (default 1);
  /// raising it trades clock syscalls for a proportionally coarser time
  /// rule, bounded by (threads * batch * period) extra work before the rule
  /// lands. Counter totals and flush counts are unaffected.
  std::uint32_t time_check_flush_period = 1;

  /// Work-distribution scheduler for the parallel drivers.
  Scheduler scheduler = Scheduler::kCentralQueue;

  /// Seed for the distributed scheduler's randomized victim selection
  /// (per-worker streams are derived as steal_seed ^ worker id). The
  /// virtual-time simulator's schedule is a deterministic function of this
  /// seed; the real pool's task totals are seed-independent.
  std::uint64_t steal_seed = 0x57ea1u;

  /// Instance decomposition (see enum Decompose above).
  Decompose decompose = Decompose::kOff;

  /// Task-granularity policy (see enum OfferPolicy above).
  OfferPolicy offer_policy = OfferPolicy::kPaperFixed;

  /// Paper §III-A offer floor: no task submission with fewer than this many
  /// remaining taxa — finishing such a subtree locally is cheaper than the
  /// stealing round-trip. The paper's constant is 3.
  std::size_t offer_min_remaining = 3;

  /// Fraction of a frame's admissible branches delegated by an accepted
  /// offer (floor, clamped to [1, branches-1] so both sides keep work).
  /// The paper splits in half; 0.5 reproduces `branches / 2` exactly.
  double offer_split_fraction = 0.5;

  // ---- kAdaptiveGW estimator knobs (ignored under kPaperFixed) ----------

  /// Smoothing prior for the per-stratum offspring mean: each stratum
  /// behaves as if it had already seen `gw_prior_weight` samples with mean
  /// `gw_prior_offspring`. An optimistic prior (> 1) keeps early offers
  /// flowing before the histogram has data.
  double gw_prior_offspring = 2.0;
  double gw_prior_weight = 4.0;

  /// The expected-subtree-size table W(r) is refitted from the histogram
  /// after this many new offspring samples (lazily, at the next offer
  /// evaluation). Smaller = fresher model, more refit work.
  std::uint32_t gw_refit_period = 64;

  /// Measured hand-off cost in state units: the flat queue/deque round
  /// trip plus the thief's per-path-entry replay. Mirrors CostModel
  /// (queue_cost + replay_cost); an offer must at least repay this.
  double offer_handoff_states = 2.0;
  double offer_handoff_per_path = 0.3;

  /// Backlog pressure: with b tasks already queued the predicted delegated
  /// work must exceed offer_work_multiple * hand-off * b. A starved pool
  /// (b = 0) accepts anything that repays its hand-off.
  double offer_work_multiple = 4.0;
};

enum class StopReason : std::uint8_t {
  kCompleted,   ///< full stand enumerated
  kTreeLimit,   ///< stopping rule 1
  kStateLimit,  ///< stopping rule 2
  kTimeLimit,   ///< stopping rule 3
  kEmptyStand,  ///< constraints mutually incompatible; stand is empty
};

inline const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kTreeLimit: return "tree-limit";
    case StopReason::kStateLimit: return "state-limit";
    case StopReason::kTimeLimit: return "time-limit";
    case StopReason::kEmptyStand: return "empty-stand";
  }
  return "?";
}

/// Scheduler observability, aggregated over all workers of a run. The
/// central queue reports its pops as steals (every hand-off crosses the
/// shared queue); the distributed scheduler counts only cross-worker
/// transfers — owner-local pop-backs appear in tasks_executed alone.
struct SchedulerStats {
  std::uint64_t tasks_stolen = 0;          ///< tasks acquired from the queue/deques
  std::uint64_t steal_attempts = 0;        ///< victim probes (central: pops)
  std::uint64_t failed_steal_probes = 0;   ///< probes that found an empty deque
  std::uint64_t queue_full_rejections = 0; ///< offers bounced off a full ring
  std::uint64_t max_queue_depth = 0;       ///< deepest any ring ever got

  // Offer-policy observability (Options::offer_policy), reported uniformly
  // by both pools and both simulators. Under kPaperFixed every offer site
  // skips the model, so offers_evaluated stays 0; adopted_actual_states is
  // maintained under both policies (mean stolen-task size).
  std::uint64_t offers_evaluated = 0;   ///< adaptive cutoff evaluations
  std::uint64_t offers_suppressed = 0;  ///< offers withheld by the cutoff
  double predicted_task_states = 0.0;   ///< sum of predictions at accepted offers
  double adopted_predicted_states = 0.0; ///< predictions of tasks actually adopted
  std::uint64_t adopted_actual_states = 0; ///< states expanded inside adopted tasks

  void merge(const SchedulerStats& o) {
    tasks_stolen += o.tasks_stolen;
    steal_attempts += o.steal_attempts;
    failed_steal_probes += o.failed_steal_probes;
    queue_full_rejections += o.queue_full_rejections;
    if (o.max_queue_depth > max_queue_depth) max_queue_depth = o.max_queue_depth;
    offers_evaluated += o.offers_evaluated;
    offers_suppressed += o.offers_suppressed;
    predicted_task_states += o.predicted_task_states;
    adopted_predicted_states += o.adopted_predicted_states;
    adopted_actual_states += o.adopted_actual_states;
  }

  /// Relative prediction error over adopted tasks: |Σpredicted - Σactual| /
  /// max(1, Σactual). Meaningful only when predictions were made
  /// (kAdaptiveGW); 0-prediction runs report the trivial error 0.
  double offer_prediction_error() const {
    if (adopted_predicted_states == 0.0) return 0.0;
    const double actual = static_cast<double>(adopted_actual_states);
    const double denom = actual < 1.0 ? 1.0 : actual;
    const double diff = adopted_predicted_states - actual;
    return (diff < 0 ? -diff : diff) / denom;
  }
};

/// Candidate-selection work counters, accumulated by each Terrace and
/// aggregated over all workers of a run (Terrace::SelectionStats is an
/// alias for this type). The four counters partition the selection work a
/// run performed: full recounts vs journal-replay cache refreshes vs
/// zero/nonzero-only probes, plus constraint-mapping rebuild sweeps.
struct SelectionStats {
  std::uint64_t fresh_counts = 0;     ///< full admissible-count recomputations
  std::uint64_t cached_counts = 0;    ///< journal-replay cache refreshes
  std::uint64_t existence_checks = 0; ///< zero/nonzero-only dead-end probes
  std::uint64_t mappings_rebuilt = 0; ///< constraint mapping DFS rebuilds

  void merge(const SelectionStats& o) {
    fresh_counts += o.fresh_counts;
    cached_counts += o.cached_counts;
    existence_checks += o.existence_checks;
    mappings_rebuilt += o.mappings_rebuilt;
  }
};

/// Incremental-session cache observability (src/incremental): how much of a
/// re-enumeration was served from the fingerprint-keyed ResultCache versus
/// recomputed through the engine. `reused_states` counts the intermediate
/// states the cached shard runs had expanded when first computed — work this
/// run did *not* repeat; `recomputed_states` is the work it did.
struct CacheStats {
  std::uint64_t hits = 0;       ///< lookups answered from cache (components + residual)
  std::uint64_t misses = 0;     ///< lookups that fell through to enumeration
  std::uint64_t evictions = 0;  ///< LRU entries dropped to respect capacity
  std::uint64_t reused_components = 0;      ///< component shards served from cache
  std::uint64_t recomputed_components = 0;  ///< component shards re-enumerated
  std::uint64_t reused_states = 0;      ///< states the cached results stand in for
  std::uint64_t recomputed_states = 0;  ///< states actually expanded this run

  void merge(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    reused_components += o.reused_components;
    recomputed_components += o.recomputed_components;
    reused_states += o.reused_states;
    recomputed_states += o.recomputed_states;
  }
};

/// One shard of a decomposed run (Options::decompose = kComponents): either
/// a connected component of the constraint-overlap graph or the canonical
/// residual instance that carries the interleaving count (see
/// src/decompose/sharded.hpp and DESIGN.md "Decomposition").
struct ShardStats {
  enum class Kind : std::uint8_t {
    kComponent,  ///< connected component of the taxon-overlap graph
    kResidual,   ///< canonical residual instance (one representative per component)
  };
  Kind kind = Kind::kComponent;
  std::size_t n_taxa = 0;                ///< shard universe size
  std::size_t n_constraints = 0;         ///< constraints in the shard instance
  std::uint64_t stand_trees = 0;         ///< shard stand count
  std::uint64_t intermediate_states = 0;
  std::uint64_t dead_ends = 0;
  StopReason reason = StopReason::kCompleted;
  SelectionStats selection;              ///< selection work within the shard
  SchedulerStats sched;                  ///< scheduler traffic within the shard
  double virtual_makespan = 0.0;         ///< virtual-backend shard makespan
  /// Incremental sessions only: this shard's result was served from the
  /// ResultCache (the stats describe the run that originally computed it).
  bool reused = false;
};

inline const char* to_string(ShardStats::Kind k) {
  switch (k) {
    case ShardStats::Kind::kComponent: return "component";
    case ShardStats::Kind::kResidual: return "residual";
  }
  return "?";
}

struct Result {
  std::uint64_t stand_trees = 0;
  std::uint64_t intermediate_states = 0;
  std::uint64_t dead_ends = 0;
  StopReason reason = StopReason::kCompleted;
  double seconds = 0.0;

  /// Canonical Newick of each enumerated stand tree (when collected).
  std::vector<std::string> trees;

  // Diagnostics.
  std::size_t initial_split_branches = 0;  ///< fan-out at state I0 (0 = no split)
  std::size_t prefix_length = 0;           ///< forced insertions before I0
  std::uint64_t tasks_executed = 0;        ///< work-stealing tasks run (parallel)
  std::uint64_t tasks_offered = 0;         ///< successful task offers (parallel)
  SchedulerStats sched;                    ///< scheduler observability
  SelectionStats selection;                ///< selection work, all workers
  double virtual_makespan = 0.0;           ///< virtual-time runs only

  // Decomposed runs only (decompose::run_sharded): per-shard rollups in
  // canonical shard order (components by smallest taxon id, residual last),
  // and whether the product of shard counts saturated std::uint64_t.
  std::vector<ShardStats> shards;
  bool count_saturated = false;

  // Incremental runs only (incremental::IncrementalSession): cache traffic
  // of this re-enumeration. All-zero for every other driver.
  CacheStats cache;
};

// ---- option-combination validation -----------------------------------------

/// Where an Options object is about to be consumed. Each surface honors a
/// different subset of the combination space, and validate_options rejects
/// the combinations that surface cannot honor with an InvalidInput that
/// names the option — instead of a silent ignore or a deep-in-the-stack
/// failure.
enum class OptionsSurface : std::uint8_t {
  /// The monolithic drivers (core::run_serial, parallel::run_parallel,
  /// vthread::run_virtual): exactly one instance, no decomposition.
  kSingleInstance,
  /// decompose::run_sharded and the decompose::run_* dispatchers: every
  /// decompose mode is honored here.
  kSharded,
  /// incremental::IncrementalSession: requires component analysis, so
  /// Options::decompose must be kComponents.
  kIncremental,
};

inline const char* to_string(OptionsSurface s) {
  switch (s) {
    case OptionsSurface::kSingleInstance: return "single-instance";
    case OptionsSurface::kSharded: return "sharded";
    case OptionsSurface::kIncremental: return "incremental";
  }
  return "?";
}

/// Validates an Options object for the given surface; throws
/// support::InvalidInput naming the offending option. The single source of
/// truth for combination rules — every driver calls this before running
/// (tests/gentrius/options_validate_test.cpp pins the rejection matrix).
void validate_options(const Options& options, OptionsSurface surface);

}  // namespace gentrius::core
