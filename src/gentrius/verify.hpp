// Stand verification: independent checking of an enumerated stand.
//
// The paper verifies that serial and parallel runs generate identical
// stands; this utility goes further and checks a collected stand against
// the *definition*: every tree is on the full taxon universe, displays
// every constraint tree, and no tree appears twice.
#pragma once

#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace gentrius::core {

struct StandVerification {
  bool ok = false;
  std::size_t trees_checked = 0;
  std::string error;  ///< empty when ok
};

/// Verifies stand trees given as Newick strings (the collect_trees output
/// with Options::tree_names set). Labels are resolved against `taxa`.
StandVerification verify_stand(const std::vector<phylo::Tree>& constraints,
                               const std::vector<std::string>& stand_newicks,
                               const phylo::TaxonSet& taxa);

}  // namespace gentrius::core
