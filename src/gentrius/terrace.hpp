// Terrace: the per-thread Gentrius state.
//
// Mirrors the Terrace class of the paper's §III-B: the agile tree, the
// constraint trees (shared, read-only, via Problem) and the double-edge
// mappings between agile-tree branches and common-subtree branches. Every
// thread owns one instance and performs all taxon insertions/removals on it;
// nothing here is thread-safe by design (paper: "each thread exclusively
// works on its own copy of the agile tree").
//
// Mapping machinery (paper §II-A, supplement of Chernomor et al. 2023): for
// constraint tree T_i with common taxa C = inserted ∩ Y_i (|C| >= 2), every
// edge of a binary tree maps onto exactly one edge of the common subtree
// S = agile|C. We identify S-edges by a canonical 64-bit XOR hash of the
// C-taxa on one side (side-symmetric via min(h, h ^ H_C)), rooted at the
// lowest-id common taxon; edges with no common taxa below inherit the key
// at their attachment point. One DFS over the agile tree keys every agile
// edge, one DFS over T_i keys the attachment edge ê_i(x) of every
// not-yet-inserted taxon x in Y_i; x is admissible on an agile edge iff the
// keys agree for every constraining i.
//
// Hot-path engineering (see docs/PERFORMANCE.md):
//  * Keys are interned per rebuild into dense slot ids via a scratch
//    KeyMap; all steady-state bookkeeping — per-slot preimage counts,
//    intrusive preimage lists threaded through edge-indexed link arrays,
//    admissibility probes — is slot-indexed array arithmetic, no hashing.
//    Multi-constraint admissible sets walk the smallest constraint's
//    preimage list and probe the others, never a full edge scan.
//  * Mapping DFS passes run over flattened traversals (preorder position
//    arrays). Constraint trees are static, so their traversal is cached per
//    DFS root; the agile structural pass is shared by all constraints
//    rebuilt at the same root in one ensure_mappings batch.
//  * Per-taxon admissible counts are cached and maintained incrementally: a
//    bounded journal records every insert/remove (the split edge, its reuse
//    generation and a sign), and a cached count is advanced by +/-2 per
//    journaled event whose edge is admissible for the taxon — exact because
//    an insertion splits one edge into three that agree on every clean
//    constraint's key. Caches invalidate when one of the taxon's own
//    constraints went dirty, and a replay falls back to a fresh recount
//    when an event's edge id died and was recycled since the event (the
//    tree's LIFO free lists reuse ids, so the id's current slot would not
//    be the one the event was journaled against).
//  * Insertions and removals are strictly LIFO (the enumerator's DFS
//    discipline); remove() must receive the record of the most recent
//    insert(). The journal-delta proof and the dancing-links remaining-taxa
//    list both rely on this.
//  * Per-constraint mapping storage is allocated on first activation, so
//    constraints that never reach |C| >= 2 with open taxa cost no memory.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"
#include "phylo/tree.hpp"
#include "support/arena.hpp"
#include "support/bitset.hpp"
#include "support/key_map.hpp"

namespace gentrius::core {

using phylo::EdgeId;
using phylo::InsertRecord;
using phylo::TaxonId;
using phylo::VertexId;
using phylo::kNoId;
using phylo::kNoTaxon;

class Terrace {
 public:
  /// incremental: maintain the double-edge mappings across insertions and
  /// removals (a taxon insertion recomputes only the constraints that
  /// contain the taxon; for every other computed constraint the two new
  /// edges provably map onto the same common-subtree edge as the split
  /// edge, an O(1) slot update). Off = recompute every active constraint
  /// at every state, the cost profile the paper's future-work section
  /// measures at 15-30 % of total runtime.
  explicit Terrace(const Problem& problem, bool incremental = true);

  const phylo::Tree& agile() const noexcept { return agile_; }
  const Problem& problem() const noexcept { return *problem_; }

  std::size_t remaining_count() const noexcept { return remaining_count_; }
  /// The not-yet-inserted taxa in ascending order (materialized from the
  /// intrusive remaining list; intended for tests and diagnostics).
  std::vector<TaxonId> remaining() const;
  bool is_inserted(TaxonId x) const { return inserted_.test(x); }

  /// Outcome of selecting the next taxon at the current state.
  struct Choice {
    TaxonId taxon = kNoTaxon;
    bool complete = false;  ///< no taxa remain: current agile tree is a stand tree
    bool dead_end = false;  ///< some remaining taxon has no admissible branch
  };

  /// Dynamic taxon insertion (heuristic 2): evaluates the admissible-branch
  /// count of every remaining taxon and picks the winner per the variant —
  /// kMinBranches: fewest admissible branches (ties: lowest taxon id);
  /// kMostConstrained: most active constraint trees (ties: fewest branches).
  /// Fills `branches` with the winner's admissible branches. A zero count
  /// anywhere is a dead end regardless of variant; the *first* zero-count
  /// taxon in ascending id order is reported, exactly as a full scan would.
  /// Once a count of 1 is locked in under kMinBranches, later taxa are only
  /// screened for dead ends (an existence probe), never fully counted.
  Choice choose_dynamic(
      std::vector<EdgeId>& branches,
      Options::DynamicVariant variant = Options::DynamicVariant::kMinBranches);

  /// Static-order variant: the admissible branches of a *given* taxon.
  /// dead_end is set when the set is empty.
  Choice choose_static(TaxonId taxon, std::vector<EdgeId>& branches);

  /// Inserts taxon x on agile edge e (must be admissible; unchecked here).
  InsertRecord insert(TaxonId x, EdgeId e);

  /// Exact inverse of the matching insert. Insert/remove pairs must nest
  /// LIFO (the record of the most recent live insert).
  void remove(const InsertRecord& rec);

  /// Checks the root invariant: agile|C_i == T_i|C_i for every constraint.
  /// Must hold before enumeration starts; when it fails the stand is empty.
  bool initial_state_consistent() const;

  // ---- introspection (tests, benchmarks, virtual-time cost model) ---------

  /// Cumulative counters of selection work; the virtual-time simulator uses
  /// the deltas to charge cheap cached refreshes and expensive recomputes
  /// differently (vthread::CostModel), and every driver rolls the final
  /// totals of its workers into core::Result::selection.
  using SelectionStats = core::SelectionStats;
  const SelectionStats& selection_stats() const noexcept { return stats_; }

  /// True once constraint i's mapping storage (edge slots, preimage lists,
  /// target slots) has been allocated. Never-activated constraints stay
  /// unallocated for the lifetime of the terrace.
  bool constraint_storage_allocated(std::size_t i) const {
    return !edge_slot_[i].empty();
  }
  /// Bytes currently allocated for per-constraint mapping storage.
  std::size_t mapping_storage_bytes() const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  template <typename T>
  using AVec = support::ArenaVector<T>;

  /// Flattened DFS traversal: preorder positions with parents before
  /// children; position 0 is the root leaf. Sweeping these arrays replaces
  /// pointer-chasing the tree during mapping rebuilds. Kept as parallel
  /// arrays deliberately: an AoS TravNode variant measured ~40 % slower on
  /// BM_FullStateExpansion (the sweeps read one field at a time, so packing
  /// defeats the per-field streaming).
  struct FlatTraversal {
    TaxonId root = kNoTaxon;  ///< root leaf's taxon; kNoTaxon = not built
    std::vector<std::uint32_t> parent_pos;
    std::vector<EdgeId> edge;
    std::vector<TaxonId> taxon;
  };

  void ensure_mappings();
  void ensure_constraint_storage(std::size_t i);
  void rebuild_constraint(std::size_t i, TaxonId root);
  /// (Re)builds `out` as the flat traversal of `tree` rooted at the leaf of
  /// taxon `root`.
  void build_traversal(const phylo::Tree& tree, TaxonId root,
                       FlatTraversal& out);
  /// Exact number of admissible branches for x (mappings must be current),
  /// via the cache when its validity window holds, else recomputed.
  std::size_t admissible_count(TaxonId x);
  std::size_t count_fresh(TaxonId x);
  /// Whether x has at least one admissible branch (early-exit probe).
  bool has_admissible(TaxonId x);
  /// Every active constraint of the gathered taxon agrees on edge e (reads
  /// the probe caches of the latest gather_constraints call).
  bool edge_admissible(EdgeId e) const;
  void collect_branches(TaxonId x, std::vector<EdgeId>& out);
  /// Active constraint slots of x: |C_i| >= 2. Fills scratch_js_ plus the
  /// probe caches (edge_slot_ row pointers and x's target slots).
  void gather_constraints(TaxonId x);

  // Intrusive preimage-list maintenance for constraint i, slot s.
  void preimage_push(std::size_t i, std::uint32_t s, EdgeId e);
  void preimage_unlink(std::size_t i, std::uint32_t s, EdgeId e);

  // Mutation journal (insert/remove events) for the count cache.
  void journal_push(EdgeId split_edge, std::int8_t sign);

  // Per-worker arena backing every hot scratch container below (declared
  // first: members are initialized in declaration order and the containers
  // need the arena at construction). Copied Terraces share the arena via
  // shared_ptr — memory-safe in every case, but the arena itself is not
  // thread-safe, so a copy must stay on the owning worker's thread, which
  // the class-wide "worker-private by design" contract already demands.
  std::shared_ptr<support::Arena> arena_;

  const Problem* problem_;
  phylo::Tree agile_;
  support::Bitset inserted_;

  // Remaining taxa as a dancing-links list in ascending id order: O(1)
  // unlink on insert, O(1) relink on the LIFO remove (the unlinked node
  // keeps its own neighbor pointers). Slot n_taxa is the sentinel.
  std::vector<TaxonId> rem_next_, rem_prev_;
  std::size_t remaining_count_ = 0;

  // Per-constraint incremental bookkeeping.
  std::vector<std::uint32_t> common_count_;     // |inserted ∩ Y_i|
  std::vector<std::uint32_t> remaining_in_;     // |Y_i \ inserted|
  std::vector<char> active_;                    // usable mapping this state

  // Mapping state. computed_[i]: the slot arrays hold a valid mapping for
  // constraint i; dirty_[i]: constraint must be recomputed at the next
  // ensure_mappings (its common taxon set changed).
  bool incremental_ = true;
  std::vector<char> computed_;
  std::vector<char> dirty_;
  std::size_t max_edges_ = 0;  // agile edge-capacity bound, fixed at build

  // Slot-interned mapping storage, per constraint, allocated lazily — from
  // the arena, so one activation lays a constraint's six arrays out
  // back-to-back. edge_slot_[i][e] / target_slot_[i][x] identify the
  // common-subtree edge an agile edge / a remaining taxon maps onto
  // (kNoSlot: none on the agile side). slot_count_[i][s] is the preimage
  // size; slot_head_ plus the link_ arrays thread the preimage list through
  // edge ids.
  std::vector<AVec<std::uint32_t>> edge_slot_;
  std::vector<AVec<std::uint32_t>> target_slot_;
  std::vector<AVec<std::uint32_t>> slot_count_;
  std::vector<AVec<EdgeId>> slot_head_;
  std::vector<AVec<EdgeId>> link_next_;
  std::vector<AVec<EdgeId>> link_prev_;
  std::vector<std::uint32_t> n_slots_;  // live slots after latest rebuild
  support::KeyMap slot_map_;            // scratch key -> slot+1, per rebuild

  // Constraint-side pass elision. target_key_[i][x] is the canonical key of
  // the attachment edge of open taxon x in T_i, valid for the DFS root and
  // common set C_i of constraint i's last full constraint-side pass;
  // cdelta_[i] is an exact ledger of net C_i changes since then (LIFO
  // insert/remove discipline makes push/cancel exact). When the ledger is
  // empty and the root is unchanged, a rebuild reuses the stored keys and
  // only re-probes them against the fresh agile-side interning — the
  // dominant case when the enumerator steps a taxon to its next branch.
  std::vector<AVec<std::uint64_t>> target_key_;
  std::vector<char> have_target_keys_;
  std::vector<std::vector<std::int32_t>> cdelta_;  // +(x+1) insert, -(x+1) remove

  // Flat traversals: constraint-side cached per constraint (static trees,
  // invalidated only when the DFS root changes); agile-side rebuilt on
  // demand and shared across same-root rebuilds in one batch.
  std::vector<FlatTraversal> ctrav_;
  FlatTraversal atrav_;
  std::vector<std::pair<TaxonId, std::uint32_t>> rebuild_order_;  // scratch
  struct TravItem {
    VertexId v = kNoId;
    std::uint32_t parent_pos = 0;
    EdgeId pedge = kNoId;
  };
  std::vector<TravItem> trav_stack_;  // build_traversal scratch

  // Incremental candidate-count cache. cached_count_[x] is exact as of
  // mutation index cache_mut_[x]; it can be advanced to the present by
  // replaying the journal window iff no constraint of x was dirtied at or
  // after cache_mut_[x] (dirty_mut_) and the window is still in the ring.
  std::vector<std::uint32_t> cached_count_;
  std::vector<std::uint64_t> cache_mut_;
  std::vector<char> cache_valid_;
  std::vector<std::uint64_t> dirty_mut_;   // [constraint]
  struct MutEvent {
    EdgeId edge = kNoId;      ///< split edge of the insert / matching remove
    std::uint32_t gen = 0;    ///< edge_gen_[edge] when the event was journaled
    std::int8_t sign = 0;     ///< +1 insert, -1 remove
  };
  AVec<MutEvent> journal_;  // ring, power-of-two size, arena-backed
  std::uint64_t mutation_count_ = 1;
  std::uint64_t journal_base_ = 1;  // oldest retained event index
  // Per-edge-id reuse generation: bumped whenever an edge id is returned to
  // the tree's LIFO free list (remove() frees the moved and pendant edges).
  // phylo::Tree recycles ids, so a journaled event whose edge died since —
  // its generation no longer matches — must not be replayed against the
  // id's *current* occupant: the incremental clean-constraint update gave
  // the recycled id the new split edge's slot without dirtying anything.
  std::vector<std::uint32_t> edge_gen_;

  SelectionStats stats_;

  // Mapping-sweep scratch, indexed by traversal position; arena-backed so
  // the rebuild sweeps stream contiguous warm regions (parallel arrays, same
  // rationale as FlatTraversal).
  AVec<std::uint64_t> xorv_;
  AVec<std::uint32_t> cnt_;
  AVec<std::uint64_t> ctxk_;
  AVec<std::uint32_t> ctxs_;
  // C_i = Y_i ∩ inserted of the constraint currently being rebuilt,
  // materialized once per rebuild by the fused restrict_and_count kernel so
  // the per-node membership test in both sweeps is a single bit probe.
  support::Bitset common_scratch_;

  // Probe caches filled by gather_constraints(x): the active constraint
  // slots of x, plus — for the admissibility inner loop — each one's raw
  // edge_slot_ row pointer and x's target slot, so a probe is one indexed
  // load and compare with no double indirection.
  AVec<std::uint32_t> scratch_js_;
  AVec<const std::uint32_t*> scratch_eslot_;
  AVec<std::uint32_t> scratch_target_;
};

}  // namespace gentrius::core
