// Terrace: the per-thread Gentrius state.
//
// Mirrors the Terrace class of the paper's §III-B: the agile tree, the
// constraint trees (shared, read-only, via Problem) and the double-edge
// mappings between agile-tree branches and common-subtree branches. Every
// thread owns one instance and performs all taxon insertions/removals on it;
// nothing here is thread-safe by design (paper: "each thread exclusively
// works on its own copy of the agile tree").
//
// Mapping machinery (paper §II-A, supplement of Chernomor et al. 2023): for
// constraint tree T_i with common taxa C = inserted ∩ Y_i (|C| >= 2), every
// edge of a binary tree maps onto exactly one edge of the common subtree
// S = agile|C. We identify S-edges by a canonical 64-bit XOR hash of the
// C-taxa on one side (side-symmetric via min(h, h ^ H_C)). One DFS over the
// agile tree yields each edge's S-edge key plus per-key preimage counts; one
// DFS over T_i yields, for every not-yet-inserted taxon x in Y_i, the key
// ê_i(x) of the S-edge x attaches to. The admissible branches of x are the
// agile edges whose key equals ê_i(x) for every constraining i.
#pragma once

#include <cstdint>
#include <vector>

#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"
#include "phylo/tree.hpp"
#include "support/bitset.hpp"
#include "support/key_map.hpp"

namespace gentrius::core {

using phylo::EdgeId;
using phylo::InsertRecord;
using phylo::TaxonId;
using phylo::VertexId;
using phylo::kNoId;
using phylo::kNoTaxon;

class Terrace {
 public:
  /// incremental: maintain the double-edge mappings across insertions and
  /// removals (a taxon insertion recomputes only the constraints that
  /// contain the taxon; for every other computed constraint the two new
  /// edges provably map onto the same common-subtree edge as the split
  /// edge, an O(1) bucket update). Off = recompute every active constraint
  /// at every state, the cost profile the paper's future-work section
  /// measures at 15-30 % of total runtime.
  explicit Terrace(const Problem& problem, bool incremental = true);

  const phylo::Tree& agile() const noexcept { return agile_; }
  const Problem& problem() const noexcept { return *problem_; }

  std::size_t remaining_count() const noexcept { return remaining_.size(); }
  const std::vector<TaxonId>& remaining() const noexcept { return remaining_; }
  bool is_inserted(TaxonId x) const { return inserted_.test(x); }

  /// Outcome of selecting the next taxon at the current state.
  struct Choice {
    TaxonId taxon = kNoTaxon;
    bool complete = false;  ///< no taxa remain: current agile tree is a stand tree
    bool dead_end = false;  ///< some remaining taxon has no admissible branch
  };

  /// Dynamic taxon insertion (heuristic 2): evaluates the admissible-branch
  /// count of every remaining taxon and picks the winner per the variant —
  /// kMinBranches: fewest admissible branches (ties: lowest taxon id);
  /// kMostConstrained: most active constraint trees (ties: fewest branches).
  /// Fills `branches` with the winner's admissible branches. A zero count
  /// anywhere is a dead end regardless of variant.
  Choice choose_dynamic(
      std::vector<EdgeId>& branches,
      Options::DynamicVariant variant = Options::DynamicVariant::kMinBranches);

  /// Static-order variant: the admissible branches of a *given* taxon.
  /// dead_end is set when the set is empty.
  Choice choose_static(TaxonId taxon, std::vector<EdgeId>& branches);

  /// Inserts taxon x on agile edge e (must be admissible; unchecked here).
  InsertRecord insert(TaxonId x, EdgeId e);

  /// Exact inverse of the matching insert.
  void remove(const InsertRecord& rec);

  /// Checks the root invariant: agile|C_i == T_i|C_i for every constraint.
  /// Must hold before enumeration starts; when it fails the stand is empty.
  bool initial_state_consistent() const;

 private:
  void ensure_mappings();
  /// DFS pass described above. agile_side: record per-edge keys + bucket
  /// counts for constraint slot i; otherwise record target keys for the
  /// remaining taxa of constraint i.
  void map_tree(const phylo::Tree& tree, const support::Bitset& y,
                std::size_t i, bool agile_side);
  /// Exact number of admissible branches for x (mappings must be current).
  std::size_t count_for(TaxonId x);
  void collect_branches(TaxonId x, std::vector<EdgeId>& out);
  /// Active constraint slots of x: |C_i| >= 2. Fills scratch_js_.
  void gather_constraints(TaxonId x);

  const Problem* problem_;
  phylo::Tree agile_;
  support::Bitset inserted_;
  std::vector<TaxonId> remaining_;  // ascending

  // Per-constraint incremental bookkeeping.
  std::vector<std::uint32_t> common_count_;     // |inserted ∩ Y_i|
  std::vector<std::uint32_t> remaining_in_;     // |Y_i \ inserted|
  std::vector<char> active_;                    // usable mapping this state

  // Mapping state. computed_[i]: edge_key_/bucket_/target_key_ hold a valid
  // mapping for constraint i; dirty_[i]: constraint must be recomputed at
  // the next ensure_mappings (its common taxon set changed).
  bool incremental_ = true;
  std::vector<char> computed_;
  std::vector<char> dirty_;
  std::vector<std::vector<std::uint64_t>> edge_key_;    // [i][edge]
  std::vector<support::KeyMap> bucket_;                 // [i]: key -> preimage size
  std::vector<std::vector<std::uint64_t>> target_key_;  // [i][taxon]

  // DFS scratch, sized to the largest tree involved.
  std::vector<VertexId> order_, stack_, parent_vertex_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> cnt_;
  std::vector<std::uint64_t> xorv_, ctx_;
  std::vector<std::uint32_t> scratch_js_;
};

}  // namespace gentrius::core
