// Iterative branch-and-bound enumerator with task-splitting hooks.
//
// This is Algorithm 1 of the paper turned into an explicit-stack state
// machine so that the same engine can be driven three ways:
//   * serially (loop step() until Exhausted),
//   * by real threads (src/parallel): each thread owns one Enumerator,
//   * by the virtual-time scheduler (src/vthread): one Enumerator per
//     simulated worker, stepped in virtual-clock order.
//
// One step() call performs one unit of work: either it expands the current
// state (selects the next taxon, possibly offers half of its admissible
// branches to the task sink, and applies one insertion — one new
// intermediate state), or it consumes a terminal event (stand tree or dead
// end) and backtracks. Counting follows the paper exactly: every insertion
// increments the intermediate-state counter; prefix and task replays are
// *uncounted* re-executions of already-counted insertions, so serial and
// parallel totals agree.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/offer_policy.hpp"
#include "gentrius/options.hpp"
#include "gentrius/terrace.hpp"

namespace gentrius::core {

/// A unit of stealable work (paper §III-A): the path from the initial-split
/// state I0 to the state where the task was created, plus the next taxon
/// and the subset of its admissible branches delegated to the thief.
struct Task {
  std::vector<std::pair<TaxonId, EdgeId>> path;
  TaxonId next_taxon = kNoTaxon;
  std::vector<EdgeId> branches;
  /// GW-model estimate of the states this task's subtrees hold, recorded at
  /// offer time (0 under kPaperFixed). Travels with the task so the adopting
  /// worker can report prediction error (SchedulerStats).
  double predicted_states = 0.0;
};

/// Where offered tasks go. Implemented by the drivers (bounded queue for
/// real threads, simulated queue for virtual time). try_push returns false
/// when the queue is full — the task is untouched and the enumerator keeps
/// the whole branch set. On success the sink SWAPS the task's vectors into
/// its own slot storage (contents unspecified afterwards): the producer
/// stages the task outside any lock, the hand-off itself is O(1), and the
/// vectors coming back keep the slot's accumulated capacity, so the
/// steady-state offer path performs no allocation on either side.
class TaskSink {
 public:
  virtual ~TaskSink() = default;
  virtual bool try_push(Task& task) = 0;

  /// Live starvation signal for the adaptive offer policy: approximately
  /// how many tasks are already queued from this producer's point of view
  /// (the central queue's occupancy; a worker's own deque depth). Advisory
  /// and racy by design — it gates granularity, never correctness — and
  /// must be cheap: it is read on *suppressed* offers too, so it may not
  /// take the hand-off lock. 0 means the pool looks starved.
  virtual std::size_t backlog() const { return 0; }

  /// Capacity behind backlog(): the number of queued tasks at which
  /// try_push starts rejecting (the central queue's ring size; a worker's
  /// own deque ring size). 0 means unknown/unbounded. The adaptive policy
  /// uses backlog()/backlog_limit() as a fill fraction and skips the push
  /// attempt entirely once the ring looks full — the lock-free probe is far
  /// cheaper than bouncing the hand-off mutex just to be rejected.
  virtual std::size_t backlog_limit() const { return 0; }

  /// Contention multiplier on the adaptive cutoff's backpressure term.
  /// Every transfer through the shared central queue serializes on one
  /// mutex whose per-acquisition cost grows with the number of workers
  /// bouncing its cache line, and one unit of time inside that serial
  /// section displaces N_t units of potential fleet progress — so the
  /// central queue reports N_t, making a *filling* queue demand much
  /// coarser tasks as the pool grows (an empty sink still accepts any
  /// offer repaying the uncontended round trip). Per-worker steal deques
  /// have no globally serialized section (owner traffic is private,
  /// thieves serialize only per victim), so they keep the default 1:
  /// fine-grained offers stay profitable under distributed stealing.
  virtual double handoff_penalty() const { return 1.0; }
};

class Enumerator {
 public:
  Enumerator(const Problem& problem, const Options& options, CounterSink& sink);

  // ---- phase 1: deterministic forced prefix --------------------------------

  struct Prefix {
    enum class Outcome {
      kSplit,      ///< reached state I0: split_taxon has >= 2 admissible branches
      kComplete,   ///< the whole enumeration was forced; stand size 1
      kDeadEnd,    ///< a forced state had a zero-branch taxon; stand size 0
      kEmpty,      ///< initial agile tree inconsistent with a constraint
    };
    Outcome outcome = Outcome::kEmpty;
    TaxonId split_taxon = kNoTaxon;
    std::vector<EdgeId> branches;
    std::size_t length = 0;
  };

  /// Executes the forced prefix up to the initial split state I0. Exactly
  /// one participant of a run passes count=true (the others replay the same
  /// deterministic insertions without counting).
  const Prefix& run_prefix(bool count);

  // ---- phase 2: exploration -------------------------------------------------

  /// Explore `branches` of `taxon` from the current state (used for the
  /// initial-split partition and by the serial driver).
  void begin_branches(TaxonId taxon, std::vector<EdgeId> branches);

  /// Adopt a stolen task: replays its path from I0 (uncounted) and sets up
  /// the delegated branch subset. Returns the number of replayed
  /// insertions (drivers charge virtual time for them).
  std::size_t adopt_task(const Task& task);

  /// Undo everything back to I0 after the current work is exhausted.
  /// Returns the number of removals performed.
  std::size_t rewind_to_split();

  enum class Step : std::uint8_t {
    kWorked,     ///< one unit of progress made
    kExhausted,  ///< current branch assignment fully explored
    kStopped,    ///< a stopping rule fired somewhere
  };
  Step step();

  void set_task_sink(TaskSink* sink) noexcept { task_sink_ = sink; }

  LocalCounters& counters() noexcept { return counters_; }
  const std::vector<std::string>& collected_trees() const noexcept {
    return collected_;
  }
  std::vector<std::string>& collected_trees() noexcept { return collected_; }
  const Terrace& terrace() const noexcept { return terrace_; }
  std::uint64_t tasks_offered() const noexcept { return tasks_offered_; }

  /// Offer-policy observability: only the offers_* / *_states fields are
  /// populated (the scheduler-side fields belong to the queue/deques).
  /// Drivers merge this into Result::sched after the run.
  const SchedulerStats& offer_stats() const noexcept { return offer_stats_; }

  /// The online subtree-size estimator (kAdaptiveGW; empty histogram under
  /// kPaperFixed). Exposed for tests and diagnostics.
  const GwOfferModel& gw_model() const noexcept { return gw_model_; }

 private:
  struct Frame {
    TaxonId taxon = kNoTaxon;
    std::vector<EdgeId> branches;
    std::size_t next = 0;
    InsertRecord rec;
    bool applied = false;
  };

  /// Next-taxon selection honoring the configured heuristics.
  Terrace::Choice choose(std::vector<EdgeId>& branches);
  void record_offspring(const Terrace::Choice& choice);
  void maybe_offer_task(Frame& frame);
  void apply_branch(Frame& frame, bool count);
  void record_stand_tree();

  const Problem* problem_;
  const Options* options_;
  Terrace terrace_;
  LocalCounters counters_;
  CounterSink* sink_;
  TaskSink* task_sink_ = nullptr;

  std::vector<TaxonId> static_order_;  // used when dynamic order is off

  Prefix prefix_;
  bool prefix_done_ = false;
  std::vector<InsertRecord> replay_records_;  // task-path insertions

  // Exploration stack; frames_ never shrinks so branch vectors reuse their
  // capacity across millions of states.
  std::vector<Frame> frames_;
  std::size_t depth_ = 0;
  enum class Mode : std::uint8_t { kChoose, kBacktrack, kDone };
  Mode mode_ = Mode::kDone;

  std::vector<std::pair<TaxonId, EdgeId>> path_;  // insertions since I0
  Task offer_task_;  // pooled offer: vectors keep their capacity across offers
  std::vector<EdgeId> branch_scratch_;
  std::vector<std::string> collected_;
  std::uint64_t tasks_offered_ = 0;

  // Offer policy (see options.hpp). `adaptive_` caches the policy check for
  // the per-state recording branch; the model and stats are per-enumerator,
  // so no synchronization is needed anywhere on this path.
  bool adaptive_ = false;
  GwOfferModel gw_model_;
  SchedulerStats offer_stats_;  // offers_* / *_states fields only
  std::uint64_t states_applied_ = 0;     // insertions via apply_branch
  std::uint64_t adopt_snapshot_ = 0;     // states_applied_ at adopt_task
  double adopted_predicted_ = 0.0;       // prediction of the adopted task
  bool adopted_active_ = false;
};

}  // namespace gentrius::core
