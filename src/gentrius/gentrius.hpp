// Umbrella header: the full public API of the Gentrius library.
//
//   #include "gentrius/gentrius.hpp"
//
//   using namespace gentrius;
//   phylo::TaxonSet taxa;
//   std::vector<phylo::Tree> trees = ...;          // parse_newick(...)
//   core::Options options;
//   core::Result r = core::run_serial(trees, options);
//   // or: parallel::run_parallel(core::build_problem(trees, options),
//   //                            options, n_threads);
//
// Individual headers remain includable on their own; this is convenience.
#pragma once

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"
#include "gentrius/serial.hpp"
#include "gentrius/terrace.hpp"
#include "gentrius/verify.hpp"
#include "pam/pam.hpp"
#include "phylo/newick.hpp"
#include "phylo/splits.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/topology.hpp"
#include "phylo/tree.hpp"
