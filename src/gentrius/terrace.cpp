#include "gentrius/terrace.hpp"

#include <algorithm>

#include "phylo/topology.hpp"
#include "support/check.hpp"

namespace gentrius::core {

Terrace::Terrace(const Problem& problem, bool incremental)
    : problem_(&problem),
      agile_(problem.constraints[problem.initial_constraint]),
      inserted_(problem.n_taxa),
      incremental_(incremental) {
  agile_.reserve_for_leaves(problem.all_taxa.count());

  for (const TaxonId t : agile_.taxa()) inserted_.set(t);
  remaining_ = problem.missing_taxa;

  const std::size_t m = problem.constraints.size();
  common_count_.resize(m);
  remaining_in_.resize(m);
  active_.assign(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& y = problem.constraint_taxa[i];
    common_count_[i] =
        static_cast<std::uint32_t>(y.intersection_count(inserted_));
    remaining_in_[i] =
        static_cast<std::uint32_t>(y.count()) - common_count_[i];
  }

  computed_.assign(m, 0);
  dirty_.assign(m, 1);

  const std::size_t n_total = problem.all_taxa.count();
  const std::size_t max_edges = n_total < 2 ? 1 : 2 * n_total;  // capacity bound
  edge_key_.assign(m, std::vector<std::uint64_t>(max_edges, 0));
  bucket_.assign(m, support::KeyMap(2 * n_total + 8));
  target_key_.assign(m, std::vector<std::uint64_t>(problem.n_taxa, 0));

  std::size_t max_vertices = 2 * n_total;  // agile bound
  for (const auto& t : problem.constraints)
    max_vertices = std::max(max_vertices, t.vertex_capacity() + 1);
  order_.reserve(max_vertices);
  stack_.reserve(max_vertices);
  parent_vertex_.resize(max_vertices);
  parent_edge_.resize(max_vertices);
  cnt_.resize(max_vertices);
  xorv_.resize(max_vertices);
  ctx_.resize(max_vertices);
}

InsertRecord Terrace::insert(TaxonId x, EdgeId e) {
  GENTRIUS_DCHECK(!inserted_.test(x));
  for (const std::uint32_t i : problem_->trees_of_taxon[x]) {
    ++common_count_[i];
    --remaining_in_[i];
    dirty_[i] = 1;  // the common taxon set of T_i changed
  }
  if (!incremental_) {
    for (auto& d : dirty_) d = 1;
  }
  const InsertRecord rec = agile_.insert_leaf(x, e);
  if (incremental_) {
    // x is not in any clean constraint's taxon set, so every clean mapping
    // stays structurally valid: the retained half of the split edge keeps
    // its key, and the moved half plus the pendant edge attach strictly
    // inside the same common-subtree edge — same key, bucket grows by two.
    const std::size_t m = problem_->constraints.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (!computed_[i] || dirty_[i]) continue;
      const std::uint64_t k = edge_key_[i][e];
      edge_key_[i][rec.moved_edge] = k;
      edge_key_[i][rec.leaf_edge] = k;
      bucket_[i][k] += 2;
    }
  }
  inserted_.set(x);
  const auto it = std::lower_bound(remaining_.begin(), remaining_.end(), x);
  GENTRIUS_DCHECK(it != remaining_.end() && *it == x);
  remaining_.erase(it);
  return rec;
}

void Terrace::remove(const InsertRecord& rec) {
  const TaxonId x = rec.taxon;
  for (const std::uint32_t i : problem_->trees_of_taxon[x]) {
    --common_count_[i];
    ++remaining_in_[i];
    dirty_[i] = 1;
  }
  if (!incremental_) {
    for (auto& d : dirty_) d = 1;
  } else {
    // Exact inverse of the incremental insert update.
    const std::size_t m = problem_->constraints.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (!computed_[i] || dirty_[i]) continue;
      bucket_[i][edge_key_[i][rec.split_edge]] -= 2;
    }
  }
  agile_.remove_leaf(rec);
  inserted_.reset(x);
  remaining_.insert(std::lower_bound(remaining_.begin(), remaining_.end(), x),
                    x);
}

void Terrace::map_tree(const phylo::Tree& tree, const support::Bitset& y,
                       std::size_t i, bool agile_side) {
  const std::size_t c0 = y.first_common(inserted_);
  GENTRIUS_DCHECK(c0 < y.universe_size());
  const VertexId root = tree.leaf_of(static_cast<TaxonId>(c0));
  GENTRIUS_DCHECK(root != kNoId);

  // Preorder traversal; parents precede children in order_.
  order_.clear();
  stack_.clear();
  stack_.push_back(root);
  parent_vertex_[root] = kNoId;
  parent_edge_[root] = kNoId;
  while (!stack_.empty()) {
    const VertexId v = stack_.back();
    stack_.pop_back();
    order_.push_back(v);
    cnt_[v] = 0;
    xorv_[v] = 0;
    const auto& vx = tree.vertex(v);
    const TaxonId t = vx.taxon;
    if (t != kNoTaxon && y.test(t) && inserted_.test(t)) {
      cnt_[v] = 1;
      xorv_[v] = problem_->taxon_keys[t];
    }
    for (std::uint8_t a = 0; a < vx.degree; ++a) {
      const VertexId to = vx.adj[a].to;
      if (to == parent_vertex_[v]) continue;
      parent_vertex_[to] = v;
      parent_edge_[to] = vx.adj[a].edge;
      stack_.push_back(to);
    }
  }

  // Post-order accumulation of C-counts and XOR hashes.
  for (std::size_t k = order_.size(); k-- > 1;) {
    const VertexId v = order_[k];
    const VertexId u = parent_vertex_[v];
    cnt_[u] += cnt_[v];
    xorv_[u] ^= xorv_[v];
  }
  const std::uint64_t hc = xorv_[root];  // XOR over all of C

  // Pre-order key assignment: Steiner edges get the canonical split hash of
  // their below-side; off-Steiner edges inherit the key at their attachment
  // point (the parent's context).
  auto& keys = edge_key_[i];
  auto& bucket = bucket_[i];
  auto& targets = target_key_[i];
  for (std::size_t k = 1; k < order_.size(); ++k) {
    const VertexId v = order_[k];
    std::uint64_t key;
    if (cnt_[v] > 0) {
      const std::uint64_t h = xorv_[v];
      const std::uint64_t hx = h ^ hc;
      key = h < hx ? h : hx;
    } else {
      key = ctx_[parent_vertex_[v]];
    }
    ctx_[v] = key;
    if (agile_side) {
      const EdgeId e = parent_edge_[v];
      GENTRIUS_DCHECK(e < keys.size());
      keys[e] = key;
      ++bucket[key];
    } else {
      const TaxonId t = tree.vertex(v).taxon;
      if (t != kNoTaxon && !inserted_.test(t)) targets[t] = key;
    }
  }
}

void Terrace::ensure_mappings() {
  const std::size_t m = problem_->constraints.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (!dirty_[i]) continue;
    dirty_[i] = 0;
    const bool on = common_count_[i] >= 2 && remaining_in_[i] > 0;
    active_[i] = on ? 1 : 0;
    if (!on) {
      computed_[i] = 0;
      continue;
    }
    bucket_[i].clear();
    map_tree(agile_, problem_->constraint_taxa[i], i, /*agile_side=*/true);
    map_tree(problem_->constraints[i], problem_->constraint_taxa[i], i,
             /*agile_side=*/false);
    computed_[i] = 1;
  }
}

void Terrace::gather_constraints(TaxonId x) {
  scratch_js_.clear();
  for (const std::uint32_t i : problem_->trees_of_taxon[x])
    if (active_[i]) scratch_js_.push_back(i);
}

std::size_t Terrace::count_for(TaxonId x) {
  gather_constraints(x);
  if (scratch_js_.empty()) return agile_.edge_count();
  if (scratch_js_.size() == 1) {
    const std::uint32_t i = scratch_js_[0];
    return bucket_[i].get(target_key_[i][x], 0);
  }
  // Multiple constraints: exact intersection via one scan over agile edges.
  std::size_t count = 0;
  const std::size_t cap = agile_.edge_capacity();
  for (EdgeId e = 0; e < cap; ++e) {
    if (!agile_.edge_alive(e)) continue;
    bool ok = true;
    for (const std::uint32_t i : scratch_js_) {
      if (edge_key_[i][e] != target_key_[i][x]) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
  }
  return count;
}

void Terrace::collect_branches(TaxonId x, std::vector<EdgeId>& out) {
  out.clear();
  gather_constraints(x);
  const std::size_t cap = agile_.edge_capacity();
  for (EdgeId e = 0; e < cap; ++e) {
    if (!agile_.edge_alive(e)) continue;
    bool ok = true;
    for (const std::uint32_t i : scratch_js_) {
      if (edge_key_[i][e] != target_key_[i][x]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(e);
  }
}

Terrace::Choice Terrace::choose_dynamic(std::vector<EdgeId>& branches,
                                        Options::DynamicVariant variant) {
  branches.clear();
  Choice choice;
  if (remaining_.empty()) {
    choice.complete = true;
    return choice;
  }
  ensure_mappings();

  std::size_t best_count = static_cast<std::size_t>(-1);
  std::size_t best_degree = 0;
  for (const TaxonId x : remaining_) {
    const std::size_t c = count_for(x);  // fills scratch_js_ with x's constraints
    if (c == 0) {
      choice.taxon = x;
      choice.dead_end = true;
      return choice;
    }
    bool better;
    if (variant == Options::DynamicVariant::kMostConstrained) {
      const std::size_t d = scratch_js_.size();
      better = d > best_degree || (d == best_degree && c < best_count);
      if (better) best_degree = d;
    } else {
      better = c < best_count;
    }
    if (better) {
      best_count = c;
      choice.taxon = x;
    }
  }
  collect_branches(choice.taxon, branches);
  GENTRIUS_DCHECK(branches.size() == best_count);
  return choice;
}

Terrace::Choice Terrace::choose_static(TaxonId taxon,
                                       std::vector<EdgeId>& branches) {
  branches.clear();
  Choice choice;
  if (remaining_.empty()) {
    choice.complete = true;
    return choice;
  }
  ensure_mappings();
  choice.taxon = taxon;
  collect_branches(taxon, branches);
  if (branches.empty()) choice.dead_end = true;
  return choice;
}

bool Terrace::initial_state_consistent() const {
  for (std::size_t i = 0; i < problem_->constraints.size(); ++i) {
    if (common_count_[i] < 4) continue;  // <= 3 common taxa: always consistent
    std::vector<TaxonId> common;
    problem_->constraint_taxa[i].for_each([&](std::size_t t) {
      if (inserted_.test(t)) common.push_back(static_cast<TaxonId>(t));
    });
    const auto a = phylo::restrict_to(agile_, common);
    const auto b = phylo::restrict_to(problem_->constraints[i], common);
    if (!phylo::same_topology(a, b)) return false;
  }
  return true;
}

}  // namespace gentrius::core
