#include "gentrius/terrace.hpp"

#include <algorithm>

#include "phylo/topology.hpp"
#include "support/check.hpp"

namespace gentrius::core {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Terrace::Terrace(const Problem& problem, bool incremental)
    : arena_(std::make_shared<support::Arena>()),
      problem_(&problem),
      agile_(problem.constraints[problem.initial_constraint]),
      inserted_(problem.n_taxa),
      incremental_(incremental),
      slot_map_(64, arena_),
      journal_(support::ArenaAllocator<MutEvent>(arena_)),
      xorv_(support::ArenaAllocator<std::uint64_t>(arena_)),
      cnt_(support::ArenaAllocator<std::uint32_t>(arena_)),
      ctxk_(support::ArenaAllocator<std::uint64_t>(arena_)),
      ctxs_(support::ArenaAllocator<std::uint32_t>(arena_)),
      scratch_js_(support::ArenaAllocator<std::uint32_t>(arena_)),
      scratch_eslot_(support::ArenaAllocator<const std::uint32_t*>(arena_)),
      scratch_target_(support::ArenaAllocator<std::uint32_t>(arena_)) {
  agile_.reserve_for_leaves(problem.all_taxa.count());

  for (const TaxonId t : agile_.taxa()) inserted_.set(t);

  // Remaining-taxa dancing-links list, ascending, sentinel at n_taxa.
  const TaxonId sentinel = static_cast<TaxonId>(problem.n_taxa);
  rem_next_.assign(problem.n_taxa + 1, sentinel);
  rem_prev_.assign(problem.n_taxa + 1, sentinel);
  TaxonId prev = sentinel;
  for (const TaxonId t : problem.missing_taxa) {
    rem_next_[prev] = t;
    rem_prev_[t] = prev;
    prev = t;
  }
  rem_next_[prev] = sentinel;
  rem_prev_[sentinel] = prev;
  remaining_count_ = problem.missing_taxa.size();

  const std::size_t m = problem.constraints.size();
  common_count_.resize(m);
  remaining_in_.resize(m);
  active_.assign(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& y = problem.constraint_taxa[i];
    common_count_[i] =
        static_cast<std::uint32_t>(y.intersection_count(inserted_));
    remaining_in_[i] =
        static_cast<std::uint32_t>(y.count()) - common_count_[i];
  }

  computed_.assign(m, 0);
  dirty_.assign(m, 1);
  dirty_mut_.assign(m, 0);

  const std::size_t n_total = problem.all_taxa.count();
  max_edges_ = n_total < 2 ? 1 : 2 * n_total;  // capacity bound
  // Per-constraint mapping storage stays empty until the constraint first
  // activates (ensure_constraint_storage); only the outer vectors are paid
  // up front. The inner vectors carry the arena allocator from day one, so
  // activation carves all six arrays out of one contiguous arena region.
  edge_slot_.assign(m, AVec<std::uint32_t>(
                           support::ArenaAllocator<std::uint32_t>(arena_)));
  target_slot_.assign(m, AVec<std::uint32_t>(
                             support::ArenaAllocator<std::uint32_t>(arena_)));
  slot_count_.assign(m, AVec<std::uint32_t>(
                            support::ArenaAllocator<std::uint32_t>(arena_)));
  slot_head_.assign(m, AVec<EdgeId>(support::ArenaAllocator<EdgeId>(arena_)));
  link_next_.assign(m, AVec<EdgeId>(support::ArenaAllocator<EdgeId>(arena_)));
  link_prev_.assign(m, AVec<EdgeId>(support::ArenaAllocator<EdgeId>(arena_)));
  n_slots_.assign(m, 0);
  ctrav_.resize(m);
  target_key_.assign(m, AVec<std::uint64_t>(
                            support::ArenaAllocator<std::uint64_t>(arena_)));
  have_target_keys_.assign(m, 0);
  cdelta_.resize(m);

  cached_count_.assign(problem.n_taxa, 0);
  cache_mut_.assign(problem.n_taxa, 0);
  cache_valid_.assign(problem.n_taxa, 0);
  common_scratch_.resize(problem.n_taxa);
  edge_gen_.assign(max_edges_, 0);
  // Ring must comfortably hold one full DFS path of insert events plus the
  // backtracking churn between two evaluations of the same taxon.
  journal_.resize(pow2_at_least(4 * n_total + 64));

  std::size_t max_vertices = 2 * n_total;  // agile bound
  for (const auto& t : problem.constraints)
    max_vertices = std::max(max_vertices, t.vertex_capacity() + 1);
  xorv_.resize(max_vertices);
  cnt_.resize(max_vertices);
  ctxk_.resize(max_vertices);
  ctxs_.resize(max_vertices);
  trav_stack_.reserve(max_vertices);
}

std::vector<TaxonId> Terrace::remaining() const {
  std::vector<TaxonId> out;
  out.reserve(remaining_count_);
  const TaxonId sentinel = static_cast<TaxonId>(problem_->n_taxa);
  for (TaxonId x = rem_next_[sentinel]; x != sentinel; x = rem_next_[x])
    out.push_back(x);
  return out;
}

void Terrace::ensure_constraint_storage(std::size_t i) {
  if (!edge_slot_[i].empty()) return;
  edge_slot_[i].assign(max_edges_, kNoSlot);
  target_slot_[i].assign(problem_->n_taxa, kNoSlot);
  slot_count_[i].assign(max_edges_, 0);
  slot_head_[i].assign(max_edges_, kNoId);
  link_next_[i].assign(max_edges_, kNoId);
  link_prev_[i].assign(max_edges_, kNoId);
  target_key_[i].assign(problem_->n_taxa, 0);
}

std::size_t Terrace::mapping_storage_bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < edge_slot_.size(); ++i) {
    total += edge_slot_[i].capacity() * sizeof(std::uint32_t);
    total += target_slot_[i].capacity() * sizeof(std::uint32_t);
    total += slot_count_[i].capacity() * sizeof(std::uint32_t);
    total += slot_head_[i].capacity() * sizeof(EdgeId);
    total += link_next_[i].capacity() * sizeof(EdgeId);
    total += link_prev_[i].capacity() * sizeof(EdgeId);
    total += target_key_[i].capacity() * sizeof(std::uint64_t);
    total += cdelta_[i].capacity() * sizeof(std::int32_t);
    total += ctrav_[i].parent_pos.capacity() * sizeof(std::uint32_t);
    total += ctrav_[i].edge.capacity() * sizeof(EdgeId);
    total += ctrav_[i].taxon.capacity() * sizeof(TaxonId);
  }
  return total;
}

void Terrace::preimage_push(std::size_t i, std::uint32_t s, EdgeId e) {
  auto& next = link_next_[i];
  auto& prev = link_prev_[i];
  EdgeId& head = slot_head_[i][s];
  next[e] = head;
  prev[e] = kNoId;
  if (head != kNoId) prev[head] = e;
  head = e;
}

void Terrace::preimage_unlink(std::size_t i, std::uint32_t s, EdgeId e) {
  auto& next = link_next_[i];
  auto& prev = link_prev_[i];
  const EdgeId p = prev[e];
  const EdgeId n = next[e];
  if (p != kNoId)
    next[p] = n;
  else
    slot_head_[i][s] = n;
  if (n != kNoId) prev[n] = p;
}

void Terrace::journal_push(EdgeId split_edge, std::int8_t sign) {
  journal_[mutation_count_ & (journal_.size() - 1)] =
      MutEvent{split_edge, edge_gen_[split_edge], sign};
  ++mutation_count_;
  if (mutation_count_ - journal_base_ > journal_.size())
    journal_base_ = mutation_count_ - journal_.size();
}

InsertRecord Terrace::insert(TaxonId x, EdgeId e) {
  GENTRIUS_DCHECK(!inserted_.test(x));
  const std::uint64_t ev = mutation_count_;
  const std::int32_t tok = static_cast<std::int32_t>(x) + 1;
  for (const std::uint32_t i : problem_->trees_of_taxon[x]) {
    ++common_count_[i];
    --remaining_in_[i];
    dirty_[i] = 1;  // the common taxon set of T_i changed
    dirty_mut_[i] = ev;
    // The C_i ledger is maintained in both modes: recompute-mode rebuilds
    // also elide the constraint-side DFS when the net common set is
    // unchanged — for them that is the dominant case, since every
    // constraint rebuilds per state but only the inserted taxon's trees
    // actually change.
    auto& d = cdelta_[i];
    if (!d.empty() && d.back() == -tok)
      d.pop_back();  // cancels the matching remove: net C_i change is nil
    else
      d.push_back(tok);
  }
  if (!incremental_) {
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      dirty_[i] = 1;
      dirty_mut_[i] = ev;
    }
  }
  const InsertRecord rec = agile_.insert_leaf(x, e);
  if (incremental_) {
    // x is not in any clean constraint's taxon set, so every clean mapping
    // stays structurally valid: the retained half of the split edge keeps
    // its slot, and the moved half plus the pendant edge attach strictly
    // inside the same common-subtree edge — same slot, preimage grows by
    // two.
    const std::size_t m = problem_->constraints.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (!computed_[i] || dirty_[i]) continue;
      const std::uint32_t s = edge_slot_[i][e];
      edge_slot_[i][rec.moved_edge] = s;
      edge_slot_[i][rec.leaf_edge] = s;
      slot_count_[i][s] += 2;
      preimage_push(i, s, rec.moved_edge);
      preimage_push(i, s, rec.leaf_edge);
    }
  }
  inserted_.set(x);
  // Dancing-links unlink: x keeps its own neighbor pointers so the LIFO
  // remove() can relink in O(1).
  rem_next_[rem_prev_[x]] = rem_next_[x];
  rem_prev_[rem_next_[x]] = rem_prev_[x];
  --remaining_count_;
  atrav_.root = kNoTaxon;  // agile topology changed
  journal_push(e, +1);
  return rec;
}

void Terrace::remove(const InsertRecord& rec) {
  const TaxonId x = rec.taxon;
  const std::uint64_t ev = mutation_count_;
  const std::int32_t tok = static_cast<std::int32_t>(x) + 1;
  for (const std::uint32_t i : problem_->trees_of_taxon[x]) {
    --common_count_[i];
    ++remaining_in_[i];
    dirty_[i] = 1;
    dirty_mut_[i] = ev;
    auto& d = cdelta_[i];
    if (!d.empty() && d.back() == tok)
      d.pop_back();
    else
      d.push_back(-tok);
  }
  if (!incremental_) {
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      dirty_[i] = 1;
      dirty_mut_[i] = ev;
    }
  } else {
    // Exact inverse of the incremental insert update.
    const std::size_t m = problem_->constraints.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (!computed_[i] || dirty_[i]) continue;
      const std::uint32_t s = edge_slot_[i][rec.split_edge];
      preimage_unlink(i, s, rec.moved_edge);
      preimage_unlink(i, s, rec.leaf_edge);
      slot_count_[i][s] -= 2;
    }
  }
  agile_.remove_leaf(rec);
  // Both ids just went back to the free list; retire them so journal
  // replays can tell a later reuse apart from the occupant they recorded.
  ++edge_gen_[rec.leaf_edge];
  ++edge_gen_[rec.moved_edge];
  inserted_.reset(x);
  rem_next_[rem_prev_[x]] = x;
  rem_prev_[rem_next_[x]] = x;
  ++remaining_count_;
  atrav_.root = kNoTaxon;
  journal_push(rec.split_edge, -1);
}

void Terrace::build_traversal(const phylo::Tree& tree, TaxonId root,
                              FlatTraversal& out) {
  out.root = root;
  out.parent_pos.clear();
  out.edge.clear();
  out.taxon.clear();
  const VertexId rootv = tree.leaf_of(root);
  GENTRIUS_DCHECK(rootv != kNoId);
  trav_stack_.clear();
  trav_stack_.push_back(TravItem{rootv, 0, kNoId});
  while (!trav_stack_.empty()) {
    const TravItem it = trav_stack_.back();
    trav_stack_.pop_back();
    const std::uint32_t pos = static_cast<std::uint32_t>(out.parent_pos.size());
    const auto& vx = tree.vertex(it.v);
    out.parent_pos.push_back(it.parent_pos);
    out.edge.push_back(it.pedge);
    out.taxon.push_back(vx.taxon);
    for (std::uint8_t a = 0; a < vx.degree; ++a) {
      if (vx.adj[a].edge == it.pedge) continue;  // back-edge to parent
      trav_stack_.push_back(TravItem{vx.adj[a].to, pos, vx.adj[a].edge});
    }
  }
}

void Terrace::rebuild_constraint(std::size_t i, TaxonId root) {
  ensure_constraint_storage(i);
  const auto& y = problem_->constraint_taxa[i];
  const auto& keys = problem_->taxon_keys;
  // Materialize C_i = Y_i ∩ inserted once per rebuild (fused word-parallel
  // pass); both DFS sweeps below then pay a single bitset probe per node
  // instead of two.
  const std::size_t n_common = y.restrict_and_count(inserted_, common_scratch_);
  GENTRIUS_DCHECK(n_common == common_count_[i]);
  (void)n_common;

  // ---- agile side: slot every agile edge -------------------------------
  if (atrav_.root != root) build_traversal(agile_, root, atrav_);
  const std::size_t n = atrav_.parent_pos.size();
  // Zero-fill, then one reverse sweep folding in leaf keys and pushing the
  // subtree aggregate to the parent (children precede their parent in
  // reverse preorder, so a node is final when its own position is reached).
  std::fill_n(xorv_.begin(), n, 0);
  std::fill_n(cnt_.begin(), n, 0);
  for (std::size_t k = n; k-- > 1;) {
    const TaxonId t = atrav_.taxon[k];
    if (t != kNoTaxon && common_scratch_.test(t)) {
      cnt_[k] += 1;
      xorv_[k] ^= keys[t];
    }
    const std::uint32_t p0 = atrav_.parent_pos[k];
    cnt_[p0] += cnt_[k];
    xorv_[p0] ^= xorv_[k];
  }
  xorv_[0] ^= keys[root];  // the root leaf is common by construction
  ++cnt_[0];
  const std::uint64_t hc = xorv_[0];  // XOR over all of C

  slot_map_.clear();
  std::uint32_t n_slots = 0;
  auto& eslot = edge_slot_[i];
  auto& scount = slot_count_[i];
  auto& shead = slot_head_[i];
  auto& lnext = link_next_[i];
  auto& lprev = link_prev_[i];
  for (std::size_t k = 1; k < n; ++k) {
    const std::uint32_t p = atrav_.parent_pos[k];
    std::uint64_t key;
    std::uint32_t s;
    if (cnt_[k] > 0) {
      // Canonical side-symmetric split hash of the below-side C-taxa.
      const std::uint64_t h = xorv_[k];
      const std::uint64_t hx = h ^ hc;
      key = h < hx ? h : hx;
      // cnt is monotone toward the root, so p is either the root or keyed;
      // chains of edges inside one common-subtree edge reuse the parent's
      // slot without touching the intern table.
      if (p != 0 && key == ctxk_[p]) {
        s = ctxs_[p];
      } else {
        std::uint32_t& v = slot_map_[key];
        if (v == 0) {
          s = n_slots++;
          scount[s] = 0;
          shead[s] = kNoId;
          v = s + 1;
        } else {
          s = v - 1;
        }
      }
    } else {
      // No common taxa below: the edge lies strictly inside the parent's
      // common-subtree edge.
      key = ctxk_[p];
      s = ctxs_[p];
    }
    ctxk_[k] = key;
    ctxs_[k] = s;
    const EdgeId e = atrav_.edge[k];
    eslot[e] = s;
    ++scount[s];
    lnext[e] = shead[s];
    lprev[e] = kNoId;
    if (shead[s] != kNoId) lprev[shead[s]] = e;
    shead[s] = e;
  }
  n_slots_[i] = n_slots;

  // ---- constraint side: slot the attachment edge of each open taxon ----
  FlatTraversal& ct = ctrav_[i];
  auto& tslot = target_slot_[i];
  auto& tkey = target_key_[i];
  if (have_target_keys_[i] != 0 && cdelta_[i].empty() && ct.root == root) {
    // C_i and the DFS root match the last full constraint-side pass, so the
    // attachment-edge keys of the open taxa are unchanged; only the
    // agile-side interning is fresh. Re-probe the stored keys instead of
    // sweeping T_i (block-iterated over Y_i \ inserted).
    y.for_each_diff(inserted_, [&](std::size_t t) {
      const std::uint32_t v = slot_map_.get(tkey[t], 0);
      tslot[t] = v == 0 ? kNoSlot : v - 1;
    });
    return;
  }
  if (ct.root != root)
    build_traversal(problem_->constraints[i], root, ct);
  const std::size_t nc = ct.parent_pos.size();
  std::fill_n(xorv_.begin(), nc, 0);
  std::fill_n(cnt_.begin(), nc, 0);
  for (std::size_t k = nc; k-- > 1;) {
    const TaxonId t = ct.taxon[k];
    if (t != kNoTaxon && common_scratch_.test(t)) {
      cnt_[k] += 1;
      xorv_[k] ^= keys[t];
    }
    const std::uint32_t p0 = ct.parent_pos[k];
    cnt_[p0] += cnt_[k];
    xorv_[p0] ^= xorv_[k];
  }
  xorv_[0] ^= keys[root];
  ++cnt_[0];
  GENTRIUS_DCHECK(xorv_[0] == hc);  // same C on both sides

  for (std::size_t k = 1; k < nc; ++k) {
    const std::uint32_t p = ct.parent_pos[k];
    std::uint64_t key;
    if (cnt_[k] > 0) {
      const std::uint64_t h = xorv_[k];
      const std::uint64_t hx = h ^ hc;
      key = h < hx ? h : hx;
    } else {
      key = ctxk_[p];
    }
    ctxk_[k] = key;
    const TaxonId t = ct.taxon[k];
    if (t != kNoTaxon && !inserted_.test(t)) {
      tkey[t] = key;
      const std::uint32_t v = slot_map_.get(key, 0);
      tslot[t] = v == 0 ? kNoSlot : v - 1;
    }
  }
  have_target_keys_[i] = 1;
  cdelta_[i].clear();
}

void Terrace::ensure_mappings() {
  const std::size_t m = problem_->constraints.size();
  rebuild_order_.clear();
  for (std::size_t i = 0; i < m; ++i) {
    if (!dirty_[i]) continue;
    dirty_[i] = 0;
    const bool on = common_count_[i] >= 2 && remaining_in_[i] > 0;
    active_[i] = on ? 1 : 0;
    if (!on) {
      computed_[i] = 0;
      continue;
    }
    const TaxonId root = static_cast<TaxonId>(
        problem_->constraint_taxa[i].first_common(inserted_));
    rebuild_order_.emplace_back(root, static_cast<std::uint32_t>(i));
  }
  if (rebuild_order_.empty()) return;
  // Group same-root rebuilds so they share one agile structural pass.
  std::stable_sort(rebuild_order_.begin(), rebuild_order_.end());
  for (const auto& [root, i] : rebuild_order_) {
    rebuild_constraint(i, root);
    computed_[i] = 1;
    ++stats_.mappings_rebuilt;
  }
}

void Terrace::gather_constraints(TaxonId x) {
  scratch_js_.clear();
  scratch_eslot_.clear();
  scratch_target_.clear();
  for (const std::uint32_t i : problem_->trees_of_taxon[x]) {
    if (!active_[i]) continue;
    // Active implies rebuilt (ensure_mappings ran), so the per-constraint
    // arrays exist; cache the edge-slot base pointer and x's target slot so
    // every probe below is one load + compare with no double indirection.
    scratch_js_.push_back(i);
    scratch_eslot_.push_back(edge_slot_[i].data());
    scratch_target_.push_back(target_slot_[i][x]);
  }
}

bool Terrace::edge_admissible(EdgeId e) const {
  for (std::size_t k = 0; k < scratch_eslot_.size(); ++k)
    if (scratch_eslot_[k][e] != scratch_target_[k]) return false;
  return true;
}

std::size_t Terrace::count_fresh(TaxonId x) {
  gather_constraints(x);
  if (scratch_js_.empty()) return agile_.edge_count();
  if (scratch_js_.size() == 1) {
    const std::uint32_t ts = scratch_target_[0];
    return ts == kNoSlot ? 0 : slot_count_[scratch_js_[0]][ts];
  }
  // Multiple constraints: walk the smallest constraint's preimage list and
  // probe the others through the gathered pointer caches.
  const std::size_t nj = scratch_js_.size();
  std::size_t best_k = 0;
  std::uint32_t best_n = 0xffffffffu;
  for (std::size_t k = 0; k < nj; ++k) {
    const std::uint32_t ts = scratch_target_[k];
    if (ts == kNoSlot) return 0;
    const std::uint32_t sc = slot_count_[scratch_js_[k]][ts];
    if (sc == 0) return 0;
    if (sc < best_n) {
      best_n = sc;
      best_k = k;
    }
  }
  std::size_t count = 0;
  const std::uint32_t best_i = scratch_js_[best_k];
  const auto& next = link_next_[best_i];
  for (EdgeId e = slot_head_[best_i][scratch_target_[best_k]]; e != kNoId;
       e = next[e]) {
    bool ok = true;
    for (std::size_t k = 0; k < nj; ++k) {
      if (k == best_k) continue;
      if (scratch_eslot_[k][e] != scratch_target_[k]) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
  }
  return count;
}

std::size_t Terrace::admissible_count(TaxonId x) {
  gather_constraints(x);
  if (scratch_js_.size() <= 1) {
    // Degenerate constraint degree: a fresh count is O(1) either way
    // (edge_count or one slot_count lookup), cheaper than any journal
    // replay — bypass the cache machinery entirely.
    std::size_t c;
    if (scratch_js_.empty()) {
      c = agile_.edge_count();
    } else {
      const std::uint32_t ts = scratch_target_[0];
      c = ts == kNoSlot ? 0 : slot_count_[scratch_js_[0]][ts];
    }
    cached_count_[x] = static_cast<std::uint32_t>(c);
    cache_mut_[x] = mutation_count_;
    cache_valid_[x] = 1;
    ++stats_.fresh_counts;
    return c;
  }
  bool valid = cache_valid_[x] != 0 && cache_mut_[x] >= journal_base_;
  if (valid) {
    for (const std::uint32_t i : problem_->trees_of_taxon[x]) {
      if (dirty_mut_[i] >= cache_mut_[x]) {
        valid = false;
        break;
      }
    }
  }
  if (valid) {
    // Replay the journal window: an insert splits an edge into three that
    // agree on every constraint slot of x, so the admissible set gains (or
    // on remove, loses) exactly two edges iff the split edge is admissible.
    // Evaluating admissibility with the *current* slots is exact only for
    // events whose edge survived to the present: its slot is untouched
    // since x's constraints were last rebuilt, and paired insert/remove
    // events cancel. An event whose edge id died since (generation
    // mismatch) may have been recycled by a later insert — the id's slot
    // then reflects the new occupant, not the edge the event recorded — so
    // the window is unreplayable and we recount from scratch. (x's probe
    // caches were gathered above.)
    std::int64_t c = static_cast<std::int64_t>(cached_count_[x]);
    const std::size_t mask = journal_.size() - 1;
    bool replayable = true;
    for (std::uint64_t u = cache_mut_[x]; u < mutation_count_; ++u) {
      const MutEvent& evt = journal_[u & mask];
      if (edge_gen_[evt.edge] != evt.gen) {
        replayable = false;
        break;
      }
      if (edge_admissible(evt.edge)) c += 2 * evt.sign;
    }
    if (replayable) {
      GENTRIUS_DCHECK(c >= 0);
      // Cross-check against a full recount: O(edges) per refresh, so it is
      // off even in debug builds (which then exercise the cache as the
      // authoritative count, like release); enable with
      // -DGENTRIUS_EXPENSIVE_CHECKS=ON when touching the journal logic.
      GENTRIUS_EXPENSIVE_DCHECK(static_cast<std::size_t>(c) ==
                                count_fresh(x));
      cached_count_[x] = static_cast<std::uint32_t>(c);
      cache_mut_[x] = mutation_count_;
      ++stats_.cached_counts;
      return static_cast<std::size_t>(c);
    }
  }
  const std::size_t c = count_fresh(x);
  cached_count_[x] = static_cast<std::uint32_t>(c);
  cache_mut_[x] = mutation_count_;
  cache_valid_[x] = 1;
  ++stats_.fresh_counts;
  return c;
}

bool Terrace::has_admissible(TaxonId x) {
  gather_constraints(x);
  if (scratch_js_.empty()) return agile_.edge_count() > 0;
  const std::size_t nj = scratch_js_.size();
  std::size_t best_k = 0;
  std::uint32_t best_n = 0xffffffffu;
  for (std::size_t k = 0; k < nj; ++k) {
    const std::uint32_t ts = scratch_target_[k];
    if (ts == kNoSlot) return false;
    const std::uint32_t sc = slot_count_[scratch_js_[k]][ts];
    if (sc == 0) return false;
    if (sc < best_n) {
      best_n = sc;
      best_k = k;
    }
  }
  if (nj == 1) return true;  // nonzero preimage suffices
  const std::uint32_t best_i = scratch_js_[best_k];
  const auto& next = link_next_[best_i];
  for (EdgeId e = slot_head_[best_i][scratch_target_[best_k]]; e != kNoId;
       e = next[e]) {
    bool ok = true;
    for (std::size_t k = 0; k < nj; ++k) {
      if (k == best_k) continue;
      if (scratch_eslot_[k][e] != scratch_target_[k]) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

void Terrace::collect_branches(TaxonId x, std::vector<EdgeId>& out) {
  out.clear();
  gather_constraints(x);
  if (scratch_js_.empty()) {
    // Unconstrained taxon: every live edge, ascending.
    const std::size_t cap = agile_.edge_capacity();
    for (EdgeId e = 0; e < cap; ++e)
      if (agile_.edge_alive(e)) out.push_back(e);
    return;
  }
  const std::size_t nj = scratch_js_.size();
  std::size_t best_k = 0;
  std::uint32_t best_n = 0xffffffffu;
  for (std::size_t k = 0; k < nj; ++k) {
    const std::uint32_t ts = scratch_target_[k];
    if (ts == kNoSlot) return;
    const std::uint32_t sc = slot_count_[scratch_js_[k]][ts];
    if (sc == 0) return;
    if (sc < best_n) {
      best_n = sc;
      best_k = k;
    }
  }
  const std::uint32_t best_i = scratch_js_[best_k];
  const auto& next = link_next_[best_i];
  for (EdgeId e = slot_head_[best_i][scratch_target_[best_k]]; e != kNoId;
       e = next[e]) {
    bool ok = true;
    for (std::size_t k = 0; k < nj; ++k) {
      if (k == best_k) continue;
      if (scratch_eslot_[k][e] != scratch_target_[k]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(e);
  }
  // Preimage lists are maintained in mutation order; the enumerator's branch
  // order contract (and the seed engine) is ascending edge id.
  std::sort(out.begin(), out.end());
}

Terrace::Choice Terrace::choose_dynamic(std::vector<EdgeId>& branches,
                                        Options::DynamicVariant variant) {
  branches.clear();
  Choice choice;
  if (remaining_count_ == 0) {
    choice.complete = true;
    return choice;
  }
  ensure_mappings();

  const TaxonId sentinel = static_cast<TaxonId>(problem_->n_taxa);
  std::size_t best_count = static_cast<std::size_t>(-1);
  std::size_t best_degree = 0;
  // Once a count of 1 is locked in under kMinBranches no later taxon can win
  // (ties break toward the lower id), but later zero counts must still be
  // detected — and attributed to the first zero in ascending order, exactly
  // as the full scan would — so the loop degrades to existence probes.
  bool existence_only = false;
  for (TaxonId x = rem_next_[sentinel]; x != sentinel; x = rem_next_[x]) {
    if (existence_only) {
      ++stats_.existence_checks;
      if (!has_admissible(x)) {
        choice.taxon = x;
        choice.dead_end = true;
        return choice;
      }
      continue;
    }
    const std::size_t c = admissible_count(x);  // gathers x's constraints
    if (c == 0) {
      choice.taxon = x;
      choice.dead_end = true;
      return choice;
    }
    bool better;
    if (variant == Options::DynamicVariant::kMostConstrained) {
      const std::size_t d = scratch_js_.size();
      better = d > best_degree || (d == best_degree && c < best_count);
      if (better) best_degree = d;
    } else {
      better = c < best_count;
    }
    if (better) {
      best_count = c;
      choice.taxon = x;
      if (variant == Options::DynamicVariant::kMinBranches && c == 1)
        existence_only = true;
    }
  }
  collect_branches(choice.taxon, branches);
  GENTRIUS_DCHECK(branches.size() == best_count);
  return choice;
}

Terrace::Choice Terrace::choose_static(TaxonId taxon,
                                       std::vector<EdgeId>& branches) {
  branches.clear();
  Choice choice;
  if (remaining_count_ == 0) {
    choice.complete = true;
    return choice;
  }
  ensure_mappings();
  choice.taxon = taxon;
  collect_branches(taxon, branches);
  if (branches.empty()) choice.dead_end = true;
  return choice;
}

bool Terrace::initial_state_consistent() const {
  for (std::size_t i = 0; i < problem_->constraints.size(); ++i) {
    if (common_count_[i] < 4) continue;  // <= 3 common taxa: always consistent
    std::vector<TaxonId> common;
    problem_->constraint_taxa[i].for_each_and(inserted_, [&](std::size_t t) {
      common.push_back(static_cast<TaxonId>(t));
    });
    const auto a = phylo::restrict_to(agile_, common);
    const auto b = phylo::restrict_to(problem_->constraints[i], common);
    if (!phylo::same_topology(a, b)) return false;
  }
  return true;
}

}  // namespace gentrius::core
