// Immutable, thread-shared problem description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gentrius/options.hpp"
#include "phylo/tree.hpp"
#include "support/bitset.hpp"
#include "support/fingerprint.hpp"

namespace gentrius::core {

/// Normalized input for one Gentrius run: the constraint trees, their taxon
/// sets, and the chosen initial agile tree. Built once, then shared
/// read-only by every enumerator (each thread copies only its own agile
/// tree; the paper's "redundant input parsing" corresponds to each thread's
/// private Terrace built from this object).
struct Problem {
  std::size_t n_taxa = 0;  ///< universe size (max taxon id + 1 over all trees)
  std::vector<phylo::Tree> constraints;
  std::vector<support::Bitset> constraint_taxa;           ///< per constraint, over [0, n_taxa)
  std::vector<std::vector<std::uint32_t>> trees_of_taxon;  ///< constraint indices containing taxon
  support::Bitset all_taxa;                                ///< union of constraint taxa
  std::size_t initial_constraint = 0;
  std::vector<phylo::TaxonId> missing_taxa;  ///< taxa to insert, ascending
  /// xorshift keys for the split hashing of the double-edge mappings.
  std::vector<std::uint64_t> taxon_keys;

  std::size_t missing_count() const { return missing_taxa.size(); }
};

/// Validates the constraint set and applies the initial-tree-selection
/// heuristic (or the Options override). Throws InvalidInput on unusable
/// input: empty constraint list, no constraint with >= 3 taxa, non-binary
/// trees (vertices of degree 2 or > 3 among internals).
Problem build_problem(std::vector<phylo::Tree> constraints,
                      const Options& options);

// ---- canonical instance encoding -------------------------------------------

/// The canonical form of a constraint-tree instance: a byte encoding that is
/// invariant under taxon relabeling and constraint reordering, plus its
/// 128-bit fingerprint. Two instances with equal encodings are isomorphic —
/// the encoding is a full serialization of the constraint trees over
/// canonical taxon ranks, so consumers (the incremental ResultCache) compare
/// encodings byte for byte on every fingerprint hit and a hash collision can
/// cost a recomputation but never a wrong answer.
///
/// Canonical ranks come from Weisfeiler–Leman-style color refinement (each
/// taxon's color folds in the sorted multiset of its rooted tree hashes),
/// followed by individualization-refinement on surviving color ties under a
/// bounded branch budget. When the budget runs out — only on instances with
/// large automorphism-free color classes — ties fall back to ascending
/// taxon id and `relabel_invariant` turns false: the encoding is still
/// deterministic and sound, it just may differ between relabelings of the
/// same instance (a cache miss, not a correctness problem).
struct CanonicalInstance {
  std::string encoding;
  support::Fingerprint fp;
  /// Canonical rank -> taxon id of the instance. Translates results cached
  /// in rank space (counts, stand Newick over rank labels) back into the
  /// caller's taxon ids.
  std::vector<phylo::TaxonId> order;
  bool relabel_invariant = true;
};

/// Label of canonical rank r inside the encoding: "c" + zero-padded rank,
/// so lexicographic label order equals rank order.
std::string canonical_rank_label(std::size_t rank);

/// Canonical Newick of one tree over canonical rank labels: rooted at the
/// minimum-rank leaf, subtrees sorted lexicographically. `rank` maps taxon
/// id -> canonical rank (entries for taxa outside the tree are ignored).
/// This is the serialization the incremental ResultCache stores stands in —
/// id-independent, so cached results survive taxon relabeling.
std::string rank_newick(const phylo::Tree& tree,
                        const std::vector<std::size_t>& rank);

CanonicalInstance canonicalize_instance(
    const std::vector<phylo::Tree>& constraints);

/// Shorthand: fingerprint of the canonical encoding.
support::Fingerprint instance_fingerprint(
    const std::vector<phylo::Tree>& constraints);

}  // namespace gentrius::core
