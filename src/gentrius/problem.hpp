// Immutable, thread-shared problem description.
#pragma once

#include <cstdint>
#include <vector>

#include "gentrius/options.hpp"
#include "phylo/tree.hpp"
#include "support/bitset.hpp"

namespace gentrius::core {

/// Normalized input for one Gentrius run: the constraint trees, their taxon
/// sets, and the chosen initial agile tree. Built once, then shared
/// read-only by every enumerator (each thread copies only its own agile
/// tree; the paper's "redundant input parsing" corresponds to each thread's
/// private Terrace built from this object).
struct Problem {
  std::size_t n_taxa = 0;  ///< universe size (max taxon id + 1 over all trees)
  std::vector<phylo::Tree> constraints;
  std::vector<support::Bitset> constraint_taxa;           ///< per constraint, over [0, n_taxa)
  std::vector<std::vector<std::uint32_t>> trees_of_taxon;  ///< constraint indices containing taxon
  support::Bitset all_taxa;                                ///< union of constraint taxa
  std::size_t initial_constraint = 0;
  std::vector<phylo::TaxonId> missing_taxa;  ///< taxa to insert, ascending
  /// xorshift keys for the split hashing of the double-edge mappings.
  std::vector<std::uint64_t> taxon_keys;

  std::size_t missing_count() const { return missing_taxa.size(); }
};

/// Validates the constraint set and applies the initial-tree-selection
/// heuristic (or the Options override). Throws InvalidInput on unusable
/// input: empty constraint list, no constraint with >= 3 taxa, non-binary
/// trees (vertices of degree 2 or > 3 among internals).
Problem build_problem(std::vector<phylo::Tree> constraints,
                      const Options& options);

}  // namespace gentrius::core
