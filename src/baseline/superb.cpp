#include "baseline/superb.hpp"

#include <limits>
#include <unordered_map>
#include <utility>

#include "support/bitset.hpp"
#include "support/check.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace gentrius::baseline {

using phylo::TaxonId;
using phylo::Tree;
using phylo::VertexId;
using support::Bitset;
using support::InvalidInput;

namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kMax - b ? kMax : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kMax / b) return kMax;
  return a * b;
}

/// Rooted binary tree obtained by rooting an unrooted tree at the
/// comprehensive taxon c (c itself is removed; its former neighbour is the
/// root). Stored as child pairs; leaves carry taxon ids.
struct RootedTree {
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    TaxonId taxon = phylo::kNoTaxon;
  };
  std::vector<Node> nodes;
  std::int32_t root = -1;
  Bitset leaves;  // over the full taxon universe

  std::int32_t build(const Tree& t, VertexId v, VertexId from) {
    const auto& vx = t.vertex(v);
    const auto id = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();
    if (vx.taxon != phylo::kNoTaxon) {
      nodes[static_cast<std::size_t>(id)].taxon = vx.taxon;
      return id;
    }
    std::int32_t kids[2];
    int n = 0;
    for (std::uint8_t i = 0; i < vx.degree; ++i) {
      if (vx.adj[i].to == from) continue;
      kids[n++] = build(t, vx.adj[i].to, v);
    }
    GENTRIUS_CHECK(n == 2);
    nodes[static_cast<std::size_t>(id)].left = kids[0];
    nodes[static_cast<std::size_t>(id)].right = kids[1];
    return id;
  }
};

struct BitsetKey {
  std::vector<std::uint64_t> words;
  bool operator==(const BitsetKey&) const = default;
};

struct BitsetKeyHash {
  std::size_t operator()(const BitsetKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto w : k.words) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

class Counter {
 public:
  Counter(std::vector<RootedTree> trees, std::size_t n_taxa,
          const SuperbOptions& options)
      : trees_(std::move(trees)), n_taxa_(n_taxa), options_(options) {}

  SuperbResult run(const Bitset& all) {
    SuperbResult result;
    support::Stopwatch clock;
    try {
      result.count = count(all);
      result.saturated = result.count == kMax;
    } catch (const BudgetExceeded&) {
      result.budget_exceeded = true;
    }
    result.recursion_nodes = nodes_;
    result.seconds = clock.seconds();
    return result;
  }

 private:
  struct BudgetExceeded {};

  /// Number of L-taxa below `node`, and (via `side`) the L-taxa in the
  /// effective root's left child of the restriction tree|L.
  std::size_t count_in(const RootedTree& t, std::int32_t node, const Bitset& l,
                       Bitset* side) const {
    const auto& nd = t.nodes[static_cast<std::size_t>(node)];
    if (nd.taxon != phylo::kNoTaxon) {
      const bool in = l.test(nd.taxon);
      if (in && side) side->set(nd.taxon);
      return in ? 1 : 0;
    }
    return count_in(t, nd.left, l, side) + count_in(t, nd.right, l, side);
  }

  /// Root split of t restricted to L: descends while only one child holds
  /// L-taxa; returns the left-child taxa at the first genuine split.
  /// Requires |leaves(t) ∩ L| >= 2.
  Bitset restricted_root_side(const RootedTree& t, const Bitset& l) const {
    std::int32_t node = t.root;
    for (;;) {
      const auto& nd = t.nodes[static_cast<std::size_t>(node)];
      GENTRIUS_DCHECK(nd.taxon == phylo::kNoTaxon);
      const std::size_t in_left = count_in(t, nd.left, l, nullptr);
      const std::size_t in_right = count_in(t, nd.right, l, nullptr);
      if (in_left == 0) {
        node = nd.right;
        continue;
      }
      if (in_right == 0) {
        node = nd.left;
        continue;
      }
      Bitset side(n_taxa_);
      count_in(t, nd.left, l, &side);
      return side;
    }
  }

  std::uint64_t count(const Bitset& l) {
    const std::size_t size = l.count();
    if (size <= 2) return 1;
    if (++nodes_ > options_.max_recursion_nodes) throw BudgetExceeded{};

    BitsetKey key{[&] {
      std::vector<std::uint64_t> w((n_taxa_ + 63) / 64, 0);
      l.for_each([&](std::size_t t) { w[t >> 6] |= 1ULL << (t & 63); });
      return w;
    }()};
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Union-find over the taxa of L: each root-child group of each
    // restricted constraint tree must stay on one side of the bipartition.
    std::vector<std::uint32_t> parent(n_taxa_);
    const auto taxa = l.to_indices();
    for (const auto t : taxa) parent[t] = t;
    const auto find = [&](std::uint32_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    const auto unite = [&](std::uint32_t a, std::uint32_t b) {
      parent[find(a)] = find(b);
    };

    for (const auto& t : trees_) {
      if (t.leaves.intersection_count(l) < 2) continue;
      const Bitset left = restricted_root_side(t, l);
      Bitset right = t.leaves;
      right &= l;
      right.subtract(left);
      for (const Bitset* group : {&std::as_const(left), &std::as_const(right)}) {
        std::uint32_t anchor = static_cast<std::uint32_t>(group->first());
        group->for_each([&](std::size_t x) {
          unite(anchor, static_cast<std::uint32_t>(x));
        });
      }
    }

    // Components of L.
    std::vector<std::uint32_t> roots;
    std::unordered_map<std::uint32_t, std::size_t> comp_index;
    std::vector<Bitset> comps;
    for (const auto t : taxa) {
      const std::uint32_t r = find(t);
      auto [it, fresh] = comp_index.try_emplace(r, comps.size());
      if (fresh) comps.emplace_back(n_taxa_);
      comps[it->second].set(t);
    }
    const std::size_t p = comps.size();
    std::uint64_t total = 0;
    if (p == 1) {
      total = 0;  // no valid root bipartition: nothing displays all trees
    } else if (p == 2) {
      Bitset b = l;
      b.subtract(comps[0]);
      total = sat_mul(count(comps[0]), count(b));
    } else {
      if (p > options_.max_components)
        throw BudgetExceeded{};  // 2^(p-1) assignments: hopeless anyway
      // Component 0 pinned to side A; iterate over subsets of the rest.
      const std::uint64_t masks = 1ULL << (p - 1);
      for (std::uint64_t mask = 0; mask + 1 < masks; ++mask) {
        Bitset a = comps[0];
        for (std::size_t i = 1; i < p; ++i)
          if (mask & (1ULL << (i - 1))) a |= comps[i];
        Bitset b = l;
        b.subtract(a);
        total = sat_add(total, sat_mul(count(a), count(b)));
      }
    }
    memo_.emplace(std::move(key), total);
    return total;
  }

  std::vector<RootedTree> trees_;
  std::size_t n_taxa_;
  SuperbOptions options_;
  std::uint64_t nodes_ = 0;
  std::unordered_map<BitsetKey, std::uint64_t, BitsetKeyHash> memo_;
};

}  // namespace

std::optional<TaxonId> find_comprehensive_taxon(
    const std::vector<Tree>& constraints) {
  if (constraints.empty()) return std::nullopt;
  TaxonId max_taxon = 0;
  for (const auto& t : constraints)
    for (const TaxonId x : t.taxa()) max_taxon = std::max(max_taxon, x);
  for (TaxonId c = 0; c <= max_taxon; ++c) {
    bool all = true;
    for (const auto& t : constraints) {
      if (!t.has_taxon(c)) {
        all = false;
        break;
      }
    }
    if (all) return c;
  }
  return std::nullopt;
}

SuperbResult count_stand_superb(const std::vector<Tree>& constraints,
                                TaxonId comprehensive,
                                const SuperbOptions& options) {
  if (constraints.empty())
    throw InvalidInput("SUPERB needs at least one constraint tree");

  std::size_t n_taxa = 0;
  for (const auto& t : constraints)
    for (const TaxonId x : t.taxa())
      n_taxa = std::max<std::size_t>(n_taxa, x + 1);

  std::vector<RootedTree> rooted;
  Bitset all(n_taxa);
  for (const auto& t : constraints) {
    const VertexId c_leaf = t.leaf_of(comprehensive);
    if (c_leaf == phylo::kNoId)
      throw InvalidInput(
          "comprehensive taxon missing from a constraint tree — SUPERB "
          "cannot root the input (this is Gentrius's advantage)");
    if (t.leaf_count() < 3) continue;  // roots to <2 taxa: no constraint
    RootedTree rt;
    rt.leaves.resize(n_taxa);
    // Root at c: the tree below c's unique neighbour, with c removed.
    rt.root = rt.build(t, t.vertex(c_leaf).adj[0].to, c_leaf);
    for (const TaxonId x : t.taxa()) {
      if (x == comprehensive) continue;
      rt.leaves.set(x);
      all.set(x);
    }
    rooted.push_back(std::move(rt));
  }
  // Taxa appearing only in tiny trees still belong to the universe.
  for (const auto& t : constraints)
    for (const TaxonId x : t.taxa())
      if (x != comprehensive) all.set(x);

  Counter counter(std::move(rooted), n_taxa, options);
  return counter.run(all);
}

}  // namespace gentrius::baseline
