// SUPERB-style stand counting (Constantinescu & Sankoff 1995), the prior
// method the paper's introduction discusses (terraphy, Biczok et al. 2018).
//
// SUPERB counts rooted supertrees displaying a set of rooted constraint
// trees by recursive bipartition enumeration. Its fundamental limitation —
// the reason Gentrius exists — is that it requires a *comprehensive taxon*
// (one with data in every locus) to consistently root the unrooted input
// trees. When such a taxon exists, the number of unrooted trees on X
// displaying all constraints equals the number of rooted supertrees on
// X \ {c} (root every tree at c), and this module computes it.
//
// Recursion: for taxon set L, every root bipartition of a displaying
// supertree keeps each root-child of each restricted constraint tree on one
// side; the transitive closure of those groups yields components C1..Cp,
// and every assignment of components to the two sides (both non-empty) is
// realizable:  count(L) = sum over assignments of count(A) * count(B).
// Subproblems are memoized on the taxon subset. Complexity is exponential
// (stand sizes themselves are), so the API carries an explicit work budget.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phylo/tree.hpp"

namespace gentrius::baseline {

struct SuperbOptions {
  /// Abort (saturated=true, budget_exceeded=true) after this many recursion
  /// node expansions.
  std::uint64_t max_recursion_nodes = 50'000'000;
  /// Refuse to enumerate bipartitions of more than this many components:
  /// a level with p components contributes 2^(p-1) assignments, so anything
  /// beyond ~22 is intractable (and the count would overflow regardless).
  std::size_t max_components = 22;
};

struct SuperbResult {
  std::uint64_t count = 0;
  bool saturated = false;        ///< count overflowed uint64 (reported as max)
  bool budget_exceeded = false;  ///< gave up before finishing
  std::uint64_t recursion_nodes = 0;
  double seconds = 0.0;
};

/// A taxon present in every constraint tree, if any (lowest id).
std::optional<phylo::TaxonId> find_comprehensive_taxon(
    const std::vector<phylo::Tree>& constraints);

/// Counts the stand of the given unrooted constraint trees by rooting all
/// of them at the comprehensive taxon and running SUPERB. Throws
/// InvalidInput when `comprehensive` is missing from some constraint.
SuperbResult count_stand_superb(const std::vector<phylo::Tree>& constraints,
                                phylo::TaxonId comprehensive,
                                const SuperbOptions& options = {});

}  // namespace gentrius::baseline
