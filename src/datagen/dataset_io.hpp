// Dataset persistence: write/read a Dataset as a plain-text directory so
// generated corpora can be consumed by external tools (or by the
// stand_explorer CLI) and reproduced exactly.
//
// Layout:
//   <dir>/constraints.nwk   one Newick per line (the Gentrius input)
//   <dir>/species.nwk       the ground-truth species tree (when present)
//   <dir>/matrix.pam        the presence/absence matrix (when present)
//   <dir>/name.txt          the dataset name
//   <dir>/overrides.txt     crafted-instance engine overrides (when set):
//                           "initial_constraint <index>" and/or
//                           "insertion_order <label> <label> ..."
#pragma once

#include <string>

#include "datagen/dataset.hpp"

namespace gentrius::datagen {

void write_dataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by write_dataset. Missing optional
/// files (species tree, PAM) leave the corresponding fields empty.
Dataset load_dataset(const std::string& directory);

}  // namespace gentrius::datagen
