#include "datagen/tree_gen.hpp"

#include "support/check.hpp"

namespace gentrius::datagen {

using phylo::EdgeId;
using phylo::TaxonId;
using phylo::Tree;
using phylo::VertexId;

Tree random_tree(const std::vector<TaxonId>& taxa, support::Rng& rng) {
  if (taxa.size() <= 3) return Tree::star(taxa);
  Tree t;
  t.reserve_for_leaves(taxa.size());
  t = Tree::star({taxa[0], taxa[1], taxa[2]});
  for (std::size_t i = 3; i < taxa.size(); ++i) {
    // During pure construction edge ids are dense: [0, edge_count).
    const auto e = static_cast<EdgeId>(rng.below(t.edge_count()));
    t.insert_leaf(taxa[i], e);
  }
  return t;
}

Tree yule_tree(const std::vector<TaxonId>& taxa, support::Rng& rng) {
  if (taxa.size() <= 3) return Tree::star(taxa);
  Tree t = Tree::star({taxa[0], taxa[1], taxa[2]});
  t.reserve_for_leaves(taxa.size());
  // Track pendant edges; splitting a pendant edge = speciation of that leaf.
  std::vector<EdgeId> pendant;
  t.for_each_edge([&](EdgeId e) {
    const auto& ed = t.edge(e);
    if (t.vertex(ed.u).taxon != phylo::kNoTaxon ||
        t.vertex(ed.v).taxon != phylo::kNoTaxon)
      pendant.push_back(e);
  });
  for (std::size_t i = 3; i < taxa.size(); ++i) {
    const std::size_t pick = rng.below(pendant.size());
    const EdgeId e = pendant[pick];
    // insert_leaf keeps the id `e` for the u-side half; find out whether the
    // old leaf sits on that half or on the freshly allocated moved_edge.
    const bool u_is_leaf = t.vertex(t.edge(e).u).taxon != phylo::kNoTaxon;
    const auto rec = t.insert_leaf(taxa[i], e);
    pendant[pick] = u_is_leaf ? e : rec.moved_edge;
    pendant.push_back(rec.leaf_edge);
  }
  return t;
}

std::vector<TaxonId> edge_side_taxa(const Tree& tree, EdgeId e, VertexId side) {
  std::vector<TaxonId> out;
  const VertexId avoid = tree.other_end(e, side);
  std::vector<std::pair<VertexId, VertexId>> stack{{side, avoid}};
  while (!stack.empty()) {
    const auto [v, from] = stack.back();
    stack.pop_back();
    const auto& vx = tree.vertex(v);
    if (vx.taxon != phylo::kNoTaxon) out.push_back(vx.taxon);
    for (std::uint8_t i = 0; i < vx.degree; ++i)
      if (vx.adj[i].to != from) stack.emplace_back(vx.adj[i].to, v);
  }
  return out;
}

}  // namespace gentrius::datagen
