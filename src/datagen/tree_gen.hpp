// Random tree generation.
#pragma once

#include <vector>

#include "phylo/tree.hpp"
#include "support/rng.hpp"

namespace gentrius::datagen {

/// Uniformly distributed unrooted binary tree on the given taxa (each of the
/// (2n-5)!! labeled topologies equally likely): sequential insertion at a
/// uniformly chosen edge.
phylo::Tree random_tree(const std::vector<phylo::TaxonId>& taxa,
                        support::Rng& rng);

/// Yule(-Harding) tree: repeatedly split a uniformly chosen *pendant* edge.
/// Produces more balanced trees than the uniform model — closer to real
/// phylogenies, used by the empirical-like dataset mode.
phylo::Tree yule_tree(const std::vector<phylo::TaxonId>& taxa,
                      support::Rng& rng);

/// Taxa on the `side` endpoint's side of edge `e` (DFS away from the edge).
std::vector<phylo::TaxonId> edge_side_taxa(const phylo::Tree& tree,
                                           phylo::EdgeId e,
                                           phylo::VertexId side);

}  // namespace gentrius::datagen
