// Dataset synthesis.
//
// The paper evaluates on (a) the simulated instances of the original
// Gentrius manuscript — 50-300 taxa, 5-30 loci, 30-50 % missing data, i.i.d.
// missingness — and (b) empirical multi-gene datasets from RAxML Grove.
// Neither corpus ships with this reproduction, so we regenerate both
// *recipes*: `make_simulated` reproduces (a) exactly (scaled sizes),
// `make_empirical_like` substitutes (b) with the missingness *structure*
// empirical PAMs exhibit: heavy-tailed per-locus missingness, clade-wise
// dropout on a Yule species tree, and a couple of near-comprehensive
// backbone loci. Both are fully deterministic from a 64-bit seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pam/pam.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "support/rng.hpp"

namespace gentrius::datagen {

/// A complete problem instance: taxa, (optional) ground-truth species tree,
/// PAM, and the constraint trees Gentrius runs on.
struct Dataset {
  std::string name;
  phylo::TaxonSet taxa;
  phylo::Tree species_tree;  ///< leaf-less when constraints were given directly
  pam::Pam pam;
  std::vector<phylo::Tree> constraints;

  /// Crafted instances (Fig. 5 families) rely on a specific initial agile
  /// tree and insertion order; when set, run the engine with heuristics off
  /// and these overrides.
  std::optional<std::size_t> forced_initial_constraint;
  std::vector<phylo::TaxonId> forced_insertion_order;

  std::size_t taxon_count() const { return taxa.size(); }
};

struct SimulatedParams {
  std::size_t n_taxa = 50;
  std::size_t n_loci = 8;
  double missing_fraction = 0.4;  ///< i.i.d. probability of a 0-cell
  std::size_t min_taxa_per_locus = 4;
  std::uint64_t seed = 1;
};

/// Simulated-mode instance: uniform random species tree, i.i.d. PAM,
/// constraints = induced subtrees (the stand is therefore non-empty: it
/// contains at least the species tree).
Dataset make_simulated(const SimulatedParams& params);

struct EmpiricalLikeParams {
  std::size_t n_taxa = 60;
  std::size_t n_loci = 10;
  /// Mean of the heavy-tailed per-locus missingness distribution is roughly
  /// base + tail/4.
  double base_missing = 0.15;
  double tail_missing = 0.75;
  /// Additional i.i.d. dropout applied after clade dropout.
  double scatter_missing = 0.08;
  std::size_t backbone_loci = 1;  ///< widely sampled loci (~15 % missing)
  /// Fraction of taxa sampled in only `rogue_loci` loci. Sparsely sampled
  /// ("rogue") taxa are ubiquitous in empirical multi-gene matrices and are
  /// the main source of large stands: each admits many placements.
  double rogue_fraction = 0.15;
  std::size_t rogue_loci = 2;
  std::size_t min_taxa_per_locus = 4;
  std::uint64_t seed = 1;
};

/// Empirical-like instance: Yule species tree, clade-correlated dropout.
Dataset make_empirical_like(const EmpiricalLikeParams& params);

/// Fig. 5a-style instance ("speedup plateau"): the initial split has one
/// cheap dead-end branch and one long forced chain, so no tasks can be
/// created and extra threads starve.
Dataset make_plateau_instance(std::size_t chain_length, std::uint64_t seed);

/// Fig. 5b-style instance ("super-linear under stopping rules"): two of the
/// three initial-split branches lead to large zero-stand-tree regions
/// (every path ends in a dead end), the third is stand-rich. `free_taxa`
/// controls the region sizes (both grow roughly factorially with it). With
/// the intermediate-state stopping rule active, serial execution exhausts
/// its budget in the barren region it descends first.
Dataset make_superlinear_instance(std::size_t free_taxa, std::uint64_t seed);

/// Granularity-stress instance ("hand-off flood"): every one of the
/// `depth` missing taxa has exactly three admissible branches at every
/// state (each is pinned to its own anchor cherry by one quartet), so the
/// search tree is a complete ternary tree — 3^depth stand trees, no dead
/// ends, and an offer-eligible frame at every state. Under the paper's
/// fixed offer rule the hand-off traffic saturates the central queue's
/// critical section at high N_t; the adaptive Galton–Watson policy keeps
/// the tiny deep subtrees local. `seed` permutes the insertion order
/// (same stand, independent scheduling repetitions).
Dataset make_flood_instance(std::size_t depth, std::uint64_t seed);

/// Registers labels "T0".."T{n-1}" and returns their ids.
std::vector<phylo::TaxonId> default_taxa(phylo::TaxonSet& taxa, std::size_t n);

}  // namespace gentrius::datagen
