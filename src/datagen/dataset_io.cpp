#include "datagen/dataset_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "pam/pam.hpp"
#include "phylo/newick.hpp"
#include "support/error.hpp"

namespace gentrius::datagen {

namespace fs = std::filesystem;
using support::InvalidInput;

namespace {

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw InvalidInput("cannot write " + path.string());
  out << content;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInput("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

void write_dataset(const Dataset& dataset, const std::string& directory) {
  const fs::path dir(directory);
  fs::create_directories(dir);

  std::string constraints;
  for (const auto& tree : dataset.constraints)
    constraints += phylo::to_newick(tree, dataset.taxa) + "\n";
  write_file(dir / "constraints.nwk", constraints);

  if (dataset.species_tree.leaf_count() > 0)
    write_file(dir / "species.nwk",
               phylo::to_newick(dataset.species_tree, dataset.taxa) + "\n");
  if (dataset.pam.taxon_count() > 0)
    write_file(dir / "matrix.pam", dataset.pam.to_text(dataset.taxa));
  write_file(dir / "name.txt", dataset.name + "\n");

  // Crafted instances carry engine overrides; without them a reloaded
  // Fig. 5-style dataset would silently run with the heuristics on and
  // reproduce nothing. Insertion order is stored by label so it survives
  // the taxon-id permutation a reload may introduce.
  if (dataset.forced_initial_constraint ||
      !dataset.forced_insertion_order.empty()) {
    std::string overrides;
    if (dataset.forced_initial_constraint)
      overrides += "initial_constraint " +
                   std::to_string(*dataset.forced_initial_constraint) + "\n";
    if (!dataset.forced_insertion_order.empty()) {
      overrides += "insertion_order";
      for (const auto t : dataset.forced_insertion_order)
        overrides += " " + dataset.taxa.name(t);
      overrides += "\n";
    }
    write_file(dir / "overrides.txt", overrides);
  }
}

Dataset load_dataset(const std::string& directory) {
  const fs::path dir(directory);
  Dataset ds;

  if (fs::exists(dir / "name.txt")) {
    std::string name = read_file(dir / "name.txt");
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r'))
      name.pop_back();
    ds.name = name;
  }
  // The PAM first (when present), so taxon ids match the matrix rows.
  if (fs::exists(dir / "matrix.pam"))
    ds.pam = pam::Pam::parse(read_file(dir / "matrix.pam"), ds.taxa);

  if (fs::exists(dir / "species.nwk"))
    ds.species_tree = phylo::parse_newick(read_file(dir / "species.nwk"), ds.taxa);

  const std::string constraints = read_file(dir / "constraints.nwk");
  std::istringstream in(constraints);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ds.constraints.push_back(phylo::parse_newick(line, ds.taxa));
  }
  if (ds.constraints.empty())
    throw InvalidInput("dataset has no constraint trees: " + directory);

  // After the constraints: every label the overrides may reference is
  // registered by now, so id_of resolves (and throws on a corrupt file).
  if (fs::exists(dir / "overrides.txt")) {
    std::istringstream over(read_file(dir / "overrides.txt"));
    std::string key;
    while (over >> key) {
      if (key == "initial_constraint") {
        std::size_t index = 0;
        if (!(over >> index))
          throw InvalidInput("overrides.txt: initial_constraint needs an "
                             "index: " + directory);
        if (index >= ds.constraints.size())
          throw InvalidInput("overrides.txt: initial_constraint out of "
                             "range: " + directory);
        ds.forced_initial_constraint = index;
      } else if (key == "insertion_order") {
        std::string rest;
        std::getline(over, rest);
        std::istringstream labels(rest);
        std::string label;
        while (labels >> label)
          ds.forced_insertion_order.push_back(ds.taxa.id_of(label));
      } else {
        throw InvalidInput("overrides.txt: unknown key '" + key +
                           "': " + directory);
      }
    }
  }
  return ds;
}

}  // namespace gentrius::datagen
