#include "datagen/dataset_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "pam/pam.hpp"
#include "phylo/newick.hpp"
#include "support/error.hpp"

namespace gentrius::datagen {

namespace fs = std::filesystem;
using support::InvalidInput;

namespace {

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw InvalidInput("cannot write " + path.string());
  out << content;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInput("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

void write_dataset(const Dataset& dataset, const std::string& directory) {
  const fs::path dir(directory);
  fs::create_directories(dir);

  std::string constraints;
  for (const auto& tree : dataset.constraints)
    constraints += phylo::to_newick(tree, dataset.taxa) + "\n";
  write_file(dir / "constraints.nwk", constraints);

  if (dataset.species_tree.leaf_count() > 0)
    write_file(dir / "species.nwk",
               phylo::to_newick(dataset.species_tree, dataset.taxa) + "\n");
  if (dataset.pam.taxon_count() > 0)
    write_file(dir / "matrix.pam", dataset.pam.to_text(dataset.taxa));
  write_file(dir / "name.txt", dataset.name + "\n");
}

Dataset load_dataset(const std::string& directory) {
  const fs::path dir(directory);
  Dataset ds;

  if (fs::exists(dir / "name.txt")) {
    std::string name = read_file(dir / "name.txt");
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r'))
      name.pop_back();
    ds.name = name;
  }
  // The PAM first (when present), so taxon ids match the matrix rows.
  if (fs::exists(dir / "matrix.pam"))
    ds.pam = pam::Pam::parse(read_file(dir / "matrix.pam"), ds.taxa);

  if (fs::exists(dir / "species.nwk"))
    ds.species_tree = phylo::parse_newick(read_file(dir / "species.nwk"), ds.taxa);

  const std::string constraints = read_file(dir / "constraints.nwk");
  std::istringstream in(constraints);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ds.constraints.push_back(phylo::parse_newick(line, ds.taxa));
  }
  if (ds.constraints.empty())
    throw InvalidInput("dataset has no constraint trees: " + directory);
  return ds;
}

}  // namespace gentrius::datagen
