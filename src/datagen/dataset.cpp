#include "datagen/dataset.hpp"

#include <algorithm>

#include "datagen/tree_gen.hpp"
#include "phylo/newick.hpp"
#include "support/check.hpp"

namespace gentrius::datagen {

using phylo::TaxonId;
using phylo::Tree;
using support::Rng;

std::vector<TaxonId> default_taxa(phylo::TaxonSet& taxa, std::size_t n) {
  std::vector<TaxonId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(taxa.add("T" + std::to_string(i)));
  return out;
}

namespace {

/// Guarantees the PAM is usable: every locus has >= min_per_locus present
/// taxa and every taxon appears in at least one locus (X = union of Y_i).
void repair_pam(pam::Pam& pam, std::size_t min_per_locus, Rng& rng) {
  const std::size_t n = pam.taxon_count();
  for (std::size_t locus = 0; locus < pam.locus_count(); ++locus) {
    while (pam.locus_taxa(locus).count() < min_per_locus) {
      const auto t = static_cast<TaxonId>(rng.below(n));
      pam.set_present(t, locus, true);
    }
  }
  for (TaxonId t = 0; t < n; ++t) {
    if (pam.taxon_coverage(t) == 0)
      pam.set_present(t, rng.below(pam.locus_count()), true);
  }
}

Dataset finish_from_pam(Dataset ds, std::size_t min_per_locus) {
  ds.constraints = pam::induced_subtrees(ds.species_tree, ds.pam, min_per_locus);
  return ds;
}

}  // namespace

Dataset make_simulated(const SimulatedParams& params) {
  GENTRIUS_CHECK(params.n_taxa >= 4 && params.n_loci >= 1);
  Rng rng(params.seed);
  Dataset ds;
  ds.name = "sim-data-" + std::to_string(params.seed);
  const auto ids = default_taxa(ds.taxa, params.n_taxa);
  ds.species_tree = random_tree(ids, rng);
  ds.pam = pam::Pam(params.n_taxa, params.n_loci);
  for (std::size_t locus = 0; locus < params.n_loci; ++locus)
    for (TaxonId t = 0; t < params.n_taxa; ++t)
      if (!rng.bernoulli(params.missing_fraction)) ds.pam.set_present(t, locus);
  repair_pam(ds.pam, params.min_taxa_per_locus, rng);
  return finish_from_pam(std::move(ds), params.min_taxa_per_locus);
}

Dataset make_empirical_like(const EmpiricalLikeParams& params) {
  GENTRIUS_CHECK(params.n_taxa >= 4 && params.n_loci >= 1);
  Rng rng(params.seed);
  Dataset ds;
  ds.name = "emp-data-" + std::to_string(params.seed);
  const auto ids = default_taxa(ds.taxa, params.n_taxa);
  ds.species_tree = yule_tree(ids, rng);
  ds.pam = pam::Pam(params.n_taxa, params.n_loci);

  // Everything present initially; loci then lose whole clades.
  for (std::size_t locus = 0; locus < params.n_loci; ++locus)
    for (TaxonId t = 0; t < params.n_taxa; ++t) ds.pam.set_present(t, locus);

  const auto edges = ds.species_tree.live_edges();
  for (std::size_t locus = 0; locus < params.n_loci; ++locus) {
    double target;
    if (locus < params.backbone_loci) {
      // Backbone gene: nearly comprehensive sampling.
      target = params.base_missing * rng.uniform();
    } else {
      // Heavy-tailed per-locus missingness (u^3 pushes mass toward low
      // values with a long high-missingness tail, as in empirical PAMs).
      const double u = rng.uniform();
      target = params.base_missing + params.tail_missing * u * u * u;
    }
    const auto budget =
        static_cast<std::size_t>(target * static_cast<double>(params.n_taxa));
    std::size_t dropped = 0;
    std::size_t attempts = 0;
    while (dropped < budget && attempts < 8 * params.n_taxa) {
      ++attempts;
      const phylo::EdgeId e = edges[rng.below(edges.size())];
      const auto& ed = ds.species_tree.edge(e);
      const phylo::VertexId side = rng.bernoulli(0.5) ? ed.u : ed.v;
      auto clade = edge_side_taxa(ds.species_tree, e, side);
      if (clade.size() > params.n_taxa / 2 || clade.size() > budget - dropped + 2)
        continue;  // drop small clades only; keeps loci connected-ish
      for (const TaxonId t : clade) {
        if (ds.pam.present(t, locus)) {
          ds.pam.set_present(t, locus, false);
          ++dropped;
        }
      }
    }
    // Scattered single-taxon dropout on top of the clade structure.
    for (TaxonId t = 0; t < params.n_taxa; ++t)
      if (ds.pam.present(t, locus) && rng.bernoulli(params.scatter_missing))
        ds.pam.set_present(t, locus, false);
  }
  // Rogue taxa: keep a random sparse subset of taxa in at most rogue_loci
  // loci each — the weakly-constrained placements that generate stands.
  for (TaxonId t = 0; t < params.n_taxa; ++t) {
    if (!rng.bernoulli(params.rogue_fraction)) continue;
    std::vector<std::size_t> keep;
    for (std::size_t k = 0; k < params.rogue_loci; ++k)
      keep.push_back(rng.below(params.n_loci));
    for (std::size_t locus = 0; locus < params.n_loci; ++locus) {
      const bool kept =
          std::find(keep.begin(), keep.end(), locus) != keep.end();
      if (!kept) ds.pam.set_present(t, locus, false);
    }
  }
  repair_pam(ds.pam, params.min_taxa_per_locus, rng);
  return finish_from_pam(std::move(ds), params.min_taxa_per_locus);
}

// ---------------------------------------------------------------------------
// Crafted Fig. 5 instances.
//
// Both are built on the 5-taxon core agile tree A0 = ((p,h),m,(g,q)):
//
//        p .             . g
//           u --- s --- w
//        h '      |      ' q
//                 m
//
// The split taxon x is constrained by T_x = ((p,h),x,(g,q)), whose common
// subtree with A0 is ((p,h),(g,q)); x maps onto the central S-edge, whose
// preimage in A0 is {u-s, s-w, m-s}: a guaranteed 3-way initial split.
// A follow-up taxon d (or F) is pinned simultaneously "near x" and "near m"
// via ((d,x),(p,q)) and ((d,m),(p,q)); the two regions intersect only when x
// was placed on m's pendant edge (x and m become a cherry) — on the other
// two branches d has no admissible branch. This yields exact control over
// which initial-split branches are dead ends.
// ---------------------------------------------------------------------------

namespace {

struct CoreTaxa {
  TaxonId p, h, m, g, q, x;
};

CoreTaxa build_core(Dataset& ds, std::vector<Tree>& constraints) {
  CoreTaxa c{};
  c.p = ds.taxa.add("p");
  c.h = ds.taxa.add("h");
  c.m = ds.taxa.add("m");
  c.g = ds.taxa.add("g");
  c.q = ds.taxa.add("q");
  c.x = ds.taxa.add("x");
  // A0 is built programmatically so the edge ids of x's three admissible
  // branches come out as {central-left, central-right, pendant(m)} in
  // ascending order: the engine explores branches by ascending id, so the
  // two barren branches precede the live/stand-rich pendant(m) branch —
  // exactly the serial descent order the Fig. 5 scenarios need.
  Tree a0 = Tree::star({c.p, c.h, c.g});  // edges: p-w, h-w, w-g
  a0.insert_leaf(c.q, 2);                 // (g,q) cherry; central edge id 2
  a0.insert_leaf(c.m, 2);                 // m subdivides the central edge
  constraints.push_back(std::move(a0));
  phylo::NewickOptions opts;
  constraints.push_back(phylo::parse_newick("((p,h),x,(g,q));", ds.taxa, opts));
  return c;
}

Tree quartet(Dataset& ds, const std::string& a, const std::string& b,
             const std::string& cc, const std::string& dd) {
  phylo::NewickOptions opts;
  return phylo::parse_newick("((" + a + "," + b + "),(" + cc + "," + dd + "));",
                             ds.taxa, opts);
}

}  // namespace

Dataset make_plateau_instance(std::size_t chain_length, std::uint64_t /*seed*/) {
  Dataset ds;
  ds.name = "plateau-" + std::to_string(chain_length);
  const CoreTaxa c = build_core(ds, ds.constraints);
  (void)c;
  // d survives only on the m-pendant branch of the initial split; the third
  // constraint then pins it onto x's pendant edge exactly.
  ds.constraints.push_back(quartet(ds, "d", "x", "p", "q"));
  ds.constraints.push_back(quartet(ds, "d", "m", "p", "q"));
  ds.constraints.push_back(quartet(ds, "d", "x", "m", "p"));

  // Forced chain: z_i must form a cherry with z_{i-1}. Anchoring the quartet
  // at the previous link's cherry partner makes the admissible set a single
  // pendant edge.
  std::vector<std::string> link{"x", "d"};
  for (std::size_t i = 0; i < chain_length; ++i) {
    const std::string zi = "z" + std::to_string(i);
    const std::string prev = link[link.size() - 1];
    const std::string prev2 = link[link.size() - 2];
    ds.constraints.push_back(quartet(ds, zi, prev, prev2, "p"));
    link.push_back(zi);
  }

  ds.forced_initial_constraint = 0;
  ds.forced_insertion_order.push_back(ds.taxa.id_of("x"));
  ds.forced_insertion_order.push_back(ds.taxa.id_of("d"));
  for (std::size_t i = 0; i < chain_length; ++i)
    ds.forced_insertion_order.push_back(ds.taxa.id_of("z" + std::to_string(i)));
  return ds;
}

Dataset make_superlinear_instance(std::size_t free_taxa, std::uint64_t /*seed*/) {
  Dataset ds;
  ds.name = "superlinear-" + std::to_string(free_taxa);
  const CoreTaxa c = build_core(ds, ds.constraints);
  (void)c;
  // Free taxa: each appears only in a 3-taxon tree, which constrains
  // nothing — every agile edge is admissible, so the subtree below each
  // initial-split branch grows roughly factorially in free_taxa.
  phylo::NewickOptions opts;
  for (std::size_t i = 0; i < free_taxa; ++i) {
    const std::string wi = "w" + std::to_string(i);
    ds.constraints.push_back(
        phylo::parse_newick("(" + wi + ",p,q);", ds.taxa, opts));
  }
  // F is viable only when x sits on m's pendant edge; on the two barren
  // branches every completion attempt dies at F.
  ds.constraints.push_back(quartet(ds, "F", "x", "p", "q"));
  ds.constraints.push_back(quartet(ds, "F", "m", "p", "q"));

  ds.forced_initial_constraint = 0;
  ds.forced_insertion_order.push_back(ds.taxa.id_of("x"));
  for (std::size_t i = 0; i < free_taxa; ++i)
    ds.forced_insertion_order.push_back(ds.taxa.id_of("w" + std::to_string(i)));
  ds.forced_insertion_order.push_back(ds.taxa.id_of("F"));
  return ds;
}

Dataset make_flood_instance(std::size_t depth, std::uint64_t seed) {
  Dataset ds;
  ds.name = "flood-" + std::to_string(depth) + "-" + std::to_string(seed);
  support::Rng rng(seed ^ 0x666c6f6f64ULL);  // "flood"
  // depth/4 of the anchor clades (at seeded positions) are widened from a
  // cherry (a_i,b_i) to a triple ((a_i,b_i),c_i): their taxon sees five
  // admissible branches instead of three. Every seed explores a stand of
  // the same size (the wide count is fixed) but with a different branching
  // profile per stratum, so seeds are genuinely independent repetitions of
  // the scheduling dynamics rather than replays of one symmetric run.
  std::vector<std::size_t> order(depth);
  for (std::size_t i = 0; i < depth; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<bool> wide(depth, false);
  const std::size_t n_wide = std::max<std::size_t>(1, depth / 4);
  for (std::size_t k = 0; k < n_wide && k < depth; ++k) wide[order[k]] = true;
  // Spine of anchor clades: (p,q,(C0,(C1,(...,t)))). Spine node s_i joins
  // clade C_i, the previous spine node (or the (p,q) root) and the next
  // one (or the terminal taxon t).
  std::string inner = "t";
  for (std::size_t i = depth; i-- > 0;) {
    const std::string is = std::to_string(i);
    const std::string cherry = "(a" + is + ",b" + is + ")";
    const std::string clade = wide[i] ? "(" + cherry + ",c" + is + ")" : cherry;
    inner = "(" + clade + "," + inner + ")";
  }
  phylo::NewickOptions opts;
  ds.constraints.push_back(
      phylo::parse_newick("(p,q," + inner + ");", ds.taxa, opts));
  // Flood taxon f_i is pinned by one quartet ((f_i,a_i),(p,t)). The paths
  // p->a_i (from above) and t->a_i (from below) meet at spine node s_i, so
  // f_i's admissible set is the component of a_i at s_i: clade i's edges —
  // three for a cherry, five for a widened triple — at every state,
  // whatever was inserted elsewhere (no other taxon targets clade i).
  // Every state of the search therefore has a small constant branch count
  // and no dead ends: 3^(depth-w)*5^w stand trees, and an offer-eligible
  // frame at every single state — the densest hand-off pressure the
  // scheduler can face. With the paper's fixed offer rule the central
  // queue's critical section becomes the bottleneck at high N_t; the
  // adaptive policy keeps the tiny deep subtrees local.
  for (std::size_t i = 0; i < depth; ++i) {
    const std::string fi = "f" + std::to_string(i);
    ds.constraints.push_back(
        quartet(ds, fi, "a" + std::to_string(i), "p", "t"));
  }
  ds.forced_initial_constraint = 0;
  for (std::size_t i = 0; i < depth; ++i)
    ds.forced_insertion_order.push_back(
        ds.taxa.id_of("f" + std::to_string(i)));
  // The seed also permutes the insertion order, i.e. which stratum each
  // clade's branching lands on.
  rng.shuffle(ds.forced_insertion_order);
  return ds;
}

}  // namespace gentrius::datagen
