// Topological operations: restriction (induced subtrees), canonical
// encodings, display and compatibility tests.
//
// These implement the formal machinery of the paper's Section II-A:
//   T displays T_i        <=>  T|Y_i == T_i
//   T1, T2 compatible     <=>  T1|(C) == T2|(C) for C = common taxa
// (the latter equivalence holds for fully resolved/binary trees, which is
// all this library handles).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/tree.hpp"

namespace gentrius::phylo {

/// The subtree of `tree` induced by the taxa in `keep` (ids; need not all be
/// present in the tree): prune non-kept leaves, suppress degree-2 vertices.
Tree restrict_to(const Tree& tree, const std::vector<TaxonId>& keep);

/// Canonical, id-based encoding of the topology. Equal encodings <=> equal
/// leaf sets and equal topologies. Independent of construction history.
std::string canonical_encoding(const Tree& tree);

/// 64-bit hash of canonical_encoding (FNV-1a); collision-safe usage is the
/// caller's concern (tests always fall back to the full encoding).
std::uint64_t topology_hash(const Tree& tree);

/// True iff both trees exist on the same leaf set with the same topology.
bool same_topology(const Tree& a, const Tree& b);

/// Sorted vector of taxa present in both trees.
std::vector<TaxonId> common_taxa(const Tree& a, const Tree& b);

/// True iff `big` displays `small` (small's taxa must all be in big).
bool displays(const Tree& big, const Tree& small);

/// True iff a tree exists displaying both (binary-tree criterion: equal
/// restrictions to the common taxa; vacuously true when |common| < 4).
bool compatible(const Tree& a, const Tree& b);

}  // namespace gentrius::phylo
