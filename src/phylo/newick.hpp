// Newick parsing and serialization for unrooted binary trees.
//
// Parsing accepts the common Newick dialect: quoted labels ('..' with ''
// escapes), branch lengths (parsed and discarded — stands are a topological
// concept), bracketed comments, internal-node labels (ignored) and arbitrary
// whitespace. Rooted representations with a degree-2 root are unrooted by
// suppressing the root. Non-binary trees are rejected unless explicitly
// allowed — the Gentrius compatibility criterion (equal restrictions on
// common taxa) is only equivalent to pairwise compatibility for fully
// resolved trees.
#pragma once

#include <string>
#include <string_view>

#include "phylo/tree.hpp"

namespace gentrius::phylo {

struct NewickOptions {
  /// When true, unknown labels are added to the TaxonSet; when false an
  /// unknown label raises InvalidInput.
  bool register_new_taxa = true;
  /// Reject trees with unresolved (degree > 3) internal vertices.
  bool require_binary = true;
};

/// Parses a single Newick string (terminating ';' optional).
Tree parse_newick(std::string_view text, TaxonSet& taxa,
                  const NewickOptions& options = {});

/// Serializes the tree. Deterministic but layout-dependent; for topology
/// comparison use canonical_newick.
std::string to_newick(const Tree& tree, const TaxonSet& taxa);

/// Canonical serialization: independent of internal ids and of the
/// insertion history. Two trees on the same taxa have equal canonical
/// Newick strings iff they are topologically identical.
std::string canonical_newick(const Tree& tree, const TaxonSet& taxa);

}  // namespace gentrius::phylo
