#include "phylo/tree.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gentrius::phylo {

Tree Tree::star(const std::vector<TaxonId>& taxa) {
  GENTRIUS_CHECK(taxa.size() <= 3);
  Tree t;
  if (taxa.empty()) return t;
  const VertexId a = t.alloc_vertex(taxa[0]);
  if (taxa.size() == 1) return t;
  const VertexId b = t.alloc_vertex(taxa[1]);
  t.alloc_edge(a, b);
  if (taxa.size() == 2) return t;
  // Three taxa: subdivide the single edge and hang the third leaf.
  t.insert_leaf(taxa[2], 0);
  return t;
}

std::vector<EdgeId> Tree::live_edges() const {
  std::vector<EdgeId> out;
  out.reserve(live_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e)
    if (edges_[e].alive) out.push_back(e);
  return out;
}

std::vector<TaxonId> Tree::taxa() const {
  std::vector<TaxonId> out;
  for (TaxonId t = 0; t < leaf_of_taxon_.size(); ++t)
    if (leaf_of_taxon_[t] != kNoId) out.push_back(t);
  return out;
}

VertexId Tree::any_vertex() const noexcept {
  for (VertexId v = 0; v < vertices_.size(); ++v)
    if (vertices_[v].alive) return v;
  return kNoId;
}

void Tree::reserve_for_leaves(std::size_t max_leaves) {
  if (max_leaves < 2) return;
  vertices_.reserve(2 * max_leaves - 2);
  edges_.reserve(2 * max_leaves - 3);
  leaf_of_taxon_.reserve(max_leaves);
}

VertexId Tree::alloc_vertex(TaxonId taxon) {
  VertexId v;
  if (!free_vertices_.empty()) {
    v = free_vertices_.back();
    free_vertices_.pop_back();
  } else {
    v = static_cast<VertexId>(vertices_.size());
    vertices_.emplace_back();
  }
  Vertex& vx = vertices_[v];
  vx.degree = 0;
  vx.taxon = taxon;
  vx.alive = true;
  ++live_vertices_;
  if (taxon != kNoTaxon) note_leaf(taxon, v);
  return v;
}

EdgeId Tree::alloc_edge(VertexId a, VertexId b) {
  EdgeId e;
  if (!free_edges_.empty()) {
    e = free_edges_.back();
    free_edges_.pop_back();
  } else {
    e = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
  }
  edges_[e] = Edge{a, b, true};
  attach_half(a, e, b);
  attach_half(b, e, a);
  ++live_edges_;
  return e;
}

void Tree::unlink_edge(EdgeId e) {
  GENTRIUS_CHECK(e < edges_.size() && edges_[e].alive);
  detach_half(edges_[e].u, e);
  detach_half(edges_[e].v, e);
  free_edge(e);
}

void Tree::drop_isolated_vertex(VertexId v) {
  GENTRIUS_CHECK(v < vertices_.size() && vertices_[v].alive);
  GENTRIUS_CHECK(vertices_[v].degree == 0);
  free_vertex(v);
}

void Tree::note_leaf(TaxonId taxon, VertexId v) {
  if (taxon >= leaf_of_taxon_.size()) leaf_of_taxon_.resize(taxon + 1, kNoId);
  GENTRIUS_DCHECK(leaf_of_taxon_[taxon] == kNoId);
  leaf_of_taxon_[taxon] = v;
  ++live_leaves_;
}

void Tree::attach_half(VertexId v, EdgeId e, VertexId to) {
  Vertex& vx = vertices_[v];
  GENTRIUS_DCHECK(vx.alive && vx.degree < 3);
  vx.adj[vx.degree++] = HalfEdge{e, to};
}

void Tree::detach_half(VertexId v, EdgeId e) {
  Vertex& vx = vertices_[v];
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].edge == e) {
      vx.adj[i] = vx.adj[--vx.degree];
      return;
    }
  }
  GENTRIUS_CHECK(false && "detach_half: edge not incident");
}

void Tree::relink_half(VertexId v, EdgeId e, EdgeId new_edge, VertexId new_to) {
  Vertex& vx = vertices_[v];
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].edge == e) {
      vx.adj[i] = HalfEdge{new_edge, new_to};
      return;
    }
  }
  GENTRIUS_CHECK(false && "relink_half: edge not incident");
}

void Tree::free_vertex(VertexId v) {
  Vertex& vx = vertices_[v];
  GENTRIUS_DCHECK(vx.alive && vx.degree == 0);
  if (vx.taxon != kNoTaxon) {
    leaf_of_taxon_[vx.taxon] = kNoId;
    vx.taxon = kNoTaxon;
    --live_leaves_;
  }
  vx.alive = false;
  --live_vertices_;
  free_vertices_.push_back(v);
}

void Tree::free_edge(EdgeId e) {
  GENTRIUS_DCHECK(edges_[e].alive);
  edges_[e].alive = false;
  --live_edges_;
  free_edges_.push_back(e);
}

InsertRecord Tree::insert_leaf(TaxonId taxon, EdgeId at) {
  GENTRIUS_CHECK(at < edges_.size() && edges_[at].alive);
  GENTRIUS_CHECK(!has_taxon(taxon));
  const VertexId u = edges_[at].u;
  const VertexId v = edges_[at].v;

  // Allocation order matters: remove_leaf frees in the mirrored order so the
  // next insert_leaf reuses identical ids (replay determinism).
  const VertexId w = alloc_vertex(kNoTaxon);
  const VertexId l = alloc_vertex(taxon);

  // Redirect the far half of `at` to the junction: at becomes u--w.
  detach_half(v, at);
  edges_[at].v = w;
  // Fix u's half if v was stored as u (edge endpoints are unordered; we keep
  // `u` as the retained endpoint).
  relink_half(u, at, at, w);
  attach_half(w, at, u);

  const EdgeId e2 = alloc_edge(w, v);
  const EdgeId e3 = alloc_edge(w, l);

  return InsertRecord{taxon, at, e2, e3, w, l, v};
}

InsertRecord Tree::insert_leaf_small(TaxonId taxon) {
  GENTRIUS_CHECK(!has_taxon(taxon));
  InsertRecord rec;
  rec.taxon = taxon;
  if (live_vertices_ == 0) {
    rec.leaf = alloc_vertex(taxon);
    return rec;
  }
  GENTRIUS_CHECK(live_vertices_ == 1);
  const VertexId a = any_vertex();
  rec.leaf = alloc_vertex(taxon);
  rec.leaf_edge = alloc_edge(a, rec.leaf);
  rec.far_end = a;
  return rec;
}

void Tree::remove_leaf(const InsertRecord& rec) {
  if (rec.junction == kNoId) {
    // Inverse of insert_leaf_small.
    if (rec.leaf_edge != kNoId) {
      detach_half(rec.far_end, rec.leaf_edge);
      detach_half(rec.leaf, rec.leaf_edge);
      free_edge(rec.leaf_edge);
    }
    free_vertex(rec.leaf);
    return;
  }
  const VertexId u = edges_[rec.split_edge].u;
  const VertexId w = rec.junction;
  const VertexId v = rec.far_end;
  GENTRIUS_DCHECK(edges_[rec.split_edge].v == w);
  GENTRIUS_DCHECK(edges_[rec.moved_edge].u == w && edges_[rec.moved_edge].v == v);

  // Drop the pendant edge and leaf.
  detach_half(w, rec.leaf_edge);
  detach_half(rec.leaf, rec.leaf_edge);
  free_edge(rec.leaf_edge);

  // Merge split_edge + moved_edge back into split_edge = (u, v).
  detach_half(v, rec.moved_edge);
  detach_half(w, rec.moved_edge);
  free_edge(rec.moved_edge);

  detach_half(w, rec.split_edge);
  edges_[rec.split_edge].v = v;
  relink_half(u, rec.split_edge, rec.split_edge, v);
  attach_half(v, rec.split_edge, u);

  // Free vertices mirroring the allocation order in insert_leaf (w then l ->
  // free l then w so the LIFO stack replays identically).
  free_vertex(rec.leaf);
  free_vertex(w);
}

void Tree::validate() const {
  std::size_t seen_edges = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edges_[e].alive) continue;
    ++seen_edges;
    const Edge& ed = edges_[e];
    GENTRIUS_CHECK(ed.u < vertices_.size() && vertices_[ed.u].alive);
    GENTRIUS_CHECK(ed.v < vertices_.size() && vertices_[ed.v].alive);
    auto incident = [&](VertexId x, VertexId expect_to) {
      const Vertex& vx = vertices_[x];
      for (std::uint8_t i = 0; i < vx.degree; ++i)
        if (vx.adj[i].edge == e) {
          GENTRIUS_CHECK(vx.adj[i].to == expect_to);
          return true;
        }
      return false;
    };
    GENTRIUS_CHECK(incident(ed.u, ed.v));
    GENTRIUS_CHECK(incident(ed.v, ed.u));
  }
  GENTRIUS_CHECK(seen_edges == live_edges_);

  std::size_t leaves = 0;
  std::size_t verts = 0;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertices_[v].alive) continue;
    ++verts;
    const Vertex& vx = vertices_[v];
    if (vx.taxon != kNoTaxon) {
      ++leaves;
      GENTRIUS_CHECK(leaf_of_taxon_[vx.taxon] == v);
      GENTRIUS_CHECK(vx.degree <= 1);
    } else {
      GENTRIUS_CHECK(vx.degree == 3);
    }
  }
  GENTRIUS_CHECK(verts == live_vertices_);
  if (leaves >= 2) GENTRIUS_CHECK(live_edges_ == 2 * leaves - 3 || leaves == 2);
  if (leaves == 2) GENTRIUS_CHECK(live_edges_ == 1);
  if (leaves >= 3) GENTRIUS_CHECK(live_edges_ == 2 * leaves - 3);

  // Connectivity: BFS from any vertex must reach all live vertices.
  if (verts > 0) {
    std::vector<char> visited(vertices_.size(), 0);
    std::vector<VertexId> queue{any_vertex()};
    visited[queue[0]] = 1;
    std::size_t reached = 0;
    while (!queue.empty()) {
      const VertexId x = queue.back();
      queue.pop_back();
      ++reached;
      const Vertex& vx = vertices_[x];
      for (std::uint8_t i = 0; i < vx.degree; ++i) {
        const VertexId y = vx.adj[i].to;
        if (!visited[y]) {
          visited[y] = 1;
          queue.push_back(y);
        }
      }
    }
    GENTRIUS_CHECK(reached == verts);
  }
}

}  // namespace gentrius::phylo
