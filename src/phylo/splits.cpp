#include "phylo/splits.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"
#include "support/error.hpp"

namespace gentrius::phylo {

using support::Bitset;
using support::InvalidInput;

std::vector<Bitset> tree_splits(const Tree& tree, std::size_t universe_size) {
  const auto taxa = tree.taxa();
  std::vector<Bitset> out;
  if (taxa.size() < 4) return out;

  // Root at the lowest taxon's leaf: every below-side then canonically
  // excludes the reference taxon.
  const VertexId root = tree.leaf_of(taxa[0]);
  struct Item {
    VertexId v, from;
    bool expanded;
  };
  std::vector<Item> stack{{tree.vertex(root).adj[0].to, root, false}};
  // below[v] valid after the post-visit of v.
  std::vector<Bitset> below(tree.vertex_capacity());
  while (!stack.empty()) {
    // Copy out: push_back below invalidates references into the stack.
    const VertexId v = stack.back().v;
    const VertexId from = stack.back().from;
    const bool expanded = stack.back().expanded;
    const auto& vx = tree.vertex(v);
    if (vx.taxon != kNoTaxon) {
      below[v] = Bitset(universe_size);
      below[v].set(vx.taxon);
      stack.pop_back();
      continue;
    }
    if (!expanded) {
      stack.back().expanded = true;
      for (std::uint8_t i = 0; i < vx.degree; ++i)
        if (vx.adj[i].to != from) stack.push_back({vx.adj[i].to, v, false});
      continue;
    }
    Bitset acc(universe_size);
    for (std::uint8_t i = 0; i < vx.degree; ++i)
      if (vx.adj[i].to != from) acc |= below[vx.adj[i].to];
    const std::size_t c = acc.count();
    if (c >= 2 && c <= taxa.size() - 2) out.push_back(acc);
    below[v] = std::move(acc);
    stack.pop_back();
  }
  return out;
}

namespace {

std::size_t universe_for(const Tree& a) {
  const auto t = a.taxa();
  return t.empty() ? 0 : t.back() + 1;
}

std::vector<std::vector<std::uint32_t>> split_keys(const Tree& t,
                                                   std::size_t universe) {
  std::vector<std::vector<std::uint32_t>> keys;
  for (const auto& s : tree_splits(t, universe)) keys.push_back(s.to_indices());
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

std::size_t rf_distance(const Tree& a, const Tree& b) {
  if (a.taxa() != b.taxa())
    throw InvalidInput("rf_distance: trees are on different leaf sets");
  const std::size_t universe = universe_for(a);
  const auto ka = split_keys(a, universe);
  const auto kb = split_keys(b, universe);
  std::size_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < ka.size() && j < kb.size()) {
    if (ka[i] == kb[j]) {
      ++common;
      ++i;
      ++j;
    } else if (ka[i] < kb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return ka.size() + kb.size() - 2 * common;
}

MultiTree MultiTree::from_splits(const std::vector<TaxonId>& taxa,
                                 const std::vector<Bitset>& splits,
                                 std::size_t universe_size) {
  GENTRIUS_CHECK(!taxa.empty());
  MultiTree tree;
  tree.leaves_ = taxa.size();

  // Deduplicate and order by ascending cardinality: the parent of a cluster
  // is then the first strictly later cluster containing it.
  std::vector<Bitset> clusters = splits;
  std::sort(clusters.begin(), clusters.end(),
            [](const Bitset& a, const Bitset& b) {
              const auto ca = a.count(), cb = b.count();
              if (ca != cb) return ca < cb;
              return a.to_indices() < b.to_indices();
            });
  clusters.erase(std::unique(clusters.begin(), clusters.end()),
                 clusters.end());

  // Nodes: one per taxon, one per cluster, plus the root.
  const std::uint32_t first_cluster_node = static_cast<std::uint32_t>(taxa.size());
  for (const TaxonId t : taxa) {
    Node leaf;
    leaf.taxon = t;
    tree.nodes_.push_back(std::move(leaf));
  }
  for (std::size_t c = 0; c < clusters.size(); ++c)
    tree.nodes_.emplace_back();
  const std::uint32_t root =
      static_cast<std::uint32_t>(tree.nodes_.size());
  tree.nodes_.emplace_back();
  tree.root_ = root;
  tree.internal_edges_ = clusters.size();

  auto parent_cluster = [&](std::size_t from, const Bitset& set,
                            bool strict) -> std::uint32_t {
    for (std::size_t j = from; j < clusters.size(); ++j) {
      if (strict && clusters[j] == set) continue;
      // One fused pass answers both the containment and the laminarity
      // question (set is never empty here, so kDisjoint is unambiguous).
      switch (set.relation_to(clusters[j])) {
        case Bitset::Relation::kSubset:
          return first_cluster_node + static_cast<std::uint32_t>(j);
        case Bitset::Relation::kOverlap:
          throw InvalidInput("from_splits: split family is not laminar");
        case Bitset::Relation::kDisjoint:
          break;
      }
    }
    return root;
  };

  // Cluster parents (and the laminarity check against all larger clusters).
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const std::uint32_t parent = parent_cluster(c + 1, clusters[c], false);
    tree.nodes_[parent].children.push_back(
        first_cluster_node + static_cast<std::uint32_t>(c));
  }
  // Leaf parents: the smallest cluster containing the taxon.
  Bitset single(universe_size);
  for (std::size_t k = 0; k < taxa.size(); ++k) {
    single.clear();
    single.set(taxa[k]);
    const std::uint32_t parent = parent_cluster(0, single, false);
    tree.nodes_[parent].children.push_back(static_cast<std::uint32_t>(k));
  }
  return tree;
}

namespace {

void write_multi(const MultiTree& tree, std::uint32_t node,
                 const TaxonSet& taxa, std::string& out) {
  const auto& nd = tree.nodes()[node];
  if (nd.taxon != kNoTaxon) {
    out += taxa.name(nd.taxon);
    return;
  }
  out.push_back('(');
  for (std::size_t i = 0; i < nd.children.size(); ++i) {
    if (i) out.push_back(',');
    write_multi(tree, nd.children[i], taxa, out);
  }
  out.push_back(')');
}

}  // namespace

std::string MultiTree::to_newick(const TaxonSet& taxa) const {
  std::string out;
  write_multi(*this, root_, taxa, out);
  out.push_back(';');
  return out;
}

MultiTree strict_consensus(const std::vector<Tree>& trees) {
  return majority_consensus(trees, 1.0 - 1e-9);
}

MultiTree majority_consensus(const std::vector<Tree>& trees,
                             double threshold) {
  GENTRIUS_CHECK(!trees.empty());
  const auto taxa = trees.front().taxa();
  const std::size_t universe = taxa.empty() ? 0 : taxa.back() + 1;
  for (const auto& t : trees) {
    if (t.taxa() != taxa)
      throw InvalidInput("consensus: trees are on different leaf sets");
  }
  std::map<std::vector<std::uint32_t>, std::size_t> counts;
  for (const auto& t : trees)
    for (const auto& s : tree_splits(t, universe)) ++counts[s.to_indices()];

  // Strictly-greater-than semantics: classic majority rule keeps splits in
  // more than half the trees; threshold ~1 keeps splits in all of them.
  const double needed = threshold * static_cast<double>(trees.size());
  std::vector<Bitset> kept;
  for (const auto& [indices, count] : counts) {
    if (static_cast<double>(count) > needed) {
      Bitset b(universe);
      for (const auto i : indices) b.set(i);
      kept.push_back(std::move(b));
    }
  }
  return MultiTree::from_splits(taxa, kept, universe);
}

}  // namespace gentrius::phylo
