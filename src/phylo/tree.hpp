// Unrooted binary tree with stable vertex/edge identifiers.
//
// This is the workhorse structure of the whole project. The Gentrius
// enumerator performs millions of leaf insertions and removals on its agile
// tree; both operations are O(1) here, and removal restores the *exact*
// pre-insertion identifiers (via the InsertRecord protocol plus LIFO free
// lists), which makes branch lists recorded before an insertion remain valid
// after the matching removal — the property the branch-and-bound recursion
// and the parallel task replay both rely on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "support/check.hpp"

namespace gentrius::phylo {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr std::uint32_t kNoId = static_cast<std::uint32_t>(-1);

/// Undo record returned by Tree::insert_leaf and consumed by
/// Tree::remove_leaf. Treat as opaque.
struct InsertRecord {
  TaxonId taxon = kNoTaxon;
  EdgeId split_edge = kNoId;  ///< pre-existing edge that kept its id (now u--w)
  EdgeId moved_edge = kNoId;  ///< freshly allocated edge (w--v)
  EdgeId leaf_edge = kNoId;   ///< freshly allocated pendant edge (w--leaf)
  VertexId junction = kNoId;  ///< freshly allocated internal vertex w
  VertexId leaf = kNoId;      ///< freshly allocated leaf vertex
  VertexId far_end = kNoId;   ///< endpoint v that moved from split_edge to moved_edge
};

class Tree {
 public:
  struct HalfEdge {
    EdgeId edge = kNoId;
    VertexId to = kNoId;
  };

  struct Vertex {
    std::array<HalfEdge, 3> adj{};
    std::uint8_t degree = 0;
    TaxonId taxon = kNoTaxon;  ///< kNoTaxon for internal vertices
    bool alive = false;
  };

  struct Edge {
    VertexId u = kNoId;
    VertexId v = kNoId;
    bool alive = false;
  };

  Tree() = default;

  /// Builds the unique tree on one, two, or three taxa.
  static Tree star(const std::vector<TaxonId>& taxa);

  // ---- observers -----------------------------------------------------------

  std::size_t leaf_count() const noexcept { return live_leaves_; }
  std::size_t vertex_capacity() const noexcept { return vertices_.size(); }
  std::size_t edge_capacity() const noexcept { return edges_.size(); }

  /// Number of live edges: 2*leaves - 3 for binary trees with >= 2 leaves.
  std::size_t edge_count() const noexcept { return live_edges_; }

  bool vertex_alive(VertexId v) const noexcept { return vertices_[v].alive; }
  bool edge_alive(EdgeId e) const noexcept { return edges_[e].alive; }

  const Vertex& vertex(VertexId v) const {
    GENTRIUS_DCHECK(v < vertices_.size() && vertices_[v].alive);
    return vertices_[v];
  }

  const Edge& edge(EdgeId e) const {
    GENTRIUS_DCHECK(e < edges_.size() && edges_[e].alive);
    return edges_[e];
  }

  /// Vertex carrying the given taxon, or kNoId if the taxon is not in the tree.
  VertexId leaf_of(TaxonId taxon) const noexcept {
    return taxon < leaf_of_taxon_.size() ? leaf_of_taxon_[taxon] : kNoId;
  }

  bool has_taxon(TaxonId taxon) const noexcept { return leaf_of(taxon) != kNoId; }

  VertexId other_end(EdgeId e, VertexId from) const {
    const Edge& ed = edge(e);
    GENTRIUS_DCHECK(ed.u == from || ed.v == from);
    return ed.u == from ? ed.v : ed.u;
  }

  /// All live edge ids in ascending order (fresh vector; use for iteration
  /// that must be independent of internal layout).
  std::vector<EdgeId> live_edges() const;

  /// All taxa present, ascending.
  std::vector<TaxonId> taxa() const;

  /// Invokes fn(EdgeId) for every live edge.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (EdgeId e = 0; e < edges_.size(); ++e)
      if (edges_[e].alive) fn(e);
  }

  /// An arbitrary live vertex (deterministic), kNoId on the empty tree.
  VertexId any_vertex() const noexcept;

  // ---- mutation ------------------------------------------------------------

  /// Grafts taxon onto edge `at`: the edge is subdivided by a fresh internal
  /// vertex to which a fresh leaf is attached. O(1). The returned record must
  /// be passed to remove_leaf to undo the operation exactly.
  InsertRecord insert_leaf(TaxonId taxon, EdgeId at);

  /// Special case: grow a 1-leaf tree to 2 leaves, or 2 to 3 (no edge choice
  /// exists, or the single edge is implied). Returns the record.
  InsertRecord insert_leaf_small(TaxonId taxon);

  /// Exact inverse of the insert_leaf call that produced `rec`. After the
  /// call, all vertex and edge ids are as before that insert, and the next
  /// insert_leaf will reuse the same fresh ids (LIFO free lists).
  void remove_leaf(const InsertRecord& rec);

  /// Reserve internal storage for trees up to `max_leaves`.
  void reserve_for_leaves(std::size_t max_leaves);

  /// Structural sanity check (degrees, symmetry, single component). Throws
  /// InternalError on violation. Intended for tests.
  void validate() const;

  // ---- construction helpers (used by parsers/builders) ----------------------

  VertexId alloc_vertex(TaxonId taxon);
  EdgeId alloc_edge(VertexId a, VertexId b);

  /// Detaches and frees an edge (construction-time helper; ids carry no
  /// stability contract at this point).
  void unlink_edge(EdgeId e);

  /// Frees a vertex whose edges have all been unlinked.
  void drop_isolated_vertex(VertexId v);

 private:
  void attach_half(VertexId v, EdgeId e, VertexId to);
  void detach_half(VertexId v, EdgeId e);
  void relink_half(VertexId v, EdgeId e, EdgeId new_edge, VertexId new_to);
  void free_vertex(VertexId v);
  void free_edge(EdgeId e);
  void note_leaf(TaxonId taxon, VertexId v);

  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<VertexId> leaf_of_taxon_;  // indexed by TaxonId; kNoId when absent
  std::vector<VertexId> free_vertices_;  // LIFO
  std::vector<EdgeId> free_edges_;       // LIFO
  std::size_t live_edges_ = 0;
  std::size_t live_vertices_ = 0;
  std::size_t live_leaves_ = 0;
};

}  // namespace gentrius::phylo
