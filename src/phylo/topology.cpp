#include "phylo/topology.hpp"

#include <algorithm>
#include <optional>

#include "support/check.hpp"

namespace gentrius::phylo {
namespace {

/// Recursive worker for restrict_to: walks `src` away from `from`, emitting
/// kept leaves and suppressing pass-through vertices into `dst`.
/// Returns the dst vertex rooting the shrunken subtree, or nullopt when the
/// subtree holds no kept taxon.
std::optional<VertexId> shrink(const Tree& src, Tree& dst,
                               const std::vector<char>& kept, VertexId v,
                               VertexId from) {
  const auto& vx = src.vertex(v);
  if (vx.taxon != kNoTaxon) {
    if (vx.taxon < kept.size() && kept[vx.taxon])
      return dst.alloc_vertex(vx.taxon);
    return std::nullopt;
  }
  std::optional<VertexId> found[2];
  int n = 0;
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].to == from) continue;
    auto sub = shrink(src, dst, kept, vx.adj[i].to, v);
    if (sub) found[n++] = sub;
  }
  if (n == 0) return std::nullopt;
  if (n == 1) return found[0];  // degree-2 suppression
  const VertexId inner = dst.alloc_vertex(kNoTaxon);
  dst.alloc_edge(inner, *found[0]);
  dst.alloc_edge(inner, *found[1]);
  return inner;
}

void encode_subtree(const Tree& tree, VertexId v, VertexId from,
                    std::string& out) {
  const auto& vx = tree.vertex(v);
  if (vx.taxon != kNoTaxon) {
    out += std::to_string(vx.taxon);
    return;
  }
  std::string parts[2];
  int n = 0;
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].to == from) continue;
    encode_subtree(tree, vx.adj[i].to, v, parts[n++]);
  }
  GENTRIUS_DCHECK(n == 2);
  if (parts[1] < parts[0]) std::swap(parts[0], parts[1]);
  out.push_back('(');
  out += parts[0];
  out.push_back(',');
  out += parts[1];
  out.push_back(')');
}

}  // namespace

Tree restrict_to(const Tree& tree, const std::vector<TaxonId>& keep) {
  std::vector<char> kept;
  std::vector<TaxonId> present;
  for (const TaxonId t : keep) {
    if (!tree.has_taxon(t)) continue;
    if (t >= kept.size()) kept.resize(t + 1, 0);
    if (!kept[t]) {
      kept[t] = 1;
      present.push_back(t);
    }
  }
  std::sort(present.begin(), present.end());

  Tree out;
  if (present.empty()) return out;
  out.reserve_for_leaves(present.size());
  if (present.size() == 1) {
    out.alloc_vertex(present[0]);
    return out;
  }
  // Root the walk at a kept leaf so every pass-through decision is local.
  const VertexId root_leaf = tree.leaf_of(present[0]);
  const VertexId root = out.alloc_vertex(present[0]);
  const auto& rvx = tree.vertex(root_leaf);
  GENTRIUS_CHECK(rvx.degree == 1);
  auto sub = shrink(tree, out, kept, rvx.adj[0].to, root_leaf);
  GENTRIUS_CHECK(sub.has_value());
  out.alloc_edge(root, *sub);
  return out;
}

std::string canonical_encoding(const Tree& tree) {
  const auto present = tree.taxa();
  if (present.empty()) return "";
  if (present.size() == 1) return std::to_string(present[0]);
  const VertexId leaf = tree.leaf_of(present[0]);
  std::string out = std::to_string(present[0]);
  out.push_back('|');
  const auto& vx = tree.vertex(leaf);
  encode_subtree(tree, vx.adj[0].to, leaf, out);
  return out;
}

std::uint64_t topology_hash(const Tree& tree) {
  const std::string enc = canonical_encoding(tree);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : enc) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool same_topology(const Tree& a, const Tree& b) {
  if (a.taxa() != b.taxa()) return false;
  return canonical_encoding(a) == canonical_encoding(b);
}

std::vector<TaxonId> common_taxa(const Tree& a, const Tree& b) {
  const auto ta = a.taxa();
  const auto tb = b.taxa();
  std::vector<TaxonId> out;
  std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                        std::back_inserter(out));
  return out;
}

bool displays(const Tree& big, const Tree& small) {
  const auto small_taxa = small.taxa();
  for (const TaxonId t : small_taxa)
    if (!big.has_taxon(t)) return false;
  return same_topology(restrict_to(big, small_taxa), small);
}

bool compatible(const Tree& a, const Tree& b) {
  const auto c = common_taxa(a, b);
  if (c.size() < 4) return true;
  return same_topology(restrict_to(a, c), restrict_to(b, c));
}

}  // namespace gentrius::phylo
