// Splits (bipartitions), Robinson-Foulds distance, strict consensus.
//
// Post-analysis machinery for stands: the paper's closing discussion
// positions stand identification as input to downstream uncertainty
// analysis — which parts of the tree are actually resolved when millions of
// trees score identically? The strict consensus of the stand answers that;
// split support and RF distances quantify the spread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "support/bitset.hpp"

namespace gentrius::phylo {

/// The non-trivial splits of an unrooted tree, canonicalized: each split is
/// stored as the side NOT containing the tree's lowest taxon, as a bitset
/// over [0, universe_size). A binary tree on n >= 3 leaves has n-3 of them.
std::vector<support::Bitset> tree_splits(const Tree& tree,
                                         std::size_t universe_size);

/// Robinson-Foulds distance: |splits(a) Δ splits(b)|. Both trees must be on
/// the same leaf set (throws InvalidInput otherwise).
std::size_t rf_distance(const Tree& a, const Tree& b);

/// General (possibly multifurcating) tree built from a laminar split
/// family; the result type of consensus computations, since Tree itself is
/// strictly binary.
class MultiTree {
 public:
  struct Node {
    TaxonId taxon = kNoTaxon;  ///< kNoTaxon for internal nodes
    std::vector<std::uint32_t> children;
  };

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  std::uint32_t root() const noexcept { return root_; }

  /// Number of internal edges (= splits represented). A fully resolved
  /// unrooted tree on n leaves has n-3; 0 means a star (nothing resolved).
  std::size_t internal_edge_count() const noexcept { return internal_edges_; }

  std::size_t leaf_count() const noexcept { return leaves_; }

  std::string to_newick(const TaxonSet& taxa) const;

  /// Builds the tree realizing exactly the given laminar family of splits
  /// over the given taxa (each split: canonical side, must not contain
  /// taxa.front()). Throws InvalidInput when the family is not laminar.
  static MultiTree from_splits(const std::vector<TaxonId>& taxa,
                               const std::vector<support::Bitset>& splits,
                               std::size_t universe_size);

 private:
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  std::size_t internal_edges_ = 0;
  std::size_t leaves_ = 0;
};

/// Strict consensus: the (generally multifurcating) tree whose splits are
/// exactly those present in every input tree. All trees must share one leaf
/// set; at least one tree required.
MultiTree strict_consensus(const std::vector<Tree>& trees);

/// Majority-rule consensus: splits present in more than `threshold` of the
/// trees (0.5 = classic majority rule; any threshold >= 0.5 yields a
/// compatible family).
MultiTree majority_consensus(const std::vector<Tree>& trees,
                             double threshold = 0.5);

}  // namespace gentrius::phylo
