#include "phylo/newick.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

#include "support/error.hpp"

namespace gentrius::phylo {
namespace {

using support::InvalidInput;
using support::ParseError;

class Parser {
 public:
  Parser(std::string_view text, TaxonSet& taxa, const NewickOptions& options)
      : text_(text), taxa_(taxa), options_(options) {}

  Tree parse() {
    Tree tree;
    skip_space();
    const VertexId root = parse_subtree(tree);
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == ';') ++pos_;
    skip_space();
    if (pos_ != text_.size())
      throw ParseError("trailing characters after tree", pos_);
    finalize_root(tree, root);
    if (options_.require_binary) check_binary(tree);
    return tree;
  }

 private:
  // subtree := leaf | '(' subtree (',' subtree)+ ')' [label] [':'length]
  VertexId parse_subtree(Tree& tree) {
    skip_space();
    if (eof()) throw ParseError("unexpected end of input", pos_);
    if (text_[pos_] == '(') {
      ++pos_;
      std::vector<VertexId> children;
      children.push_back(parse_subtree(tree));
      skip_space();
      while (!eof() && text_[pos_] == ',') {
        ++pos_;
        children.push_back(parse_subtree(tree));
        skip_space();
      }
      if (eof() || text_[pos_] != ')')
        throw ParseError("expected ')' or ','", pos_);
      ++pos_;
      parse_label();  // internal labels are ignored
      parse_length();
      if (children.size() < 2)
        throw ParseError("internal node with a single child", pos_);
      const VertexId v = tree.alloc_vertex(kNoTaxon);
      degrees_.resize(std::max<std::size_t>(degrees_.size(), v + 1), 0);
      for (const VertexId c : children) link(tree, v, c);
      return v;
    }
    const std::string label = parse_label();
    if (label.empty()) throw ParseError("expected a taxon label", pos_);
    parse_length();
    TaxonId id;
    if (options_.register_new_taxa) {
      id = taxa_.add(label);
    } else {
      id = taxa_.id_of(label);
    }
    if (tree.has_taxon(id))
      throw InvalidInput("duplicate taxon label in tree: " + label);
    const VertexId v = tree.alloc_vertex(id);
    degrees_.resize(std::max<std::size_t>(degrees_.size(), v + 1), 0);
    return v;
  }

  void link(Tree& tree, VertexId parent, VertexId child) {
    // The Tree adjacency holds at most 3 slots; polytomies would overflow it,
    // so we count degrees separately and fail with a proper error first.
    degrees_.resize(
        std::max({degrees_.size(), std::size_t{parent} + 1, std::size_t{child} + 1}),
        0);
    if (degrees_[parent] >= 3 || degrees_[child] >= 3)
      throw InvalidInput("non-binary tree: vertex of degree > 3");
    tree.alloc_edge(parent, child);
    ++degrees_[parent];
    ++degrees_[child];
  }

  void finalize_root(Tree& tree, VertexId root) {
    // A rooted binary representation has a degree-2 root; suppress it to get
    // the unrooted tree. Degree-1 roots occur for "(A);"-style inputs.
    const auto deg = tree.vertex(root).degree;
    if (tree.vertex(root).taxon != kNoTaxon) return;  // bare leaf "A;"
    if (deg == 2) {
      const auto& vx = tree.vertex(root);
      const EdgeId e1 = vx.adj[0].edge;
      const VertexId a = vx.adj[0].to;
      const EdgeId e2 = vx.adj[1].edge;
      const VertexId b = vx.adj[1].to;
      suppress(tree, root, e1, a, e2, b);
    } else if (deg < 2) {
      throw InvalidInput("tree has fewer than two taxa below the root");
    }
  }

  static void suppress(Tree& tree, VertexId mid, EdgeId e1, VertexId a,
                       EdgeId e2, VertexId b) {
    // Construction-time only: ids carry no contract yet, so we rebuild the
    // two edges as one via the public allocation helpers.
    tree.unlink_edge(e1);
    tree.unlink_edge(e2);
    tree.drop_isolated_vertex(mid);
    tree.alloc_edge(a, b);
  }

  void check_binary(const Tree& tree) const {
    bool ok = true;
    tree.for_each_edge([&](EdgeId e) {
      const auto& ed = tree.edge(e);
      for (const VertexId v : {ed.u, ed.v}) {
        const auto& vx = tree.vertex(v);
        if (vx.taxon == kNoTaxon && vx.degree != 3) ok = false;
        if (vx.taxon != kNoTaxon && vx.degree != 1) ok = false;
      }
    });
    if (!ok) throw InvalidInput("tree is not an unrooted binary tree");
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }

  void skip_space() {
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (!eof() && text_[pos_] == '[') {  // bracketed comment
        const std::size_t start = pos_;
        while (!eof() && text_[pos_] != ']') ++pos_;
        if (eof()) throw ParseError("unterminated comment", start);
        ++pos_;
        continue;
      }
      return;
    }
  }

  std::string parse_label() {
    skip_space();
    std::string out;
    if (!eof() && text_[pos_] == '\'') {
      ++pos_;
      for (;;) {
        if (eof()) throw ParseError("unterminated quoted label", pos_);
        const char c = text_[pos_++];
        if (c == '\'') {
          if (!eof() && text_[pos_] == '\'') {  // escaped quote
            out.push_back('\'');
            ++pos_;
          } else {
            break;
          }
        } else {
          out.push_back(c);
        }
      }
      return out;
    }
    while (!eof()) {
      const char c = text_[pos_];
      if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
          c == '[' || std::isspace(static_cast<unsigned char>(c)))
        break;
      out.push_back(c);
      ++pos_;
    }
    return out;
  }

  void parse_length() {
    skip_space();
    if (eof() || text_[pos_] != ':') return;
    ++pos_;
    skip_space();
    const std::size_t start = pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) throw ParseError("expected branch length after ':'", pos_);
  }

  std::string_view text_;
  TaxonSet& taxa_;
  NewickOptions options_;
  std::size_t pos_ = 0;
  std::vector<std::uint8_t> degrees_;
};

std::string quote_label(const std::string& name) {
  bool needs = name.empty();
  for (const char c : name) {
    if (c == '(' || c == ')' || c == '[' || c == ']' || c == ':' || c == ';' ||
        c == ',' || c == '\'' || std::isspace(static_cast<unsigned char>(c))) {
      needs = true;
      break;
    }
  }
  if (!needs) return name;
  std::string out = "'";
  for (const char c : name) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

void write_subtree(const Tree& tree, const TaxonSet& taxa, VertexId v,
                   VertexId from, std::string& out) {
  const auto& vx = tree.vertex(v);
  if (vx.taxon != kNoTaxon) {
    out += quote_label(taxa.name(vx.taxon));
    return;
  }
  out.push_back('(');
  bool first = true;
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].to == from) continue;
    if (!first) out.push_back(',');
    first = false;
    write_subtree(tree, taxa, vx.adj[i].to, v, out);
  }
  out.push_back(')');
}

std::string canonical_subtree(const Tree& tree, const TaxonSet& taxa,
                              VertexId v, VertexId from) {
  const auto& vx = tree.vertex(v);
  if (vx.taxon != kNoTaxon) return quote_label(taxa.name(vx.taxon));
  std::vector<std::string> parts;
  for (std::uint8_t i = 0; i < vx.degree; ++i) {
    if (vx.adj[i].to == from) continue;
    parts.push_back(canonical_subtree(tree, taxa, vx.adj[i].to, v));
  }
  std::sort(parts.begin(), parts.end());
  std::string out = "(";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(',');
    out += parts[i];
  }
  out.push_back(')');
  return out;
}

}  // namespace

Tree parse_newick(std::string_view text, TaxonSet& taxa,
                  const NewickOptions& options) {
  return Parser(text, taxa, options).parse();
}

std::string to_newick(const Tree& tree, const TaxonSet& taxa) {
  const auto taxa_present = tree.taxa();
  if (taxa_present.empty()) return ";";
  if (taxa_present.size() == 1) return quote_label(taxa.name(taxa_present[0])) + ";";
  // Root the serialization at the lowest-id leaf's edge.
  const VertexId leaf = tree.leaf_of(taxa_present[0]);
  const VertexId nb = tree.vertex(leaf).adj[0].to;
  std::string out = "(";
  out += quote_label(taxa.name(taxa_present[0]));
  out.push_back(',');
  if (tree.vertex(nb).taxon != kNoTaxon) {
    out += quote_label(taxa.name(tree.vertex(nb).taxon));
  } else {
    const auto& vx = tree.vertex(nb);
    bool first = true;
    for (std::uint8_t i = 0; i < vx.degree; ++i) {
      if (vx.adj[i].to == leaf) continue;
      if (!first) out.push_back(',');
      first = false;
      write_subtree(tree, taxa, vx.adj[i].to, nb, out);
    }
  }
  out += ");";
  return out;
}

std::string canonical_newick(const Tree& tree, const TaxonSet& taxa) {
  const auto taxa_present = tree.taxa();
  if (taxa_present.empty()) return ";";
  if (taxa_present.size() == 1) return quote_label(taxa.name(taxa_present[0])) + ";";
  const VertexId leaf = tree.leaf_of(taxa_present[0]);
  const VertexId nb = tree.vertex(leaf).adj[0].to;
  std::string body = canonical_subtree(tree, taxa, nb, leaf);
  return "(" + quote_label(taxa.name(taxa_present[0])) + "," + body + ");";
}

}  // namespace gentrius::phylo
