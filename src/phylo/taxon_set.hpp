// Taxon name <-> dense id mapping shared by all trees of a dataset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace gentrius::phylo {

using TaxonId = std::uint32_t;
inline constexpr TaxonId kNoTaxon = static_cast<TaxonId>(-1);

/// Registry of taxon labels. Ids are assigned densely in insertion order, so
/// they can index bitsets and arrays directly.
class TaxonSet {
 public:
  /// Adds a taxon (or returns the existing id for a known label).
  TaxonId add(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    const auto id = static_cast<TaxonId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Id of a known label; throws InvalidInput for unknown labels.
  TaxonId id_of(std::string_view name) const {
    auto it = index_.find(std::string(name));
    if (it == index_.end())
      throw support::InvalidInput("unknown taxon label: " + std::string(name));
    return it->second;
  }

  bool contains(std::string_view name) const {
    return index_.find(std::string(name)) != index_.end();
  }

  const std::string& name(TaxonId id) const { return names_.at(id); }

  std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TaxonId> index_;
};

}  // namespace gentrius::phylo
