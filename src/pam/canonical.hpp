// Canonical encoding + fingerprint of a presence/absence matrix.
//
// The encoding is invariant under taxon relabeling and locus reordering:
// taxa are ranked by Weisfeiler–Leman color refinement over the bipartite
// taxon–locus incidence graph (with individualization-refinement on
// surviving ties under a bounded branch budget), and the locus rows are
// emitted as sorted 0/1 strings over the canonical taxon order. Together
// with a species tree it keys whole instances in the incremental result
// cache (src/incremental); the per-component keys use the constraint-tree
// canonicalization in src/gentrius/problem.hpp instead.
//
// Like every fingerprint in this codebase, consumers must compare the full
// encoding on a fingerprint match — a hash collision costs a recomputation,
// never a wrong answer.
#pragma once

#include <string>
#include <vector>

#include "pam/pam.hpp"
#include "support/fingerprint.hpp"

namespace gentrius::pam {

struct CanonicalPam {
  std::string encoding;
  support::Fingerprint fp;
  /// Canonical rank -> taxon id.
  std::vector<TaxonId> order;
  /// False only when the individualization budget ran out on a non-twin
  /// color tie: the encoding is still deterministic, but relabelings of the
  /// same matrix may encode differently (a cache miss, never corruption).
  bool relabel_invariant = true;
};

CanonicalPam canonical_encode(const Pam& pam);

/// Shorthand: fingerprint of the canonical encoding.
support::Fingerprint fingerprint(const Pam& pam);

}  // namespace gentrius::pam
