#include "pam/pam.hpp"

#include <sstream>

#include "phylo/topology.hpp"
#include "support/error.hpp"

namespace gentrius::pam {

using support::InvalidInput;

Pam::Pam(std::size_t taxon_count, std::size_t locus_count)
    : taxon_count_(taxon_count),
      loci_(locus_count, support::Bitset(taxon_count)) {}

void Pam::set_present(TaxonId taxon, std::size_t locus, bool value) {
  if (taxon >= taxon_count_ || locus >= loci_.size())
    throw InvalidInput("PAM cell out of range");
  if (value)
    loci_[locus].set(taxon);
  else
    loci_[locus].reset(taxon);
}

std::size_t Pam::add_locus() {
  loci_.emplace_back(taxon_count_);
  return loci_.size() - 1;
}

TaxonId Pam::add_taxon() {
  // Bitset::resize zeroes the set; grow by rebuilding so presence survives.
  ++taxon_count_;
  for (auto& l : loci_) {
    support::Bitset grown(taxon_count_);
    l.for_each([&](std::size_t t) { grown.set(t); });
    l = std::move(grown);
  }
  return static_cast<TaxonId>(taxon_count_ - 1);
}

std::vector<TaxonId> Pam::locus_taxa_list(std::size_t locus) const {
  return loci_.at(locus).to_indices();
}

std::size_t Pam::taxon_coverage(TaxonId taxon) const {
  std::size_t c = 0;
  for (const auto& l : loci_)
    if (l.test(taxon)) ++c;
  return c;
}

double Pam::missing_fraction() const {
  if (taxon_count_ == 0 || loci_.empty()) return 0.0;
  std::size_t ones = 0;
  for (const auto& l : loci_) ones += l.count();
  const std::size_t cells = taxon_count_ * loci_.size();
  return 1.0 - static_cast<double>(ones) / static_cast<double>(cells);
}

std::optional<TaxonId> Pam::comprehensive_taxon() const {
  for (TaxonId t = 0; t < taxon_count_; ++t) {
    bool all = true;
    for (const auto& l : loci_) {
      if (!l.test(t)) {
        all = false;
        break;
      }
    }
    if (all) return t;
  }
  return std::nullopt;
}

bool Pam::covers_all_taxa() const {
  for (TaxonId t = 0; t < taxon_count_; ++t) {
    bool any = false;
    for (const auto& l : loci_) {
      if (l.test(t)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

Pam Pam::parse(const std::string& text, phylo::TaxonSet& taxa) {
  std::istringstream in(text);
  long long taxa_decl = 0;
  long long loci_decl = 0;
  if (!(in >> taxa_decl >> loci_decl))
    throw InvalidInput("PAM: missing '<taxa> <loci>' header");
  if (taxa_decl < 1 || loci_decl < 1)
    throw InvalidInput("PAM: taxon and locus counts must be positive");
  // Guard against absurd headers (fuzzed or corrupt input) before any
  // allocation is sized from them.
  constexpr long long kMaxCells = 100'000'000;
  if (taxa_decl > kMaxCells || loci_decl > kMaxCells ||
      taxa_decl * loci_decl > kMaxCells)
    throw InvalidInput("PAM: declared matrix implausibly large");
  const auto n_taxa = static_cast<std::size_t>(taxa_decl);
  const auto n_loci = static_cast<std::size_t>(loci_decl);
  Pam pam(n_taxa, n_loci);
  std::vector<char> seen(n_taxa, 0);
  for (std::size_t row = 0; row < n_taxa; ++row) {
    std::string label;
    if (!(in >> label)) throw InvalidInput("PAM: missing taxon row");
    const TaxonId id = taxa.add(label);
    if (id >= n_taxa)
      throw InvalidInput("PAM: more distinct labels than declared taxa");
    if (seen[id]) throw InvalidInput("PAM: duplicate taxon row: " + label);
    seen[id] = 1;
    for (std::size_t locus = 0; locus < n_loci; ++locus) {
      int cell = 0;
      if (!(in >> cell) || (cell != 0 && cell != 1))
        throw InvalidInput("PAM: cell must be 0 or 1 (taxon " + label + ")");
      if (cell) pam.loci_[locus].set(id);
    }
  }
  return pam;
}

std::string Pam::to_text(const phylo::TaxonSet& taxa) const {
  std::ostringstream out;
  out << taxon_count_ << ' ' << loci_.size() << '\n';
  for (TaxonId t = 0; t < taxon_count_; ++t) {
    out << taxa.name(t);
    for (const auto& l : loci_) out << ' ' << (l.test(t) ? 1 : 0);
    out << '\n';
  }
  return out.str();
}

phylo::Tree induced_subtree(const phylo::Tree& species_tree, const Pam& pam,
                            std::size_t locus) {
  std::vector<TaxonId> keep;
  pam.locus_taxa(locus).for_each(
      [&](std::size_t t) { keep.push_back(static_cast<TaxonId>(t)); });
  return phylo::restrict_to(species_tree, keep);
}

std::vector<phylo::Tree> induced_subtrees(const phylo::Tree& species_tree,
                                          const Pam& pam, std::size_t min_taxa) {
  std::vector<phylo::Tree> out;
  for (std::size_t locus = 0; locus < pam.locus_count(); ++locus) {
    if (pam.locus_taxa(locus).count() < min_taxa) continue;
    out.push_back(induced_subtree(species_tree, pam, locus));
  }
  return out;
}

}  // namespace gentrius::pam
