// Presence/absence matrix (PAM): which taxon has data for which locus.
//
// The PAM is the second input mode of Gentrius (paper §II-A): together with
// a complete species tree it defines the set of induced per-locus subtrees
// that act as constraint trees.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "support/bitset.hpp"

namespace gentrius::pam {

using phylo::TaxonId;

class Pam {
 public:
  Pam() = default;

  /// All-absent matrix of the given shape.
  Pam(std::size_t taxon_count, std::size_t locus_count);

  std::size_t taxon_count() const noexcept { return taxon_count_; }
  std::size_t locus_count() const noexcept { return loci_.size(); }

  bool present(TaxonId taxon, std::size_t locus) const {
    return loci_.at(locus).test(taxon);
  }

  void set_present(TaxonId taxon, std::size_t locus, bool value = true);

  /// Appends an all-absent locus; returns its index (incremental edit model:
  /// a new marker enters the dataset, cells fill afterwards).
  std::size_t add_locus();

  /// Grows the taxon dimension by one all-absent row; returns the new id
  /// (a newly sequenced taxon; it gains data via set_present).
  TaxonId add_taxon();

  /// Taxa with data for the locus, as a bitset over [0, taxon_count).
  const support::Bitset& locus_taxa(std::size_t locus) const {
    return loci_.at(locus);
  }

  /// Taxa with data for the locus, ascending ids.
  std::vector<TaxonId> locus_taxa_list(std::size_t locus) const;

  /// Number of loci the taxon has data for.
  std::size_t taxon_coverage(TaxonId taxon) const;

  /// Fraction of 0-cells in the matrix.
  double missing_fraction() const;

  /// A taxon present in every locus, if one exists (lowest id). SUPERB-style
  /// algorithms require such a taxon; Gentrius does not.
  std::optional<TaxonId> comprehensive_taxon() const;

  /// True iff every taxon has data in at least one locus (X = union of Y_i).
  bool covers_all_taxa() const;

  // ---- text I/O -------------------------------------------------------------
  // Format: header "<taxon_count> <locus_count>", then one line per taxon:
  // "<label> <0/1> <0/1> ...". Taxon ids are assigned via the TaxonSet.

  static Pam parse(const std::string& text, phylo::TaxonSet& taxa);
  std::string to_text(const phylo::TaxonSet& taxa) const;

 private:
  std::size_t taxon_count_ = 0;
  std::vector<support::Bitset> loci_;  // one bitset per locus
};

/// The constraint tree of one locus: the species tree restricted to the taxa
/// present in that locus.
phylo::Tree induced_subtree(const phylo::Tree& species_tree, const Pam& pam,
                            std::size_t locus);

/// All per-locus induced subtrees (paper's second input mode). Loci with
/// fewer than `min_taxa` present taxa are skipped (they constrain nothing).
std::vector<phylo::Tree> induced_subtrees(const phylo::Tree& species_tree,
                                          const Pam& pam,
                                          std::size_t min_taxa = 4);

}  // namespace gentrius::pam
