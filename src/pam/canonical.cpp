#include "pam/canonical.hpp"

#include <algorithm>
#include <cstdint>

namespace gentrius::pam {

namespace {

using support::mix_hash;

std::size_t distinct_count(std::vector<std::uint64_t> values) {
  std::sort(values.begin(), values.end());
  return static_cast<std::size_t>(
      std::unique(values.begin(), values.end()) - values.begin());
}

/// Bipartite WL: locus colors fold the sorted multiset of their member
/// taxon colors, then taxon colors fold the sorted multiset of their
/// incident locus colors. Iterates until the taxon partition is stable.
void refine_colors(const Pam& pam, std::vector<std::uint64_t>& tcolor) {
  const std::size_t n_taxa = pam.taxon_count();
  const std::size_t n_loci = pam.locus_count();
  std::size_t distinct = distinct_count(tcolor);

  std::vector<std::uint64_t> lcolor(n_loci);
  std::vector<std::uint64_t> member;
  std::vector<std::vector<std::uint64_t>> incident(n_taxa);
  for (std::size_t round = 0; round <= n_taxa; ++round) {
    for (std::size_t l = 0; l < n_loci; ++l) {
      member.clear();
      pam.locus_taxa(l).for_each(
          [&](std::size_t x) { member.push_back(tcolor[x]); });
      std::sort(member.begin(), member.end());
      std::uint64_t h = 0x10c5ULL;
      for (const std::uint64_t v : member) h = mix_hash(h, v);
      lcolor[l] = h;
    }
    for (auto& inc : incident) inc.clear();
    for (std::size_t l = 0; l < n_loci; ++l)
      pam.locus_taxa(l).for_each(
          [&](std::size_t x) { incident[x].push_back(lcolor[l]); });
    for (std::size_t x = 0; x < n_taxa; ++x) {
      std::sort(incident[x].begin(), incident[x].end());
      std::uint64_t h = mix_hash(0x7a30ULL, tcolor[x]);
      for (const std::uint64_t v : incident[x]) h = mix_hash(h, v);
      tcolor[x] = h;
    }
    const std::size_t now = distinct_count(tcolor);
    if (now == distinct) break;
    distinct = now;
  }
}

/// Rows as 0/1 strings over the canonical taxon order, sorted — the sort
/// makes the encoding locus-order invariant.
std::string encode_under_order(const Pam& pam,
                               const std::vector<TaxonId>& order) {
  std::vector<std::string> rows;
  rows.reserve(pam.locus_count());
  for (std::size_t l = 0; l < pam.locus_count(); ++l) {
    std::string row(order.size(), '0');
    for (std::size_t r = 0; r < order.size(); ++r)
      if (pam.present(order[r], l)) row[r] = '1';
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out = "pam-v1 " + std::to_string(pam.taxon_count()) + " " +
                    std::to_string(pam.locus_count()) + "\n";
  for (const auto& row : rows) {
    out += row;
    out.push_back('\n');
  }
  return out;
}

/// Two taxa are twins when their incidence rows are identical. Swapping
/// twins permutes equal columns of every row, so any twin order yields the
/// byte-identical encoding — twin ties can break by taxon id without losing
/// relabel invariance.
bool are_twins(const Pam& pam, TaxonId a, TaxonId b) {
  for (std::size_t l = 0; l < pam.locus_count(); ++l)
    if (pam.present(a, l) != pam.present(b, l)) return false;
  return true;
}

struct PamCanonicalizer {
  const Pam& pam;
  int budget = 48;
  bool invariant = true;

  std::string encode(std::vector<std::uint64_t> color,
                     std::vector<TaxonId>* order_out) {
    refine_colors(pam, color);
    std::vector<TaxonId> sorted(pam.taxon_count());
    for (TaxonId x = 0; x < pam.taxon_count(); ++x) sorted[x] = x;
    std::sort(sorted.begin(), sorted.end(), [&](TaxonId a, TaxonId b) {
      return color[a] != color[b] ? color[a] < color[b] : a < b;
    });

    // First tied class that is not a twin class; twin ties are harmless.
    std::size_t tie_begin = sorted.size();
    std::size_t tie_end = tie_begin;
    for (std::size_t i = 0; i + 1 < sorted.size();) {
      if (color[sorted[i]] != color[sorted[i + 1]]) {
        ++i;
        continue;
      }
      std::size_t end = i + 2;
      while (end < sorted.size() && color[sorted[end]] == color[sorted[i]])
        ++end;
      bool twins = true;
      for (std::size_t j = i + 1; j < end && twins; ++j)
        twins = are_twins(pam, sorted[i], sorted[j]);
      if (!twins) {
        tie_begin = i;
        tie_end = end;
        break;
      }
      i = end;
    }

    if (tie_begin == sorted.size()) {
      if (order_out) *order_out = sorted;
      return encode_under_order(pam, sorted);
    }

    const int class_size = static_cast<int>(tie_end - tie_begin);
    if (budget < class_size) {
      invariant = false;
      if (order_out) *order_out = sorted;
      return encode_under_order(pam, sorted);
    }
    budget -= class_size;

    std::string best;
    std::vector<TaxonId> best_order;
    for (std::size_t i = tie_begin; i < tie_end; ++i) {
      std::vector<std::uint64_t> branched = color;
      branched[sorted[i]] = mix_hash(0x1d1dULL, branched[sorted[i]]);
      std::vector<TaxonId> branch_order;
      std::string enc = encode(std::move(branched), &branch_order);
      if (best.empty() || enc < best) {
        best = std::move(enc);
        best_order = std::move(branch_order);
      }
    }
    if (order_out) *order_out = std::move(best_order);
    return best;
  }
};

}  // namespace

CanonicalPam canonical_encode(const Pam& pam) {
  PamCanonicalizer canon{pam};
  std::vector<std::uint64_t> color(pam.taxon_count(), 0x1ULL);
  CanonicalPam out;
  out.encoding = canon.encode(std::move(color), &out.order);
  out.fp = support::fingerprint_bytes(out.encoding);
  out.relabel_invariant = canon.invariant;
  return out;
}

support::Fingerprint fingerprint(const Pam& pam) {
  return canonical_encode(pam).fp;
}

}  // namespace gentrius::pam
