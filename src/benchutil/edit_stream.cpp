#include "benchutil/edit_stream.hpp"

#include <algorithm>
#include <utility>

#include "decompose/components.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gentrius::benchutil {

namespace {

using incremental::PamDelta;

/// Interaction-graph shape the stream must preserve: component count plus
/// the sorted component sizes (the residual size signature).
struct Structure {
  std::size_t components = 0;
  std::vector<std::size_t> sizes;

  bool operator==(const Structure& o) const {
    return components == o.components && sizes == o.sizes;
  }
};

Structure structure_of(const phylo::Tree& species, const pam::Pam& pam,
                       std::size_t min_taxa) {
  const auto dec = decompose::analyze_pam(species, pam, min_taxa);
  Structure s;
  s.components = dec.split.components.size();
  for (const auto& comp : dec.split.components)
    s.sizes.push_back(comp.taxa.size());
  std::sort(s.sizes.begin(), s.sizes.end());
  return s;
}

std::size_t present_count(const pam::Pam& pam, std::size_t locus) {
  std::size_t n = 0;
  pam.locus_taxa(locus).for_each([&](std::size_t) { ++n; });
  return n;
}

/// taxon -> component index under the current decomposition (one past the
/// component count for taxa outside every constraint).
std::vector<std::size_t> owner_of_taxon(const phylo::Tree& species,
                                        const pam::Pam& pam,
                                        std::size_t min_taxa) {
  const auto dec = decompose::analyze_pam(species, pam, min_taxa);
  std::vector<std::size_t> owner(pam.taxon_count(),
                                 dec.split.components.size());
  for (std::size_t c = 0; c < dec.split.components.size(); ++c)
    for (const phylo::TaxonId t : dec.split.components[c].taxa)
      if (t < owner.size()) owner[t] = c;
  return owner;
}

/// Fills of below-floor loci that keep the locus below the floor: the
/// induced constraint set — and so every component — is untouched.
std::vector<PamDelta> noop_candidates(const pam::Pam& pam,
                                      std::size_t min_taxa) {
  std::vector<PamDelta> out;
  for (std::size_t l = 0; l < pam.locus_count(); ++l) {
    const std::size_t count = present_count(pam, l);
    if (count == 0 || count + 1 >= min_taxa) continue;
    for (phylo::TaxonId t = 0; t < pam.taxon_count(); ++t)
      if (!pam.present(t, l)) out.push_back(PamDelta::fill_cell(t, l));
  }
  return out;
}

/// Cell toggles on constraint loci that plausibly keep the structure: the
/// toggled taxon stays inside the locus's component, the locus stays at or
/// above the floor. Plausible only — the caller trial-applies and
/// re-decomposes before accepting.
std::vector<PamDelta> structural_candidates(const phylo::Tree& species,
                                            const pam::Pam& pam,
                                            std::size_t min_taxa) {
  const auto owner = owner_of_taxon(species, pam, min_taxa);
  std::vector<PamDelta> out;
  for (std::size_t l = 0; l < pam.locus_count(); ++l) {
    const std::size_t count = present_count(pam, l);
    if (count < min_taxa) continue;
    std::size_t locus_comp = owner.size();
    pam.locus_taxa(l).for_each([&](std::size_t t) { locus_comp = owner[t]; });
    for (phylo::TaxonId t = 0; t < pam.taxon_count(); ++t) {
      if (owner[t] != locus_comp) continue;
      if (!pam.present(t, l))
        out.push_back(PamDelta::fill_cell(t, l));
      else if (count > min_taxa)
        out.push_back(PamDelta::clear_cell(t, l));
    }
  }
  return out;
}

}  // namespace

std::vector<PamDelta> make_edit_stream(const phylo::Tree& species_tree,
                                       const pam::Pam& start,
                                       const EditStreamParams& params) {
  pam::Pam sim = start;
  support::Rng rng(params.seed * 0x9e3779b97f4a7c15ULL + 0xedc7);
  const Structure baseline =
      structure_of(species_tree, sim, params.min_taxa);

  std::vector<PamDelta> stream;
  while (stream.size() < params.n_edits) {
    const bool want_noop = rng.bernoulli(params.noop_fraction);
    auto cands = want_noop ? noop_candidates(sim, params.min_taxa)
                           : structural_candidates(species_tree, sim,
                                                   params.min_taxa);
    if (cands.empty())
      cands = want_noop
                  ? structural_candidates(species_tree, sim, params.min_taxa)
                  : noop_candidates(sim, params.min_taxa);

    bool accepted = false;
    while (!cands.empty()) {
      const std::size_t pick = rng.below(cands.size());
      const PamDelta edit = cands[pick];
      cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(pick));
      pam::Pam trial = sim;
      incremental::apply_edit(trial, edit, species_tree.leaf_count());
      if (!(structure_of(species_tree, trial, params.min_taxa) == baseline))
        continue;
      sim = std::move(trial);
      stream.push_back(edit);
      accepted = true;
      break;
    }
    if (!accepted)
      throw support::InvalidInput(
          "edit stream: no structure-preserving edit exists at step " +
          std::to_string(stream.size()));
  }
  return stream;
}

}  // namespace gentrius::benchutil
