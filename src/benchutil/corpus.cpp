#include "benchutil/corpus.hpp"

#include <cstdio>
#include <cstdlib>

#include "benchutil/stats.hpp"
#include "datagen/tree_gen.hpp"
#include "gentrius/problem.hpp"
#include "support/check.hpp"

namespace gentrius::benchutil {

const std::vector<std::size_t>& thread_counts() {
  static const std::vector<std::size_t> counts{2, 4, 8, 12, 16};
  return counts;
}

bool run_dataset(const datagen::Dataset& dataset, const Protocol& protocol,
                 CorpusRun& out) {
  out = CorpusRun{};
  out.name = dataset.name;

  core::Problem problem;
  try {
    problem = core::build_problem(dataset.constraints, protocol.options);
  } catch (const support::Error&) {
    return false;  // degenerate instance (e.g. all loci filtered out)
  }

  if (protocol.require_completion) {
    const auto probe =
        vthread::run_virtual(problem, protocol.options, 16, protocol.costs);
    if (probe.reason != core::StopReason::kCompleted) {
      if (protocol.verbose)
        std::printf("  filtered %s (%s at 16 threads)\n", out.name.c_str(),
                    core::to_string(probe.reason));
      return false;
    }
  }

  const auto serial =
      vthread::run_virtual(problem, protocol.options, 1, protocol.costs);
  out.serial_units = serial.virtual_makespan;
  out.serial_trees = serial.stand_trees;
  out.serial_states = serial.intermediate_states;
  out.serial_reason = serial.reason;

  for (const std::size_t t : thread_counts()) {
    const auto r =
        vthread::run_virtual(problem, protocol.options, t, protocol.costs);
    out.makespans.push_back(r.virtual_makespan);
    out.trees.push_back(r.stand_trees);
    out.speedups.push_back(r.virtual_makespan > 0
                               ? serial.virtual_makespan / r.virtual_makespan
                               : 1.0);
  }
  return true;
}

void print_speedup_panels(const std::string& title,
                          const std::vector<CorpusRun>& runs,
                          const std::vector<double>& thresholds_seconds) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const double threshold : thresholds_seconds) {
    std::vector<const CorpusRun*> kept;
    for (const auto& r : runs)
      if (r.serial_units / kUnitsPerSecond > threshold) kept.push_back(&r);
    std::printf("\n-- panel: serial execution time > %.1fs equivalent "
                "(%zu datasets) --\n",
                threshold, kept.size());
    std::printf("%8s  %-42s\n", "threads",
                "speedup  mean  [q1 median q3]  (min..max)");
    for (std::size_t i = 0; i < thread_counts().size(); ++i) {
      std::vector<double> values;
      values.reserve(kept.size());
      for (const auto* r : kept) values.push_back(r->speedups[i]);
      const auto d = Distribution::of(std::move(values));
      std::printf("%8zu  %s\n", thread_counts()[i],
                  format_distribution(d).c_str());
    }
  }
}

std::vector<datagen::Dataset> simulated_corpus(std::size_t count,
                                               std::uint64_t seed0) {
  std::vector<datagen::Dataset> out;
  out.reserve(count);
  support::Rng rng(seed0);
  for (std::size_t i = 0; i < count; ++i) {
    datagen::SimulatedParams p;
    p.n_taxa = 50 + rng.below(101);               // 50..150
    p.n_loci = 4 + rng.below(8);                  // 4..11
    p.missing_fraction = 0.35 + 0.20 * rng.uniform();  // 35..55 %
    p.seed = seed0 * 1'000'003 + i;
    out.push_back(datagen::make_simulated(p));
  }
  return out;
}

std::vector<datagen::Dataset> empirical_corpus(std::size_t count,
                                               std::uint64_t seed0) {
  std::vector<datagen::Dataset> out;
  out.reserve(count);
  support::Rng rng(seed0);
  for (std::size_t i = 0; i < count; ++i) {
    datagen::EmpiricalLikeParams p;
    p.n_taxa = 40 + rng.below(81);  // 40..120
    p.n_loci = 5 + rng.below(10);   // 5..14
    p.backbone_loci = 1 + rng.below(2);
    p.rogue_fraction = 0.08 + 0.12 * rng.uniform();
    p.seed = seed0 * 2'000'003 + i;
    out.push_back(datagen::make_empirical_like(p));
  }
  return out;
}

datagen::Dataset make_multi_component(const MultiComponentParams& params) {
  GENTRIUS_CHECK(params.n_components >= 1);
  GENTRIUS_CHECK(params.min_taxa_per_component >= params.min_taxa_per_locus);
  GENTRIUS_CHECK(params.max_taxa_per_component >=
                 params.min_taxa_per_component);
  GENTRIUS_CHECK(params.loci_per_component >= 1);
  support::Rng rng(params.seed);

  datagen::Dataset ds;
  ds.name = "multi-" + std::to_string(params.n_components) + "c-s" +
            std::to_string(params.seed);

  std::vector<std::size_t> block_sizes(params.n_components);
  std::size_t total = 0;
  const std::size_t span =
      params.max_taxa_per_component - params.min_taxa_per_component + 1;
  for (auto& b : block_sizes) {
    b = params.min_taxa_per_component + rng.below(span);
    total += b;
  }

  const auto ids = datagen::default_taxa(ds.taxa, total);
  ds.species_tree = datagen::random_tree(ids, rng);
  ds.pam = pam::Pam(total, params.n_components * params.loci_per_component);

  // Block-diagonal fill: locus (c, l) samples only block c's taxa, so
  // constraints of different blocks are taxon-disjoint by construction.
  std::size_t base = 0;
  std::size_t locus = 0;
  for (std::size_t c = 0; c < params.n_components; ++c) {
    const std::size_t b = block_sizes[c];
    for (std::size_t l = 0; l < params.loci_per_component; ++l, ++locus) {
      for (std::size_t i = 0; i < b; ++i)
        if (!rng.bernoulli(params.missing_fraction))
          ds.pam.set_present(static_cast<phylo::TaxonId>(base + i), locus);
      while (ds.pam.locus_taxa(locus).count() < params.min_taxa_per_locus)
        ds.pam.set_present(static_cast<phylo::TaxonId>(base + rng.below(b)),
                           locus);
    }
    base += b;
  }

  ds.constraints = pam::induced_subtrees(ds.species_tree, ds.pam,
                                         params.min_taxa_per_locus);
  return ds;
}

double parse_scale(int argc, char** argv, double fallback) {
  if (argc > 1) {
    const double v = std::strtod(argv[1], nullptr);
    if (v > 0) return v;
  }
  if (const char* env = std::getenv("GENTRIUS_BENCH_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace gentrius::benchutil
