#include "benchutil/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace gentrius::benchutil {

namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

Distribution Distribution::of(std::vector<double> values) {
  Distribution d;
  d.n = values.size();
  if (values.empty()) return d;
  std::sort(values.begin(), values.end());
  d.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  d.median = quantile(values, 0.5);
  d.q1 = quantile(values, 0.25);
  d.q3 = quantile(values, 0.75);
  d.min = values.front();
  d.max = values.back();
  return d;
}

std::string format_distribution(const Distribution& d) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%6.2f  [%5.2f %5.2f %5.2f]  (%5.2f..%5.2f)",
                d.mean, d.q1, d.median, d.q3, d.min, d.max);
  return buf;
}

}  // namespace gentrius::benchutil
