// Distribution summaries for the speedup figures.
#pragma once

#include <string>
#include <vector>

namespace gentrius::benchutil {

struct Distribution {
  std::size_t n = 0;
  double mean = 0, median = 0, q1 = 0, q3 = 0, min = 0, max = 0;

  static Distribution of(std::vector<double> values);
};

/// "mean [q1 median q3]" with fixed precision, for figure-style tables.
std::string format_distribution(const Distribution& d);

}  // namespace gentrius::benchutil
