// Deterministic structure-preserving PAM edit streams for the incremental
// bench family (BENCH_9) and the incremental_edits example.
//
// Every generated edit is a cell toggle that keeps the interaction-graph
// structure of the matrix fixed: same number of components, same sorted
// component sizes. That pins the residual size signature — and therefore
// the closed-form interleaving count M — across the whole stream, so each
// edit dirties at most the one component whose locus it touches. Two edit
// flavors are mixed:
//   - structural: fill/clear a cell of a constraint locus, with the taxon
//     staying inside the locus's component (dirties exactly 1 component);
//   - no-op: fill a cell of a below-floor locus that stays below the floor
//     (the induced constraint set is unchanged; dirties 0 components).
// Candidates are validated by re-decomposing a trial matrix, so the stream
// is correct by construction, not by hope.
#pragma once

#include <cstdint>
#include <vector>

#include "incremental/delta.hpp"
#include "pam/pam.hpp"
#include "phylo/tree.hpp"

namespace gentrius::benchutil {

struct EditStreamParams {
  std::uint64_t seed = 1;
  std::size_t n_edits = 12;
  /// Constraint floor the consuming session runs with
  /// (SessionOptions::min_taxa): structure is validated against it and
  /// no-op fills keep their locus strictly below it.
  std::size_t min_taxa = 4;
  /// Fraction of edits drawn from the no-op flavor (kept when candidates
  /// exist; falls back to structural edits otherwise).
  double noop_fraction = 0.25;
};

/// Generates the stream against a simulated copy of `start` (each edit is
/// valid after the previous ones). Throws InvalidInput when no
/// structure-preserving edit exists at some step.
std::vector<incremental::PamDelta> make_edit_stream(
    const phylo::Tree& species_tree, const pam::Pam& start,
    const EditStreamParams& params);

}  // namespace gentrius::benchutil
