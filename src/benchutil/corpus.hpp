// Shared corpus machinery for the Figure 6/7/8 style experiments.
//
// Implements the paper's evaluation protocol (§IV-B): generate a corpus,
// first run every dataset with 16 (virtual) threads and keep only those for
// which the entire stand was computed without triggering a stopping rule,
// then re-run the survivors with N_t = {12, 8, 4, 2, 1} threads and report
// per-thread-count speedup distributions, split into panels by serial
// execution time thresholds.
//
// "Seconds" here are virtual: the cost model defines 1 unit ≈ 1 state
// expansion, and the paper's machine processes a few hundred thousand
// states per second, so UNITS_PER_SECOND converts virtual makespans into
// equivalent serial wall-clock on the paper's hardware. The corpus is
// scaled down (instance sizes, thresholds /10) so a full figure regenerates
// in minutes on one core; the *shape* of the distributions is what must
// reproduce.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "datagen/dataset.hpp"
#include "gentrius/options.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius::benchutil {

/// Equivalent of the paper's "hundreds of thousands of states per second".
inline constexpr double kUnitsPerSecond = 250'000.0;

struct CorpusRun {
  std::string name;
  double serial_units = 0;        ///< virtual makespan with 1 thread
  std::uint64_t serial_trees = 0;
  std::uint64_t serial_states = 0;
  core::StopReason serial_reason = core::StopReason::kCompleted;
  /// speedups[i] for thread_counts()[i]; raw makespan ratios.
  std::vector<double> speedups;
  /// stand trees found at each thread count (for adapted speedups).
  std::vector<std::uint64_t> trees;
  std::vector<double> makespans;
};

const std::vector<std::size_t>& thread_counts();  // {2,4,8,12,16}

struct Protocol {
  core::Options options;          ///< stopping rules for every run
  vthread::CostModel costs;
  bool require_completion = true; ///< paper's filter: no stopping rule at 16T
  bool verbose = false;
};

/// Runs one dataset through the whole protocol (16-thread filter first when
/// require_completion). Returns false when the dataset was filtered out.
bool run_dataset(const datagen::Dataset& dataset, const Protocol& protocol,
                 CorpusRun& out);

/// Prints the per-thread speedup distribution panels, one per serial-time
/// threshold (seconds, via kUnitsPerSecond).
void print_speedup_panels(const std::string& title,
                          const std::vector<CorpusRun>& runs,
                          const std::vector<double>& thresholds_seconds);

/// Mixed-size simulated corpus mirroring the original Gentrius manuscript's
/// parameter grid, scaled down: taxa 20..60, loci 4..12, missing 30..50 %.
std::vector<datagen::Dataset> simulated_corpus(std::size_t count,
                                               std::uint64_t seed0);

/// Empirical-like corpus (clade-structured missingness on Yule trees).
std::vector<datagen::Dataset> empirical_corpus(std::size_t count,
                                               std::uint64_t seed0);

/// Parameters for block-structured multi-component instances (the
/// decomposition corpus; src/decompose). The taxa are partitioned into
/// `n_components` blocks and every locus samples taxa from exactly one
/// block, so the induced constraint trees of different blocks share no
/// taxon: the constraint interaction graph has at least `n_components`
/// connected components (more when a block's own loci fail to overlap).
struct MultiComponentParams {
  std::size_t n_components = 2;
  std::size_t min_taxa_per_component = 4;
  std::size_t max_taxa_per_component = 6;
  std::size_t loci_per_component = 2;
  double missing_fraction = 0.3;       ///< per block taxon, per locus
  std::size_t min_taxa_per_locus = 4;  ///< floor enforced after dropout
  std::uint64_t seed = 1;
};

/// Block-structured multi-component instance: uniform random species tree
/// over all taxa, block-diagonal PAM, constraints = induced per-locus
/// subtrees. Fully deterministic from the seed.
datagen::Dataset make_multi_component(const MultiComponentParams& params);

/// Parses the optional first CLI argument as a corpus scale factor.
double parse_scale(int argc, char** argv, double fallback = 1.0);

}  // namespace gentrius::benchutil
