// Ground-truth oracle: stand computation by exhaustive enumeration.
//
// Enumerates all (2n-5)!! unrooted binary trees on the taxon universe and
// filters by the display criterion. Exponential — usable up to ~9 taxa —
// but directly implements the *definition* of a stand (paper §II-A), so it
// is independent of every algorithmic idea Gentrius uses and serves as the
// correctness reference for the whole engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/tree.hpp"

namespace gentrius::oracle {

/// All unrooted binary trees on the given taxa (>= 1 taxon).
std::vector<phylo::Tree> all_trees(const std::vector<phylo::TaxonId>& taxa);

/// Number of unrooted binary trees on n taxa: (2n-5)!! (1 for n <= 3).
std::uint64_t tree_space_size(std::size_t n);

/// The stand by definition: every tree on the union of the constraint
/// taxa that displays every constraint. Returned as sorted canonical
/// encodings (phylo::canonical_encoding).
std::vector<std::string> brute_force_stand(
    const std::vector<phylo::Tree>& constraints);

std::uint64_t brute_force_stand_count(
    const std::vector<phylo::Tree>& constraints);

}  // namespace gentrius::oracle
