#include "oracle/brute_force.hpp"

#include <algorithm>
#include <functional>

#include "phylo/topology.hpp"
#include "support/check.hpp"

namespace gentrius::oracle {

using phylo::TaxonId;
using phylo::Tree;

namespace {

void enumerate(Tree& work, const std::vector<TaxonId>& taxa, std::size_t next,
               const std::function<void(const Tree&)>& emit) {
  if (next == taxa.size()) {
    emit(work);
    return;
  }
  // Edge ids are dense while only this recursion mutates the tree (LIFO
  // reuse restores density after each remove).
  const std::size_t n_edges = work.edge_count();
  for (std::size_t e = 0; e < n_edges; ++e) {
    const auto rec = work.insert_leaf(taxa[next], static_cast<phylo::EdgeId>(e));
    enumerate(work, taxa, next + 1, emit);
    work.remove_leaf(rec);
  }
}

void for_all_trees(const std::vector<TaxonId>& taxa,
                   const std::function<void(const Tree&)>& emit) {
  GENTRIUS_CHECK(!taxa.empty());
  if (taxa.size() <= 3) {
    Tree t = Tree::star(taxa);
    emit(t);
    return;
  }
  Tree work = Tree::star({taxa[0], taxa[1], taxa[2]});
  work.reserve_for_leaves(taxa.size());
  enumerate(work, taxa, 3, emit);
}

std::vector<TaxonId> universe(const std::vector<Tree>& constraints) {
  std::vector<TaxonId> all;
  for (const auto& t : constraints)
    for (const TaxonId x : t.taxa()) all.push_back(x);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace

std::uint64_t tree_space_size(std::size_t n) {
  if (n <= 3) return 1;
  std::uint64_t r = 1;
  for (std::size_t k = 4; k <= n; ++k) r *= 2 * k - 5;
  return r;
}

std::vector<Tree> all_trees(const std::vector<TaxonId>& taxa) {
  std::vector<Tree> out;
  out.reserve(tree_space_size(taxa.size()));
  for_all_trees(taxa, [&](const Tree& t) { out.push_back(t); });
  return out;
}

std::vector<std::string> brute_force_stand(
    const std::vector<Tree>& constraints) {
  const auto taxa = universe(constraints);
  std::vector<std::string> stand;
  for_all_trees(taxa, [&](const Tree& t) {
    for (const auto& c : constraints)
      if (!phylo::displays(t, c)) return;
    stand.push_back(phylo::canonical_encoding(t));
  });
  std::sort(stand.begin(), stand.end());
  return stand;
}

std::uint64_t brute_force_stand_count(const std::vector<Tree>& constraints) {
  const auto taxa = universe(constraints);
  std::uint64_t count = 0;
  for_all_trees(taxa, [&](const Tree& t) {
    for (const auto& c : constraints)
      if (!phylo::displays(t, c)) return;
    ++count;
  });
  return count;
}

}  // namespace gentrius::oracle
