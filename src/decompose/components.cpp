#include "decompose/components.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace gentrius::decompose {

namespace {

// Union-find over constraint indices, path-halving + union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

ComponentSplit analyze_components(const std::vector<phylo::Tree>& constraints) {
  const std::size_t n = constraints.size();
  UnionFind uf(n);

  // Sharing a taxon is an equivalence-generating relation: link every
  // constraint to the first constraint that mentioned each of its taxa.
  std::vector<std::size_t> first_owner;  // by taxon id; n = "unseen"
  for (std::size_t c = 0; c < n; ++c) {
    for (const phylo::TaxonId t : constraints[c].taxa()) {
      if (t >= first_owner.size()) first_owner.resize(t + 1, n);
      if (first_owner[t] == n)
        first_owner[t] = c;
      else
        uf.unite(first_owner[t], c);
    }
  }

  // Group constraints by root, keeping ascending index order within groups.
  std::vector<std::size_t> root_component(n, n);
  ComponentSplit split;
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t r = uf.find(c);
    if (root_component[r] == n) {
      root_component[r] = split.components.size();
      split.components.emplace_back();
    }
    split.components[root_component[r]].constraint_indices.push_back(c);
  }

  for (Component& comp : split.components) {
    // Taxon union, ascending; enumerability = any member with >= 3 taxa
    // (the same floor build_problem enforces for a whole instance).
    for (const std::size_t c : comp.constraint_indices) {
      auto taxa = constraints[c].taxa();
      if (taxa.size() >= 3) comp.enumerable = true;
      comp.taxa.insert(comp.taxa.end(), taxa.begin(), taxa.end());
    }
    std::sort(comp.taxa.begin(), comp.taxa.end());
    comp.taxa.erase(std::unique(comp.taxa.begin(), comp.taxa.end()),
                    comp.taxa.end());
    if (comp.enumerable) ++split.enumerable_count;
  }

  // Canonical order: ascending smallest taxon id. Component taxon sets are
  // disjoint, so the minima are distinct and the order is total.
  std::sort(split.components.begin(), split.components.end(),
            [](const Component& a, const Component& b) {
              GENTRIUS_DCHECK(!a.taxa.empty() && !b.taxa.empty());
              return a.taxa.front() < b.taxa.front();
            });
  return split;
}

PamDecomposition analyze_pam(const phylo::Tree& species_tree,
                             const pam::Pam& pam, std::size_t min_taxa) {
  PamDecomposition out;
  out.constraints = pam::induced_subtrees(species_tree, pam, min_taxa);
  out.split = analyze_components(out.constraints);
  return out;
}

}  // namespace gentrius::decompose
