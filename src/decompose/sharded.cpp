#include "decompose/sharded.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "decompose/shard_exec.hpp"
#include "gentrius/problem.hpp"
#include "gentrius/serial.hpp"
#include "phylo/newick.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace gentrius::decompose {

namespace detail {

using core::Options;
using core::Result;
using core::ShardStats;
using core::StopReason;

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b,
                             bool& saturated) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::uint64_t>::max() / b) {
    saturated = true;
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

ResidualClosedForm closed_form_residual(const ComponentSplit& split) {
  ResidualClosedForm out;
  std::size_t universe = 0;
  for (const Component& comp : split.components) {
    if (!comp.enumerable) return out;
    universe += comp.taxa.size();
  }
  out.applicable = true;

  using u128 = unsigned __int128;
  constexpr u128 kMax128 = ~static_cast<u128>(0);
  constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();
  u128 num = 1;
  for (std::size_t k = 4; k <= universe; ++k) {
    const u128 f = 2 * k - 5;
    if (num > kMax128 / f) {
      // Numerator needs > 128 bits (universe > 37); M >= (2n-5)!! / (2n-7)!!
      // per component merge is astronomically past uint64 by then.
      out.saturated = true;
      out.count = kMax64;
      return out;
    }
    num *= f;
  }
  // The denominator divides the numerator exactly (M is a tree count), and
  // it never exceeds it, so a single 128-bit division is exact.
  u128 den = 1;
  for (const Component& comp : split.components)
    for (std::size_t k = 4; k <= comp.taxa.size(); ++k) den *= 2 * k - 5;
  const u128 m = num / den;
  GENTRIUS_DCHECK(m * den == num);
  if (m > kMax64) {
    out.saturated = true;
    out.count = kMax64;
  } else {
    out.count = static_cast<std::uint64_t>(m);
  }
  return out;
}

std::vector<phylo::Tree> subset_constraints(
    const std::vector<phylo::Tree>& constraints, const Component& comp) {
  std::vector<phylo::Tree> out;
  out.reserve(comp.constraint_indices.size());
  for (const std::size_t c : comp.constraint_indices)
    out.push_back(constraints[c]);
  return out;
}

Options shard_options(const Options& options) {
  Options o = options;
  o.decompose = core::Decompose::kOff;
  o.initial_constraint.reset();
  o.insertion_order.clear();
  return o;
}

Result run_one_shard(const std::vector<phylo::Tree>& constraints,
                     const Options& options, const ShardRunOptions& run) {
  switch (run.backend) {
    case ShardBackend::kSerial:
      return core::run_serial(constraints, options);
    case ShardBackend::kPool:
      return parallel::run_parallel(core::build_problem(constraints, options),
                                    options, run.n_threads, run.launch_mode);
    case ShardBackend::kVirtual:
      return vthread::run_virtual(core::build_problem(constraints, options),
                                  options, run.n_threads, run.costs);
  }
  GENTRIUS_CHECK(false);
}

ShardStats make_stats(ShardStats::Kind kind, std::size_t n_taxa,
                      std::size_t n_constraints, const Result& r) {
  ShardStats s;
  s.kind = kind;
  s.n_taxa = n_taxa;
  s.n_constraints = n_constraints;
  s.stand_trees = r.stand_trees;
  s.intermediate_states = r.intermediate_states;
  s.dead_ends = r.dead_ends;
  s.reason = r.reason;
  s.selection = r.selection;
  s.sched = r.sched;
  s.virtual_makespan = r.virtual_makespan;
  return s;
}

void accumulate(Result& out, const Result& r) {
  out.intermediate_states += r.intermediate_states;
  out.dead_ends += r.dead_ends;
  out.tasks_executed += r.tasks_executed;
  out.tasks_offered += r.tasks_offered;
  out.sched.merge(r.sched);
  out.selection.merge(r.selection);
  // The first stopping rule that fired anywhere decides the combined
  // reason; an empty shard stand is a *result* (count 0), not a stop.
  if (out.reason == StopReason::kCompleted &&
      r.reason != StopReason::kCompleted &&
      r.reason != StopReason::kEmptyStand)
    out.reason = r.reason;
}

double combine_makespans(const std::vector<double>& makespans,
                         const ShardRunOptions& run) {
  const double dispatch = run.costs.shard_dispatch_cost;
  const double merge = run.costs.shard_merge_cost;
  const auto n = static_cast<double>(makespans.size());
  if (run.schedule == ShardSchedule::kSequential) {
    double total = 0.0;
    for (const double m : makespans) total += dispatch + m + merge;
    return total;
  }
  // Concurrent: one machine per shard. Dispatches leave the coordinator
  // back to back, shards overlap, merges serialize on the coordinator
  // after the last shard finishes.
  double finish = 0.0;
  for (std::size_t s = 0; s < makespans.size(); ++s)
    finish = std::max(
        finish, dispatch * static_cast<double>(s + 1) + makespans[s]);
  return finish + merge * n;
}

void stream_cross_product(
    const std::vector<std::vector<std::string>>& component_stands,
    const std::vector<phylo::Tree>& passthrough, phylo::TaxonSet& labels,
    const core::Options& base, const core::Options& caller,
    std::uint64_t residual_count, core::Result& out) {
  const std::size_t k = component_stands.size();
  // done: a truncated-to-empty component list (collect_limit == 0), or
  // the odometer wrapped — every tuple has been streamed.
  bool done = false;
  for (const auto& stand : component_stands)
    if (stand.empty()) done = true;
  std::vector<std::size_t> index(k, 0);
  Options tuple_opts = base;
  tuple_opts.collect_trees = true;
  tuple_opts.tree_names = caller.tree_names;
  while (!done && out.trees.size() < caller.collect_limit) {
    std::vector<phylo::Tree> tuple = passthrough;
    for (std::size_t i = 0; i < k; ++i)
      tuple.push_back(
          phylo::parse_newick(component_stands[i][index[i]], labels));
    tuple_opts.collect_limit = caller.collect_limit - out.trees.size();
    Result r = core::run_serial(tuple, tuple_opts);
    // Shape independence of the interleaving count: every tuple instance
    // has the residual instance's count (the residual *is* the canonical
    // representatives' tuple).
    GENTRIUS_DCHECK(r.reason != StopReason::kCompleted ||
                    out.reason != StopReason::kCompleted ||
                    r.stand_trees == residual_count);
    out.trees.insert(out.trees.end(),
                     std::make_move_iterator(r.trees.begin()),
                     std::make_move_iterator(r.trees.end()));
    // Odometer over the tuple space, last component fastest.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (++index[i] < component_stands[i].size()) break;
      index[i] = 0;
      if (i == 0) done = true;  // wrapped: all tuples streamed
    }
  }
}

}  // namespace detail

namespace {

using core::Options;
using core::Result;
using core::ShardStats;
using core::StopReason;
using detail::accumulate;
using detail::combine_makespans;
using detail::make_stats;
using detail::run_one_shard;
using detail::saturating_mul;
using detail::shard_options;
using detail::subset_constraints;

}  // namespace

std::string shard_trace_line(const core::ShardStats& s) {
  std::string line = "shard ";
  line += core::to_string(s.kind);
  line += " taxa=" + std::to_string(s.n_taxa);
  line += " constraints=" + std::to_string(s.n_constraints);
  line += " trees=" + std::to_string(s.stand_trees);
  line += " states=" + std::to_string(s.intermediate_states);
  line += " dead_ends=" + std::to_string(s.dead_ends);
  line += " reason=";
  line += core::to_string(s.reason);
  return line;
}

ShardPlan plan_shards(const std::vector<phylo::Tree>& constraints) {
  ShardPlan plan;
  plan.split = analyze_components(constraints);
  if (plan.split.enumerable_count == 0)
    throw support::InvalidInput(
        "decompose: no component contains a constraint with >= 3 taxa; "
        "nothing is enumerable");

  // Id-stable labels for Newick round-tripping: label "x<i>" gets id i.
  phylo::TaxonId max_id = 0;
  for (const Component& comp : plan.split.components)
    max_id = std::max(max_id, comp.taxa.back());
  for (phylo::TaxonId t = 0; t <= max_id; ++t)
    plan.labels.add("x" + std::to_string(t));

  // Canonical representative per enumerable component: the first stand tree
  // of a default-options serial probe — a deterministic function of the
  // component alone, independent of the caller's heuristic configuration.
  for (const Component& comp : plan.split.components) {
    if (!comp.enumerable) {
      for (const std::size_t c : comp.constraint_indices)
        plan.passthrough.push_back(constraints[c]);
      continue;
    }
    Options probe;
    probe.collect_trees = true;
    probe.collect_limit = 1;
    probe.stop.max_stand_trees = 1;
    probe.tree_names = &plan.labels;
    const Result r = core::run_serial(subset_constraints(constraints, comp),
                                      probe);
    if (r.trees.empty()) {
      plan.empty_component = true;
      continue;
    }
    plan.representatives.push_back(phylo::parse_newick(r.trees.front(),
                                                       plan.labels));
  }

  plan.residual_constraints = plan.representatives;
  plan.residual_constraints.insert(plan.residual_constraints.end(),
                                   plan.passthrough.begin(),
                                   plan.passthrough.end());
  return plan;
}

Result run_sharded(const std::vector<phylo::Tree>& constraints,
                   const Options& options, const ShardRunOptions& run) {
  core::validate_options(options, core::OptionsSurface::kSharded);
  ShardPlan plan = plan_shards(constraints);
  const Options base = shard_options(options);

  Result out;
  out.reason = StopReason::kCompleted;
  std::uint64_t product = 1;
  std::vector<double> makespans;
  // Collected component stands (internal labels), one sorted list per
  // enumerable component, feeding the cross-product streamer below.
  std::vector<std::vector<std::string>> component_stands;

  for (const Component& comp : plan.split.components) {
    if (!comp.enumerable) continue;
    Options comp_opts = base;
    if (options.collect_trees && !plan.empty_component) {
      comp_opts.collect_trees = true;
      comp_opts.collect_limit = options.collect_limit;
      comp_opts.tree_names = &plan.labels;
    } else {
      comp_opts.collect_trees = false;
    }
    Result r = run_one_shard(subset_constraints(constraints, comp),
                             comp_opts, run);
    out.shards.push_back(make_stats(ShardStats::Kind::kComponent,
                                    comp.taxa.size(),
                                    comp.constraint_indices.size(), r));
    accumulate(out, r);
    product = saturating_mul(product, r.stand_trees, out.count_saturated);
    makespans.push_back(r.virtual_makespan);
    if (comp_opts.collect_trees) {
      // Canonical tuple order must not depend on the backend's worker
      // interleaving: sort each component's stand lexicographically.
      std::sort(r.trees.begin(), r.trees.end());
      component_stands.push_back(std::move(r.trees));
    }
  }

  std::uint64_t residual_count = 0;
  detail::ResidualClosedForm closed;
  if (run.residual_closed_form && !plan.empty_component)
    closed = detail::closed_form_residual(plan.split);
  if (closed.applicable) {
    std::size_t universe = 0;
    for (const Component& comp : plan.split.components)
      universe += comp.taxa.size();
    ShardStats s;
    s.kind = ShardStats::Kind::kResidual;
    s.n_taxa = universe;
    s.n_constraints = plan.residual_constraints.size();
    s.stand_trees = closed.count;
    out.shards.push_back(s);
    residual_count = closed.count;
    if (closed.saturated) out.count_saturated = true;
    product = saturating_mul(product, residual_count, out.count_saturated);
  } else if (!plan.empty_component) {
    Options res_opts = base;
    res_opts.collect_trees = false;
    const Result r = run_one_shard(plan.residual_constraints, res_opts, run);
    std::size_t universe = 0;
    for (const Component& comp : plan.split.components)
      universe += comp.taxa.size();
    out.shards.push_back(make_stats(ShardStats::Kind::kResidual, universe,
                                    plan.residual_constraints.size(), r));
    accumulate(out, r);
    residual_count = r.stand_trees;
    product = saturating_mul(product, residual_count, out.count_saturated);
    makespans.push_back(r.virtual_makespan);
  } else {
    product = 0;
  }

  out.stand_trees = product;
  if (run.backend == ShardBackend::kVirtual)
    out.virtual_makespan = combine_makespans(makespans, run);

  // Cross-product streaming: tuple instances are enumerated serially (they
  // are interleaving-only and cheap: no component branching remains inside
  // them). Shared with the incremental session (shard_exec.hpp) so both
  // drivers stream the identical tree sequence.
  if (options.collect_trees && product > 0 && !component_stands.empty())
    detail::stream_cross_product(component_stands, plan.passthrough,
                                 plan.labels, base, options, residual_count,
                                 out);
  return out;
}

Result run_serial(const std::vector<phylo::Tree>& constraints,
                  const Options& options) {
  if (options.decompose == core::Decompose::kOff)
    return core::run_serial(constraints, options);
  ShardRunOptions run;
  run.backend = ShardBackend::kSerial;
  return run_sharded(constraints, options, run);
}

Result run_parallel(const std::vector<phylo::Tree>& constraints,
                    const Options& options, std::size_t n_threads,
                    parallel::LaunchMode mode) {
  if (options.decompose == core::Decompose::kOff)
    return parallel::run_parallel(core::build_problem(constraints, options),
                                  options, n_threads, mode);
  ShardRunOptions run;
  run.backend = ShardBackend::kPool;
  run.n_threads = n_threads;
  run.launch_mode = mode;
  return run_sharded(constraints, options, run);
}

Result run_virtual(const std::vector<phylo::Tree>& constraints,
                   const Options& options, std::size_t n_threads,
                   const vthread::CostModel& costs, ShardSchedule schedule) {
  if (options.decompose == core::Decompose::kOff)
    return vthread::run_virtual(core::build_problem(constraints, options),
                                options, n_threads, costs);
  ShardRunOptions run;
  run.backend = ShardBackend::kVirtual;
  run.n_threads = n_threads;
  run.schedule = schedule;
  run.costs = costs;
  return run_sharded(constraints, options, run);
}

}  // namespace gentrius::decompose
