// Sharded enumeration of a decomposed instance (Options::decompose).
//
// The product law (DESIGN.md "Decomposition"): with the constraint set
// split into interaction-graph components C_1..C_k (components.hpp),
//
//   stand(whole) = disjoint union over tuples (t_1..t_k), t_i in
//                  stand(C_i), of stand({t_1..t_k} + vacuous constraints)
//   count(whole) = prod_i count(C_i) * M
//
// where M — the interleaving count, the number of trees on the whole
// universe displaying one fixed tree per component — depends only on the
// component *sizes* (M = (2n-5)!! / prod_i (2n_i-5)!!), never on which
// stand trees were fixed. The sharded driver therefore runs k component
// shards plus one *canonical residual shard* — the instance whose
// constraints are one canonical representative stand tree per component —
// through the existing engine, multiplies the counts (saturating), and,
// when trees are collected, streams the cross product: every tuple of
// component stand trees is itself a tiny Gentrius instance whose stand is
// enumerated and emitted.
//
// The representative of a component is the first stand tree of a canonical
// serial probe run (default Options, collect one tree) — a deterministic
// function of the component alone, so the residual shard, the shard order
// and every trace line derived from them are reproducible byte for byte.
//
// Shards run serially, on the real pool, or on the virtual-time simulator
// (ShardBackend); virtual runs charge CostModel::shard_dispatch_cost /
// shard_merge_cost per shard and combine shard makespans under a
// sequential or concurrent shard schedule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "decompose/components.hpp"
#include "gentrius/options.hpp"
#include "parallel/pool.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "vthread/virtual_pool.hpp"

namespace gentrius::decompose {

/// Which engine driver executes each shard.
enum class ShardBackend : std::uint8_t {
  kSerial,   ///< core::run_serial per shard
  kPool,     ///< parallel::run_parallel per shard (real threads)
  kVirtual,  ///< vthread::run_virtual per shard (deterministic simulation)
};

inline const char* to_string(ShardBackend b) {
  switch (b) {
    case ShardBackend::kSerial: return "serial";
    case ShardBackend::kPool: return "pool";
    case ShardBackend::kVirtual: return "virtual";
  }
  return "?";
}

/// How shard makespans combine on the virtual backend. Sequential models
/// one machine running the shards back to back; concurrent models a
/// distributed deployment — one machine per shard — where dispatches leave
/// a single coordinator one after another and merges return to it.
enum class ShardSchedule : std::uint8_t { kSequential, kConcurrent };

inline const char* to_string(ShardSchedule s) {
  switch (s) {
    case ShardSchedule::kSequential: return "sequential";
    case ShardSchedule::kConcurrent: return "concurrent";
  }
  return "?";
}

struct ShardRunOptions {
  ShardBackend backend = ShardBackend::kSerial;
  std::size_t n_threads = 1;  ///< per shard (pool/virtual backends)
  parallel::LaunchMode launch_mode = parallel::LaunchMode::kStdThread;
  ShardSchedule schedule = ShardSchedule::kSequential;
  vthread::CostModel costs;  ///< virtual backend only
  /// Compute the residual shard's interleaving count in closed form,
  ///   M = (2n-5)!! / prod_i (2n_i-5)!!
  /// (shape independence; DESIGN.md "Decomposition"), instead of
  /// enumerating the residual instance. Exact — the product-law suite
  /// proves the identity against enumeration — but applied only when every
  /// component is enumerable; instances with pass-through constraints fall
  /// back to enumeration. Off by default: the enumerated residual run (and
  /// its golden trace lines) is part of the paper-faithful output. This is
  /// what makes instances with many components tractable at all: M grows
  /// double-factorially with the universe and dwarfs every component shard.
  bool residual_closed_form = false;
};

/// The executable decomposition of an instance: the component split, one
/// canonical representative per enumerable component, and the residual
/// instance (representatives plus the pass-through constraints of
/// non-enumerable components).
struct ShardPlan {
  ComponentSplit split;
  /// Representative stand tree per enumerable component, in canonical
  /// component order. Empty trees never appear: a component whose stand is
  /// empty sets `empty_component` instead.
  std::vector<phylo::Tree> representatives;
  /// Constraints of non-enumerable components, passed through verbatim.
  std::vector<phylo::Tree> passthrough;
  /// representatives + passthrough: the canonical residual instance.
  std::vector<phylo::Tree> residual_constraints;
  /// Some enumerable component has an empty stand (the whole stand is
  /// empty; the residual shard is not runnable and is skipped).
  bool empty_component = false;
  /// Internal id-stable labels ("x<id>") used to round-trip component stand
  /// trees through the engine's Newick collection. Outlives every shard run
  /// started from this plan.
  phylo::TaxonSet labels;
};

/// Canonical one-line rendering of a shard rollup, shared by golden traces,
/// benches and tests so they agree byte for byte:
///   "shard <kind> taxa=N constraints=N trees=N states=N dead_ends=N
///    reason=<reason>"
/// Deliberately integer-only (no makespans) so the line is identical across
/// backends that enumerate the same shard.
std::string shard_trace_line(const core::ShardStats& s);

/// Builds the shard plan: analyzes components and runs one canonical serial
/// probe per enumerable component for its representative. Throws
/// InvalidInput when no component is enumerable (the same inputs
/// build_problem rejects).
ShardPlan plan_shards(const std::vector<phylo::Tree>& constraints);

/// Runs the decomposed instance: component shards plus the residual shard
/// through the chosen backend, combining counts by (saturating) product and
/// — when options.collect_trees — stands by cross-product streaming.
/// Result::shards carries the per-shard rollups in canonical order
/// (components first, residual last); intermediate_states / dead_ends /
/// sched / selection are the sums over shard runs. Shard runs clear
/// Options::initial_constraint and Options::insertion_order (whole-instance
/// indices and orders are meaningless inside a shard); every other option
/// applies per shard. options.decompose is ignored — calling this function
/// *is* the opt-in.
core::Result run_sharded(const std::vector<phylo::Tree>& constraints,
                         const core::Options& options,
                         const ShardRunOptions& run = {});

// ---- decompose-aware entry points -----------------------------------------
// Dispatch on options.decompose: kOff forwards to the paper-faithful
// single-instance driver, kComponents to run_sharded with the matching
// backend. These are the drop-in replacements callers use when they want
// Options::decompose honored rather than rejected.

core::Result run_serial(const std::vector<phylo::Tree>& constraints,
                        const core::Options& options);

core::Result run_parallel(
    const std::vector<phylo::Tree>& constraints, const core::Options& options,
    std::size_t n_threads,
    parallel::LaunchMode mode = parallel::LaunchMode::kStdThread);

core::Result run_virtual(const std::vector<phylo::Tree>& constraints,
                         const core::Options& options, std::size_t n_threads,
                         const vthread::CostModel& costs = {},
                         ShardSchedule schedule = ShardSchedule::kSequential);

}  // namespace gentrius::decompose
