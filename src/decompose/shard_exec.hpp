// Shared shard-execution and result-combination helpers.
//
// run_sharded (sharded.cpp) and the incremental session (src/incremental)
// must combine shard results *identically* — same saturating product, same
// shard-local option view, same cross-product streaming order — or the
// incremental differential guarantee ("byte-equal counts and stand sets at
// every edit step") silently breaks. These helpers are that single shared
// path. They are an internal decompose API: subject to change with the
// drivers that use them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decompose/components.hpp"
#include "decompose/sharded.hpp"
#include "gentrius/options.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace gentrius::decompose::detail {

/// a * b clamped to uint64 max; sets `saturated` on clamp.
std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b,
                             bool& saturated);

/// The component's member constraints, in input order.
std::vector<phylo::Tree> subset_constraints(
    const std::vector<phylo::Tree>& constraints, const Component& comp);

/// Shard-local option view: whole-instance overrides cannot survive into a
/// shard (initial_constraint indexes the whole constraint list, an
/// insertion_order permutes the whole missing-taxa set), and the shard
/// itself must never recurse into decomposition.
core::Options shard_options(const core::Options& options);

/// Runs one shard instance through the backend selected by `run`.
core::Result run_one_shard(const std::vector<phylo::Tree>& constraints,
                           const core::Options& options,
                           const ShardRunOptions& run);

/// Closed-form residual interleaving count (ShardRunOptions::
/// residual_closed_form). `applicable` is false when some component is
/// non-enumerable (its pass-through constraints are not representative
/// trees, so the identity does not cover them). `saturated` clamps the
/// count to uint64 max when M overflows; intermediates use 128-bit
/// arithmetic, exact far past the point where M itself overflows.
struct ResidualClosedForm {
  bool applicable = false;
  bool saturated = false;
  std::uint64_t count = 0;
};

ResidualClosedForm closed_form_residual(const ComponentSplit& split);

/// Per-shard rollup of a shard run's Result.
core::ShardStats make_stats(core::ShardStats::Kind kind, std::size_t n_taxa,
                            std::size_t n_constraints, const core::Result& r);

/// Folds a shard run into the combined result (counters, scheduler and
/// selection stats, first-stopping-rule-wins reason).
void accumulate(core::Result& out, const core::Result& r);

/// Sharded virtual-time accounting (virtual backend only; see CostModel).
double combine_makespans(const std::vector<double>& makespans,
                         const ShardRunOptions& run);

/// Cross-product stand streaming: every tuple of component stand trees,
/// plus the vacuous pass-through constraints, is an instance whose stand is
/// a slice of the whole stand; the slices are disjoint and exhaustive.
/// `component_stands` holds one lexicographically sorted list per
/// enumerable component, as Newick over `labels`. Appends to out.trees up
/// to caller.collect_limit; tuple instances run serially (they are
/// interleaving-only and cheap). `base` must be the shard-local option
/// view; `caller` supplies collect_limit / tree_names; `residual_count` is
/// the interleaving count every tuple instance must reproduce (DCHECKed).
void stream_cross_product(
    const std::vector<std::vector<std::string>>& component_stands,
    const std::vector<phylo::Tree>& passthrough, phylo::TaxonSet& labels,
    const core::Options& base, const core::Options& caller,
    std::uint64_t residual_count, core::Result& out);

}  // namespace gentrius::decompose::detail
