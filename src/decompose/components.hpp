// Independent-subproblem analysis: connected components of the constraint
// interaction graph.
//
// Two constraint trees interact iff they share at least one taxon — only
// then can one restrict the placements the other allows. The interaction
// graph therefore has the constraints as vertices and taxon-overlap edges;
// its connected components partition both the constraint set and the taxon
// universe X, and the stand of the whole instance factors over them:
//
//   count(whole) = prod_i count(component_i) * count(residual)
//
// where the residual instance consists of one representative stand tree per
// component (DESIGN.md "Decomposition" derives the law; the residual count
// is the interleaving factor M = (2n-5)!! / prod_i (2n_i-5)!!, a quantity
// that provably depends only on the component sizes, never on the
// representative topologies). The analyzer below computes the partition;
// sharded.hpp turns it into runnable shards.
//
// Components are reported in canonical order — ascending smallest taxon id
// — so every consumer (sharded drivers, golden traces, benchmarks) sees the
// identical deterministic shard sequence.
#pragma once

#include <cstddef>
#include <vector>

#include "pam/pam.hpp"
#include "phylo/tree.hpp"

namespace gentrius::decompose {

/// One connected component of the constraint interaction graph.
struct Component {
  std::vector<std::size_t> constraint_indices;  ///< into the input list, ascending
  std::vector<phylo::TaxonId> taxa;             ///< union of member taxa, ascending
  /// True when the component contains at least one constraint with >= 3
  /// taxa and can therefore be enumerated as its own Gentrius instance.
  /// Non-enumerable components (all member constraints have <= 2 taxa) are
  /// vacuous — they constrain nothing — and pass their constraints straight
  /// through into the residual instance, which carries their taxa.
  bool enumerable = false;
};

struct ComponentSplit {
  /// Canonical order: ascending by smallest taxon id.
  std::vector<Component> components;
  std::size_t enumerable_count = 0;
};

/// Splits the constraint set into interaction-graph components. Accepts any
/// constraint list build_problem would (and also lists no single component
/// of which is enumerable — the caller decides whether that is an error).
ComponentSplit analyze_components(const std::vector<phylo::Tree>& constraints);

/// PAM input mode: the interaction structure of a presence/absence matrix is
/// the structure of its induced per-locus subtrees (loci with fewer than
/// `min_taxa` present taxa constrain nothing and are skipped, exactly as in
/// pam::induced_subtrees). Returns the constraints alongside the split so
/// the caller can feed both to the sharded drivers.
struct PamDecomposition {
  std::vector<phylo::Tree> constraints;
  ComponentSplit split;
};

PamDecomposition analyze_pam(const phylo::Tree& species_tree,
                             const pam::Pam& pam, std::size_t min_taxa = 4);

}  // namespace gentrius::decompose
