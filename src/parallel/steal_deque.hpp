// Distributed work-stealing scheduler: per-worker bounded deques.
//
// The paper's §III design funnels every hand-off through one mutex/condvar
// TaskQueue whose capacity rule (N_t+1, then N_t/2) deliberately starves
// the pool at high thread counts. This header implements the alternative
// scheduler (Options::Scheduler::kDistributedDeques): each worker owns a
// bounded ring deque, pushes and pops its own tasks LIFO (newest = deepest
// subtree, warm state), and — when both its assignment and its deque are
// empty — steals FIFO (oldest = shallowest = biggest subtree) from victims
// visited in a deterministically seeded random cyclic order. Lock traffic
// is per-deque: owners and thieves contend only on the ring they actually
// touch, never on one global mutex.
//
// Termination detection is a busy count: a worker whose steal sweep fails
// registers as idle under the scheduler's signal mutex; the last worker to
// go idle with zero pending tasks declares the run finished and wakes
// everyone. Pushes signal sleepers through the same mutex, so a parked
// worker is unparked by the next offer (or by a stopping rule via the
// core::StopWaker hook).
//
// Decomposition semantics are identical to the central queue: an offered
// task carries half of a frame's admissible branches plus the replay path,
// the producer keeps the other half, and every branch is explored (and
// counted) exactly once by whoever ends up holding it — so tree/state/
// dead-end totals and the stand set match the serial run whenever the
// stopping rules stay quiet. The virtual-time simulator re-implements this
// exact decomposition deterministically (src/vthread/virtual_pool.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "gentrius/options.hpp"
#include "support/invariant.hpp"
#include "support/rng.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::parallel {

/// Per-worker ring capacity. Unlike the central queue's N_t-coupled rule,
/// capacity is per worker, so total task headroom scales with the pool: at
/// 48 threads the central queue holds 24 tasks for 47 potential thieves,
/// while 48 deques hold up to 384. Eight slots per worker keeps the
/// owner-side pop-back churn (rewind + replay of self-offered tasks that
/// nobody stole) negligible while leaving thieves plenty to take.
inline std::size_t steal_deque_capacity_for(std::size_t /*n_threads*/) {
  return 8;
}

/// Deterministically seeded victim-selection stream: one per worker, used
/// only by its owner. Each steal sweep starts at a pseudo-random peer and
/// scans cyclically, so thieves spread over victims instead of convoying on
/// worker 0. The identical generator drives the virtual-time simulator's
/// victim order, making the simulated schedule a pure function of
/// Options::steal_seed.
class VictimSelector {
 public:
  VictimSelector() : rng_(0) {}
  VictimSelector(std::uint64_t seed, std::size_t tid, std::size_t n_workers)
      : rng_(seed ^ (0x9e3779b97f4a7c15ULL * (tid + 1))),
        n_workers_(n_workers) {}

  /// First victim candidate of a sweep (may equal the caller's own id —
  /// sweeps skip self). Cyclic scan order: begin, begin+1, ... mod n.
  std::size_t begin_sweep() { return rng_.below(n_workers_ ? n_workers_ : 1); }

 private:
  support::Rng rng_;
  std::size_t n_workers_ = 1;
};

/// One worker's bounded task ring. The owner pushes and pops at the tail
/// (LIFO); thieves take from the head (FIFO). All hand-offs swap the task's
/// vectors with slot storage, so the critical sections are O(1) pointer
/// exchanges exactly like the central TaskQueue's.
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {}

  /// Owner-side capacity reservation: false (counting the rejection) when
  /// the ring is full. Sound as a push precondition despite being a
  /// separate critical section: the owner is the only thread that adds
  /// tasks, and thieves can only drain, so a non-full observation cannot
  /// be invalidated before the owner's next push.
  bool try_reserve() GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    if (size_ >= capacity_) {
      ++rejections_;
      return false;
    }
    return true;
  }

  /// Owner side: false when full (the caller keeps its branches). Counts
  /// capacity rejections and tracks the high-water depth.
  bool owner_push(core::Task& task) GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    GENTRIUS_DCHECK_LE(size_, capacity_);
    if (size_ >= capacity_) {
      ++rejections_;
      return false;
    }
    swap_into(slots_[(head_ + size_) % capacity_], task);
    ++size_;
    if (size_ > max_depth_) max_depth_ = size_;
    return true;
  }

  /// Owner side: newest task (deepest subtree), or false when empty.
  bool owner_pop(core::Task& out) GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    if (size_ == 0) return false;
    --size_;
    swap_into(out, slots_[(head_ + size_) % capacity_]);
    return true;
  }

  /// Thief side: oldest task (shallowest, biggest subtree), or false.
  bool steal(core::Task& out) GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    if (size_ == 0) return false;
    swap_into(out, slots_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return true;
  }

  std::size_t size() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    return size_;
  }
  std::uint64_t rejections() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    return rejections_;
  }
  std::size_t max_depth() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    return max_depth_;
  }

 private:
  static void swap_into(core::Task& dst, core::Task& src) {
    std::swap(dst.path, src.path);
    dst.next_taxon = src.next_taxon;
    std::swap(dst.branches, src.branches);
  }

  const std::size_t capacity_;
  mutable support::Mutex mutex_;
  std::vector<core::Task> slots_ GENTRIUS_GUARDED_BY(mutex_);  // fixed ring
  std::size_t head_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::size_t size_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::size_t max_depth_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejections_ GENTRIUS_GUARDED_BY(mutex_) = 0;
};

/// The full distributed scheduler: N_t deques, per-worker victim streams,
/// busy-count termination, and a signal mutex/condvar for parking idle
/// workers. Workers interact through per-worker handles: the handle is the
/// enumerator's TaskSink (offers land in the worker's own deque) and the
/// pool's blocking acquire source.
class DequeScheduler final : public core::StopWaker {
 public:
  DequeScheduler(std::size_t workers, std::uint64_t steal_seed)
      : workers_(workers), busy_(workers) {
    handles_.reserve(workers);
    for (std::size_t tid = 0; tid < workers; ++tid) {
      deques_.emplace_back(steal_deque_capacity_for(workers));
      handles_.push_back(Handle{this, tid, VictimSelector(steal_seed, tid, workers)});
    }
  }

  /// Per-worker TaskSink: offers go to the worker's own deque. Owned by the
  /// scheduler; each worker uses exactly its own handle.
  class Handle final : public core::TaskSink {
   public:
    Handle(DequeScheduler* sched, std::size_t tid, VictimSelector selector)
        : sched_(sched), tid_(tid), selector_(selector) {}

    bool try_push(core::Task& task) override {
      return sched_->push_local(tid_, task);
    }

   private:
    friend class DequeScheduler;
    DequeScheduler* sched_;
    std::size_t tid_;
    VictimSelector selector_;  // touched only by the owning worker thread
  };

  core::TaskSink* sink_for(std::size_t tid) {
    GENTRIUS_DCHECK_LT(tid, workers_);
    return &handles_[tid];
  }

  /// Blocking acquire for worker `tid`: own deque LIFO first, then a steal
  /// sweep over the other deques, then park until a push or termination.
  /// Returns false when the pool terminated (all workers idle, no pending
  /// tasks) or a stopping rule fired; `out` is untouched then.
  bool acquire(std::size_t tid, const core::CounterSink& sink, core::Task& out)
      GENTRIUS_EXCLUDES(mutex_) {
    GENTRIUS_DCHECK_LT(tid, workers_);
    for (;;) {
      if (done_.load(std::memory_order_acquire) || sink.stop_requested())
        return false;
      if (deques_[tid].owner_pop(out)) {
        note_taken();
        return true;
      }
      if (try_steal(tid, out)) return true;
      // Nothing anywhere: transition to idle under the signal mutex. The
      // pending_ re-check under the lock closes the race with a push that
      // landed between the failed sweep and the lock acquisition.
      bool i_terminated = false;
      {
        support::MutexLock lock(mutex_);
        if (pending_ > 0) continue;  // late push: stay busy, sweep again
        GENTRIUS_DCHECK_GT(busy_, 0u);
        if (--busy_ == 0) {
          done_.store(true, std::memory_order_release);
          i_terminated = true;
        } else {
          while (!done_.load(std::memory_order_acquire) &&
                 !sink.stop_requested() && pending_ == 0) {
            cv_.wait(mutex_);
          }
          if (done_.load(std::memory_order_acquire) || sink.stop_requested())
            return false;  // busy_ stays decremented: this worker is leaving
          ++busy_;
        }
      }
      if (i_terminated) {
        cv_.notify_all();
        return false;
      }
    }
  }

  /// Wakes all parked workers (stopping rule / external stop). Subsequent
  /// pushes are rejected so producers keep their branches.
  void broadcast_stop() GENTRIUS_EXCLUDES(mutex_) {
    {
      support::MutexLock lock(mutex_);
      done_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  void wake_all() override { broadcast_stop(); }

  core::SchedulerStats stats() const GENTRIUS_EXCLUDES(mutex_) {
    core::SchedulerStats s;
    s.tasks_stolen = stolen_.load(std::memory_order_relaxed);
    s.steal_attempts = probes_.load(std::memory_order_relaxed);
    s.failed_steal_probes = failed_probes_.load(std::memory_order_relaxed);
    for (const StealDeque& d : deques_) {
      s.queue_full_rejections += d.rejections();
      s.max_queue_depth =
          std::max<std::uint64_t>(s.max_queue_depth, d.max_depth());
    }
    return s;
  }

  /// Diagnostics (tests): total tasks currently queued across all deques.
  std::size_t pending() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    return pending_;
  }

 private:
  // Ordering matters: pending_ is incremented *before* the task becomes
  // visible in the deque, so a thief's note_taken decrement can never
  // precede the matching increment (pending_ would underflow). The
  // try_reserve precheck is what makes increment-first safe — the push
  // after a successful reservation cannot fail, because only the owner
  // adds tasks to its own deque.
  bool push_local(std::size_t tid, core::Task& task)
      GENTRIUS_EXCLUDES(mutex_) {
    if (done_.load(std::memory_order_acquire)) return false;
    if (!deques_[tid].try_reserve()) return false;
    {
      support::MutexLock lock(mutex_);
      ++pending_;
    }
    const bool pushed = deques_[tid].owner_push(task);
    GENTRIUS_DCHECK(pushed);
    static_cast<void>(pushed);
    cv_.notify_one();
    return true;
  }

  bool try_steal(std::size_t tid, core::Task& out) GENTRIUS_EXCLUDES(mutex_) {
    if (workers_ < 2) return false;
    const std::size_t start = handles_[tid].selector_.begin_sweep();
    for (std::size_t k = 0; k < workers_; ++k) {
      const std::size_t victim = (start + k) % workers_;
      if (victim == tid) continue;
      probes_.fetch_add(1, std::memory_order_relaxed);
      if (deques_[victim].steal(out)) {
        stolen_.fetch_add(1, std::memory_order_relaxed);
        note_taken();
        return true;
      }
      failed_probes_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  void note_taken() GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    GENTRIUS_DCHECK_GT(pending_, 0u);
    --pending_;
  }

  const std::size_t workers_;
  std::deque<StealDeque> deques_;  // StealDeque owns a Mutex: not relocatable
  std::vector<Handle> handles_;

  mutable support::Mutex mutex_;
  support::CondVar cv_;
  std::size_t pending_ GENTRIUS_GUARDED_BY(mutex_) = 0;  // queued tasks, all deques
  std::size_t busy_ GENTRIUS_GUARDED_BY(mutex_);
  std::atomic<bool> done_{false};

  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> failed_probes_{0};
};

}  // namespace gentrius::parallel
