// Distributed work-stealing scheduler: per-worker lock-free bounded deques.
//
// The paper's §III design funnels every hand-off through one mutex/condvar
// TaskQueue whose capacity rule (N_t+1, then N_t/2) deliberately starves
// the pool at high thread counts. This header implements the alternative
// scheduler (Options::Scheduler::kDistributedDeques): each worker owns a
// bounded Chase-Lev-style ring deque, pushes and pops its own tasks LIFO
// (newest = deepest subtree, warm state) with no lock and no CAS on the
// common path, and — when both its assignment and its deque are empty —
// steals FIFO (oldest = shallowest = biggest subtree) from victims visited
// in a deterministically seeded random cyclic order. Thieves synchronize
// with each other and with the owner's last-element pop through a single
// CAS on the deque's top index; the owner's push/pop touch no shared lock
// at all.
//
// Tasks are handed off as node pointers, not values: the ring stores
// pointers into a fixed node pool, so a steal moves one pointer plus an
// O(1) vector swap — the same hand-off cost as the old locked design's
// swap_into, without the mutex. Nodes consumed by either side return to a
// Treiber free stack; only the owner pops it (so the classic ABA window
// needs no generation tags), while owner and thieves both push. The pool
// holds capacity + max_thieves + 1 nodes, which makes the free stack
// provably non-empty whenever the ring is non-full (each thief holds at
// most one node mid-hand-off), so a successful try_reserve still
// guarantees the next owner_push cannot fail.
//
// Termination detection is a busy count: a worker whose steal sweep fails
// registers as idle under the scheduler's signal mutex; the last worker to
// go idle with zero pending tasks declares the run finished and wakes
// everyone. The pending-task count itself is a lock-free atomic,
// incremented before a task becomes stealable; producers only touch the
// signal mutex when a sleeper is actually parked (Dekker-style pairing of
// the pending increment with the sleeper count, both seq_cst, closes the
// lost-wakeup race).
//
// Decomposition semantics are identical to the central queue: an offered
// task carries half of a frame's admissible branches plus the replay path,
// the producer keeps the other half, and every branch is explored (and
// counted) exactly once by whoever ends up holding it — so tree/state/
// dead-end totals and the stand set match the serial run whenever the
// stopping rules stay quiet. The virtual-time simulator re-implements this
// exact decomposition deterministically (src/vthread/virtual_pool.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "gentrius/options.hpp"
#include "support/invariant.hpp"
#include "support/rng.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::parallel {

/// Per-worker ring capacity. Unlike the central queue's N_t-coupled rule,
/// capacity is per worker, so total task headroom scales with the pool: at
/// 48 threads the central queue holds 24 tasks for 47 potential thieves,
/// while 48 deques hold up to 384. Eight slots per worker keeps the
/// owner-side pop-back churn (rewind + replay of self-offered tasks that
/// nobody stole) negligible while leaving thieves plenty to take.
inline std::size_t steal_deque_capacity_for(std::size_t /*n_threads*/) {
  return 8;
}

/// Deterministically seeded victim-selection stream: one per worker, used
/// only by its owner. Each steal sweep starts at a pseudo-random peer and
/// scans cyclically, so thieves spread over victims instead of convoying on
/// worker 0. The identical generator drives the virtual-time simulator's
/// victim order, making the simulated schedule a pure function of
/// Options::steal_seed. A selector always belongs to a concrete pool, so
/// the zero-worker state is unrepresentable: there is no default
/// constructor, and construction checks n_workers >= 1.
class VictimSelector {
 public:
  VictimSelector(std::uint64_t seed, std::size_t tid, std::size_t n_workers)
      : rng_(seed ^ (0x9e3779b97f4a7c15ULL * (tid + 1))),
        n_workers_(n_workers) {
    GENTRIUS_CHECK(n_workers >= 1);
  }

  /// First victim candidate of a sweep (may equal the caller's own id —
  /// sweeps skip self). Cyclic scan order: begin, begin+1, ... mod n.
  std::size_t begin_sweep() { return rng_.below(n_workers_); }

 private:
  support::Rng rng_;
  std::size_t n_workers_;
};

/// One worker's bounded lock-free task ring (Chase-Lev-style). The owner
/// pushes and pops at the bottom (LIFO) without locks or, except for the
/// last element, CAS; thieves take from the top (FIFO) behind a CAS. All
/// hand-offs swap the task's vectors with node storage, so the contended
/// window is O(1) pointer exchanges exactly like the central TaskQueue's
/// critical sections.
///
/// `max_thieves` bounds how many threads may call steal() concurrently
/// (the scheduler passes its worker count); it sizes the node pool so the
/// free stack can never be empty while the ring has room.
//
// Declared happens-before protocol for the top_/bottom_/ring_ triple,
// checked by gentrius-analyze (atomic-hb): each row is a function's exact
// sequence of atomic ops on the covered variables plus fences, in source
// order; cas lists success,failure orders. Any function touching these
// variables must appear here, so the Chase-Lev choreography cannot drift
// without this table (and its reasoning) being edited alongside.
//
// hb-table: StealDeque
//   try_reserve: bottom_.load relaxed ; top_.load acquire
//   owner_push: bottom_.load relaxed ; top_.load acquire ;
//     ring_.store relaxed ; bottom_.store release
//   owner_pop: bottom_.load relaxed ; bottom_.store relaxed ;
//     fence seq_cst ; top_.load relaxed ; bottom_.store relaxed ;
//     ring_.load relaxed ; top_.cas seq_cst,relaxed ;
//     bottom_.store relaxed ; bottom_.store relaxed
//   steal: top_.load acquire ; fence seq_cst ; bottom_.load acquire ;
//     ring_.load relaxed ; top_.cas seq_cst,relaxed
//   size: bottom_.load acquire ; top_.load acquire
// hb-end
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity, std::size_t max_thieves = 16)
      : capacity_(static_cast<std::int64_t>(capacity)),
        nodes_(capacity + max_thieves + 1),
        ring_(capacity) {
    GENTRIUS_CHECK(capacity >= 1);
    for (auto& n : nodes_) push_free(&n);
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner-side capacity reservation: false (counting the rejection) when
  /// the ring is full. Sound as a push precondition despite being a
  /// separate load: the owner is the only thread that adds tasks, and
  /// thieves can only drain, so a non-full observation cannot be
  /// invalidated before the owner's next push.
  bool try_reserve() {
    // order: owner is the sole bottom_ writer; it re-reads its own value
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // order: pairs with thief top_ CAS; a stale top_ only under-counts
    // free slots, which is safe for a reservation check
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= capacity_) {
      // order: monotonic diagnostic counter, read after workers join
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Owner side: false when full (the caller keeps its branches). Counts
  /// capacity rejections and tracks the high-water depth. No lock, no CAS.
  bool owner_push(core::Task& task) {
    // order: owner is the sole bottom_ writer; it re-reads its own value
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // order: pairs with thief top_ CAS so the fullness check never
    // over-counts occupancy (a stale top_ only rejects early)
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= capacity_) {
      // order: monotonic diagnostic counter, read after workers join
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Node* n = acquire_node();
    swap_into(n->task, task);
    // order: the slot write is published by the bottom_ release below
    ring_[static_cast<std::size_t>(b % capacity_)].store(
        n, std::memory_order_relaxed);
    // order: publish — a thief that observes bottom > top acquires the
    // node pointer and its payload through this release store
    bottom_.store(b + 1, std::memory_order_release);
    const std::size_t depth = static_cast<std::size_t>(b + 1 - t);
    // order: owner-written high-water stat; stats() reads are racy by
    // design and only consumed after the pool joins
    if (depth > max_depth_.load(std::memory_order_relaxed))
      max_depth_.store(depth, std::memory_order_relaxed);
    return true;
  }

  /// Owner side: newest task (deepest subtree), or false when empty. Only
  /// the race for the final element pays a CAS against thieves.
  bool owner_pop(core::Task& out) {
    // order: owner-local read-modify of its own index; the seq_cst fence
    // below orders the decrement against the top_ read
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // order: the decrement itself is made visible by the fence below
    bottom_.store(b, std::memory_order_relaxed);
    // order: the bottom_ store above must be globally visible before the
    // top_ read below (the Chase-Lev owner/thief symmetry point); pairs
    // with the fence in steal()
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: fenced; a thief's CAS after this read is caught by the t == b
    // arbitration below
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty: restore bottom
      // order: owner-only restore; next owner_push republishes with release
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    // order: owner reads a slot it published itself (program order)
    Node* n =
        ring_[static_cast<std::size_t>(b % capacity_)].load(
            std::memory_order_relaxed);
    if (t == b) {
      // order: last element — seq_cst CAS arbitrates against thieves on
      // top_; relaxed failure is fine, the value is discarded on loss
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // order: owner-only restore after losing the race (thief won)
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      // order: owner-only restore; deque is now empty
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    swap_into(out, n->task);
    push_free(n);
    return true;
  }

  /// Thief side: oldest task (shallowest, biggest subtree), or false when
  /// empty or when another thief (or the owner's last-element pop) won the
  /// CAS race. A false from a race is indistinguishable from empty to the
  /// caller — the scheduler treats both as a failed probe and re-checks
  /// pending work before parking, so no task is ever lost.
  bool steal(core::Task& out) {
    // order: acquire top_ so the ring read below sees at least the slots
    // published up to this top value
    std::int64_t t = top_.load(std::memory_order_acquire);
    // order: orders the top_ read before the bottom_ read; pairs with the
    // fence in owner_pop so thief and owner agree on the last element
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: pairs with owner_push's bottom_ release — observing b > t
    // here makes the slot and payload writes visible
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    // order: the node pointer was published by the bottom_ release that
    // made b > t observable; read *before* the CAS — once top moves the
    // owner may recycle the slot, and a failed CAS discards the read
    Node* n =
        ring_[static_cast<std::size_t>(t % capacity_)].load(
            std::memory_order_relaxed);
    // order: seq_cst CAS totally orders competing thieves and the owner's
    // last-element pop; relaxed failure value is discarded
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return false;
    swap_into(out, n->task);
    push_free(n);
    return true;
  }

  std::size_t size() const {
    // order: racy diagnostic snapshot; acquire keeps the pair no staler
    // than the last publication but the result is advisory anyway
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    // order: same advisory snapshot as the bottom_ read above
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }
  std::size_t capacity() const { return static_cast<std::size_t>(capacity_); }
  std::uint64_t rejections() const {
    // order: monotonic diagnostic counter, read after workers join
    return rejections_.load(std::memory_order_relaxed);
  }
  std::size_t max_depth() const {
    // order: owner-written stat, read after workers join
    return max_depth_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    core::Task task;
    std::atomic<Node*> next_free{nullptr};
  };

  static void swap_into(core::Task& dst, core::Task& src) {
    std::swap(dst.path, src.path);
    dst.next_taxon = src.next_taxon;
    dst.predicted_states = src.predicted_states;
    std::swap(dst.branches, src.branches);
  }

  /// Multi-producer free-stack push (owner and thieves both return nodes).
  void push_free(Node* n) {
    // order: speculative head read; the CAS below validates it
    Node* head = free_head_.load(std::memory_order_relaxed);
    do {
      // order: the link write is published by the CAS release below
      n->next_free.store(head, std::memory_order_relaxed);
      // order: release publishes the node's link (and drained payload) to
      // the owner's acquire pop; failure just reloads the head
    } while (!free_head_.compare_exchange_weak(
        head, n, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Single-consumer free-stack pop: only the owner calls this, so the
  /// popped head cannot be concurrently removed by anyone else and the
  /// classic Treiber ABA window does not arise. The pool is sized so a
  /// node is always available when the ring is non-full; the wait loop
  /// only covers the instants where a thief holds a node between its CAS
  /// and its push_free, and that thief is guaranteed to return it.
  Node* acquire_node() {
    for (;;) {
      // order: pairs with push_free's CAS release so the head's link is
      // visible before it is dereferenced below
      Node* head = free_head_.load(std::memory_order_acquire);
      if (head == nullptr) continue;  // thief mid-hand-off: bounded wait
      // order: the link was made visible by the acquire load above
      Node* next = head->next_free.load(std::memory_order_relaxed);
      // order: acquire on success re-synchronizes with the latest pusher
      // (the head may have been re-pushed since the load); relaxed
      // failure value is discarded by the retry
      if (free_head_.compare_exchange_weak(head, next,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed))
        return head;
    }
  }

  const std::int64_t capacity_;
  std::vector<Node> nodes_;                 // fixed pool, never reallocates
  std::vector<std::atomic<Node*>> ring_;    // indexed modulo capacity_
  std::atomic<Node*> free_head_{nullptr};
  // top_/bottom_ never decrease except bottom_'s transient owner_pop dip;
  // size = bottom - top. 64-bit indices never wrap in practice.
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<std::size_t> max_depth_{0};   // owner-written, racily read
  std::atomic<std::uint64_t> rejections_{0};
};

/// The full distributed scheduler: N_t deques, per-worker victim streams,
/// busy-count termination, and a signal mutex/condvar for parking idle
/// workers. Workers interact through per-worker handles: the handle is the
/// enumerator's TaskSink (offers land in the worker's own deque) and the
/// pool's blocking acquire source. Task hand-off itself is lock-free; the
/// signal mutex is touched only to park, to unpark a parked worker, and to
/// arbitrate termination.
class DequeScheduler final : public core::StopWaker {
 public:
  DequeScheduler(std::size_t workers, std::uint64_t steal_seed)
      : workers_(workers), busy_(workers) {
    handles_.reserve(workers);
    for (std::size_t tid = 0; tid < workers; ++tid) {
      deques_.emplace_back(steal_deque_capacity_for(workers), workers);
      handles_.push_back(
          Handle{this, tid, VictimSelector(steal_seed, tid, workers)});
    }
  }

  /// Per-worker TaskSink: offers go to the worker's own deque. Owned by the
  /// scheduler; each worker uses exactly its own handle.
  class Handle final : public core::TaskSink {
   public:
    Handle(DequeScheduler* sched, std::size_t tid, VictimSelector selector)
        : sched_(sched), tid_(tid), selector_(std::move(selector)) {}

    bool try_push(core::Task& task) override {
      return sched_->push_local(tid_, task);
    }

    /// Adaptive-policy starvation signal: the owner's own deque depth (the
    /// only ring this producer feeds). StealDeque::size() is a lock-free
    /// advisory snapshot, exactly what the policy needs.
    std::size_t backlog() const override {
      return sched_->deques_[tid_].size();
    }

    /// Own ring size: at backlog() >= this, push_local would reject.
    std::size_t backlog_limit() const override {
      return sched_->deques_[tid_].capacity();
    }

    // handoff_penalty() keeps the TaskSink default of 1: deque hand-off has
    // no globally serialized section, so fine granularity stays profitable.

   private:
    friend class DequeScheduler;
    DequeScheduler* sched_;
    std::size_t tid_;
    VictimSelector selector_;  // touched only by the owning worker thread
  };

  core::TaskSink* sink_for(std::size_t tid) {
    GENTRIUS_DCHECK_LT(tid, workers_);
    return &handles_[tid];
  }

  /// Blocking acquire for worker `tid`: own deque LIFO first, then a steal
  /// sweep over the other deques, then park until a push or termination.
  /// Returns false when the pool terminated (all workers idle, no pending
  /// tasks) or a stopping rule fired; `out` is untouched then.
  bool acquire(std::size_t tid, const core::CounterSink& sink, core::Task& out)
      GENTRIUS_EXCLUDES(mutex_) {
    GENTRIUS_DCHECK_LT(tid, workers_);
    for (;;) {
      // order: pairs with the done_ release in the terminating worker /
      // broadcast_stop; seeing true implies termination state is visible
      if (done_.load(std::memory_order_acquire) || sink.stop_requested())
        return false;
      if (deques_[tid].owner_pop(out)) {
        note_taken();
        return true;
      }
      if (try_steal(tid, out)) return true;
      // Nothing anywhere: transition to idle under the signal mutex. The
      // pending_ re-check under the lock closes the race with a push that
      // landed between the failed sweep and the lock acquisition (a steal
      // CAS lost to a racing thief also lands here; the loser re-sweeps or
      // parks, and the pending count keeps termination exact).
      bool i_terminated = false;
      {
        support::MutexLock lock(mutex_);
        if (pending_.load(std::memory_order_seq_cst) > 0)
          continue;  // late push: stay busy, sweep again
        GENTRIUS_DCHECK_GT(busy_, 0u);
        if (--busy_ == 0) {
          // order: release pairs with the done_ acquire loads; readers of
          // done_ == true see the final termination state
          done_.store(true, std::memory_order_release);
          i_terminated = true;
        } else {
          // Dekker pairing with push_local: the sleeper count is raised
          // *before* re-reading pending_ (both seq_cst), the producer
          // raises pending_ *before* reading the sleeper count — at least
          // one side must see the other, so no push can slip between this
          // predicate check and the wait.
          sleepers_.fetch_add(1, std::memory_order_seq_cst);
          // order: done_ acquire pairs with its release sites; wake-up
          // reason must be visible before acting on it
          while (!done_.load(std::memory_order_acquire) &&
                 !sink.stop_requested() &&
                 pending_.load(std::memory_order_seq_cst) == 0) {
            cv_.wait(mutex_);
          }
          sleepers_.fetch_sub(1, std::memory_order_seq_cst);
          // order: same pairing as the wait predicate above
          if (done_.load(std::memory_order_acquire) || sink.stop_requested())
            return false;  // busy_ stays decremented: this worker is leaving
          ++busy_;
        }
      }
      if (i_terminated) {
        cv_.notify_all();
        return false;
      }
    }
  }

  /// Wakes all parked workers (stopping rule / external stop). Subsequent
  /// pushes are rejected so producers keep their branches.
  void broadcast_stop() GENTRIUS_EXCLUDES(mutex_) {
    {
      support::MutexLock lock(mutex_);
      // order: release pairs with the done_ acquire loads in acquire()
      // and push_local()
      done_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  void wake_all() override { broadcast_stop(); }

  core::SchedulerStats stats() const {
    core::SchedulerStats s;
    // order: monotonic diagnostic counters, read after the pool joins
    s.tasks_stolen = stolen_.load(std::memory_order_relaxed);
    // order: same join-ordered diagnostic read as above
    s.steal_attempts = probes_.load(std::memory_order_relaxed);
    // order: same join-ordered diagnostic read as above
    s.failed_steal_probes = failed_probes_.load(std::memory_order_relaxed);
    for (const StealDeque& d : deques_) {
      s.queue_full_rejections += d.rejections();
      s.max_queue_depth =
          std::max<std::uint64_t>(s.max_queue_depth, d.max_depth());
    }
    return s;
  }

  /// Diagnostics (tests): total tasks currently queued across all deques.
  std::size_t pending() const {
    return pending_.load(std::memory_order_seq_cst);
  }

 private:
  // Ordering matters: pending_ is incremented *before* the task becomes
  // visible in the deque, so a thief's note_taken decrement can never
  // precede the matching increment (pending_ would underflow). The
  // try_reserve precheck is what makes increment-first safe — the push
  // after a successful reservation cannot fail, because only the owner
  // adds tasks to its own deque (and the node pool is sized so a free
  // node is always available when the ring has room).
  bool push_local(std::size_t tid, core::Task& task) {
    // order: pairs with the done_ release sites; a post-stop push must
    // observe the rejection state
    if (done_.load(std::memory_order_acquire)) return false;
    if (!deques_[tid].try_reserve()) return false;
    pending_.fetch_add(1, std::memory_order_seq_cst);
    const bool pushed = deques_[tid].owner_push(task);
    GENTRIUS_DCHECK(pushed);
    static_cast<void>(pushed);
    // Wake a parked worker only when one exists — the common case (all
    // workers busy) never touches the signal mutex. See the Dekker note
    // in acquire() for why this cannot miss a sleeper.
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      { support::MutexLock lock(mutex_); }
      cv_.notify_one();
    }
    return true;
  }

  bool try_steal(std::size_t tid, core::Task& out) {
    if (workers_ < 2) return false;
    const std::size_t start = handles_[tid].selector_.begin_sweep();
    for (std::size_t k = 0; k < workers_; ++k) {
      const std::size_t victim = (start + k) % workers_;
      if (victim == tid) continue;
      // order: monotonic diagnostic counter, read after the pool joins
      probes_.fetch_add(1, std::memory_order_relaxed);
      if (deques_[victim].steal(out)) {
        // order: monotonic diagnostic counter, read after the pool joins
        stolen_.fetch_add(1, std::memory_order_relaxed);
        note_taken();
        return true;
      }
      // order: monotonic diagnostic counter, read after the pool joins
      failed_probes_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  void note_taken() {
    const std::size_t before =
        pending_.fetch_sub(1, std::memory_order_seq_cst);
    GENTRIUS_DCHECK_GT(before, 0u);
    static_cast<void>(before);
  }

  const std::size_t workers_;
  std::deque<StealDeque> deques_;  // StealDeque is pinned: not relocatable
  std::vector<Handle> handles_;

  // Parking + termination arbitration only.
  mutable support::Mutex mutex_{support::Rank::kSchedulerSignal};
  support::CondVar cv_;
  std::atomic<std::size_t> pending_{0};   // queued tasks across all deques
  std::atomic<std::size_t> sleepers_{0};  // workers parked on cv_
  std::size_t busy_ GENTRIUS_GUARDED_BY(mutex_);
  std::atomic<bool> done_{false};

  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> failed_probes_{0};
};

}  // namespace gentrius::parallel
