// Bounded work-stealing task queue (paper §III-A/B).
//
// Working threads push tasks; idle threads block on a condition variable
// until a task arrives or the run terminates. The capacity follows the
// paper's rule: N_t + 1 tasks for N_t < 8 threads, N_t / 2 otherwise —
// enough to keep the pool fed without flooding it with tiny subproblems.
//
// Storage is a fixed ring of `capacity` Task slots allocated at
// construction. The producer stages its pooled task outside the lock and a
// push swaps it with the tail slot; a pop swaps the head slot with the
// consumer's pooled task. Both critical sections are O(1) pointer
// exchanges: every hand-off is allocation-free on both sides, and no node
// allocation or element copying ever happens inside the critical section.
//
// Termination detection: the queue tracks how many workers are busy. The
// last worker to go idle with an empty queue declares the run finished and
// wakes everyone. A stopping rule (CounterSink) also releases all waiters.
//
// All shared state is guarded by mutex_ and annotated for Clang's
// -Wthread-safety analysis (see support/thread_annotations.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "support/invariant.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::parallel {

/// Capacity rule from the paper (empirically tuned by the authors).
inline std::size_t queue_capacity_for(std::size_t n_threads) {
  return n_threads < 8 ? n_threads + 1 : n_threads / 2;
}

class TaskQueue final : public core::TaskSink, public core::StopWaker {
 public:
  /// All `workers` participants start in the busy state.
  TaskQueue(std::size_t capacity, std::size_t workers)
      : capacity_(capacity), workers_(workers), slots_(capacity),
        busy_(workers) {}

  /// Producer side (called from inside Enumerator::step). Non-blocking:
  /// a full queue rejects the task — left untouched, the producer keeps
  /// the branches — and a terminated queue (done_) rejects every task. On
  /// success the task's vectors are swapped into the tail slot; whatever
  /// capacity the slot accumulated travels back to the producer's pool.
  bool try_push(core::Task& task) override GENTRIUS_EXCLUDES(mutex_) {
    {
      support::MutexLock lock(mutex_);
      GENTRIUS_DCHECK_LE(size_, capacity_);
      if (done_) return false;
      if (size_ >= capacity_) {
        ++rejections_;
        return false;
      }
      core::Task& slot = slots_[(head_ + size_) % capacity_];
      std::swap(slot.path, task.path);
      slot.next_taxon = task.next_taxon;
      slot.predicted_states = task.predicted_states;
      std::swap(slot.branches, task.branches);
      ++size_;
      // order: advisory mirror of size_ for the lock-free backlog() probe
      approx_size_.store(size_, std::memory_order_relaxed);
      if (size_ > max_depth_) max_depth_ = size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Consumer side: transitions the caller from busy to idle, blocks until
  /// work arrives, and swaps the oldest task into `out` (caller becomes
  /// busy again). Returns false when the pool terminated — all workers idle
  /// with an empty queue — or a stopping rule fired; `out` is untouched
  /// then.
  bool pop(const core::CounterSink& sink, core::Task& out)
      GENTRIUS_EXCLUDES(mutex_) {
    bool got = false;
    bool i_terminated = false;
    {
      support::MutexLock lock(mutex_);
      GENTRIUS_DCHECK_GT(busy_, 0u);
      if (--busy_ == 0 && size_ == 0) {
        done_ = true;
        i_terminated = true;
      } else {
        for (;;) {
          if (done_ || sink.stop_requested()) break;
          if (size_ > 0) {
            // Swap instead of move: the consumer's old vectors end up in
            // the slot and get reused by a later push.
            std::swap(out.path, slots_[head_].path);
            out.next_taxon = slots_[head_].next_taxon;
            out.predicted_states = slots_[head_].predicted_states;
            std::swap(out.branches, slots_[head_].branches);
            head_ = (head_ + 1) % capacity_;
            --size_;
            // order: advisory mirror of size_ for backlog(); see try_push
            approx_size_.store(size_, std::memory_order_relaxed);
            ++busy_;
            ++pops_;
            got = true;
            break;
          }
          cv_.wait(mutex_);
        }
      }
    }
    if (i_terminated) cv_.notify_all();
    return got;
  }

  /// Wakes all waiters (after a stopping rule fired).
  void broadcast_stop() GENTRIUS_EXCLUDES(mutex_) {
    {
      support::MutexLock lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// core::StopWaker: the sink calls this from request_stop so consumers
  /// parked in pop()'s cv_.wait unblock immediately.
  void wake_all() override { broadcast_stop(); }

  /// Diagnostics (tests): current queue occupancy.
  std::size_t size() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    return size_;
  }

  /// Adaptive-policy starvation signal (core::TaskSink): the queue's
  /// occupancy from a lock-free mirror. Suppressed offers read this on
  /// every candidate frame, so it must never touch the hand-off mutex; a
  /// slightly stale value only shifts task granularity, never correctness.
  std::size_t backlog() const override {
    // order: advisory snapshot; staleness is tolerated by the policy
    return approx_size_.load(std::memory_order_relaxed);
  }

  /// Ring size: at backlog() >= this, try_push would reject.
  std::size_t backlog_limit() const override { return capacity_; }

  /// Every hand-off serializes on the one shared mutex, and its cache line
  /// is bounced by all workers — one unit of time spent inside that serial
  /// section displaces N_t units of potential fleet progress, so the
  /// adaptive cutoff's backpressure term scales with the worker count.
  double handoff_penalty() const override {
    return static_cast<double>(workers_);
  }

  /// Scheduler observability. Every hand-off crosses the shared queue, so
  /// each pop counts as both an attempt and a transfer; the queue has no
  /// notion of a failed probe (consumers block instead of probing).
  core::SchedulerStats stats() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    core::SchedulerStats s;
    s.tasks_stolen = pops_;
    s.steal_attempts = pops_;
    s.queue_full_rejections = rejections_;
    s.max_queue_depth = max_depth_;
    return s;
  }

 private:
  const std::size_t capacity_;
  const std::size_t workers_;
  mutable support::Mutex mutex_{support::Rank::kTaskQueue};
  support::CondVar cv_;
  std::vector<core::Task> slots_ GENTRIUS_GUARDED_BY(mutex_);  // fixed ring
  std::size_t head_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::size_t size_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> approx_size_{0};  // lock-free backlog() mirror
  std::size_t busy_ GENTRIUS_GUARDED_BY(mutex_);
  bool done_ GENTRIUS_GUARDED_BY(mutex_) = false;
  std::uint64_t pops_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejections_ GENTRIUS_GUARDED_BY(mutex_) = 0;
  std::size_t max_depth_ GENTRIUS_GUARDED_BY(mutex_) = 0;
};

}  // namespace gentrius::parallel
