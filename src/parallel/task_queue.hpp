// Bounded work-stealing task queue (paper §III-A/B).
//
// Working threads push tasks; idle threads block on a condition variable
// until a task arrives or the run terminates. The capacity follows the
// paper's rule: N_t + 1 tasks for N_t < 8 threads, N_t / 2 otherwise —
// enough to keep the pool fed without flooding it with tiny subproblems.
//
// Termination detection: the queue tracks how many workers are busy. The
// last worker to go idle with an empty queue declares the run finished and
// wakes everyone. A stopping rule (CounterSink) also releases all waiters.
//
// All shared state is guarded by mutex_ and annotated for Clang's
// -Wthread-safety analysis (see support/thread_annotations.hpp).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "support/invariant.hpp"
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::parallel {

/// Capacity rule from the paper (empirically tuned by the authors).
inline std::size_t queue_capacity_for(std::size_t n_threads) {
  return n_threads < 8 ? n_threads + 1 : n_threads / 2;
}

class TaskQueue final : public core::TaskSink {
 public:
  /// All `workers` participants start in the busy state.
  TaskQueue(std::size_t capacity, std::size_t workers)
      : capacity_(capacity), busy_(workers) {}

  /// Producer side (called from inside Enumerator::step). Non-blocking:
  /// a full queue rejects the task and the producer keeps the branches;
  /// a terminated queue (done_) rejects every task.
  bool try_push(core::Task&& task) override GENTRIUS_EXCLUDES(mutex_) {
    {
      support::MutexLock lock(mutex_);
      GENTRIUS_DCHECK_LE(tasks_.size(), capacity_);
      if (done_ || tasks_.size() >= capacity_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  /// Consumer side: transitions the caller from busy to idle, blocks until
  /// work arrives, and hands out a task (caller becomes busy again).
  /// Returns nullopt when the pool terminated — all workers idle with an
  /// empty queue — or a stopping rule fired.
  std::optional<core::Task> pop(const core::CounterSink& sink)
      GENTRIUS_EXCLUDES(mutex_) {
    std::optional<core::Task> out;
    bool i_terminated = false;
    {
      support::MutexLock lock(mutex_);
      GENTRIUS_DCHECK_GT(busy_, 0u);
      if (--busy_ == 0 && tasks_.empty()) {
        done_ = true;
        i_terminated = true;
      } else {
        for (;;) {
          if (done_ || sink.stop_requested()) break;
          if (!tasks_.empty()) {
            out = std::move(tasks_.front());
            tasks_.pop_front();
            ++busy_;
            break;
          }
          cv_.wait(mutex_);
        }
      }
    }
    if (i_terminated) cv_.notify_all();
    return out;
  }

  /// Wakes all waiters (after a stopping rule fired).
  void broadcast_stop() GENTRIUS_EXCLUDES(mutex_) {
    {
      support::MutexLock lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Diagnostics (tests): current queue occupancy.
  std::size_t size() const GENTRIUS_EXCLUDES(mutex_) {
    support::MutexLock lock(mutex_);
    return tasks_.size();
  }

 private:
  const std::size_t capacity_;
  mutable support::Mutex mutex_;
  support::CondVar cv_;
  std::deque<core::Task> tasks_ GENTRIUS_GUARDED_BY(mutex_);
  std::size_t busy_ GENTRIUS_GUARDED_BY(mutex_);
  bool done_ GENTRIUS_GUARDED_BY(mutex_) = false;
};

}  // namespace gentrius::parallel
