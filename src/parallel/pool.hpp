// Parallel Gentrius: thread pool with work stealing (paper §III).
#pragma once

#include <cstddef>

#include "gentrius/options.hpp"
#include "gentrius/problem.hpp"
#include "phylo/tree.hpp"

namespace gentrius::parallel {

/// How worker threads are launched. The paper creates threads with OpenMP
/// and synchronizes with std::condition_variable/std::mutex; kOpenMP mirrors
/// that combination (available when compiled with OpenMP support), kStdThread
/// uses std::jthread directly. Identical results either way.
enum class LaunchMode { kStdThread, kOpenMP };

/// Runs parallel Gentrius with n_threads workers.
///
/// Every worker owns a private Terrace (agile tree + mappings), replays the
/// deterministic forced prefix to the initial split state I0, takes its
/// slice of the I0 branch set, and then participates in work stealing via a
/// bounded task queue. Counters are published in batches (Options); the
/// stopping rules may therefore overshoot slightly, exactly as the paper
/// describes. With stopping rules disabled the result (tree/state/dead-end
/// counts, and the collected stand) is identical to run_serial.
core::Result run_parallel(const core::Problem& problem,
                          const core::Options& options, std::size_t n_threads,
                          LaunchMode mode = LaunchMode::kStdThread);

/// Ablation baseline: initial split only, no work stealing (tasks are never
/// offered). Demonstrates the load imbalance the thread pool removes.
core::Result run_static_split(const core::Problem& problem,
                              const core::Options& options,
                              std::size_t n_threads);

/// True when the OpenMP launch mode is available in this build.
bool openmp_available() noexcept;

}  // namespace gentrius::parallel
