#include "parallel/pool.hpp"

#include <thread>
#include <vector>

#include "gentrius/counters.hpp"
#include "gentrius/enumerator.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/task_queue.hpp"
#include "support/error.hpp"
#include "support/invariant.hpp"
#include "support/stopwatch.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gentrius::parallel {

using core::CounterSink;
using core::Enumerator;
using core::Options;
using core::Problem;
using core::Result;
using core::StopReason;

namespace {

struct WorkerOutput {
  std::vector<std::string> trees;
  std::uint64_t tasks_offered = 0;
  std::uint64_t tasks_executed = 0;
  core::SchedulerStats offer;  // enumerator-side offer-policy counters
  core::SelectionStats selection;
  Enumerator::Prefix::Outcome prefix_outcome =
      Enumerator::Prefix::Outcome::kEmpty;
  std::size_t prefix_length = 0;
  std::size_t split_branches = 0;
};

/// Uniform worker-side view of either scheduler. The worker loop only
/// needs four operations: where its offers go, how it blocks for more
/// work, how to release everyone after a stop, and the end-of-run stats.
class SchedulerDriver {
 public:
  virtual ~SchedulerDriver() = default;
  virtual core::TaskSink* sink_for(std::size_t tid) = 0;
  virtual bool acquire(std::size_t tid, const CounterSink& sink,
                       core::Task& out) = 0;
  virtual void broadcast_stop() = 0;
  virtual core::StopWaker* waker() = 0;
  virtual core::SchedulerStats stats() const = 0;
};

/// Paper §III scheduler: the shared bounded TaskQueue.
class CentralDriver final : public SchedulerDriver {
 public:
  explicit CentralDriver(std::size_t n_threads)
      : queue_(queue_capacity_for(n_threads), n_threads) {}

  core::TaskSink* sink_for(std::size_t) override { return &queue_; }
  bool acquire(std::size_t, const CounterSink& sink,
               core::Task& out) override {
    return queue_.pop(sink, out);
  }
  void broadcast_stop() override { queue_.broadcast_stop(); }
  core::StopWaker* waker() override { return &queue_; }
  core::SchedulerStats stats() const override { return queue_.stats(); }

 private:
  TaskQueue queue_;
};

/// Distributed scheduler: per-worker deques with randomized stealing.
class DequeDriver final : public SchedulerDriver {
 public:
  DequeDriver(std::size_t n_threads, std::uint64_t steal_seed)
      : sched_(n_threads, steal_seed) {}

  core::TaskSink* sink_for(std::size_t tid) override {
    return sched_.sink_for(tid);
  }
  bool acquire(std::size_t tid, const CounterSink& sink,
               core::Task& out) override {
    return sched_.acquire(tid, sink, out);
  }
  void broadcast_stop() override { sched_.broadcast_stop(); }
  core::StopWaker* waker() override { return &sched_; }
  core::SchedulerStats stats() const override { return sched_.stats(); }

 private:
  DequeScheduler sched_;
};

/// Slice [begin, begin+len) of the I0 branch set assigned to thread `tid`
/// ("as uniformly as possible", paper §III-A).
std::pair<std::size_t, std::size_t> slice_for(std::size_t tid,
                                              std::size_t n_threads,
                                              std::size_t total) {
  const std::size_t base = total / n_threads;
  const std::size_t extra = total % n_threads;
  const std::size_t begin = tid * base + std::min(tid, extra);
  const std::size_t len = base + (tid < extra ? 1 : 0);
  GENTRIUS_DCHECK_LE(begin + len, total);  // slices partition [0, total)
  return {begin, len};
}

/// Steps the enumerator until its current assignment is exhausted or a
/// stopping rule fires. Returns true when stopped.
bool drain(Enumerator& e) {
  for (;;) {
    switch (e.step()) {
      case Enumerator::Step::kWorked:
        continue;
      case Enumerator::Step::kExhausted:
        return false;
      case Enumerator::Step::kStopped:
        return true;
    }
  }
}

// Shared-state discipline (checked by Clang -Wthread-safety where locks are
// involved): the scheduler guards its own members internally (task_queue.hpp
// / steal_deque.hpp), `sink` is lock-free atomics (counters.hpp), and each
// worker writes only its own `out` slot — the pool joins every thread
// before reading them.
void worker_body(std::size_t tid, std::size_t n_threads,
                 const Problem& problem, const Options& options,
                 CounterSink& sink, SchedulerDriver* driver,
                 WorkerOutput& out) {
  GENTRIUS_DCHECK_LT(tid, n_threads);
  // Each thread builds its private Terrace and re-executes the deterministic
  // prefix (paper: "the first stages of execution are identical across all
  // threads"); only thread 0 counts those states.
  Enumerator e(problem, options, sink);
  if (driver != nullptr) e.set_task_sink(driver->sink_for(tid));

  const auto& prefix = e.run_prefix(/*count=*/tid == 0);
  out.prefix_outcome = prefix.outcome;
  out.prefix_length = prefix.length;
  out.split_branches = prefix.branches.size();

  bool stopped = false;
  if (prefix.outcome == Enumerator::Prefix::Outcome::kSplit) {
    const auto [begin, len] =
        slice_for(tid, n_threads, prefix.branches.size());
    if (len > 0) {
      std::vector<core::EdgeId> slice(
          prefix.branches.begin() + static_cast<std::ptrdiff_t>(begin),
          prefix.branches.begin() + static_cast<std::ptrdiff_t>(begin + len));
      e.begin_branches(prefix.split_taxon, std::move(slice));
      stopped = drain(e);
    }
  }

  if (driver != nullptr) {
    // Pooled steal target: acquire() swaps a queue/deque slot with this
    // task, so repeated steals recycle the same vector storage.
    core::Task task;
    while (!stopped) {
      if (!driver->acquire(tid, sink, task)) break;
      e.adopt_task(task);
      ++out.tasks_executed;
      stopped = drain(e);
      if (!stopped) e.rewind_to_split();
    }
    if (stopped) driver->broadcast_stop();
  }

  e.counters().flush_all();
  out.trees = std::move(e.collected_trees());
  out.tasks_offered = e.tasks_offered();
  out.offer = e.offer_stats();
  out.selection = e.terrace().selection_stats();
}

Result assemble(const CounterSink& sink, std::vector<WorkerOutput>& outputs,
                const SchedulerDriver* driver, double seconds) {
  Result result;
  result.stand_trees = sink.stand_trees();
  result.intermediate_states = sink.states();
  result.dead_ends = sink.dead_ends();
  result.reason = sink.reason();
  result.seconds = seconds;
  const WorkerOutput& first = outputs.front();
  result.prefix_length = first.prefix_length;
  result.initial_split_branches = first.split_branches;
  if (first.prefix_outcome == Enumerator::Prefix::Outcome::kEmpty)
    result.reason = StopReason::kEmptyStand;
  if (driver != nullptr) result.sched = driver->stats();
  for (auto& o : outputs) {
    result.tasks_executed += o.tasks_executed;
    result.tasks_offered += o.tasks_offered;
    result.selection.merge(o.selection);
    // Producer/thief-side offer-policy counters join the scheduler-side
    // stats: both pools and both simulators report them uniformly.
    result.sched.merge(o.offer);
    result.trees.insert(result.trees.end(),
                        std::make_move_iterator(o.trees.begin()),
                        std::make_move_iterator(o.trees.end()));
  }
  return result;
}

Result run_pool(const Problem& problem, const Options& options,
                std::size_t n_threads, LaunchMode mode, bool work_stealing) {
  core::validate_options(options, core::OptionsSurface::kSingleInstance);
  // Wall clock for Result::seconds (reported diagnostics, never a
  // scheduling input) and for stopping rule 3, real-time by definition.
  // lint:allow(wall-clock)
  support::Stopwatch clock;
  CounterSink sink(options.stop);
  std::vector<WorkerOutput> outputs(n_threads);

  CentralDriver central(n_threads);
  DequeDriver deques(n_threads, options.steal_seed);
  SchedulerDriver* driver = nullptr;
  if (work_stealing) {
    driver = options.scheduler == core::Scheduler::kDistributedDeques
                 ? static_cast<SchedulerDriver*>(&deques)
                 : static_cast<SchedulerDriver*>(&central);
    // Stop-wake hook: request_stop from any thread unparks blocked
    // consumers immediately instead of waiting for a busy worker to notice
    // the flag. Cleared before the driver goes out of scope.
    sink.set_stop_waker(driver->waker());
  }

  if (n_threads == 1) {
    // Degenerate pool: still exercises the worker path, minus stealing.
    worker_body(0, 1, problem, options, sink, driver, outputs[0]);
    sink.set_stop_waker(nullptr);
    return assemble(sink, outputs, driver, clock.seconds());
  }

#ifdef _OPENMP
  if (mode == LaunchMode::kOpenMP) {
    // Paper fidelity: OpenMP creates/destroys the threads while the
    // condition-variable synchronization stays with the C++ thread library.
#pragma omp parallel num_threads(static_cast<int>(n_threads))
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      worker_body(tid, n_threads, problem, options, sink, driver,
                  outputs[tid]);
    }
    sink.set_stop_waker(nullptr);
    return assemble(sink, outputs, driver, clock.seconds());
  }
#else
  (void)mode;
#endif

  {
    std::vector<std::jthread> threads;
    threads.reserve(n_threads);
    for (std::size_t tid = 0; tid < n_threads; ++tid) {
      threads.emplace_back([&, tid] {
        worker_body(tid, n_threads, problem, options, sink, driver,
                    outputs[tid]);
      });
    }
  }  // jthreads join here
  sink.set_stop_waker(nullptr);
  return assemble(sink, outputs, driver, clock.seconds());
}

}  // namespace

Result run_parallel(const Problem& problem, const Options& options,
                    std::size_t n_threads, LaunchMode mode) {
  return run_pool(problem, options, n_threads, mode, /*work_stealing=*/true);
}

Result run_static_split(const Problem& problem, const Options& options,
                        std::size_t n_threads) {
  return run_pool(problem, options, n_threads, LaunchMode::kStdThread,
                  /*work_stealing=*/false);
}

bool openmp_available() noexcept {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

}  // namespace gentrius::parallel
