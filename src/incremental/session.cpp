#include "incremental/session.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "decompose/shard_exec.hpp"
#include "gentrius/problem.hpp"
#include "gentrius/serial.hpp"
#include "pam/canonical.hpp"
#include "phylo/newick.hpp"
#include "support/error.hpp"

namespace gentrius::incremental {

namespace {

using core::Options;
using core::Result;
using core::ShardStats;
using core::StopReason;
using decompose::Component;
using support::InvalidInput;

constexpr auto kNoRank = static_cast<std::size_t>(-1);

/// taxon id -> canonical rank of the component instance (kNoRank outside).
std::vector<std::size_t> rank_of_taxon(
    const std::vector<phylo::TaxonId>& order) {
  phylo::TaxonId max_id = 0;
  for (const phylo::TaxonId t : order) max_id = std::max(max_id, t);
  std::vector<std::size_t> rank(max_id + 1, kNoRank);
  for (std::size_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
  return rank;
}

/// TaxonSet under which parsing rank-label Newick yields session taxon ids:
/// id i carries the rank label of order^-1(i) (ids outside the component
/// get unique pad labels so the dense id assignment lines up).
phylo::TaxonSet rank_parse_labels(const std::vector<phylo::TaxonId>& order) {
  const auto rank = rank_of_taxon(order);
  phylo::TaxonSet ts;
  for (std::size_t id = 0; id < rank.size(); ++id)
    ts.add(rank[id] != kNoRank ? core::canonical_rank_label(rank[id])
                               : "_pad" + std::to_string(id));
  return ts;
}

}  // namespace

IncrementalSession::IncrementalSession(phylo::Tree species_tree, pam::Pam pam,
                                       SessionOptions options)
    : species_(std::move(species_tree)),
      pam_(std::move(pam)),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {
  core::validate_options(options_.engine, core::OptionsSurface::kIncremental);
  for (phylo::TaxonId t = 0; t < pam_.taxon_count(); ++t)
    if (!species_.has_taxon(t))
      throw InvalidInput(
          "incremental session: species tree is missing a leaf for taxon " +
          std::to_string(t) +
          " (it must span the session's full taxon universe)");
}

support::Fingerprint IncrementalSession::instance_fingerprint() const {
  // The fingerprint of what the session actually enumerates: the induced
  // constraint instance. Relabel-invariant whenever the canonicalizer's
  // branch budget holds (CanonicalInstance::relabel_invariant).
  const auto constraints =
      pam::induced_subtrees(species_, pam_, options_.min_taxa);
  if (constraints.empty())
    return support::fingerprint_bytes("gentrius-instance-v1 empty\n");
  return core::instance_fingerprint(constraints);
}

Result IncrementalSession::apply(const PamDelta& edit) {
  return apply(EditScript{edit});
}

Result IncrementalSession::apply(const EditScript& script) {
  const auto before =
      decompose::analyze_pam(species_, pam_, options_.min_taxa).split;

  // Validate-then-commit: the script lands on a scratch copy, so a
  // mid-script failure (out-of-range index, filling an already-present
  // cell, ...) rethrows with the session matrix untouched — apply() is
  // atomic as documented. Each kAddTaxon's assigned taxon id is recorded
  // here because it is unrecoverable from the post-script matrix alone.
  pam::Pam edited = pam_;
  std::vector<phylo::TaxonId> added_taxon(script.size(), phylo::kNoTaxon);
  for (std::size_t i = 0; i < script.size(); ++i) {
    if (script[i].kind == EditKind::kAddTaxon)
      added_taxon[i] = static_cast<phylo::TaxonId>(edited.taxon_count());
    apply_edit(edited, script[i], species_.leaf_count());
  }
  const pam::Pam before_pam = std::move(pam_);
  pam_ = std::move(edited);
  const auto after =
      decompose::analyze_pam(species_, pam_, options_.min_taxa).split;

  // Merged classification across the script: union of touched components,
  // OR of the structure flags (each edit judged against the script-level
  // before/after splits).
  DeltaClass merged;
  for (std::size_t i = 0; i < script.size(); ++i) {
    const PamDelta& edit = script[i];
    const DeltaClass c = classify_delta(edit, before_pam, before, pam_, after,
                                        added_taxon[i]);
    merged.touched_before.insert(merged.touched_before.end(),
                                 c.touched_before.begin(),
                                 c.touched_before.end());
    merged.touched_after.insert(merged.touched_after.end(),
                                c.touched_after.begin(),
                                c.touched_after.end());
    merged.merged |= c.merged;
    merged.split |= c.split;
  }
  const auto dedup = [](std::vector<std::size_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(merged.touched_before);
  dedup(merged.touched_after);
  last_class_ = std::move(merged);

  return enumerate();
}

Result IncrementalSession::enumerate() { return run_cached(); }

Result IncrementalSession::run_cached() {
  namespace detail = decompose::detail;

  const auto decomp =
      decompose::analyze_pam(species_, pam_, options_.min_taxa);
  const auto& constraints = decomp.constraints;
  const auto& split = decomp.split;
  if (split.enumerable_count == 0)
    throw InvalidInput(
        "decompose: no component contains a constraint with >= 3 taxa; "
        "nothing is enumerable");

  // Id-stable labels for Newick round-tripping, exactly as plan_shards.
  phylo::TaxonSet labels;
  {
    phylo::TaxonId max_id = 0;
    for (const Component& comp : split.components)
      max_id = std::max(max_id, comp.taxa.back());
    for (phylo::TaxonId t = 0; t <= max_id; ++t)
      labels.add("x" + std::to_string(t));
  }

  const Options base = detail::shard_options(options_.engine);
  const std::uint64_t evictions_before = cache_.evictions();

  Result out;
  out.reason = StopReason::kCompleted;

  // ---- plan phase: canonicalize, look up, settle representatives ----------
  struct CompWork {
    const Component* comp = nullptr;
    std::vector<phylo::Tree> sub;
    core::CanonicalInstance canon;
    /// Usable hit (stands included if needed), copied OUT of the cache at
    /// plan time: the run phase inserts recomputed misses, and an insert at
    /// capacity evicts — a pointer into the cache could dangle before its
    /// hit is served.
    std::optional<CacheEntry> hit;
    phylo::Tree representative;  ///< session-id tree; empty if stand empty
    bool empty = false;
  };
  std::vector<CompWork> work;
  std::vector<phylo::Tree> passthrough;
  bool empty_component = false;
  const bool want_stands = options_.engine.collect_trees;

  for (const Component& comp : split.components) {
    if (!comp.enumerable) {
      for (const std::size_t c : comp.constraint_indices)
        passthrough.push_back(constraints[c]);
      continue;
    }
    CompWork w;
    w.comp = &comp;
    w.sub = detail::subset_constraints(constraints, comp);
    w.canon = core::canonicalize_instance(w.sub);
    const CacheEntry* entry = cache_.find(w.canon.fp, w.canon.encoding);
    // A hit serves stand streaming only when its stand fits the caller's
    // collect_limit: a from-scratch run truncates each component's
    // collection at the limit, so serving a larger cached stand would break
    // byte-equality with run_sharded in the truncated regime.
    if (entry && (!want_stands || entry->stand_trees == 0 ||
                  (entry->stands_complete &&
                   entry->stands.size() <= options_.engine.collect_limit))) {
      w.hit = *entry;
      if (entry->stand_trees == 0) {
        w.empty = true;
        empty_component = true;
      } else {
        auto parse_ts = rank_parse_labels(w.canon.order);
        w.representative =
            phylo::parse_newick(entry->representative, parse_ts);
      }
    } else {
      // Canonical representative probe, byte-identical to plan_shards: a
      // default-options serial run collecting one tree. Probe work is not
      // accumulated into the Result (run_sharded's plan phase is not
      // either); the full shard run below recomputes the count.
      Options probe;
      probe.collect_trees = true;
      probe.collect_limit = 1;
      probe.stop.max_stand_trees = 1;
      probe.tree_names = &labels;
      const Result r = core::run_serial(w.sub, probe);
      if (r.trees.empty()) {
        w.empty = true;
        empty_component = true;
      } else {
        w.representative = phylo::parse_newick(r.trees.front(), labels);
      }
    }
    work.push_back(std::move(w));
  }

  // ---- run phase: serve clean components, re-enumerate dirty ones ---------
  std::uint64_t product = 1;
  std::vector<double> makespans;  // executed shards only: a cached shard
                                  // costs no dispatch, run, or merge
  std::vector<std::vector<std::string>> component_stands;
  const bool collect = want_stands && !empty_component;

  for (CompWork& w : work) {
    const Component& comp = *w.comp;
    if (w.hit) {
      ShardStats s = w.hit->stats;
      s.reused = true;
      out.shards.push_back(s);
      product =
          detail::saturating_mul(product, w.hit->stand_trees,
                                 out.count_saturated);
      if (collect) {
        // Cached stands live in rank space; translate into session labels
        // through the engine's canonical Newick so the streamed tuples are
        // byte-identical to a from-scratch run's.
        auto parse_ts = rank_parse_labels(w.canon.order);
        std::vector<std::string> stands;
        stands.reserve(w.hit->stands.size());
        for (const std::string& s_rank : w.hit->stands)
          stands.push_back(phylo::canonical_newick(
              phylo::parse_newick(s_rank, parse_ts), labels));
        std::sort(stands.begin(), stands.end());
        component_stands.push_back(std::move(stands));
      }
      out.cache.hits += 1;
      out.cache.reused_components += 1;
      out.cache.reused_states += w.hit->stats.intermediate_states;
      continue;
    }

    Options comp_opts = base;
    if (collect) {
      comp_opts.collect_trees = true;
      comp_opts.collect_limit = options_.engine.collect_limit;
      comp_opts.tree_names = &labels;
    } else {
      comp_opts.collect_trees = false;
    }
    Result r = detail::run_one_shard(w.sub, comp_opts, options_.run);
    const ShardStats stats =
        detail::make_stats(ShardStats::Kind::kComponent, comp.taxa.size(),
                           comp.constraint_indices.size(), r);
    out.shards.push_back(stats);
    detail::accumulate(out, r);
    product = detail::saturating_mul(product, r.stand_trees,
                                     out.count_saturated);
    makespans.push_back(r.virtual_makespan);
    out.cache.misses += 1;
    out.cache.recomputed_components += 1;
    out.cache.recomputed_states += r.intermediate_states;

    if (collect) std::sort(r.trees.begin(), r.trees.end());

    // Only completed runs are cacheable: a truncated count is a property
    // of the stopping rules, not of the instance.
    if (r.reason == StopReason::kCompleted ||
        r.reason == StopReason::kEmptyStand) {
      CacheEntry entry;
      entry.encoding = w.canon.encoding;
      entry.stand_trees = r.stand_trees;
      entry.stats = stats;
      const auto rank = rank_of_taxon(w.canon.order);
      if (!w.empty) entry.representative = core::rank_newick(w.representative, rank);
      if (collect && r.trees.size() == r.stand_trees) {
        entry.stands.reserve(r.trees.size());
        for (const std::string& s_x : r.trees)
          entry.stands.push_back(
              core::rank_newick(phylo::parse_newick(s_x, labels), rank));
        std::sort(entry.stands.begin(), entry.stands.end());
        entry.stands_complete = true;
      }
      cache_.insert(w.canon.fp, std::move(entry));
    }

    if (collect) component_stands.push_back(std::move(r.trees));
  }

  // ---- residual shard: cached by its size signature -----------------------
  std::uint64_t residual_count = 0;
  decompose::detail::ResidualClosedForm closed;
  if (options_.run.residual_closed_form && !empty_component)
    closed = detail::closed_form_residual(split);
  if (closed.applicable) {
    // Closed form costs nothing, so it bypasses the cache entirely (no
    // hit/miss traffic): M is a formula of the size signature, not a run.
    std::size_t universe = 0;
    for (const Component& comp : split.components)
      universe += comp.taxa.size();
    ShardStats s;
    s.kind = ShardStats::Kind::kResidual;
    s.n_taxa = universe;
    s.n_constraints = work.size() + passthrough.size();
    s.stand_trees = closed.count;
    out.shards.push_back(s);
    residual_count = closed.count;
    if (closed.saturated) out.count_saturated = true;
    product = detail::saturating_mul(product, residual_count,
                                     out.count_saturated);
  } else if (!empty_component) {
    std::size_t universe = 0;
    for (const Component& comp : split.components)
      universe += comp.taxa.size();
    std::vector<std::size_t> sizes;
    for (const CompWork& w : work) sizes.push_back(w.comp->taxa.size());
    std::sort(sizes.begin(), sizes.end());
    std::string res_encoding =
        "gentrius-residual-v2 n=" + std::to_string(universe) + " sizes=";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (i) res_encoding.push_back(',');
      res_encoding += std::to_string(sizes[i]);
    }
    // Pass-through constraints (<= 2 taxa each) are vacuous in theory, but
    // closed_form_residual refuses to count across them — the cache must
    // not assume more shape independence than the closed form proves, so
    // the key carries them byte for byte.
    std::vector<std::string> pass_enc;
    pass_enc.reserve(passthrough.size());
    for (const phylo::Tree& t : passthrough)
      pass_enc.push_back(phylo::canonical_newick(t, labels));
    std::sort(pass_enc.begin(), pass_enc.end());
    res_encoding += " pass=";
    for (std::size_t i = 0; i < pass_enc.size(); ++i) {
      if (i) res_encoding.push_back(';');
      res_encoding += pass_enc[i];
    }
    res_encoding.push_back('\n');
    const support::Fingerprint res_fp =
        support::fingerprint_bytes(res_encoding);
    const std::size_t residual_size = work.size() + passthrough.size();

    if (const CacheEntry* entry = cache_.find(res_fp, res_encoding)) {
      // The interleaving count M depends only on the size signature
      // (DESIGN.md "Decomposition") and the pass-through constraints the
      // key carries verbatim, so any cached completed residual of this
      // encoding carries the exact count — whatever representatives it was
      // computed from.
      ShardStats s = entry->stats;
      s.reused = true;
      s.n_taxa = universe;
      s.n_constraints = residual_size;
      out.shards.push_back(s);
      residual_count = entry->stand_trees;
      product = detail::saturating_mul(product, residual_count,
                                       out.count_saturated);
      out.cache.hits += 1;
      out.cache.reused_states += entry->stats.intermediate_states;
    } else {
      std::vector<phylo::Tree> residual_constraints;
      residual_constraints.reserve(residual_size);
      for (const CompWork& w : work)
        residual_constraints.push_back(w.representative);
      residual_constraints.insert(residual_constraints.end(),
                                  passthrough.begin(), passthrough.end());
      Options res_opts = base;
      res_opts.collect_trees = false;
      const Result r =
          detail::run_one_shard(residual_constraints, res_opts, options_.run);
      const ShardStats stats = detail::make_stats(
          ShardStats::Kind::kResidual, universe, residual_size, r);
      out.shards.push_back(stats);
      detail::accumulate(out, r);
      residual_count = r.stand_trees;
      product = detail::saturating_mul(product, residual_count,
                                       out.count_saturated);
      makespans.push_back(r.virtual_makespan);
      out.cache.misses += 1;
      out.cache.recomputed_states += r.intermediate_states;
      if (r.reason == StopReason::kCompleted) {
        CacheEntry entry;
        entry.encoding = res_encoding;
        entry.stand_trees = r.stand_trees;
        entry.stats = stats;
        cache_.insert(res_fp, std::move(entry));
      }
    }
  } else {
    product = 0;
  }

  out.stand_trees = product;
  if (options_.run.backend == decompose::ShardBackend::kVirtual)
    out.virtual_makespan = detail::combine_makespans(makespans, options_.run);

  if (collect && product > 0 && !component_stands.empty())
    detail::stream_cross_product(component_stands, passthrough, labels, base,
                                 options_.engine, residual_count, out);

  out.cache.evictions = cache_.evictions() - evictions_before;
  lifetime_.merge(out.cache);
  return out;
}

}  // namespace gentrius::incremental
