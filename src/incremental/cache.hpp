// Bounded LRU result cache keyed by canonical fingerprints.
//
// One entry per canonicalized shard instance: a decompose component (keyed
// by its constraint-tree canonical encoding, src/gentrius/problem.hpp) or
// the residual shard (keyed by its size signature plus any pass-through
// constraints verbatim — the interleaving count M depends only on the
// universe size and the enumerable component sizes when every component is
// enumerable, DESIGN.md "Decomposition"). Values live in canonical *rank space*
// (counts, the representative, optionally the full stand as rank-label
// Newick), so a hit from any relabeling of the same component can be
// translated back into the session's taxon ids.
//
// Every lookup compares the stored canonical encoding byte for byte — a
// 128-bit fingerprint collision therefore costs a recomputation, never a
// wrong answer. Only *completed* runs are inserted: a result truncated by a
// stopping rule is not a property of the instance and must never be served
// later. This cache is deliberately the seed of ROADMAP item 1's
// service-layer result cache.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gentrius/options.hpp"
#include "support/fingerprint.hpp"

namespace gentrius::incremental {

struct CacheEntry {
  /// Full canonical encoding of the keyed instance (collision check).
  std::string encoding;
  std::uint64_t stand_trees = 0;
  /// Canonical representative stand tree, rank-label Newick; empty when the
  /// component's stand is empty (or for residual entries).
  std::string representative;
  /// The full component stand, rank-label Newick, ascending; only
  /// meaningful when stands_complete (collected without truncation).
  std::vector<std::string> stands;
  bool stands_complete = false;
  /// Shard rollup of the run that computed this entry. Served back with
  /// ShardStats::reused = true on every hit.
  core::ShardStats stats;
};

class ResultCache {
 public:
  /// capacity == 0 disables caching (every lookup misses).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// The entry for `fp` whose encoding matches byte for byte, or nullptr.
  /// A hit refreshes the entry's LRU position.
  const CacheEntry* find(const support::Fingerprint& fp,
                         const std::string& encoding);

  /// Inserts or replaces the entry for `fp`, evicting the least recently
  /// used entry when over capacity.
  void insert(const support::Fingerprint& fp, CacheEntry entry);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Slot {
    CacheEntry entry;
    std::uint64_t last_used = 0;
  };

  // std::map (not unordered): lookups are O(log n) on tiny n, and eviction
  // scans iterate deterministically — no hash-order dependence anywhere.
  std::map<support::Fingerprint, Slot> entries_;
  std::size_t capacity_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gentrius::incremental
