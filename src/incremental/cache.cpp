#include "incremental/cache.hpp"

#include <utility>

namespace gentrius::incremental {

const CacheEntry* ResultCache::find(const support::Fingerprint& fp,
                                    const std::string& encoding) {
  auto it = entries_.find(fp);
  if (it == entries_.end()) return nullptr;
  // Collision check: the fingerprint matched but the instance must too.
  if (it->second.entry.encoding != encoding) return nullptr;
  it->second.last_used = ++tick_;
  return &it->second.entry;
}

void ResultCache::insert(const support::Fingerprint& fp, CacheEntry entry) {
  if (capacity_ == 0) return;
  auto it = entries_.find(fp);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    it->second.last_used = ++tick_;
    return;
  }
  if (entries_.size() >= capacity_) {
    auto victim = entries_.begin();
    for (auto i = entries_.begin(); i != entries_.end(); ++i)
      if (i->second.last_used < victim->second.last_used) victim = i;
    entries_.erase(victim);
    ++evictions_;
  }
  entries_.emplace(fp, Slot{std::move(entry), ++tick_});
}

}  // namespace gentrius::incremental
