// PAM edit model for incremental re-enumeration.
//
// A live dataset changes in four ways: a new locus enters (add_locus), a
// new taxon gets sequenced (add_taxon), a missing cell fills in
// (fill_cell), or a cell is retracted — a mislabeled sequence pulled from a
// locus (clear_cell). Each edit is a PamDelta; a batched EditScript applies
// several before re-enumerating once.
//
// The delta classifier maps an edit onto the interaction-graph components
// (src/decompose/components) it touches, before and after the edit. Edits
// rewire the graph: filling a cell can merge components (the taxon bridges
// two previously independent groups), clearing one can split a component
// in two. The classification is observability and test surface — the
// session's reuse decision is made by the component fingerprint cache,
// which handles split/merge naturally (a merged or split component has a
// new canonical encoding, so it misses the cache and is recomputed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decompose/components.hpp"
#include "pam/pam.hpp"
#include "phylo/tree.hpp"

namespace gentrius::incremental {

enum class EditKind : std::uint8_t {
  kAddLocus,   ///< append a locus with the given present taxa
  kAddTaxon,   ///< grow the taxon dimension; new taxon present in given loci
  kFillCell,   ///< 0 -> 1: taxon gains data for a locus
  kClearCell,  ///< 1 -> 0: taxon retracted from a locus
};

const char* to_string(EditKind k);

struct PamDelta {
  EditKind kind = EditKind::kFillCell;
  phylo::TaxonId taxon = phylo::kNoTaxon;  ///< fill/clear; ignored otherwise
  std::size_t locus = 0;                   ///< fill/clear; ignored otherwise
  std::vector<phylo::TaxonId> locus_taxa;  ///< add_locus: present taxa
  std::vector<std::size_t> taxon_loci;     ///< add_taxon: loci with data

  static PamDelta add_locus(std::vector<phylo::TaxonId> present);
  static PamDelta add_taxon(std::vector<std::size_t> loci);
  static PamDelta fill_cell(phylo::TaxonId taxon, std::size_t locus);
  static PamDelta clear_cell(phylo::TaxonId taxon, std::size_t locus);
};

/// A batch of edits applied atomically before one re-enumeration.
using EditScript = std::vector<PamDelta>;

/// Human-readable one-liner, e.g. "fill_cell t=7 l=2".
std::string to_string(const PamDelta& edit);

/// Applies one edit to the matrix. Throws support::InvalidInput on an
/// inapplicable edit: out-of-range indices, filling a 1-cell, clearing a
/// 0-cell, or an add_taxon whose taxon id would have no leaf in a species
/// tree of `max_taxa` leaves (pass SIZE_MAX to skip that check).
void apply_edit(pam::Pam& pam, const PamDelta& edit,
                std::size_t max_taxa = static_cast<std::size_t>(-1));

/// How one edit moved the component structure. Component indices refer to
/// the canonical component order (ascending smallest taxon id) of the
/// respective split.
struct DeltaClass {
  /// Components of the pre-edit split containing an edited cell's taxon or
  /// an edited locus's taxa.
  std::vector<std::size_t> touched_before;
  /// Components of the post-edit split containing edited taxa/loci — the
  /// upper bound on what the session must recompute structurally (the
  /// fingerprint cache may still prove some untouched).
  std::vector<std::size_t> touched_after;
  bool merged = false;  ///< >= 2 pre-edit components now share a component
  bool split = false;   ///< one pre-edit component now spans >= 2 components
};

/// Classifies an edit against the pre/post interaction-graph splits of the
/// induced constraint sets. `before`/`after` must be the analyze_pam splits
/// of the matrix before and after apply_edit. For a kAddTaxon edit inside a
/// multi-edit script, `added_taxon` must be the taxon id apply_edit actually
/// assigned to THIS edit (the post-script matrix's last taxon belongs to the
/// script's last add, not to every add); kNoTaxon falls back to the
/// single-edit inference of after_pam's last taxon.
DeltaClass classify_delta(const PamDelta& edit,
                          const pam::Pam& before_pam,
                          const decompose::ComponentSplit& before,
                          const pam::Pam& after_pam,
                          const decompose::ComponentSplit& after,
                          phylo::TaxonId added_taxon = phylo::kNoTaxon);

}  // namespace gentrius::incremental
