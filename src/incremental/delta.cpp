#include "incremental/delta.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gentrius::incremental {

using support::InvalidInput;

const char* to_string(EditKind k) {
  switch (k) {
    case EditKind::kAddLocus: return "add_locus";
    case EditKind::kAddTaxon: return "add_taxon";
    case EditKind::kFillCell: return "fill_cell";
    case EditKind::kClearCell: return "clear_cell";
  }
  return "?";
}

PamDelta PamDelta::add_locus(std::vector<phylo::TaxonId> present) {
  PamDelta d;
  d.kind = EditKind::kAddLocus;
  d.locus_taxa = std::move(present);
  return d;
}

PamDelta PamDelta::add_taxon(std::vector<std::size_t> loci) {
  PamDelta d;
  d.kind = EditKind::kAddTaxon;
  d.taxon_loci = std::move(loci);
  return d;
}

PamDelta PamDelta::fill_cell(phylo::TaxonId taxon, std::size_t locus) {
  PamDelta d;
  d.kind = EditKind::kFillCell;
  d.taxon = taxon;
  d.locus = locus;
  return d;
}

PamDelta PamDelta::clear_cell(phylo::TaxonId taxon, std::size_t locus) {
  PamDelta d;
  d.kind = EditKind::kClearCell;
  d.taxon = taxon;
  d.locus = locus;
  return d;
}

std::string to_string(const PamDelta& edit) {
  std::string out = to_string(edit.kind);
  switch (edit.kind) {
    case EditKind::kFillCell:
    case EditKind::kClearCell:
      out += " t=" + std::to_string(edit.taxon) +
             " l=" + std::to_string(edit.locus);
      break;
    case EditKind::kAddLocus:
      out += " taxa=" + std::to_string(edit.locus_taxa.size());
      break;
    case EditKind::kAddTaxon:
      out += " loci=" + std::to_string(edit.taxon_loci.size());
      break;
  }
  return out;
}

void apply_edit(pam::Pam& pam, const PamDelta& edit, std::size_t max_taxa) {
  switch (edit.kind) {
    case EditKind::kFillCell: {
      if (edit.taxon >= pam.taxon_count() || edit.locus >= pam.locus_count())
        throw InvalidInput("fill_cell: cell out of range");
      if (pam.present(edit.taxon, edit.locus))
        throw InvalidInput("fill_cell: cell already present");
      pam.set_present(edit.taxon, edit.locus, true);
      return;
    }
    case EditKind::kClearCell: {
      if (edit.taxon >= pam.taxon_count() || edit.locus >= pam.locus_count())
        throw InvalidInput("clear_cell: cell out of range");
      if (!pam.present(edit.taxon, edit.locus))
        throw InvalidInput("clear_cell: cell already absent");
      pam.set_present(edit.taxon, edit.locus, false);
      return;
    }
    case EditKind::kAddLocus: {
      for (const phylo::TaxonId t : edit.locus_taxa)
        if (t >= pam.taxon_count())
          throw InvalidInput("add_locus: present taxon out of range");
      const std::size_t locus = pam.add_locus();
      for (const phylo::TaxonId t : edit.locus_taxa)
        pam.set_present(t, locus, true);
      return;
    }
    case EditKind::kAddTaxon: {
      if (pam.taxon_count() >= max_taxa)
        throw InvalidInput(
            "add_taxon: the species tree has no leaf for the new taxon "
            "(the session's species tree must span the full taxon universe)");
      for (const std::size_t l : edit.taxon_loci)
        if (l >= pam.locus_count())
          throw InvalidInput("add_taxon: locus out of range");
      const phylo::TaxonId taxon = pam.add_taxon();
      for (const std::size_t l : edit.taxon_loci)
        pam.set_present(taxon, l, true);
      return;
    }
  }
}

namespace {

/// taxon id -> component index of its split (kNone if in no component).
std::vector<std::size_t> component_of_taxon(
    const decompose::ComponentSplit& split, std::size_t n_taxa) {
  constexpr auto kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner(n_taxa, kNone);
  for (std::size_t c = 0; c < split.components.size(); ++c)
    for (const phylo::TaxonId t : split.components[c].taxa)
      if (t < n_taxa) owner[t] = c;
  return owner;
}

/// The taxa an edit involves, against a given matrix state. `post_edit`
/// distinguishes the two sides for kAddTaxon: the new taxon exists only in
/// the post-edit matrix, so it touches no pre-edit component. `added_taxon`
/// is the id apply_edit assigned to a kAddTaxon edit (kNoTaxon infers the
/// matrix's last taxon, which is only right for a single-edit script).
std::vector<phylo::TaxonId> edited_taxa(const PamDelta& edit,
                                        const pam::Pam& pam, bool post_edit,
                                        phylo::TaxonId added_taxon) {
  switch (edit.kind) {
    case EditKind::kFillCell:
    case EditKind::kClearCell: {
      // The edited taxon plus the locus's other members: the locus's
      // induced constraint changes shape for all of them.
      std::vector<phylo::TaxonId> taxa{edit.taxon};
      if (edit.locus < pam.locus_count())
        pam.locus_taxa(edit.locus).for_each([&](std::size_t t) {
          taxa.push_back(static_cast<phylo::TaxonId>(t));
        });
      std::sort(taxa.begin(), taxa.end());
      taxa.erase(std::unique(taxa.begin(), taxa.end()), taxa.end());
      return taxa;
    }
    case EditKind::kAddLocus:
      return edit.locus_taxa;
    case EditKind::kAddTaxon:
      if (!post_edit) return {};
      if (added_taxon != phylo::kNoTaxon) return {added_taxon};
      if (pam.taxon_count() == 0) return {};
      return {static_cast<phylo::TaxonId>(pam.taxon_count() - 1)};
  }
  return {};
}

void collect_touched(const std::vector<phylo::TaxonId>& taxa,
                     const std::vector<std::size_t>& owner,
                     std::vector<std::size_t>& out) {
  constexpr auto kNone = static_cast<std::size_t>(-1);
  for (const phylo::TaxonId t : taxa)
    if (t < owner.size() && owner[t] != kNone) out.push_back(owner[t]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

DeltaClass classify_delta(const PamDelta& edit, const pam::Pam& before_pam,
                          const decompose::ComponentSplit& before,
                          const pam::Pam& after_pam,
                          const decompose::ComponentSplit& after,
                          phylo::TaxonId added_taxon) {
  constexpr auto kNone = static_cast<std::size_t>(-1);
  DeltaClass out;

  const auto owner_before =
      component_of_taxon(before, before_pam.taxon_count());
  const auto owner_after = component_of_taxon(after, after_pam.taxon_count());

  collect_touched(
      edited_taxa(edit, before_pam, /*post_edit=*/false, added_taxon),
      owner_before, out.touched_before);
  collect_touched(
      edited_taxa(edit, after_pam, /*post_edit=*/true, added_taxon),
      owner_after, out.touched_after);

  // Merge: two taxa in distinct pre-edit components share a post-edit
  // component. Split: two taxa of one pre-edit component now live in
  // distinct post-edit components. Detected over the whole taxon range so a
  // cascade (an edit rewiring components it did not directly touch) is
  // still reported.
  const std::size_t n =
      std::min(owner_before.size(), owner_after.size());
  // pre-component -> first post-component seen, and vice versa.
  std::vector<std::size_t> pre_to_post(before.components.size(), kNone);
  std::vector<std::size_t> post_to_pre(after.components.size(), kNone);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t pre = owner_before[t];
    const std::size_t post = owner_after[t];
    if (pre == kNone || post == kNone) continue;
    if (pre_to_post[pre] == kNone)
      pre_to_post[pre] = post;
    else if (pre_to_post[pre] != post)
      out.split = true;
    if (post_to_pre[post] == kNone)
      post_to_pre[post] = pre;
    else if (post_to_pre[post] != pre)
      out.merged = true;
  }
  return out;
}

}  // namespace gentrius::incremental
