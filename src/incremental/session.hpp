// Incremental re-enumeration of a live dataset under PAM edits.
//
// An IncrementalSession owns a species tree, a presence/absence matrix, and
// a fingerprint-keyed ResultCache. Each re-enumeration decomposes the
// current induced constraint set into interaction-graph components
// (src/decompose), canonicalizes every component, and serves clean
// components — those whose canonical fingerprint hits the cache — without
// expanding a single state. Only dirty components run through the engine
// (serial / pool / virtual backends, exactly as run_sharded would run
// them); counts recombine by the shared saturating product and stands by
// the shared cross-product streamer (decompose/shard_exec.hpp), so the
// combined Result's count and stand set are byte-equal to a from-scratch
// decompose::run_sharded of the same instance at every edit step.
//
// The residual shard — whose interleaving count M usually dominates a
// from-scratch run — is cached by its size signature (universe size +
// sorted enumerable component sizes) plus the pass-through constraints of
// non-enumerable components byte for byte: M provably depends on nothing
// beyond the signature when every component is enumerable, and the cache
// claims no more shape independence than that (closed_form_residual
// likewise refuses the pass-through case). Any edit that reshapes a
// component without resizing the split or rewriting the pass-throughs
// reuses the residual outright; that reuse, plus per-component reuse, is
// where the >= 5x amortized speedup of BENCH_9 comes from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decompose/sharded.hpp"
#include "gentrius/options.hpp"
#include "incremental/cache.hpp"
#include "incremental/delta.hpp"
#include "pam/pam.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "support/fingerprint.hpp"

namespace gentrius::incremental {

struct SessionOptions {
  /// Engine options per shard run. decompose must be kComponents
  /// (validate_options(kIncremental) rejects anything else);
  /// collect_trees requires tree_names.
  core::Options engine;
  /// Shard execution backend (serial / pool / virtual), as in run_sharded.
  decompose::ShardRunOptions run;
  /// ResultCache entries (components + residual signatures). 0 disables
  /// caching — every re-enumeration is from scratch.
  std::size_t cache_capacity = 256;
  /// Loci with fewer present taxa induce no constraint (pam::induced_subtrees).
  std::size_t min_taxa = 4;
};

class IncrementalSession {
 public:
  /// The species tree must span the full taxon universe the session will
  /// ever see: add_taxon edits activate one of its leaves. Throws
  /// InvalidInput on rejected option combinations (see validate_options)
  /// or when the initial matrix has more taxa than the species tree.
  IncrementalSession(phylo::Tree species_tree, pam::Pam pam,
                     SessionOptions options);

  const pam::Pam& pam() const noexcept { return pam_; }
  const phylo::Tree& species_tree() const noexcept { return species_; }

  /// Re-enumerates the current matrix, serving clean components from the
  /// cache. Result::cache reports this run's cache traffic;
  /// Result::shards marks reused shards with ShardStats::reused.
  core::Result enumerate();

  /// Applies one edit (or a batched script), then re-enumerates once.
  core::Result apply(const PamDelta& edit);
  core::Result apply(const EditScript& script);

  /// Classification of the most recent apply() against the pre/post
  /// component splits (merged across a script's edits).
  const DeltaClass& last_classification() const noexcept {
    return last_class_;
  }

  /// Cache traffic accumulated over the session's lifetime.
  const core::CacheStats& lifetime_cache_stats() const noexcept {
    return lifetime_;
  }

  /// Canonical whole-instance fingerprint of the current matrix + species
  /// tree (pam::canonical_encode mixed with the species tree's canonical
  /// instance encoding).
  support::Fingerprint instance_fingerprint() const;

 private:
  core::Result run_cached();

  phylo::Tree species_;
  pam::Pam pam_;
  SessionOptions options_;
  ResultCache cache_;
  core::CacheStats lifetime_;
  DeltaClass last_class_;
};

}  // namespace gentrius::incremental
