// Debug invariant layer for hot-path boundary checks.
//
// GENTRIUS_DCHECK* macros verify internal invariants that are too expensive
// (or too hot) to check in release builds: queue occupancy bounds, busy-count
// underflow, counter monotonicity. They are active when
// GENTRIUS_ENABLE_INVARIANTS is 1, which the build system sets for
//   * non-NDEBUG (Debug) builds, and
//   * every sanitizer preset (GENTRIUS_SAN != off), so ASan/TSan/UBSan runs
//     also get the semantic checks,
// and compiles to nothing in plain release builds. The comparison forms
// print both operand values on failure.
//
// For conditions that must hold even in release (API misuse guards), use
// GENTRIUS_CHECK from support/check.hpp.
#pragma once

#include <sstream>
#include <string>

#include "support/error.hpp"

#if !defined(GENTRIUS_ENABLE_INVARIANTS)
#if defined(NDEBUG)
#define GENTRIUS_ENABLE_INVARIANTS 0
#else
#define GENTRIUS_ENABLE_INVARIANTS 1
#endif
#endif

namespace gentrius::support::detail {

[[noreturn]] inline void invariant_failed(const char* expr, const char* file,
                                          int line) {
  throw InternalError(std::string("invariant failed: ") + expr + " at " +
                      file + ":" + std::to_string(line));
}

template <typename A, typename B>
[[noreturn]] void invariant_cmp_failed(const char* expr, const char* file,
                                       int line, const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " (lhs=" << lhs << ", rhs=" << rhs
     << ") at " << file << ":" << line;
  throw InternalError(os.str());
}

}  // namespace gentrius::support::detail

#if GENTRIUS_ENABLE_INVARIANTS

#define GENTRIUS_DCHECK(expr)                                                  \
  do {                                                                         \
    if (!(expr)) [[unlikely]]                                                  \
      ::gentrius::support::detail::invariant_failed(#expr, __FILE__,           \
                                                    __LINE__);                 \
  } while (false)

#define GENTRIUS_DCHECK_OP(op, a, b)                                           \
  do {                                                                         \
    if (!((a)op(b))) [[unlikely]]                                              \
      ::gentrius::support::detail::invariant_cmp_failed(#a " " #op " " #b,     \
                                                        __FILE__, __LINE__,   \
                                                        (a), (b));             \
  } while (false)

#else  // invariants compiled out: operands stay unevaluated but referenced,
       // so release builds get no codegen and no unused-variable warnings.

#define GENTRIUS_DCHECK(expr) ((void)sizeof((expr) ? 1 : 0))
#define GENTRIUS_DCHECK_OP(op, a, b) ((void)sizeof(((a)op(b)) ? 1 : 0))

#endif  // GENTRIUS_ENABLE_INVARIANTS

// GENTRIUS_EXPENSIVE_DCHECK: invariants whose *check* has asymptotically
// higher cost than the code path it guards (e.g. cross-checking a cached
// value against a full recomputation). Off by default even when
// GENTRIUS_ENABLE_INVARIANTS is on — otherwise debug/sanitizer runs only
// ever exercise "cached equals fresh" and never the cached value standing
// on its own, and the cached path's debug cost degenerates to the fresh
// path's. Enable with -DGENTRIUS_EXPENSIVE_CHECKS=ON (sets
// GENTRIUS_ENABLE_EXPENSIVE_INVARIANTS=1) when working on the guarded
// machinery itself.
#if !defined(GENTRIUS_ENABLE_EXPENSIVE_INVARIANTS)
#define GENTRIUS_ENABLE_EXPENSIVE_INVARIANTS 0
#endif

#if GENTRIUS_ENABLE_EXPENSIVE_INVARIANTS && GENTRIUS_ENABLE_INVARIANTS
#define GENTRIUS_EXPENSIVE_DCHECK(expr) GENTRIUS_DCHECK(expr)
#else
#define GENTRIUS_EXPENSIVE_DCHECK(expr) ((void)sizeof((expr) ? 1 : 0))
#endif

#define GENTRIUS_DCHECK_EQ(a, b) GENTRIUS_DCHECK_OP(==, a, b)
#define GENTRIUS_DCHECK_NE(a, b) GENTRIUS_DCHECK_OP(!=, a, b)
#define GENTRIUS_DCHECK_LT(a, b) GENTRIUS_DCHECK_OP(<, a, b)
#define GENTRIUS_DCHECK_LE(a, b) GENTRIUS_DCHECK_OP(<=, a, b)
#define GENTRIUS_DCHECK_GT(a, b) GENTRIUS_DCHECK_OP(>, a, b)
#define GENTRIUS_DCHECK_GE(a, b) GENTRIUS_DCHECK_OP(>=, a, b)
