// Lightweight internal invariant checks.
//
// GENTRIUS_CHECK is always on (cheap conditions guarding API misuse and data
// structure invariants); GENTRIUS_DCHECK compiles away in release builds and
// is used inside performance-critical loops.
#pragma once

#include <string>

#include "support/error.hpp"

namespace gentrius::support::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  throw InternalError(std::string("invariant failed: ") + expr + " at " + file +
                      ":" + std::to_string(line));
}

}  // namespace gentrius::support::detail

#define GENTRIUS_CHECK(expr)                                                  \
  do {                                                                        \
    if (!(expr)) [[unlikely]]                                                 \
      ::gentrius::support::detail::check_failed(#expr, __FILE__, __LINE__);   \
  } while (false)

#ifdef NDEBUG
#define GENTRIUS_DCHECK(expr) \
  do {                        \
  } while (false)
#else
#define GENTRIUS_DCHECK(expr) GENTRIUS_CHECK(expr)
#endif
