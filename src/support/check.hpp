// Lightweight internal invariant checks.
//
// GENTRIUS_CHECK is always on (cheap conditions guarding API misuse and data
// structure invariants). The GENTRIUS_DCHECK* family lives in
// support/invariant.hpp (re-exported here): active in debug and sanitizer
// builds, compiled out in release, used inside performance-critical loops.
#pragma once

#include <string>

#include "support/error.hpp"
#include "support/invariant.hpp"

namespace gentrius::support::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  throw InternalError(std::string("invariant failed: ") + expr + " at " + file +
                      ":" + std::to_string(line));
}

}  // namespace gentrius::support::detail

#define GENTRIUS_CHECK(expr)                                                  \
  do {                                                                        \
    if (!(expr)) [[unlikely]]                                                 \
      ::gentrius::support::detail::check_failed(#expr, __FILE__, __LINE__);   \
  } while (false)
