// Clang thread-safety-analysis attribute macros.
//
// Wrapping the attributes lets the whole codebase annotate its locking
// discipline while remaining compilable by GCC (which ignores the analysis):
// under Clang the build adds -Wthread-safety -Werror=thread-safety, so an
// unannotated access to a guarded member, a missing REQUIRES on a helper, or
// an unlock on the wrong path is a compile error; under any other compiler
// every macro expands to nothing.
//
// Conventions used in this project (see docs/TOOLING.md):
//   * shared state is a member annotated GENTRIUS_GUARDED_BY(mutex_);
//   * internal helpers that expect the lock held take GENTRIUS_REQUIRES;
//   * locking goes through support::Mutex / support::MutexLock /
//     support::CondVar (support/sync.hpp), never bare std::mutex, because
//     libstdc++'s std::mutex carries no capability attributes;
//   * single-threaded-by-design classes (the virtual-time scheduler) use
//     support::SequentialRole, a lock-free capability that mechanically
//     documents "only the owning scheduler thread may touch this".
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GENTRIUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GENTRIUS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable). The string names the capability
/// kind in diagnostics ("mutex", "role", ...).
#define GENTRIUS_CAPABILITY(x) GENTRIUS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define GENTRIUS_SCOPED_CAPABILITY GENTRIUS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GENTRIUS_GUARDED_BY(x) GENTRIUS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define GENTRIUS_PT_GUARDED_BY(x) GENTRIUS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held (and keeps it held).
#define GENTRIUS_REQUIRES(...) \
  GENTRIUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capability NOT held.
#define GENTRIUS_EXCLUDES(...) \
  GENTRIUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (held on return).
#define GENTRIUS_ACQUIRE(...) \
  GENTRIUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability (no longer held on return).
#define GENTRIUS_RELEASE(...) \
  GENTRIUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define GENTRIUS_TRY_ACQUIRE(ret, ...) \
  GENTRIUS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Accessor returning a reference to the named capability, so callers can
/// write `Guard g(obj.mu());` and the analysis unifies it with `obj.mu_`.
#define GENTRIUS_RETURN_CAPABILITY(x) \
  GENTRIUS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Used only where the
/// analysis cannot follow the code (e.g. lock ownership handed through
/// std::condition_variable internals); every use carries a justification.
#define GENTRIUS_NO_THREAD_SAFETY_ANALYSIS \
  GENTRIUS_THREAD_ANNOTATION(no_thread_safety_analysis)
