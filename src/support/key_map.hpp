// Open-addressing scratch maps from 64-bit keys to small payloads.
//
// The Gentrius inner loop buckets agile-tree edges by their common-subtree
// edge key once per (state, constraint tree) pair. The maps are reused
// across millions of states, so clearing must be O(1): an epoch counter
// marks slots stale instead of zeroing the table.
//
// The Terrace uses one instance as a scratch key -> dense-slot-id map while
// rebuilding a constraint mapping: every distinct common-subtree edge key is
// interned to a small integer once, and all hot-path bookkeeping (preimage
// counts, intrusive preimage lists, admissibility probes) then runs on
// plain slot-indexed arrays instead of 64-bit hash lookups.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "support/arena.hpp"
#include "support/check.hpp"

namespace gentrius::support {

/// Maps uint64 keys (never 0 is *not* required) to uint32 values.
/// insert-or-find only; no deletion. Capacity grows on demand.
///
/// The slot table can be carved out of a caller-supplied Arena so a Terrace's
/// interning scratch shares the worker-private region with the rest of its
/// mapping storage. Growth doubles the table and abandons the old one inside
/// the arena — a bounded, one-time cost since the table only ever grows to
/// the per-problem high-water mark. Without an arena the map owns a private
/// one, which behaves like a plain heap-backed table.
class KeyMap {
 public:
  explicit KeyMap(std::size_t expected = 64,
                  std::shared_ptr<Arena> arena = nullptr)
      : slots_(ArenaAllocator<Slot>(arena != nullptr
                                        ? std::move(arena)
                                        : std::make_shared<Arena>())) {
    rehash(table_size_for(expected));
  }

  /// Forgets all entries in O(1).
  void clear() noexcept {
    if (++epoch_ == 0) {  // epoch wrapped: must actually wipe the stamps
      for (auto& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
    count_ = 0;
  }

  std::size_t size() const noexcept { return count_; }

  /// Returns a reference to the value for key, inserting value 0 if absent.
  std::uint32_t& operator[](std::uint64_t key) {
    if ((count_ + 1) * 4 >= slots_.size() * 3) grow();
    const std::size_t idx = find_slot(key);
    Slot& s = slots_[idx];
    if (s.epoch != epoch_) {
      s.epoch = epoch_;
      s.key = key;
      s.value = 0;
      ++count_;
    }
    return s.value;
  }

  /// Returns the value for key, or fallback when absent.
  std::uint32_t get(std::uint64_t key, std::uint32_t fallback = 0) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = mix(key) & mask;
    for (;;) {
      const Slot& s = slots_[idx];
      if (s.epoch != epoch_) return fallback;
      if (s.key == key) return s.value;
      idx = (idx + 1) & mask;
    }
  }

  bool contains(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = mix(key) & mask;
    for (;;) {
      const Slot& s = slots_[idx];
      if (s.epoch != epoch_) return false;
      if (s.key == key) return true;
      idx = (idx + 1) & mask;
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
    std::uint32_t epoch = 0;
  };

  static std::size_t table_size_for(std::size_t expected) {
    std::size_t n = 16;
    while (n * 3 < expected * 4) n <<= 1;
    return n;
  }

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  std::size_t find_slot(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = mix(key) & mask;
    while (slots_[idx].epoch == epoch_ && slots_[idx].key != key)
      idx = (idx + 1) & mask;
    return idx;
  }

  void rehash(std::size_t new_size) {
    slots_.assign(new_size, Slot{});
    epoch_ = 1;
    count_ = 0;
  }

  void grow() {
    ArenaVector<Slot> old = std::move(slots_);
    const std::uint32_t old_epoch = epoch_;
    rehash(old.size() * 2);  // moved-from vector keeps its allocator
    for (const Slot& s : old)
      if (s.epoch == old_epoch) (*this)[s.key] = s.value;
  }

  // The allocator inside the vector holds a shared_ptr<Arena>, so slots_
  // co-owns its backing storage; it cannot outlive the arena.
  // lint:allow(arena-escape)
  ArenaVector<Slot> slots_;
  std::uint32_t epoch_ = 1;
  std::size_t count_ = 0;
};

}  // namespace gentrius::support
