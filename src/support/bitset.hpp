// Dynamic fixed-width bitset used for taxon sets.
//
// Taxon sets are dense (indices 0..n-1 with n up to a few thousand), so a
// word-packed bitset beats std::set / unordered_set by a wide margin for the
// intersection-heavy operations Gentrius performs at every state.
//
// The fused kernels (restrict_and_count, subtract_and_test, relation_to,
// for_each_and / for_each_diff) exist because the hot paths combine two
// bitsets and immediately consume the result: fusing keeps everything in one
// word-at-a-time pass with no intermediate materialization and no second
// sweep. All kernels are plain 64-bit word loops over contiguous arrays, so
// the compiler can vectorize them (AVX2 and wider) when the target allows;
// correctness never depends on vector width.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace gentrius::support {

class Bitset {
 public:
  Bitset() = default;

  /// Constructs an all-zero set over the universe [0, universe_size).
  explicit Bitset(std::size_t universe_size)
      : size_(universe_size), words_((universe_size + 63) / 64, 0) {}

  std::size_t universe_size() const noexcept { return size_; }

  void resize(std::size_t universe_size) {
    size_ = universe_size;
    words_.assign((universe_size + 63) / 64, 0);
  }

  bool test(std::size_t i) const noexcept {
    GENTRIUS_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  void set(std::size_t i) noexcept {
    GENTRIUS_DCHECK(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) noexcept {
    GENTRIUS_DCHECK(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool empty() const noexcept {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// |*this ∩ other|. Universes must match.
  std::size_t intersection_count(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    return c;
  }

  Bitset& operator|=(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  Bitset& operator&=(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// Removes from *this every element of other.
  Bitset& subtract(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  /// Fused restrict-and-count: out = *this ∩ other, returns |out|. One pass
  /// instead of copy + operator&= + count. `out` is resized to this
  /// universe; aliasing out with either operand is allowed.
  std::size_t restrict_and_count(const Bitset& other, Bitset& out) const {
    GENTRIUS_DCHECK(size_ == other.size_);
    if (out.size_ != size_) out.resize(size_);
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i] & other.words_[i];
      out.words_[i] = w;
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  /// Fused masked subtract-and-test: *this \= other, returns whether any
  /// element survives. One pass instead of subtract() + empty().
  bool subtract_and_test(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    std::uint64_t any = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i] & ~other.words_[i];
      words_[i] = w;
      any |= w;
    }
    return any != 0;
  }

  /// How *this sits relative to other, in a single fused pass (the split-
  /// compatibility question): kDisjoint = no shared element, kSubset =
  /// every element of *this is in other, kOverlap = both a shared and an
  /// exclusive element exist (the incompatible case; the pass exits early
  /// as soon as it is proven). An empty *this reports kDisjoint, not
  /// kSubset — callers that care must test for disjointness first.
  enum class Relation { kDisjoint, kSubset, kOverlap };
  Relation relation_to(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    std::uint64_t shared = 0, exclusive = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      shared |= words_[i] & other.words_[i];
      exclusive |= words_[i] & ~other.words_[i];
      if (shared != 0 && exclusive != 0) return Relation::kOverlap;
    }
    if (shared == 0) return Relation::kDisjoint;
    return Relation::kSubset;
  }

  bool operator==(const Bitset& other) const noexcept = default;

  /// True iff every element of *this is in other.
  bool is_subset_of(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    return true;
  }

  /// True iff the sets share at least one element.
  bool intersects(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  /// Lowest index set in both this and other, or universe_size() when the
  /// intersection is empty.
  std::size_t first_common(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i] & other.words_[i];
      if (w != 0)
        return (i << 6) + static_cast<std::size_t>(std::countr_zero(w));
    }
    return size_;
  }

  /// Index of the lowest set bit, or universe_size() when empty.
  std::size_t first() const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] != 0)
        return (i << 6) + static_cast<std::size_t>(std::countr_zero(words_[i]));
    return size_;
  }

  /// Invokes fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) iterate_word(words_[i], i, fn);
  }

  /// Block-iterated for_each over *this ∩ other: the mask is applied one
  /// word at a time, so members of the intersection are enumerated without
  /// materializing it and without a per-index second test.
  template <typename Fn>
  void for_each_and(const Bitset& other, Fn&& fn) const {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      iterate_word(words_[i] & other.words_[i], i, fn);
  }

  /// Block-iterated for_each over *this \ other (set difference).
  template <typename Fn>
  void for_each_diff(const Bitset& other, Fn&& fn) const {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      iterate_word(words_[i] & ~other.words_[i], i, fn);
  }

  /// Materializes the set as a sorted index vector.
  std::vector<std::uint32_t> to_indices() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for_each([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return out;
  }

 private:
  template <typename Fn>
  static void iterate_word(std::uint64_t w, std::size_t word_index, Fn&& fn) {
    while (w != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(w));
      fn((word_index << 6) + b);
      w &= w - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gentrius::support
